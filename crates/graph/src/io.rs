//! Graph file loaders, so the simulator can run on real datasets (e.g. the
//! SNAP graphs the paper uses) instead of the synthetic substitutes.
//!
//! Two formats are supported:
//!
//! - **Edge list** (`.el` / SNAP `.txt`): one `src dst [weight]` pair per
//!   line; `#` or `%` lines are comments. This is the format SNAP
//!   distributes orkut and livejournal in.
//! - **DIMACS** (`.gr`): the 9th-DIMACS shortest-path format used for road
//!   networks (`c` comments, `p sp <n> <m>` header, `a <src> <dst> <w>`
//!   arcs, 1-indexed).

use crate::csr::{Csr, CsrBuilder};
use std::io::{BufRead, BufReader, Read};
use std::path::Path;

/// Errors produced by the loaders.
#[derive(Debug)]
pub enum LoadGraphError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line failed to parse; carries the 1-based line number and content.
    Parse(usize, String),
    /// The DIMACS header is missing or malformed.
    MissingHeader,
}

impl std::fmt::Display for LoadGraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadGraphError::Io(e) => write!(f, "i/o error: {e}"),
            LoadGraphError::Parse(line, text) => {
                write!(f, "parse error at line {line}: {text:?}")
            }
            LoadGraphError::MissingHeader => f.write_str("missing DIMACS `p sp` header"),
        }
    }
}

impl std::error::Error for LoadGraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadGraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for LoadGraphError {
    fn from(e: std::io::Error) -> Self {
        LoadGraphError::Io(e)
    }
}

/// Reads an edge-list graph from `reader`. Weights in a third column are
/// used when `weighted` is set (defaulting to 1 if the column is absent);
/// otherwise they are ignored. Vertex IDs may be sparse: the vertex count
/// is `max id + 1`.
///
/// # Errors
///
/// Returns [`LoadGraphError::Parse`] on malformed lines and
/// [`LoadGraphError::Io`] on read failures.
///
/// # Example
///
/// ```
/// use droplet_graph::io::read_edge_list;
/// let text = "# comment\n0 1\n1 2 9\n";
/// let g = read_edge_list(text.as_bytes(), false).unwrap();
/// assert_eq!(g.num_vertices(), 3);
/// assert_eq!(g.neighbors(1), &[2]);
/// ```
pub fn read_edge_list(reader: impl Read, weighted: bool) -> Result<Csr, LoadGraphError> {
    let mut edges: Vec<(u32, u32, u32)> = Vec::new();
    let mut max_id: u32 = 0;
    for (idx, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        let text = line.trim();
        if text.is_empty() || text.starts_with('#') || text.starts_with('%') {
            continue;
        }
        let mut parts = text.split_whitespace();
        let (Some(a), Some(b)) = (parts.next(), parts.next()) else {
            return Err(LoadGraphError::Parse(idx + 1, line.clone()));
        };
        let parse = |s: &str| {
            s.parse::<u32>()
                .map_err(|_| LoadGraphError::Parse(idx + 1, line.clone()))
        };
        let (u, v) = (parse(a)?, parse(b)?);
        let w = match parts.next() {
            Some(ws) if weighted => parse(ws)?,
            _ => 1,
        };
        max_id = max_id.max(u).max(v);
        edges.push((u, v, w));
    }
    let n = if edges.is_empty() { 0 } else { max_id + 1 };
    let mut b = CsrBuilder::with_capacity(n, edges.len());
    for (u, v, w) in edges {
        if weighted {
            b.push_weighted_edge(u, v, w);
        } else {
            b.push_edge(u, v);
        }
    }
    Ok(b.dedup().build())
}

/// Loads an edge-list graph from a file path.
///
/// # Errors
///
/// See [`read_edge_list`].
pub fn load_edge_list(path: impl AsRef<Path>, weighted: bool) -> Result<Csr, LoadGraphError> {
    read_edge_list(std::fs::File::open(path)?, weighted)
}

/// Reads a 9th-DIMACS shortest-path graph (`p sp` format, 1-indexed arcs)
/// from `reader`; always weighted.
///
/// # Errors
///
/// Returns [`LoadGraphError::MissingHeader`] when no `p sp` line precedes
/// the arcs, and [`LoadGraphError::Parse`] on malformed lines.
///
/// # Example
///
/// ```
/// use droplet_graph::io::read_dimacs;
/// let text = "c road net\np sp 3 2\na 1 2 5\na 2 3 7\n";
/// let g = read_dimacs(text.as_bytes()).unwrap();
/// assert_eq!(g.num_vertices(), 3);
/// assert_eq!(g.edge_weights(0), &[5]);
/// ```
pub fn read_dimacs(reader: impl Read) -> Result<Csr, LoadGraphError> {
    let mut builder: Option<CsrBuilder> = None;
    for (idx, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        let text = line.trim();
        let mut parts = text.split_whitespace();
        match parts.next() {
            None | Some("c") => continue,
            Some("p") => {
                // p sp <n> <m>
                let sp = parts.next();
                let n = parts.next().and_then(|s| s.parse::<u32>().ok());
                match (sp, n) {
                    (Some("sp"), Some(n)) => builder = Some(CsrBuilder::new(n)),
                    _ => return Err(LoadGraphError::Parse(idx + 1, line.clone())),
                }
            }
            Some("a") => {
                let b = builder.as_mut().ok_or(LoadGraphError::MissingHeader)?;
                let mut parse_next = || {
                    parts
                        .next()
                        .and_then(|s| s.parse::<u32>().ok())
                        .ok_or_else(|| LoadGraphError::Parse(idx + 1, line.clone()))
                };
                let (u, v, w) = (parse_next()?, parse_next()?, parse_next()?);
                if u == 0 || v == 0 {
                    return Err(LoadGraphError::Parse(idx + 1, line.clone()));
                }
                b.push_weighted_edge(u - 1, v - 1, w.max(1));
            }
            Some(_) => return Err(LoadGraphError::Parse(idx + 1, line.clone())),
        }
    }
    let b = builder.ok_or(LoadGraphError::MissingHeader)?;
    Ok(b.dedup().build())
}

/// Loads a DIMACS `.gr` graph from a file path.
///
/// # Errors
///
/// See [`read_dimacs`].
pub fn load_dimacs(path: impl AsRef<Path>) -> Result<Csr, LoadGraphError> {
    read_dimacs(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_list_parses_comments_and_weights() {
        let text = "# snap header\n% matrix-market-ish comment\n0 3\n3 0 42\n\n1 2 7\n";
        let g = read_edge_list(text.as_bytes(), true).unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.neighbors(0), &[3]);
        assert_eq!(g.edge_weights(0), &[1], "missing weight defaults to 1");
        assert_eq!(g.edge_weights(3), &[42]);
        assert_eq!(g.edge_weights(1), &[7]);
    }

    #[test]
    fn edge_list_unweighted_ignores_third_column() {
        let g = read_edge_list("0 1 99\n".as_bytes(), false).unwrap();
        assert!(!g.is_weighted());
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn edge_list_rejects_garbage() {
        let err = read_edge_list("0 x\n".as_bytes(), false).unwrap_err();
        assert!(matches!(err, LoadGraphError::Parse(1, _)), "{err}");
        let err = read_edge_list("0\n".as_bytes(), false).unwrap_err();
        assert!(matches!(err, LoadGraphError::Parse(1, _)));
    }

    #[test]
    fn edge_list_empty_is_empty_graph() {
        let g = read_edge_list("# nothing\n".as_bytes(), false).unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn dimacs_roundtrip() {
        let text = "c USA-road-d style\np sp 4 3\na 1 2 10\na 2 3 20\na 4 1 30\n";
        let g = read_dimacs(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.edge_weights(3), &[30]);
        assert!(g.is_weighted());
    }

    #[test]
    fn dimacs_requires_header() {
        let err = read_dimacs("a 1 2 3\n".as_bytes()).unwrap_err();
        assert!(matches!(err, LoadGraphError::MissingHeader), "{err}");
        let err = read_dimacs("c only comments\n".as_bytes()).unwrap_err();
        assert!(matches!(err, LoadGraphError::MissingHeader));
    }

    #[test]
    fn dimacs_rejects_zero_ids_and_unknown_records() {
        let err = read_dimacs("p sp 2 1\na 0 1 5\n".as_bytes()).unwrap_err();
        assert!(matches!(err, LoadGraphError::Parse(2, _)));
        let err = read_dimacs("p sp 2 1\nz what\n".as_bytes()).unwrap_err();
        assert!(matches!(err, LoadGraphError::Parse(2, _)));
    }

    #[test]
    fn file_loaders_work() {
        let dir = std::env::temp_dir().join(format!("droplet-io-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let el = dir.join("g.el");
        std::fs::write(&el, "0 1\n1 0\n").unwrap();
        let g = load_edge_list(&el, false).unwrap();
        assert_eq!(g.num_edges(), 2);
        let gr = dir.join("g.gr");
        std::fs::write(&gr, "p sp 2 1\na 1 2 4\n").unwrap();
        let g = load_dimacs(&gr).unwrap();
        assert_eq!(g.edge_weights(0), &[4]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn error_display_is_informative() {
        let err = read_edge_list("bad line\n".as_bytes(), false).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("line 1"), "{text}");
    }
}
