//! A small, deterministic PRNG for the synthetic graph generators.
//!
//! The build environment is fully offline, so the `rand` crate is not
//! available; the generators only need a seedable, statistically-decent,
//! reproducible stream, which SplitMix64 (Steele et al., "Fast splittable
//! pseudorandom number generators", OOPSLA 2014) provides in a dozen lines.
//! The sequence for a given seed is part of the dataset contract: changing
//! it changes every generated graph, so treat the constants as frozen.

/// SplitMix64 stream generator.
///
/// # Example
///
/// ```
/// use droplet_graph::rng::SimRng;
/// let mut a = SimRng::seed_from_u64(7);
/// let mut b = SimRng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Creates a generator whose stream is a pure function of `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)` with the full 53-bit mantissa.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `u32` in `[0, n)` (Lemire's multiply-shift reduction; the
    /// modulo bias at these range sizes is ≪ one part per billion).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn below(&mut self, n: u32) -> u32 {
        assert!(n > 0, "empty range");
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u32
    }

    /// A uniform `u32` in `[lo, hi]` (both inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn between(&mut self, lo: u32, hi: u32) -> u32 {
        assert!(lo <= hi, "inverted range {lo}..={hi}");
        lo + self.below(hi - lo + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_seed_sensitive() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        let mut c = SimRng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn f64_is_in_unit_interval_and_spreads() {
        let mut r = SimRng::seed_from_u64(1);
        let xs: Vec<f64> = (0..1000).map(|_| r.next_f64()).collect();
        assert!(xs.iter().all(|&x| (0.0..1.0).contains(&x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn ranges_hit_their_bounds() {
        let mut r = SimRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.below(4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let w = r.between(1, 255);
            assert!((1..=255).contains(&w));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn below_zero_is_rejected() {
        SimRng::seed_from_u64(0).below(0);
    }
}
