//! Synthetic graph generators standing in for the paper's datasets
//! (Table III). All generators are deterministic given a seed.
//!
//! - [`rmat`] — Kronecker-style recursive-matrix graphs: the GAP `kron`
//!   generator and our substitutes for the SNAP social networks (orkut,
//!   livejournal), which are power-law graphs of similar degree character.
//! - [`uniform`] — Erdős–Rényi-style graphs: the GAP `urand` generator.
//! - [`grid`] — a 2-D mesh standing in for the `road` network: high
//!   diameter, tiny degree, strong locality.

use crate::csr::{Csr, CsrBuilder};
use crate::rng::SimRng;

/// RMAT quadrant probabilities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatParams {
    /// Probability of the (0,0) quadrant.
    pub a: f64,
    /// Probability of the (0,1) quadrant.
    pub b: f64,
    /// Probability of the (1,0) quadrant.
    pub c: f64,
}

/// Preset skews for the RMAT generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RmatSkew {
    /// The Graph500/GAP `kron` parameters (A=0.57, B=0.19, C=0.19).
    Kron,
    /// A denser-community skew approximating the orkut social network.
    Social,
    /// A milder skew approximating livejournal.
    Community,
}

impl RmatSkew {
    /// The quadrant probabilities for this preset.
    pub fn params(self) -> RmatParams {
        match self {
            RmatSkew::Kron => RmatParams {
                a: 0.57,
                b: 0.19,
                c: 0.19,
            },
            RmatSkew::Social => RmatParams {
                a: 0.55,
                b: 0.22,
                c: 0.22,
            },
            RmatSkew::Community => RmatParams {
                a: 0.59,
                b: 0.18,
                c: 0.18,
            },
        }
    }
}

/// Generates an RMAT graph with `2^scale` vertices and
/// `edge_factor * 2^scale` directed edges (before dedup; self-loops and
/// duplicates are removed, so the final count is slightly lower).
///
/// # Example
///
/// ```
/// use droplet_graph::gen::{rmat, RmatSkew};
/// let g = rmat(8, 8, RmatSkew::Kron, 1);
/// assert_eq!(g.num_vertices(), 256);
/// assert!(g.num_edges() > 1000);
/// ```
pub fn rmat(scale: u32, edge_factor: u64, skew: RmatSkew, seed: u64) -> Csr {
    rmat_with(scale, edge_factor, skew.params(), seed, false)
}

/// Weighted variant of [`rmat`]; weights are uniform in `1..=255` like the
/// GAP weight generator.
pub fn rmat_weighted(scale: u32, edge_factor: u64, skew: RmatSkew, seed: u64) -> Csr {
    rmat_with(scale, edge_factor, skew.params(), seed, true)
}

fn rmat_with(scale: u32, edge_factor: u64, p: RmatParams, seed: u64, weighted: bool) -> Csr {
    assert!(scale > 0 && scale < 32, "scale must be in 1..32");
    let n: u32 = 1 << scale;
    let m = edge_factor * u64::from(n);
    let mut rng = SimRng::seed_from_u64(seed ^ 0x524d_4154);
    let mut b = CsrBuilder::with_capacity(n, m as usize);
    for _ in 0..m {
        let (mut u, mut v) = (0u32, 0u32);
        for _ in 0..scale {
            u <<= 1;
            v <<= 1;
            let r = rng.next_f64();
            if r < p.a {
                // (0, 0): nothing to add.
            } else if r < p.a + p.b {
                v |= 1;
            } else if r < p.a + p.b + p.c {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        if weighted {
            b.push_weighted_edge(u, v, rng.between(1, 255));
        } else {
            b.push_edge(u, v);
        }
    }
    b.dedup().build()
}

/// Generates a uniform-random (Erdős–Rényi style) graph with `n` vertices
/// and `m` directed edges before dedup — the GAP `urand` generator.
pub fn uniform(n: u32, m: u64, seed: u64) -> Csr {
    uniform_with(n, m, seed, false)
}

/// Weighted variant of [`uniform`].
pub fn uniform_weighted(n: u32, m: u64, seed: u64) -> Csr {
    uniform_with(n, m, seed, true)
}

fn uniform_with(n: u32, m: u64, seed: u64, weighted: bool) -> Csr {
    assert!(n > 1, "need at least two vertices");
    let mut rng = SimRng::seed_from_u64(seed ^ 0x0055_5241_4e44);
    let mut b = CsrBuilder::with_capacity(n, m as usize);
    for _ in 0..m {
        let u = rng.below(n);
        let v = rng.below(n);
        if weighted {
            b.push_weighted_edge(u, v, rng.between(1, 255));
        } else {
            b.push_edge(u, v);
        }
    }
    b.dedup().build()
}

/// Generates a `rows × cols` 4-connected mesh standing in for a road
/// network: every interior vertex links to its N/S/E/W neighbors (both
/// directions), and a small fraction `shortcut_per_mille` (per 1000
/// vertices) of random long-range shortcuts model highway ramps.
///
/// # Example
///
/// ```
/// use droplet_graph::gen::grid;
/// let g = grid(10, 10, 0, 7);
/// assert_eq!(g.num_vertices(), 100);
/// // Corner vertices have degree 2.
/// assert_eq!(g.out_degree(0), 2);
/// ```
pub fn grid(rows: u32, cols: u32, shortcut_per_mille: u32, seed: u64) -> Csr {
    grid_with(rows, cols, shortcut_per_mille, seed, false)
}

/// Weighted variant of [`grid`]; weights model road-segment lengths.
pub fn grid_weighted(rows: u32, cols: u32, shortcut_per_mille: u32, seed: u64) -> Csr {
    grid_with(rows, cols, shortcut_per_mille, seed, true)
}

fn grid_with(rows: u32, cols: u32, shortcut_per_mille: u32, seed: u64, weighted: bool) -> Csr {
    let n = rows
        .checked_mul(cols)
        .expect("grid dimensions overflow u32");
    assert!(n > 1, "need at least two vertices");
    let mut rng = SimRng::seed_from_u64(seed ^ 0x4752_4944);
    let id = |r: u32, c: u32| r * cols + c;
    let mut b = CsrBuilder::with_capacity(n, (4 * n) as usize);
    let add = |b: &mut CsrBuilder, u: u32, v: u32, rng: &mut SimRng| {
        if weighted {
            b.push_weighted_edge(u, v, rng.between(1, 255));
        } else {
            b.push_edge(u, v);
        }
    };
    for r in 0..rows {
        for c in 0..cols {
            let u = id(r, c);
            if c + 1 < cols {
                add(&mut b, u, id(r, c + 1), &mut rng);
                add(&mut b, id(r, c + 1), u, &mut rng);
            }
            if r + 1 < rows {
                add(&mut b, u, id(r + 1, c), &mut rng);
                add(&mut b, id(r + 1, c), u, &mut rng);
            }
        }
    }
    let shortcuts = u64::from(n) * u64::from(shortcut_per_mille) / 1000;
    for _ in 0..shortcuts {
        let u = rng.below(n);
        let v = rng.below(n);
        add(&mut b, u, v, &mut rng);
        add(&mut b, v, u, &mut rng);
    }
    b.dedup().build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmat_is_deterministic() {
        let a = rmat(8, 4, RmatSkew::Kron, 7);
        let b = rmat(8, 4, RmatSkew::Kron, 7);
        assert_eq!(a, b);
        let c = rmat(8, 4, RmatSkew::Kron, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn rmat_has_power_law_tendency() {
        let g = rmat(10, 8, RmatSkew::Kron, 3);
        let mut degrees: Vec<u64> = (0..g.num_vertices()).map(|u| g.out_degree(u)).collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        // Hub vertices should dominate: the max degree far exceeds the mean.
        let mean = g.avg_degree();
        assert!(
            degrees[0] as f64 > 5.0 * mean,
            "max {} mean {mean}",
            degrees[0]
        );
        // And no self loops survive dedup.
        for u in 0..g.num_vertices() {
            assert!(!g.neighbors(u).contains(&u));
        }
    }

    #[test]
    fn uniform_degree_is_concentrated() {
        let g = uniform(1024, 16 * 1024, 5);
        let mean = g.avg_degree();
        assert!(mean > 12.0 && mean <= 16.0, "mean {mean}");
        let max = (0..g.num_vertices())
            .map(|u| g.out_degree(u))
            .max()
            .unwrap();
        assert!((max as f64) < 4.0 * mean, "uniform graphs have no hubs");
    }

    #[test]
    fn grid_shape() {
        let g = grid(4, 5, 0, 1);
        assert_eq!(g.num_vertices(), 20);
        // Interior vertex (1,1) = id 6 has degree 4.
        assert_eq!(g.out_degree(6), 4);
        // Mesh edges are symmetric.
        for u in 0..g.num_vertices() {
            for &v in g.neighbors(u) {
                assert!(g.neighbors(v).contains(&u), "missing reverse of {u}->{v}");
            }
        }
    }

    #[test]
    fn grid_shortcuts_increase_edges() {
        let base = grid(32, 32, 0, 9).num_edges();
        let with = grid(32, 32, 100, 9).num_edges();
        assert!(with > base);
    }

    #[test]
    fn weighted_generators_produce_weights_in_range() {
        for g in [
            rmat_weighted(6, 4, RmatSkew::Social, 2),
            uniform_weighted(64, 512, 2),
            grid_weighted(8, 8, 50, 2),
        ] {
            assert!(g.is_weighted());
            let w = g.weights().unwrap();
            assert!(!w.is_empty());
            assert!(w.iter().all(|&x| (1..=255).contains(&x)));
        }
    }

    #[test]
    fn skew_presets_are_normalized_enough() {
        for s in [RmatSkew::Kron, RmatSkew::Social, RmatSkew::Community] {
            let p = s.params();
            assert!(p.a + p.b + p.c < 1.0);
            assert!(p.a > p.b && p.a > p.c);
        }
    }
}
