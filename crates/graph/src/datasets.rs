//! The five evaluation datasets (paper Table III) at simulation-friendly
//! scales.
//!
//! The paper uses two synthetic GAP graphs (`kron`, `urand`), two SNAP
//! social networks (`orkut`, `livejournal`) and a road mesh. We reproduce
//! the synthetic generators directly and substitute RMAT graphs with
//! matching degree character for the SNAP downloads (see DESIGN.md §4);
//! `road` is a 2-D mesh with sparse shortcuts. Three scales are provided:
//! [`DatasetScale::Tiny`] for unit tests, [`DatasetScale::Small`] for
//! examples, and [`DatasetScale::Sim`] for the figure-regeneration benches
//! (sized so the property working set exceeds the 8 MB baseline LLC, per the
//! paper's Section VI argument).

use crate::csr::Csr;
use crate::gen::{self, RmatSkew};

/// The five paper datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// GAP synthetic Kronecker graph.
    Kron,
    /// GAP synthetic uniform-random graph.
    Urand,
    /// Orkut-like social network (RMAT substitute, dense).
    Orkut,
    /// LiveJournal-like social network (RMAT substitute, sparser).
    LiveJournal,
    /// Road-like mesh network.
    Road,
}

/// How large to build a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetScale {
    /// ~1 K vertices; for unit and integration tests.
    Tiny,
    /// ~32 K vertices; for examples and quick experiments.
    Small,
    /// ~1–2 M vertices; for the figure benches (working set ≫ LLC).
    Sim,
}

impl Dataset {
    /// All five datasets in the paper's presentation order.
    pub const ALL: [Dataset; 5] = [
        Dataset::Kron,
        Dataset::Urand,
        Dataset::Orkut,
        Dataset::LiveJournal,
        Dataset::Road,
    ];

    /// The dataset's short name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Kron => "kron",
            Dataset::Urand => "urand",
            Dataset::Orkut => "orkut",
            Dataset::LiveJournal => "livejournal",
            Dataset::Road => "road",
        }
    }

    /// Builds the unweighted graph at the given scale. Deterministic.
    pub fn build(self, scale: DatasetScale) -> Csr {
        self.build_inner(scale, false)
    }

    /// Builds the weighted variant (for SSSP), matching the paper's note
    /// that weighted graphs are generated separately.
    pub fn build_weighted(self, scale: DatasetScale) -> Csr {
        self.build_inner(scale, true)
    }

    fn build_inner(self, scale: DatasetScale, weighted: bool) -> Csr {
        let seed = 0xD20_B1E7 ^ (self as u64);
        match (self, scale) {
            // kron: GAP Kronecker parameters.
            (Dataset::Kron, DatasetScale::Tiny) => rmat(13, 8, RmatSkew::Kron, seed, weighted),
            (Dataset::Kron, DatasetScale::Small) => rmat(15, 16, RmatSkew::Kron, seed, weighted),
            (Dataset::Kron, DatasetScale::Sim) => rmat(21, 16, RmatSkew::Kron, seed, weighted),
            // urand: same vertex count as kron, uniform edges.
            (Dataset::Urand, DatasetScale::Tiny) => uniform(1 << 13, 8 << 13, seed, weighted),
            (Dataset::Urand, DatasetScale::Small) => uniform(1 << 15, 16 << 15, seed, weighted),
            (Dataset::Urand, DatasetScale::Sim) => uniform(1 << 21, 16 << 21, seed, weighted),
            // orkut-like: denser, fewer vertices (real orkut: 3 M v, 117 M e).
            (Dataset::Orkut, DatasetScale::Tiny) => rmat(12, 16, RmatSkew::Social, seed, weighted),
            (Dataset::Orkut, DatasetScale::Small) => rmat(14, 32, RmatSkew::Social, seed, weighted),
            (Dataset::Orkut, DatasetScale::Sim) => rmat(20, 32, RmatSkew::Social, seed, weighted),
            // livejournal-like: sparser (real lj: 4.8 M v, 68.5 M e).
            (Dataset::LiveJournal, DatasetScale::Tiny) => {
                rmat(13, 4, RmatSkew::Community, seed, weighted)
            }
            (Dataset::LiveJournal, DatasetScale::Small) => {
                rmat(15, 8, RmatSkew::Community, seed, weighted)
            }
            (Dataset::LiveJournal, DatasetScale::Sim) => {
                rmat(21, 8, RmatSkew::Community, seed, weighted)
            }
            // road: mesh with ~2/1000 shortcut ramps (real: 23.9 M v, deg 2.4).
            (Dataset::Road, DatasetScale::Tiny) => grid(90, 90, 2, seed, weighted),
            (Dataset::Road, DatasetScale::Small) => grid(180, 180, 2, seed, weighted),
            (Dataset::Road, DatasetScale::Sim) => grid(1448, 1448, 2, seed, weighted),
        }
    }
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

fn rmat(scale: u32, ef: u64, skew: RmatSkew, seed: u64, weighted: bool) -> Csr {
    if weighted {
        gen::rmat_weighted(scale, ef, skew, seed)
    } else {
        gen::rmat(scale, ef, skew, seed)
    }
}

fn uniform(n: u32, m: u64, seed: u64, weighted: bool) -> Csr {
    if weighted {
        gen::uniform_weighted(n, m, seed)
    } else {
        gen::uniform(n, m, seed)
    }
}

fn grid(rows: u32, cols: u32, ramps: u32, seed: u64, weighted: bool) -> Csr {
    if weighted {
        gen::grid_weighted(rows, cols, ramps, seed)
    } else {
        gen::grid(rows, cols, ramps, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::DegreeStats;

    #[test]
    fn tiny_datasets_build_and_differ() {
        let graphs: Vec<Csr> = Dataset::ALL
            .iter()
            .map(|d| d.build(DatasetScale::Tiny))
            .collect();
        for g in &graphs {
            assert!(g.num_vertices() >= 512);
            assert!(g.num_edges() > 0);
            assert!(!g.is_weighted());
        }
        // Social substitutes are skewed; road is not.
        let orkut = DegreeStats::of(&graphs[2]);
        let road = DegreeStats::of(&graphs[4]);
        assert!(orkut.max as f64 > 4.0 * orkut.mean);
        assert!((road.max as f64) < 4.0 * road.mean.max(1.0) + 8.0);
    }

    #[test]
    fn weighted_variants_are_weighted() {
        for d in Dataset::ALL {
            assert!(d.build_weighted(DatasetScale::Tiny).is_weighted());
        }
    }

    #[test]
    fn builds_are_deterministic() {
        let a = Dataset::Kron.build(DatasetScale::Tiny);
        let b = Dataset::Kron.build(DatasetScale::Tiny);
        assert_eq!(a, b);
    }

    #[test]
    fn names_match_paper() {
        let names: Vec<_> = Dataset::ALL.iter().map(|d| d.name()).collect();
        assert_eq!(names, ["kron", "urand", "orkut", "livejournal", "road"]);
        assert_eq!(Dataset::Road.to_string(), "road");
    }
}
