//! Graph substrate for the DROPLET reproduction: the Compressed Sparse Row
//! layout the paper's analysis is built around (Section II-A), plus the
//! synthetic generators standing in for the GAP/SNAP datasets of Table III.
//!
//! # Example
//!
//! ```
//! use droplet_graph::{CsrBuilder, gen};
//!
//! let g = CsrBuilder::new(4)
//!     .edge(0, 1)
//!     .edge(0, 2)
//!     .edge(2, 3)
//!     .build();
//! assert_eq!(g.neighbors(0), &[1, 2]);
//! assert_eq!(g.num_edges(), 3);
//!
//! let kron = gen::rmat(10, 4, gen::RmatSkew::Kron, 42);
//! assert_eq!(kron.num_vertices(), 1 << 10);
//! ```

pub mod csr;
pub mod datasets;
pub mod gen;
pub mod io;
pub mod rng;
pub mod stats;

pub use csr::{Csr, CsrBuilder};
pub use datasets::{Dataset, DatasetScale};
pub use stats::DegreeStats;
