//! Compressed Sparse Row graphs (paper Fig. 2).
//!
//! The CSR consists of the offset-pointer array, the neighbor-ID array
//! (*structure* data), and per-vertex data (*property* data, owned by the
//! workloads). Weighted graphs carry one weight per directed edge, stored
//! alongside the neighbor ID exactly as the paper describes ("each entry in
//! the neighbor ID array also includes the weight").

/// A directed graph in CSR form. Vertices are `0..num_vertices` as `u32`.
///
/// # Example
///
/// ```
/// use droplet_graph::CsrBuilder;
/// let g = CsrBuilder::new(3).edge(0, 1).edge(1, 2).edge(0, 2).build();
/// assert_eq!(g.out_degree(0), 2);
/// assert_eq!(g.neighbors(1), &[2]);
/// let t = g.transpose();
/// assert_eq!(t.neighbors(2), &[0, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    num_vertices: u32,
    offsets: Vec<u64>,
    targets: Vec<u32>,
    weights: Option<Vec<u32>>,
}

impl Csr {
    /// Number of vertices.
    pub fn num_vertices(&self) -> u32 {
        self.num_vertices
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> u64 {
        self.targets.len() as u64
    }

    /// Whether the graph carries edge weights.
    pub fn is_weighted(&self) -> bool {
        self.weights.is_some()
    }

    /// The offset-pointer array (`num_vertices + 1` entries).
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// The neighbor-ID array — the paper's *structure* data.
    pub fn targets(&self) -> &[u32] {
        &self.targets
    }

    /// Edge weights parallel to [`Csr::targets`], if weighted.
    pub fn weights(&self) -> Option<&[u32]> {
        self.weights.as_deref()
    }

    /// Out-degree of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn out_degree(&self, u: u32) -> u64 {
        let u = u as usize;
        self.offsets[u + 1] - self.offsets[u]
    }

    /// The edge-index range of `u`'s neighbor list within the structure array.
    pub fn edge_range(&self, u: u32) -> std::ops::Range<u64> {
        let u = u as usize;
        self.offsets[u]..self.offsets[u + 1]
    }

    /// Out-neighbors of `u`.
    pub fn neighbors(&self, u: u32) -> &[u32] {
        let r = self.edge_range(u);
        &self.targets[r.start as usize..r.end as usize]
    }

    /// Weights of `u`'s out-edges (parallel to [`Csr::neighbors`]).
    ///
    /// # Panics
    ///
    /// Panics if the graph is unweighted.
    pub fn edge_weights(&self, u: u32) -> &[u32] {
        let r = self.edge_range(u);
        &self.weights.as_ref().expect("unweighted graph")[r.start as usize..r.end as usize]
    }

    /// Builds the transpose (all edges reversed), preserving weights.
    pub fn transpose(&self) -> Csr {
        let n = self.num_vertices as usize;
        let mut counts = vec![0u64; n + 1];
        for &v in &self.targets {
            counts[v as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut targets = vec![0u32; self.targets.len()];
        let mut weights = self
            .weights
            .as_ref()
            .map(|_| vec![0u32; self.targets.len()]);
        for u in 0..self.num_vertices {
            for i in self.edge_range(u) {
                let v = self.targets[i as usize] as usize;
                let slot = cursor[v] as usize;
                cursor[v] += 1;
                targets[slot] = u;
                if let (Some(w), Some(sw)) = (weights.as_mut(), self.weights.as_ref()) {
                    w[slot] = sw[i as usize];
                }
            }
        }
        Csr {
            num_vertices: self.num_vertices,
            offsets,
            targets,
            weights,
        }
    }

    /// Average out-degree.
    pub fn avg_degree(&self) -> f64 {
        if self.num_vertices == 0 {
            0.0
        } else {
            self.num_edges() as f64 / f64::from(self.num_vertices)
        }
    }
}

/// Incremental builder that sorts and assembles a [`Csr`].
///
/// Edges may be added in any order; the builder sorts by (source, insertion
/// order) using a counting pass, so construction is O(V + E).
#[derive(Debug, Clone)]
pub struct CsrBuilder {
    num_vertices: u32,
    edges: Vec<(u32, u32)>,
    weights: Option<Vec<u32>>,
    dedup: bool,
}

impl CsrBuilder {
    /// Starts a builder for a graph with `num_vertices` vertices.
    pub fn new(num_vertices: u32) -> Self {
        CsrBuilder {
            num_vertices,
            edges: Vec::new(),
            weights: None,
            dedup: false,
        }
    }

    /// Pre-allocates room for `n` edges.
    pub fn with_capacity(num_vertices: u32, n: usize) -> Self {
        let mut b = CsrBuilder::new(num_vertices);
        b.edges.reserve(n);
        b
    }

    /// Adds a directed edge `u -> v`.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range, or if weighted edges were
    /// previously added.
    pub fn edge(mut self, u: u32, v: u32) -> Self {
        self.push_edge(u, v);
        self
    }

    /// Adds a directed edge (non-consuming form for loops).
    pub fn push_edge(&mut self, u: u32, v: u32) {
        assert!(
            u < self.num_vertices && v < self.num_vertices,
            "edge out of range"
        );
        assert!(
            self.weights.is_none(),
            "mixing weighted and unweighted edges"
        );
        self.edges.push((u, v));
    }

    /// Adds a weighted directed edge.
    pub fn push_weighted_edge(&mut self, u: u32, v: u32, w: u32) {
        assert!(
            u < self.num_vertices && v < self.num_vertices,
            "edge out of range"
        );
        assert!(
            self.edges.len() == self.weights.as_ref().map_or(0, Vec::len),
            "mixing weighted and unweighted edges"
        );
        self.edges.push((u, v));
        self.weights.get_or_insert_with(Vec::new).push(w);
    }

    /// Requests removal of duplicate (u, v) pairs and self-loops at build
    /// time (keeping the first weight seen for a duplicate).
    pub fn dedup(mut self) -> Self {
        self.dedup = true;
        self
    }

    /// Assembles the CSR.
    pub fn build(self) -> Csr {
        let n = self.num_vertices as usize;
        let CsrBuilder {
            num_vertices,
            mut edges,
            mut weights,
            dedup,
        } = self;
        if dedup {
            // Sort by (u, v) carrying weights along, then retain uniques.
            let mut idx: Vec<u32> = (0..edges.len() as u32).collect();
            idx.sort_unstable_by_key(|&i| edges[i as usize]);
            let mut new_edges = Vec::with_capacity(edges.len());
            let mut new_weights = weights.as_ref().map(|_| Vec::with_capacity(edges.len()));
            let mut last: Option<(u32, u32)> = None;
            for &i in &idx {
                let e = edges[i as usize];
                if e.0 == e.1 || last == Some(e) {
                    continue;
                }
                last = Some(e);
                new_edges.push(e);
                if let (Some(nw), Some(w)) = (new_weights.as_mut(), weights.as_ref()) {
                    nw.push(w[i as usize]);
                }
            }
            edges = new_edges;
            weights = new_weights;
        }
        let mut counts = vec![0u64; n + 1];
        for &(u, _) in &edges {
            counts[u as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut targets = vec![0u32; edges.len()];
        let mut out_weights = weights.as_ref().map(|_| vec![0u32; edges.len()]);
        for (i, &(u, v)) in edges.iter().enumerate() {
            let slot = cursor[u as usize] as usize;
            cursor[u as usize] += 1;
            targets[slot] = v;
            if let (Some(ow), Some(w)) = (out_weights.as_mut(), weights.as_ref()) {
                ow[slot] = w[i];
            }
        }
        Csr {
            num_vertices,
            offsets,
            targets,
            weights: out_weights,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_sorted_adjacency() {
        let g = CsrBuilder::new(4)
            .edge(2, 3)
            .edge(0, 1)
            .edge(0, 3)
            .edge(0, 2)
            .build();
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbors(0), &[1, 3, 2]); // insertion order within u
        assert_eq!(g.neighbors(1), &[] as &[u32]);
        assert_eq!(g.neighbors(2), &[3]);
        assert_eq!(g.out_degree(0), 3);
        assert_eq!(g.offsets(), &[0, 3, 3, 4, 4]);
    }

    #[test]
    fn weighted_edges_travel_with_targets() {
        let mut b = CsrBuilder::new(3);
        b.push_weighted_edge(0, 2, 10);
        b.push_weighted_edge(0, 1, 20);
        b.push_weighted_edge(2, 0, 30);
        let g = b.build();
        assert!(g.is_weighted());
        assert_eq!(g.neighbors(0), &[2, 1]);
        assert_eq!(g.edge_weights(0), &[10, 20]);
        assert_eq!(g.edge_weights(2), &[30]);
    }

    #[test]
    fn dedup_removes_duplicates_and_self_loops() {
        let g = CsrBuilder::new(3)
            .edge(0, 1)
            .edge(0, 1)
            .edge(1, 1)
            .edge(1, 0)
            .dedup()
            .build();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0]);
    }

    #[test]
    fn transpose_reverses_edges() {
        let g = CsrBuilder::new(4).edge(0, 2).edge(1, 2).edge(2, 3).build();
        let t = g.transpose();
        assert_eq!(t.neighbors(2), &[0, 1]);
        assert_eq!(t.neighbors(3), &[2]);
        assert_eq!(t.neighbors(0), &[] as &[u32]);
        assert_eq!(t.num_edges(), g.num_edges());
    }

    #[test]
    fn transpose_preserves_weights() {
        let mut b = CsrBuilder::new(3);
        b.push_weighted_edge(0, 2, 7);
        b.push_weighted_edge(1, 2, 9);
        let t = b.build().transpose();
        assert_eq!(t.neighbors(2), &[0, 1]);
        assert_eq!(t.edge_weights(2), &[7, 9]);
    }

    #[test]
    fn double_transpose_is_identity_for_sorted_graphs() {
        let g = CsrBuilder::new(5)
            .edge(0, 1)
            .edge(0, 4)
            .edge(2, 3)
            .edge(4, 0)
            .dedup()
            .build();
        assert_eq!(g.transpose().transpose(), g);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_edges() {
        let _ = CsrBuilder::new(2).edge(0, 2);
    }

    #[test]
    fn avg_degree() {
        let g = CsrBuilder::new(4).edge(0, 1).edge(1, 2).build();
        assert!((g.avg_degree() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_graph() {
        let g = CsrBuilder::new(0).build();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.avg_degree(), 0.0);
    }
}
