//! Degree statistics for dataset summaries (paper Table III analogue).

use crate::csr::Csr;

/// Summary of a graph's out-degree distribution.
///
/// # Example
///
/// ```
/// use droplet_graph::{CsrBuilder, DegreeStats};
/// let g = CsrBuilder::new(3).edge(0, 1).edge(0, 2).edge(1, 2).build();
/// let s = DegreeStats::of(&g);
/// assert_eq!(s.max, 2);
/// assert_eq!(s.min, 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    /// Smallest out-degree.
    pub min: u64,
    /// Largest out-degree.
    pub max: u64,
    /// Mean out-degree.
    pub mean: f64,
    /// 99th-percentile out-degree.
    pub p99: u64,
    /// Number of vertices with no out-edges.
    pub zero_degree: u64,
}

impl DegreeStats {
    /// Computes degree statistics of `g`.
    pub fn of(g: &Csr) -> DegreeStats {
        let n = g.num_vertices();
        if n == 0 {
            return DegreeStats {
                min: 0,
                max: 0,
                mean: 0.0,
                p99: 0,
                zero_degree: 0,
            };
        }
        let mut degrees: Vec<u64> = (0..n).map(|u| g.out_degree(u)).collect();
        degrees.sort_unstable();
        let idx99 = ((n as u64 - 1) * 99 / 100) as usize;
        DegreeStats {
            min: degrees[0],
            max: *degrees.last().unwrap(),
            mean: g.avg_degree(),
            p99: degrees[idx99],
            zero_degree: degrees.iter().take_while(|&&d| d == 0).count() as u64,
        }
    }
}

impl std::fmt::Display for DegreeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "degree min {} / mean {:.2} / p99 {} / max {} (zero-degree: {})",
            self.min, self.mean, self.p99, self.max, self.zero_degree
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrBuilder;

    #[test]
    fn stats_on_star_graph() {
        let mut b = CsrBuilder::new(10);
        for v in 1..10 {
            b.push_edge(0, v);
        }
        let s = DegreeStats::of(&b.build());
        assert_eq!(s.max, 9);
        assert_eq!(s.min, 0);
        assert_eq!(s.zero_degree, 9);
        assert!((s.mean - 0.9).abs() < 1e-12);
    }

    #[test]
    fn stats_on_empty_graph() {
        let s = DegreeStats::of(&CsrBuilder::new(0).build());
        assert_eq!(s.max, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn display_is_nonempty() {
        let g = CsrBuilder::new(2).edge(0, 1).build();
        assert!(DegreeStats::of(&g).to_string().contains("mean"));
    }
}
