//! Miss-status-holding-register (MSHR) occupancy model.
//!
//! The demand path needs the MSHR slot that frees earliest: if every slot is
//! still busy at issue time, the access stalls until the earliest
//! `free_at`. Slots are interchangeable — only the *multiset* of free times
//! matters — so the file is a binary min-heap over `Cycle`: the earliest
//! free time is `peek` (O(1)) and re-arming the chosen slot with the new
//! completion time is a replace-root sift-down (O(log n)). The previous
//! implementation ran a linear `min_by_key` scan over a `Vec<Cycle>` on
//! every access, which at 16–64 entries was a measurable slice of the
//! per-op demand path.
//!
//! Because `min_by_key` also resolves ties by scan order while a heap does
//! not, correctness relies on slot interchangeability: any slot with the
//! minimum free time yields the same stall and the same re-armed multiset.

use droplet_trace::Cycle;

/// A fixed-capacity file of MSHR slots, keyed only by when each frees up.
///
/// # Example
///
/// ```
/// use droplet_cpu::MshrFile;
/// let mut mshr = MshrFile::new(2);
/// assert_eq!(mshr.earliest_free(), 0); // all slots idle
/// mshr.allocate(100);
/// mshr.allocate(50);
/// assert_eq!(mshr.earliest_free(), 50); // both busy; 50 frees first
/// ```
#[derive(Debug, Clone)]
pub struct MshrFile {
    /// Min-heap over free times; `heap[0]` is the earliest.
    heap: Vec<Cycle>,
}

impl MshrFile {
    /// Creates a file of `entries` slots, all free at cycle 0.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0, "MSHR file needs at least one entry");
        MshrFile {
            heap: vec![0; entries],
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the file has no slots (never true for a constructed file).
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The earliest cycle at which any slot is free. An access issuing at
    /// `t < earliest_free()` stalls until then.
    pub fn earliest_free(&self) -> Cycle {
        self.heap[0]
    }

    /// Claims the earliest-free slot and re-arms it to free at
    /// `complete_at`: replace-root followed by one sift-down.
    pub fn allocate(&mut self, complete_at: Cycle) {
        self.heap[0] = complete_at;
        let mut i = 0;
        loop {
            let l = 2 * i + 1;
            let r = l + 1;
            let mut smallest = i;
            if l < self.heap.len() && self.heap[l] < self.heap[smallest] {
                smallest = l;
            }
            if r < self.heap.len() && self.heap[r] < self.heap[smallest] {
                smallest = r;
            }
            if smallest == i {
                return;
            }
            self.heap.swap(i, smallest);
            i = smallest;
        }
    }

    /// Number of slots still busy at cycle `now` (for occupancy stats).
    pub fn busy_at(&self, now: Cycle) -> usize {
        self.heap.iter().filter(|&&c| c > now).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_file_is_all_free() {
        let m = MshrFile::new(4);
        assert_eq!(m.len(), 4);
        assert!(!m.is_empty());
        assert_eq!(m.earliest_free(), 0);
        assert_eq!(m.busy_at(0), 0);
    }

    #[test]
    fn stalls_until_earliest_completion() {
        let mut m = MshrFile::new(2);
        m.allocate(100);
        m.allocate(70);
        // Both busy: next access can start no earlier than cycle 70.
        assert_eq!(m.earliest_free(), 70);
        m.allocate(200); // claims the slot freeing at 70
        assert_eq!(m.earliest_free(), 100);
        assert_eq!(m.busy_at(150), 1);
        assert_eq!(m.busy_at(250), 0);
    }

    /// The heap must always agree with a naive linear-scan model on the
    /// earliest free time, for an adversarial allocation pattern.
    #[test]
    fn matches_linear_scan_model() {
        let mut heap = MshrFile::new(8);
        let mut model: Vec<Cycle> = vec![0; 8];
        // Deterministic pseudo-random completion times.
        let mut x: u64 = 0x243F_6A88_85A3_08D3;
        for _ in 0..1000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let complete_at = x % 10_000;
            assert_eq!(heap.earliest_free(), *model.iter().min().unwrap());
            heap.allocate(complete_at);
            let (idx, _) = model.iter().enumerate().min_by_key(|(_, &c)| c).unwrap();
            model[idx] = complete_at;
        }
        assert_eq!(heap.earliest_free(), *model.iter().min().unwrap());
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_entries_rejected() {
        let _ = MshrFile::new(0);
    }
}
