//! The event-driven out-of-order core timing model.
//!
//! Instructions are accounted in *slot units* of `1/width` cycle. Each
//! [`MemOp`] plus its preceding compute instructions forms a block that must
//! clear four constraints: dispatch bandwidth, ROB occupancy (the
//! instruction `window` back must have retired), load/store queue occupancy,
//! and — for loads — the completion of the producer load whose value forms
//! this load's address. The last constraint is what makes the paper's
//! short producer→consumer chains (Observation #2) visible as lost MLP.

use crate::mlp::{mlp_of_intervals, MlpStats};
use crate::plan::BlockPlan;
use crate::stack::CycleStack;
use droplet_trace::{Cycle, MemOp, OpId};

/// Which level of the hierarchy serviced an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServiceLevel {
    /// Private L1 data cache.
    L1,
    /// Private L2 cache.
    L2,
    /// Shared last-level cache.
    L3,
    /// Off-chip DRAM.
    Dram,
}

impl ServiceLevel {
    /// All levels, nearest first.
    pub const ALL: [ServiceLevel; 4] = [
        ServiceLevel::L1,
        ServiceLevel::L2,
        ServiceLevel::L3,
        ServiceLevel::Dram,
    ];

    /// Stable index for per-level stat arrays.
    pub const fn index(self) -> usize {
        match self {
            ServiceLevel::L1 => 0,
            ServiceLevel::L2 => 1,
            ServiceLevel::L3 => 2,
            ServiceLevel::Dram => 3,
        }
    }
}

impl std::fmt::Display for ServiceLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ServiceLevel::L1 => "L1",
            ServiceLevel::L2 => "L2",
            ServiceLevel::L3 => "L3",
            ServiceLevel::Dram => "DRAM",
        })
    }
}

/// Completion information for one demand access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResponse {
    /// Cycle the data is available to the core.
    pub complete_at: Cycle,
    /// The level that serviced the access.
    pub level: ServiceLevel,
}

/// The memory system the core issues demand accesses into.
pub trait MemorySystem {
    /// Performs the demand access of `op` (trace position `id`) at cycle
    /// `now`, returning when and where it completes.
    fn access(&mut self, op: &MemOp, id: OpId, now: Cycle) -> AccessResponse;

    /// Attempts the batched hot lane for `op`: service the access through
    /// a branch-light fast path (same-page TLB memo + first-level hit,
    /// no pending sideband work), bypassing full demand dispatch.
    ///
    /// The contract (DESIGN.md §17): `Some(response)` must be
    /// bit-identical — timing, statistics, and every state side effect —
    /// to what [`MemorySystem::access`] would have produced for the same
    /// call; `None` means the op is not hot-eligible and **no state was
    /// touched**, so the caller must route the op through `access`
    /// unchanged. The default declines everything, which keeps plain
    /// memory models correct without opting in.
    #[inline]
    fn access_hot(&mut self, op: &MemOp, id: OpId, now: Cycle) -> Option<AccessResponse> {
        let _ = (op, id, now);
        None
    }

    /// Called once when the measurement window opens, so implementations
    /// can reset their statistics while keeping warmed-up state.
    fn warmup_done(&mut self, now: Cycle);
}

/// Core parameters (paper Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreConfig {
    /// Reorder-buffer size in instructions.
    pub rob: u32,
    /// Load-queue entries.
    pub load_queue: u32,
    /// Store-queue entries.
    pub store_queue: u32,
    /// Dispatch = issue = commit width.
    pub width: u32,
}

impl CoreConfig {
    /// Table I: ROB 128, LQ 48, SQ 32, width 4.
    pub fn baseline() -> Self {
        CoreConfig {
            rob: 128,
            load_queue: 48,
            store_queue: 32,
            width: 4,
        }
    }

    /// The Fig. 3 experiment: an instruction window scaled by `factor`
    /// (ROB, LQ and SQ all scale together).
    #[must_use]
    pub fn scaled_window(mut self, factor: u32) -> Self {
        self.rob *= factor;
        self.load_queue *= factor;
        self.store_queue *= factor;
        self
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self::baseline()
    }
}

/// Results of one core run (measurement window only).
#[derive(Debug, Clone)]
pub struct CoreResult {
    /// Cycles elapsed in the measurement window.
    pub cycles: Cycle,
    /// Instructions retired in the window (memory + compute).
    pub instructions: u64,
    /// Memory operations executed in the window.
    pub memops: u64,
    /// Loads among them.
    pub loads: u64,
    /// Demand accesses serviced per level.
    pub serviced_by: [u64; 4],
    /// Cycle-stack attribution.
    pub cycle_stack: CycleStack,
    /// DRAM memory-level parallelism.
    pub mlp: MlpStats,
}

impl CoreResult {
    /// Instructions per cycle over the window.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }
}

/// History ring length (must exceed any producer distance the ROB allows).
/// A power of two so ring indices reduce with a mask instead of a modulo.
const HIST: usize = 8192;
const HIST_MASK: usize = HIST - 1;

/// The core simulator.
#[derive(Debug, Clone)]
pub struct CoreSim {
    cfg: CoreConfig,
}

impl CoreSim {
    /// Creates a core with the given parameters.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero or the ROB exceeds the history ring.
    pub fn new(cfg: CoreConfig) -> Self {
        let _ = CoreEngine::new(cfg); // validate
        CoreSim { cfg }
    }

    /// The configured parameters.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Replays `trace` against `mem`. The first `warmup_ops` operations warm
    /// the memory system; statistics cover only the remainder (`warmup_ops`
    /// saturates at the trace length, yielding an empty window).
    pub fn run(
        &self,
        trace: &[MemOp],
        mem: &mut impl MemorySystem,
        warmup_ops: usize,
    ) -> CoreResult {
        let mut engine = CoreEngine::new(self.cfg);
        let split = warmup_ops.min(trace.len());
        engine.warmup(&trace[..split], mem);
        engine.measure(&trace[split..], mem)
    }
}

/// Open measurement window: the accumulators of one measured region.
///
/// Created by [`CoreEngine::open_window`] (which also signals
/// [`MemorySystem::warmup_done`]), filled by [`CoreEngine::measure_chunk`],
/// and turned into a [`CoreResult`] by [`CoreEngine::finish`]. The split
/// exists so callers that need op-by-op control — the conformance lockstep
/// differ stepping a forked run against a from-scratch run — can drive the
/// same code path `measure` uses.
#[derive(Debug, Clone)]
pub struct MeasureState {
    stack: CycleStack,
    dram_intervals: Vec<(Cycle, Cycle)>,
    serviced_by: [u64; 4],
    memops: u64,
    loads: u64,
    window_start_cycle: Cycle,
    window_start_ii: u64,
}

/// The complete core-model state of a run in flight: the slot-unit clocks,
/// the ROB/LQ/SQ retire-time rings, and the op-history rings the producer
/// dependency reads. `Clone` is a faithful snapshot — forked sweeps clone
/// the engine at the warm-up boundary and resume each fork independently,
/// which is bit-identical to re-running the prefix because the engine's
/// state is a pure function of the ops applied so far.
#[derive(Debug, Clone)]
pub struct CoreEngine {
    cfg: CoreConfig,
    /// Slot-unit clocks (1 slot = 1/width cycle).
    disp_units: u64,
    ret_units: u64,
    /// Recent-op history: cumulative instruction index at block end,
    /// retire time (cycles), completion time (cycles). Boxed so the engine
    /// is cheap to move; indexed by global op position & [`HIST_MASK`].
    end_ii: Box<[u64; HIST]>,
    ret_time: Box<[u64; HIST]>,
    complete: Box<[u64; HIST]>,
    /// Two-pointer for the ROB constraint.
    rob_ptr: usize,
    /// Load/store queue retire-time rings.
    load_ret: Vec<u64>,
    store_ret: Vec<u64>,
    n_loads: usize,
    n_stores: usize,
    /// Ring cursors maintained incrementally (== n_loads % lq etc.) so
    /// the per-op queue probes never pay a runtime modulo.
    load_pos: usize,
    store_pos: usize,
    /// Cumulative instruction count.
    ii: u64,
    /// Global op position (continues across warmup/measure spans).
    pos: usize,
    /// Reusable span plan for the batched lane (carries the trailing page
    /// across chunks so chunk boundaries don't break same-page runs).
    plan: BlockPlan,
}

impl CoreEngine {
    /// Creates an idle engine.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero or the ROB exceeds the history ring.
    pub fn new(cfg: CoreConfig) -> Self {
        assert!(
            cfg.rob > 0 && cfg.load_queue > 0 && cfg.store_queue > 0 && cfg.width > 0,
            "degenerate core config"
        );
        assert!((cfg.rob as usize) < HIST, "ROB larger than history ring");
        CoreEngine {
            cfg,
            disp_units: 0,
            ret_units: 0,
            end_ii: Box::new([0u64; HIST]),
            ret_time: Box::new([0u64; HIST]),
            complete: Box::new([0u64; HIST]),
            rob_ptr: 0,
            load_ret: vec![0u64; cfg.load_queue as usize],
            store_ret: vec![0u64; cfg.store_queue as usize],
            n_loads: 0,
            n_stores: 0,
            load_pos: 0,
            store_pos: 0,
            ii: 0,
            pos: 0,
            plan: BlockPlan::new(),
        }
    }

    /// The configured parameters.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// The engine's clocks `(dispatch slot-units, retire slot-units,
    /// cumulative instructions)` — a cheap fingerprint the conformance
    /// differ compares op-by-op between forked and from-scratch runs.
    pub fn clocks(&self) -> (u64, u64, u64) {
        (self.disp_units, self.ret_units, self.ii)
    }

    /// Slot units → cycles on the retire clock.
    fn div_w_cfg(&self, units: u64) -> Cycle {
        let w = u64::from(self.cfg.width);
        if w.is_power_of_two() {
            units >> w.trailing_zeros()
        } else {
            units / w
        }
    }

    /// Runs `ops` without measurement (the warm-up prefix).
    pub fn warmup(&mut self, ops: &[MemOp], mem: &mut impl MemorySystem) {
        self.run_span_batched(ops, mem, None);
    }

    /// [`CoreEngine::warmup`] forced down the scalar reference lane (no
    /// span plan, no [`MemorySystem::access_hot`]). Exists so the digest
    /// and conformance suites can difference the two lanes; results are
    /// bit-identical by contract.
    pub fn warmup_scalar(&mut self, ops: &[MemOp], mem: &mut impl MemorySystem) {
        self.run_span(ops, mem, None);
    }

    /// Opens the measurement window at the engine's current clock and
    /// signals [`MemorySystem::warmup_done`]. The boundary passed down is
    /// the retire clock — the same clock `window_start_cycle` (and thus
    /// [`CoreResult::cycles`]) is measured on, so memory-side utilization
    /// windows line up with the core's measurement window.
    pub fn open_window(&self, mem: &mut impl MemorySystem) -> MeasureState {
        let window_start_cycle = self.div_w_cfg(self.ret_units);
        mem.warmup_done(window_start_cycle);
        MeasureState {
            stack: CycleStack::default(),
            dram_intervals: Vec::new(),
            serviced_by: [0u64; 4],
            memops: 0,
            loads: 0,
            window_start_cycle,
            window_start_ii: self.ii,
        }
    }

    /// Runs `ops` inside an open measurement window.
    pub fn measure_chunk(
        &mut self,
        ops: &[MemOp],
        mem: &mut impl MemorySystem,
        m: &mut MeasureState,
    ) {
        self.run_span_batched(ops, mem, Some(m));
    }

    /// [`CoreEngine::measure_chunk`] forced down the scalar reference
    /// lane; see [`CoreEngine::warmup_scalar`].
    pub fn measure_chunk_scalar(
        &mut self,
        ops: &[MemOp],
        mem: &mut impl MemorySystem,
        m: &mut MeasureState,
    ) {
        self.run_span(ops, mem, Some(m));
    }

    /// Closes the window and assembles the measured result.
    pub fn finish(&self, m: MeasureState) -> CoreResult {
        let end_cycle = self.div_w_cfg(self.ret_units);
        CoreResult {
            cycles: end_cycle.saturating_sub(m.window_start_cycle),
            instructions: self.ii - m.window_start_ii,
            memops: m.memops,
            loads: m.loads,
            serviced_by: m.serviced_by,
            cycle_stack: m.stack,
            mlp: mlp_of_intervals(&m.dram_intervals),
        }
    }

    /// Opens the window, measures `ops`, and closes the window.
    pub fn measure(&mut self, ops: &[MemOp], mem: &mut impl MemorySystem) -> CoreResult {
        let mut m = self.open_window(mem);
        self.measure_chunk(ops, mem, &mut m);
        self.finish(m)
    }

    /// The timing loop shared by warm-up and measurement; `meas` carries
    /// the open window's accumulators (None during warm-up — one predicted
    /// branch per op, like the `measuring` flag it replaces).
    fn run_span(
        &mut self,
        ops: &[MemOp],
        mem: &mut impl MemorySystem,
        mut meas: Option<&mut MeasureState>,
    ) {
        let w = u64::from(self.cfg.width);
        let rob = u64::from(self.cfg.rob);
        // Slot-unit → cycle conversions happen several times per op, and a
        // division by a runtime value costs tens of cycles on its own. Real
        // widths are powers of two, so precompute the shift; the divide
        // stays as the exact fallback for odd widths.
        let wshift = if w.is_power_of_two() {
            Some(w.trailing_zeros())
        } else {
            None
        };
        let div_w = |units: u64| match wshift {
            Some(s) => units >> s,
            None => units / w,
        };

        // Hoist the engine state into locals for the hot loop.
        let mut disp_units = self.disp_units;
        let mut ret_units = self.ret_units;
        let end_ii = &mut *self.end_ii;
        let ret_time = &mut *self.ret_time;
        let complete = &mut *self.complete;
        let mut rob_ptr = self.rob_ptr;
        let lq = self.cfg.load_queue as usize;
        let sq = self.cfg.store_queue as usize;
        let load_ret = &mut self.load_ret[..];
        let store_ret = &mut self.store_ret[..];
        let mut n_loads = self.n_loads;
        let mut n_stores = self.n_stores;
        let mut load_pos = self.load_pos;
        let mut store_pos = self.store_pos;
        let mut ii = self.ii;
        let base = self.pos;

        for (k, op) in ops.iter().enumerate() {
            let i = base + k;
            let block = 1 + u64::from(op.pre_compute());
            let ii_start = ii;
            ii += block;

            // --- Dispatch constraints ---
            let mut floor_units = disp_units + block;
            // ROB: instruction (ii_start - rob) must have retired.
            if ii_start >= rob {
                let target = ii_start - rob;
                while rob_ptr < i && end_ii[(rob_ptr + 1) & HIST_MASK] <= target {
                    rob_ptr += 1;
                }
                if i > 0 && end_ii[rob_ptr & HIST_MASK] <= target {
                    floor_units = floor_units.max(ret_time[rob_ptr & HIST_MASK] * w + block);
                }
            }
            // LQ/SQ occupancy.
            if op.is_load() {
                if n_loads >= lq {
                    floor_units = floor_units.max(load_ret[load_pos] * w + block);
                }
            } else if n_stores >= sq {
                floor_units = floor_units.max(store_ret[store_pos] * w + block);
            }
            disp_units = floor_units;
            let disp_cycle = div_w(disp_units);

            // --- Issue: wait for the producer's value (address dependency) ---
            let mut issue_at = disp_cycle;
            if let Some(back) = op.producer_back() {
                let back = back as usize;
                if back <= i && back < HIST {
                    let pc = complete[(i - back) & HIST_MASK];
                    issue_at = issue_at.max(pc);
                }
            }

            // --- Execute ---
            let (complete_at, level) = if op.is_load() {
                let resp = mem.access(op, OpId(i as u64), issue_at);
                (resp.complete_at.max(issue_at + 1), Some(resp.level))
            } else {
                // Stores drain from the store buffer off the critical path,
                // but still update the memory system's state.
                let resp = mem.access(op, OpId(i as u64), issue_at);
                let _ = resp;
                (issue_at + 1, None)
            };

            // --- Retire (in order, width-limited) ---
            let before = ret_units;
            ret_units = (ret_units + block).max(complete_at * w);
            let rt = div_w(ret_units);

            // --- Bookkeeping rings ---
            let h = i & HIST_MASK;
            end_ii[h] = ii;
            ret_time[h] = rt;
            complete[h] = complete_at;
            if op.is_load() {
                load_ret[load_pos] = rt;
                n_loads += 1;
                load_pos += 1;
                if load_pos == lq {
                    load_pos = 0;
                }
            } else {
                store_ret[store_pos] = rt;
                n_stores += 1;
                store_pos += 1;
                if store_pos == sq {
                    store_pos = 0;
                }
            }

            // --- Measurement ---
            if let Some(m) = meas.as_deref_mut() {
                m.memops += 1;
                let elapsed = ret_units - before;
                let excess = elapsed.saturating_sub(block);
                m.stack.base += block;
                match level {
                    Some(l) => {
                        if op.is_load() {
                            m.loads += 1;
                            m.serviced_by[l.index()] += 1;
                            if l == ServiceLevel::Dram {
                                m.dram_intervals.push((issue_at, complete_at));
                            }
                        }
                        match l {
                            ServiceLevel::L1 => m.stack.l1 += excess,
                            ServiceLevel::L2 => m.stack.l2 += excess,
                            ServiceLevel::L3 => m.stack.l3 += excess,
                            ServiceLevel::Dram => m.stack.dram += excess,
                        }
                    }
                    None => m.stack.other += excess,
                }
            }
        }

        // Write the hoisted state back.
        self.disp_units = disp_units;
        self.ret_units = ret_units;
        self.rob_ptr = rob_ptr;
        self.n_loads = n_loads;
        self.n_stores = n_stores;
        self.load_pos = load_pos;
        self.store_pos = store_pos;
        self.ii = ii;
        self.pos = base + ops.len();
    }

    /// The batched lane: identical per-op arithmetic to [`run_span`]
    /// (which stays as the scalar reference lane), organized as span-sized
    /// inner loops over a precomputed [`BlockPlan`] so the access-kind
    /// branch hoists out of the loop and eligible ops are offered to the
    /// memory system's hot lane ([`MemorySystem::access_hot`]) before
    /// paying full dispatch. Bit-identity between the two lanes is the
    /// hot-lane contract, enforced by the `demand_path_digests`
    /// batched-vs-scalar suite and the conformance hot-lane harness.
    ///
    /// [`run_span`]: CoreEngine::run_span
    fn run_span_batched(
        &mut self,
        ops: &[MemOp],
        mem: &mut impl MemorySystem,
        mut meas: Option<&mut MeasureState>,
    ) {
        let mut plan = std::mem::take(&mut self.plan);
        plan.compute(ops);
        if plan.is_degenerate() || plan.hot_candidates() == 0 {
            // The block has no page runs at all, so the plan cannot offer
            // a single hot probe: run the plain scalar loop and skip the
            // span bookkeeping (identical results either way — the hot
            // lane is exact — this only avoids paying for an empty plan).
            self.plan = plan;
            return self.run_span(ops, mem, meas);
        }

        let w = u64::from(self.cfg.width);
        let rob = u64::from(self.cfg.rob);
        let wshift = if w.is_power_of_two() {
            Some(w.trailing_zeros())
        } else {
            None
        };
        let div_w = |units: u64| match wshift {
            Some(s) => units >> s,
            None => units / w,
        };

        // Hoist the engine state into locals for the hot loop.
        let mut disp_units = self.disp_units;
        let mut ret_units = self.ret_units;
        let end_ii = &mut *self.end_ii;
        let ret_time = &mut *self.ret_time;
        let complete = &mut *self.complete;
        let mut rob_ptr = self.rob_ptr;
        let lq = self.cfg.load_queue as usize;
        let sq = self.cfg.store_queue as usize;
        let load_ret = &mut self.load_ret[..];
        let store_ret = &mut self.store_ret[..];
        let mut n_loads = self.n_loads;
        let mut n_stores = self.n_stores;
        let mut load_pos = self.load_pos;
        let mut store_pos = self.store_pos;
        let mut ii = self.ii;
        let base = self.pos;

        let mut k = 0usize;
        for span in plan.spans() {
            let span_ops = &ops[k..k + span.len as usize];
            // Loop-invariant over the span: the compiler hoists the kind
            // branches the scalar lane re-evaluates per op.
            let is_load = span.is_load;
            // Whether the same-page memo may already match: true for every
            // op after the span's first (the first op primes it through
            // either lane), and for the first op iff the span continues
            // the previous op's page. A `false` skips a hot-lane probe
            // that is guaranteed to decline.
            let mut try_hot = span.cont_page;
            for (j, op) in span_ops.iter().enumerate() {
                let i = base + k + j;
                let block = 1 + u64::from(op.pre_compute());
                let ii_start = ii;
                ii += block;

                // --- Dispatch constraints ---
                let mut floor_units = disp_units + block;
                if ii_start >= rob {
                    let target = ii_start - rob;
                    while rob_ptr < i && end_ii[(rob_ptr + 1) & HIST_MASK] <= target {
                        rob_ptr += 1;
                    }
                    if i > 0 && end_ii[rob_ptr & HIST_MASK] <= target {
                        floor_units = floor_units.max(ret_time[rob_ptr & HIST_MASK] * w + block);
                    }
                }
                if is_load {
                    if n_loads >= lq {
                        floor_units = floor_units.max(load_ret[load_pos] * w + block);
                    }
                } else if n_stores >= sq {
                    floor_units = floor_units.max(store_ret[store_pos] * w + block);
                }
                disp_units = floor_units;
                let disp_cycle = div_w(disp_units);

                // --- Issue: wait for the producer's value ---
                let mut issue_at = disp_cycle;
                if let Some(back) = op.producer_back() {
                    let back = back as usize;
                    if back <= i && back < HIST {
                        let pc = complete[(i - back) & HIST_MASK];
                        issue_at = issue_at.max(pc);
                    }
                }

                // --- Execute (hot lane first, full dispatch on decline) ---
                let resp = if try_hot {
                    match mem.access_hot(op, OpId(i as u64), issue_at) {
                        Some(r) => r,
                        None => mem.access(op, OpId(i as u64), issue_at),
                    }
                } else {
                    mem.access(op, OpId(i as u64), issue_at)
                };
                try_hot = true;
                let (complete_at, level) = if is_load {
                    (resp.complete_at.max(issue_at + 1), Some(resp.level))
                } else {
                    // Stores drain from the store buffer off the critical
                    // path, but still update the memory system's state.
                    (issue_at + 1, None)
                };

                // --- Retire (in order, width-limited) ---
                let before = ret_units;
                ret_units = (ret_units + block).max(complete_at * w);
                let rt = div_w(ret_units);

                // --- Bookkeeping rings ---
                let h = i & HIST_MASK;
                end_ii[h] = ii;
                ret_time[h] = rt;
                complete[h] = complete_at;
                if is_load {
                    load_ret[load_pos] = rt;
                    n_loads += 1;
                    load_pos += 1;
                    if load_pos == lq {
                        load_pos = 0;
                    }
                } else {
                    store_ret[store_pos] = rt;
                    n_stores += 1;
                    store_pos += 1;
                    if store_pos == sq {
                        store_pos = 0;
                    }
                }

                // --- Measurement ---
                if let Some(m) = meas.as_deref_mut() {
                    m.memops += 1;
                    let elapsed = ret_units - before;
                    let excess = elapsed.saturating_sub(block);
                    m.stack.base += block;
                    match level {
                        Some(l) => {
                            m.loads += 1;
                            m.serviced_by[l.index()] += 1;
                            if l == ServiceLevel::Dram {
                                m.dram_intervals.push((issue_at, complete_at));
                            }
                            match l {
                                ServiceLevel::L1 => m.stack.l1 += excess,
                                ServiceLevel::L2 => m.stack.l2 += excess,
                                ServiceLevel::L3 => m.stack.l3 += excess,
                                ServiceLevel::Dram => m.stack.dram += excess,
                            }
                        }
                        None => m.stack.other += excess,
                    }
                }
            }
            k += span.len as usize;
        }

        // Write the hoisted state back.
        self.disp_units = disp_units;
        self.ret_units = ret_units;
        self.rob_ptr = rob_ptr;
        self.n_loads = n_loads;
        self.n_stores = n_stores;
        self.load_pos = load_pos;
        self.store_pos = store_pos;
        self.ii = ii;
        self.pos = base + ops.len();
        self.plan = plan;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use droplet_trace::{AccessKind, DataType, VirtAddr};

    /// Fixed-latency memory: loads to line < SPLIT hit L1, others go to DRAM.
    struct SplitMem {
        split: u64,
        dram_latency: u64,
        accesses: u64,
    }

    impl MemorySystem for SplitMem {
        fn access(&mut self, op: &MemOp, _id: OpId, now: Cycle) -> AccessResponse {
            self.accesses += 1;
            if op.addr().line_index() < self.split {
                AccessResponse {
                    complete_at: now + 4,
                    level: ServiceLevel::L1,
                }
            } else {
                AccessResponse {
                    complete_at: now + self.dram_latency,
                    level: ServiceLevel::Dram,
                }
            }
        }

        fn warmup_done(&mut self, _now: Cycle) {}
    }

    fn load(id: u64, line: u64, producer: Option<u64>, pre: u16) -> MemOp {
        MemOp::new(
            VirtAddr::new(line * 64),
            AccessKind::Load,
            DataType::Property,
            producer.map(OpId),
            OpId(id),
            pre,
        )
    }

    #[test]
    fn independent_dram_loads_overlap() {
        // 32 independent DRAM loads: MLP should be well above 1.
        let trace: Vec<MemOp> = (0..32).map(|i| load(i, 1000 + i, None, 0)).collect();
        let mut mem = SplitMem {
            split: 10,
            dram_latency: 200,
            accesses: 0,
        };
        let r = CoreSim::new(CoreConfig::baseline()).run(&trace, &mut mem, 0);
        assert!(r.mlp.avg_outstanding > 4.0, "mlp {}", r.mlp.avg_outstanding);
        // Far faster than serialized (32 × 200).
        assert!(r.cycles < 3200, "cycles {}", r.cycles);
        assert_eq!(r.serviced_by[ServiceLevel::Dram.index()], 32);
    }

    #[test]
    fn dependent_chains_serialize() {
        // Pairs: producer DRAM load → consumer DRAM load.
        let mut trace = Vec::new();
        for i in 0..16u64 {
            trace.push(load(2 * i, 1000 + 2 * i, None, 0));
            trace.push(load(2 * i + 1, 5000 + 2 * i, Some(2 * i), 0));
        }
        let mut mem = SplitMem {
            split: 10,
            dram_latency: 200,
            accesses: 0,
        };
        let dep = CoreSim::new(CoreConfig::baseline()).run(&trace, &mut mem, 0);

        // Same loads without the dependency links.
        let free: Vec<MemOp> = trace
            .iter()
            .enumerate()
            .map(|(i, op)| {
                MemOp::new(
                    op.addr(),
                    AccessKind::Load,
                    op.dtype(),
                    None,
                    OpId(i as u64),
                    0,
                )
            })
            .collect();
        let mut mem2 = SplitMem {
            split: 10,
            dram_latency: 200,
            accesses: 0,
        };
        let ind = CoreSim::new(CoreConfig::baseline()).run(&free, &mut mem2, 0);
        assert!(
            dep.cycles > ind.cycles + 150,
            "dependency must cost cycles: {} vs {}",
            dep.cycles,
            ind.cycles
        );
        assert!(dep.mlp.avg_outstanding < ind.mlp.avg_outstanding);
    }

    #[test]
    fn bigger_window_helps_independent_loads_but_not_chains() {
        // Long independent DRAM stream: window size gates MLP.
        let trace: Vec<MemOp> = (0..512).map(|i| load(i, 1000 + i, None, 0)).collect();
        let run = |cfg: CoreConfig| {
            let mut mem = SplitMem {
                split: 0,
                dram_latency: 300,
                accesses: 0,
            };
            CoreSim::new(cfg).run(&trace, &mut mem, 0)
        };
        let small = run(CoreConfig::baseline());
        let big = run(CoreConfig::baseline().scaled_window(4));
        assert!(
            big.cycles < small.cycles,
            "4X window should speed independent streams: {} vs {}",
            big.cycles,
            small.cycles
        );

        // Fully serialized chain: window size is irrelevant.
        let chain: Vec<MemOp> = (0..256)
            .map(|i| load(i, 1000 + i, if i == 0 { None } else { Some(i - 1) }, 0))
            .collect();
        let run_chain = |cfg: CoreConfig| {
            let mut mem = SplitMem {
                split: 0,
                dram_latency: 300,
                accesses: 0,
            };
            CoreSim::new(cfg).run(&chain, &mut mem, 0)
        };
        let small_c = run_chain(CoreConfig::baseline());
        let big_c = run_chain(CoreConfig::baseline().scaled_window(4));
        let diff = small_c.cycles.abs_diff(big_c.cycles);
        assert!(
            (diff as f64) < 0.02 * small_c.cycles as f64,
            "chains should not benefit: {} vs {}",
            small_c.cycles,
            big_c.cycles
        );
    }

    #[test]
    fn dram_bound_trace_shows_dram_heavy_cycle_stack() {
        let trace: Vec<MemOp> = (0..200)
            .map(|i| {
                load(
                    i,
                    1000 + i * 97,
                    if i % 2 == 1 { Some(i - 1) } else { None },
                    2,
                )
            })
            .collect();
        let mut mem = SplitMem {
            split: 0,
            dram_latency: 200,
            accesses: 0,
        };
        let r = CoreSim::new(CoreConfig::baseline()).run(&trace, &mut mem, 0);
        assert!(
            r.cycle_stack.dram_fraction() > 0.4,
            "stack: {}",
            r.cycle_stack
        );
    }

    #[test]
    fn l1_hits_give_high_ipc() {
        let trace: Vec<MemOp> = (0..1000).map(|i| load(i, i % 8, None, 3)).collect();
        let mut mem = SplitMem {
            split: 1 << 30,
            dram_latency: 200,
            accesses: 0,
        };
        let r = CoreSim::new(CoreConfig::baseline()).run(&trace, &mut mem, 0);
        assert!(r.ipc() > 2.0, "ipc {}", r.ipc());
        assert!(r.cycle_stack.busy_fraction() > 0.8);
        assert_eq!(r.instructions, 4000);
    }

    #[test]
    fn warmup_excludes_early_ops() {
        let trace: Vec<MemOp> = (0..100).map(|i| load(i, 1000 + i, None, 0)).collect();
        let mut mem = SplitMem {
            split: 0,
            dram_latency: 100,
            accesses: 0,
        };
        let r = CoreSim::new(CoreConfig::baseline()).run(&trace, &mut mem, 50);
        assert_eq!(r.memops, 50);
        assert_eq!(r.instructions, 50);
        assert!(r.cycles > 0);
    }

    #[test]
    fn store_queue_limits_store_bursts() {
        let mk = |i: u64| {
            MemOp::new(
                VirtAddr::new((2000 + i) * 64),
                AccessKind::Store,
                DataType::Property,
                None,
                OpId(i),
                0,
            )
        };
        let trace: Vec<MemOp> = (0..64).map(mk).collect();
        let mut mem = SplitMem {
            split: 1 << 30,
            dram_latency: 100,
            accesses: 0,
        };
        let r = CoreSim::new(CoreConfig::baseline()).run(&trace, &mut mem, 0);
        // Stores retire at 4/cycle minimum; just confirm no stall explosion
        // and that stores hit the memory system.
        assert_eq!(mem.accesses, 64);
        assert!(r.cycles >= 16);
        assert_eq!(r.loads, 0);
    }

    /// A memory system with a hot lane: near lines complete as L1 hits
    /// through `access_hot`, everything else declines to `access`.
    struct HotSplitMem {
        inner: SplitMem,
        hot_hits: u64,
    }

    impl MemorySystem for HotSplitMem {
        fn access(&mut self, op: &MemOp, id: OpId, now: Cycle) -> AccessResponse {
            self.inner.access(op, id, now)
        }

        fn access_hot(&mut self, op: &MemOp, id: OpId, now: Cycle) -> Option<AccessResponse> {
            if op.addr().line_index() < self.inner.split {
                self.hot_hits += 1;
                // Must be bit-identical to what `access` produces.
                Some(self.access(op, id, now))
            } else {
                None
            }
        }

        fn warmup_done(&mut self, _now: Cycle) {}
    }

    #[test]
    fn batched_lane_matches_scalar_lane() {
        // Mixed trace: same-page L1-hit runs, DRAM excursions, stores, and
        // producer dependencies — everything both lanes must agree on.
        let mut trace = Vec::new();
        for i in 0..400u64 {
            let line = if i % 7 == 0 { 100_000 + i } else { i % 4 };
            if i % 5 == 3 {
                trace.push(MemOp::new(
                    VirtAddr::new(line * 64),
                    AccessKind::Store,
                    DataType::Property,
                    None,
                    OpId(i),
                    1,
                ));
            } else {
                trace.push(load(
                    i,
                    line,
                    if i % 11 == 6 { Some(i - 1) } else { None },
                    2,
                ));
            }
        }

        let mut scalar_mem = SplitMem {
            split: 10,
            dram_latency: 180,
            accesses: 0,
        };
        let mut scalar_eng = CoreEngine::new(CoreConfig::baseline());
        scalar_eng.warmup_scalar(&trace[..100], &mut scalar_mem);
        let mut sm = scalar_eng.open_window(&mut scalar_mem);
        scalar_eng.measure_chunk_scalar(&trace[100..], &mut scalar_mem, &mut sm);
        let scalar = scalar_eng.finish(sm);

        let mut hot_mem = HotSplitMem {
            inner: SplitMem {
                split: 10,
                dram_latency: 180,
                accesses: 0,
            },
            hot_hits: 0,
        };
        let mut hot_eng = CoreEngine::new(CoreConfig::baseline());
        hot_eng.warmup(&trace[..100], &mut hot_mem);
        let mut hm = hot_eng.open_window(&mut hot_mem);
        hot_eng.measure_chunk(&trace[100..], &mut hot_mem, &mut hm);
        let hot = hot_eng.finish(hm);

        assert_eq!(scalar_eng.clocks(), hot_eng.clocks());
        assert_eq!(scalar.cycles, hot.cycles);
        assert_eq!(scalar.serviced_by, hot.serviced_by);
        assert_eq!(scalar.loads, hot.loads);
        assert!(hot_mem.hot_hits > 0, "hot lane never engaged");
    }

    #[test]
    fn batched_lane_skips_hot_probe_on_page_breaks() {
        // Every op on a new page: the plan reports no same-page runs, so
        // the hot lane must never be probed for the span-opening ops.
        let trace: Vec<MemOp> = (0..64).map(|i| load(i, i * 100, None, 0)).collect();
        let mut mem = HotSplitMem {
            inner: SplitMem {
                split: u64::MAX,
                dram_latency: 100,
                accesses: 0,
            },
            hot_hits: 0,
        };
        let mut eng = CoreEngine::new(CoreConfig::baseline());
        eng.warmup(&trace, &mut mem);
        assert_eq!(mem.hot_hits, 0, "page-break ops must skip the hot probe");
        assert_eq!(mem.inner.accesses, 64);
    }

    #[test]
    fn service_level_index_is_stable() {
        for (i, l) in ServiceLevel::ALL.iter().enumerate() {
            assert_eq!(l.index(), i);
        }
        assert_eq!(ServiceLevel::Dram.to_string(), "DRAM");
    }
}
