//! The out-of-order core timing model for the DROPLET reproduction.
//!
//! An event-driven replacement for SNIPER's interval core model, operating
//! on data-type-tagged memory traces: dispatch/retire bandwidth, ROB /
//! load-queue / store-queue occupancy limits, address-dependency
//! serialization (producer→consumer loads issue back to back), cycle-stack
//! attribution (Fig. 1), memory-level-parallelism measurement (Fig. 3), and
//! the load-load dependency-chain profiler (Figs. 5 and 6).
//!
//! # Example
//!
//! ```
//! use droplet_cpu::{AccessResponse, CoreConfig, CoreSim, MemorySystem, ServiceLevel};
//! use droplet_trace::{AccessKind, DataType, MemOp, OpId, VirtAddr};
//!
//! /// A memory system where everything takes 4 cycles in the L1.
//! struct FlatL1;
//! impl MemorySystem for FlatL1 {
//!     fn access(&mut self, _op: &MemOp, _id: OpId, now: u64) -> AccessResponse {
//!         AccessResponse { complete_at: now + 4, level: ServiceLevel::L1 }
//!     }
//!     fn warmup_done(&mut self, _now: u64) {}
//! }
//!
//! let trace: Vec<MemOp> = (0..100)
//!     .map(|i| MemOp::new(VirtAddr::new(i * 64), AccessKind::Load,
//!                         DataType::Structure, None, OpId(i), 3))
//!     .collect();
//! let result = CoreSim::new(CoreConfig::baseline()).run(&trace, &mut FlatL1, 0);
//! assert!(result.cycles > 0);
//! assert_eq!(result.instructions, 400);
//! ```

pub mod core;
pub mod depchain;
pub mod mlp;
pub mod mshr;
pub mod plan;
pub mod stack;

pub use crate::core::{
    AccessResponse, CoreConfig, CoreEngine, CoreResult, CoreSim, MeasureState, MemorySystem,
    ServiceLevel,
};
pub use depchain::{analyze_chains, ChainReport};
pub use mlp::{mlp_of_intervals, MlpStats};
pub use mshr::MshrFile;
pub use plan::{BlockPlan, OpSpan};
pub use stack::CycleStack;
