//! Load-load dependency-chain profiling (paper Observations #2 and #3).
//!
//! For every load we follow its address dependency backward; if the
//! producer is an older *load* still inside the instruction window, the two
//! form a producer→consumer pair that cannot be parallelized. Chains are
//! maximal linked sequences of such pairs. The report gives the fraction of
//! loads participating in chains, the mean chain length, and the
//! producer/consumer role breakdown by data type (Fig. 6).

use droplet_trace::{DataType, MemOp, OpId};

/// Dependency-chain report over one trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChainReport {
    /// Total loads inspected.
    pub loads: u64,
    /// Loads that participate in at least one chain.
    pub loads_in_chains: u64,
    /// Number of maximal chains.
    pub chains: u64,
    /// Sum of chain lengths (loads per chain), for the mean.
    pub chain_len_sum: u64,
    /// Loads acting as a producer, by data type index.
    pub producers: [u64; 3],
    /// Loads acting as a consumer, by data type index.
    pub consumers: [u64; 3],
}

impl ChainReport {
    /// Fraction of loads participating in dependency chains (the paper
    /// reports 43.2 % on average).
    pub fn chained_fraction(&self) -> f64 {
        if self.loads == 0 {
            0.0
        } else {
            self.loads_in_chains as f64 / self.loads as f64
        }
    }

    /// Mean chain length in loads (paper: ~2.5).
    pub fn mean_chain_len(&self) -> f64 {
        if self.chains == 0 {
            0.0
        } else {
            self.chain_len_sum as f64 / self.chains as f64
        }
    }

    /// Fraction of all loads that act as a producer of type `dtype`.
    pub fn producer_fraction(&self, dtype: DataType) -> f64 {
        if self.loads == 0 {
            0.0
        } else {
            self.producers[dtype.index()] as f64 / self.loads as f64
        }
    }

    /// Fraction of all loads that act as a consumer of type `dtype`.
    pub fn consumer_fraction(&self, dtype: DataType) -> f64 {
        if self.loads == 0 {
            0.0
        } else {
            self.consumers[dtype.index()] as f64 / self.loads as f64
        }
    }
}

/// Analyzes load-load chains with producers within `window` ops (the
/// instruction-window analogue; ops are the granularity traces record).
pub fn analyze_chains(ops: &[MemOp], window: u32) -> ChainReport {
    let mut report = ChainReport::default();
    // chain id per op (loads only), or u32::MAX.
    const NONE: u32 = u32::MAX;
    let mut chain_of: Vec<u32> = vec![NONE; ops.len()];
    let mut chain_sizes: Vec<u64> = Vec::new();
    let mut is_producer: Vec<bool> = vec![false; ops.len()];
    let mut is_consumer: Vec<bool> = vec![false; ops.len()];

    for (i, op) in ops.iter().enumerate() {
        if !op.is_load() {
            continue;
        }
        report.loads += 1;
        let Some(back) = op.producer_back() else {
            continue;
        };
        if back > window {
            continue; // producer left the window; no in-flight serialization
        }
        let p = i - back as usize;
        let producer = &ops[p];
        if !producer.is_load() {
            continue;
        }
        // Link into the producer's chain (or start a new one).
        let cid = if chain_of[p] != NONE {
            chain_of[p]
        } else {
            let cid = chain_sizes.len() as u32;
            chain_sizes.push(1); // the producer joins
            chain_of[p] = cid;
            cid
        };
        chain_of[i] = cid;
        chain_sizes[cid as usize] += 1;
        if !is_producer[p] {
            is_producer[p] = true;
            report.producers[producer.dtype().index()] += 1;
        }
        if !is_consumer[i] {
            is_consumer[i] = true;
            report.consumers[op.dtype().index()] += 1;
        }
    }

    report.chains = chain_sizes.len() as u64;
    report.chain_len_sum = chain_sizes.iter().sum();
    for (i, &cid) in chain_of.iter().enumerate() {
        if cid != NONE && ops[i].is_load() {
            report.loads_in_chains += 1;
        }
    }
    report
}

/// Convenience: the producer op id of `ops[i]`, for tests.
pub fn producer_of(ops: &[MemOp], i: usize) -> Option<OpId> {
    ops[i].producer(OpId(i as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use droplet_trace::{AccessKind, VirtAddr};

    fn load(id: u64, dtype: DataType, producer: Option<u64>) -> MemOp {
        MemOp::new(
            VirtAddr::new(64 * (id + 1)),
            AccessKind::Load,
            dtype,
            producer.map(OpId),
            OpId(id),
            0,
        )
    }

    fn store(id: u64, dtype: DataType, producer: Option<u64>) -> MemOp {
        MemOp::new(
            VirtAddr::new(64 * (id + 1)),
            AccessKind::Store,
            dtype,
            producer.map(OpId),
            OpId(id),
            0,
        )
    }

    const S: DataType = DataType::Structure;
    const P: DataType = DataType::Property;

    #[test]
    fn single_pair_forms_one_chain_of_two() {
        let ops = vec![load(0, S, None), load(1, P, Some(0)), load(2, S, None)];
        let r = analyze_chains(&ops, 128);
        assert_eq!(r.loads, 3);
        assert_eq!(r.chains, 1);
        assert_eq!(r.loads_in_chains, 2);
        assert!((r.mean_chain_len() - 2.0).abs() < 1e-12);
        assert!((r.chained_fraction() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.producers[S.index()], 1);
        assert_eq!(r.consumers[P.index()], 1);
    }

    #[test]
    fn three_link_chain_counts_once() {
        let ops = vec![load(0, P, None), load(1, P, Some(0)), load(2, P, Some(1))];
        let r = analyze_chains(&ops, 128);
        assert_eq!(r.chains, 1);
        assert_eq!(r.loads_in_chains, 3);
        assert!((r.mean_chain_len() - 3.0).abs() < 1e-12);
        // The middle load is both producer and consumer.
        assert_eq!(r.producers[P.index()], 2);
        assert_eq!(r.consumers[P.index()], 2);
    }

    #[test]
    fn window_excludes_distant_producers() {
        let mut ops = vec![load(0, S, None)];
        for i in 1..200u64 {
            ops.push(load(i, S, None));
        }
        ops.push(load(200, P, Some(0)));
        let r = analyze_chains(&ops, 128);
        assert_eq!(r.chains, 0, "producer 200 ops back is outside a 128 window");
        let r = analyze_chains(&ops, 256);
        assert_eq!(r.chains, 1);
    }

    #[test]
    fn store_producers_do_not_form_load_load_chains() {
        let ops = vec![store(0, S, None), load(1, P, Some(0))];
        let r = analyze_chains(&ops, 128);
        assert_eq!(r.chains, 0);
        assert_eq!(r.loads, 1);
    }

    #[test]
    fn fan_out_from_one_producer_grows_one_chain() {
        // One structure load feeding three property loads (BC-like).
        let ops = vec![
            load(0, S, None),
            load(1, P, Some(0)),
            load(2, P, Some(0)),
            load(3, P, Some(0)),
        ];
        let r = analyze_chains(&ops, 128);
        assert_eq!(r.chains, 1);
        assert_eq!(r.loads_in_chains, 4);
        assert_eq!(r.producers[S.index()], 1);
        assert_eq!(r.consumers[P.index()], 3);
    }

    #[test]
    fn empty_trace() {
        let r = analyze_chains(&[], 128);
        assert_eq!(r.loads, 0);
        assert_eq!(r.chained_fraction(), 0.0);
        assert_eq!(r.mean_chain_len(), 0.0);
    }
}
