//! Cycle-stack accounting (paper Fig. 1).
//!
//! Every retire-window cycle is attributed either to useful issue bandwidth
//! (`base`) or to the memory level that serviced the load blocking
//! retirement, giving the DRAM-bound / cache-bound / busy breakdown the
//! paper opens with.

/// Cycle attribution for one simulated run, in retire-slot units
/// (`1 / retire_width` of a cycle each, converted on read-out).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleStack {
    /// Slots spent retiring instructions at full bandwidth.
    pub base: u64,
    /// Stall slots attributed to L1 access latency.
    pub l1: u64,
    /// Stall slots attributed to L2 hits.
    pub l2: u64,
    /// Stall slots attributed to L3 hits.
    pub l3: u64,
    /// Stall slots attributed to DRAM-bound loads.
    pub dram: u64,
    /// Stall slots not attributable to a memory level (dependency bubbles,
    /// dispatch limits).
    pub other: u64,
}

impl CycleStack {
    /// Total slots accounted.
    pub fn total(&self) -> u64 {
        self.base + self.l1 + self.l2 + self.l3 + self.dram + self.other
    }

    /// Fraction of time in a component, 0..1.
    pub fn fraction(&self, slots: u64) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            slots as f64 / t as f64
        }
    }

    /// Fraction of DRAM-bound stall time (the paper reports ~45 % for
    /// PR-orkut).
    pub fn dram_fraction(&self) -> f64 {
        self.fraction(self.dram)
    }

    /// Fraction of fully-busy time (~15 % in Fig. 1).
    pub fn busy_fraction(&self) -> f64 {
        self.fraction(self.base)
    }
}

impl std::fmt::Display for CycleStack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "base {:.1}% | L1 {:.1}% | L2 {:.1}% | L3 {:.1}% | DRAM {:.1}% | other {:.1}%",
            100.0 * self.fraction(self.base),
            100.0 * self.fraction(self.l1),
            100.0 * self.fraction(self.l2),
            100.0 * self.fraction(self.l3),
            100.0 * self.fraction(self.dram),
            100.0 * self.fraction(self.other),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_sum_to_one() {
        let s = CycleStack {
            base: 10,
            l1: 5,
            l2: 5,
            l3: 10,
            dram: 60,
            other: 10,
        };
        let sum = s.fraction(s.base)
            + s.fraction(s.l1)
            + s.fraction(s.l2)
            + s.fraction(s.l3)
            + s.fraction(s.dram)
            + s.fraction(s.other);
        assert!((sum - 1.0).abs() < 1e-12);
        assert!((s.dram_fraction() - 0.6).abs() < 1e-12);
        assert!((s.busy_fraction() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn empty_stack_is_zero() {
        let s = CycleStack::default();
        assert_eq!(s.total(), 0);
        assert_eq!(s.dram_fraction(), 0.0);
    }

    #[test]
    fn display_shows_percentages() {
        let s = CycleStack {
            base: 1,
            dram: 1,
            ..Default::default()
        };
        let text = s.to_string();
        assert!(text.contains("DRAM 50.0%"), "{text}");
    }
}
