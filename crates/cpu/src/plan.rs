//! Per-block replay plans: the op-kind RLE spans and same-page runs of one
//! fetched trace block, precomputed in a single pass.
//!
//! Graph traces are dominated by short runs of accesses that share a kind
//! (load/store) and a virtual page — offset scans over the structure array,
//! property reads off one frame. [`BlockPlan::compute`] run-length encodes a
//! block along both axes at once, so the batched replay loop
//! ([`crate::CoreEngine::measure_chunk`]) can hoist the per-op kind branch
//! out of span-sized inner loops and route span interiors down the memory
//! system's hot lane ([`crate::MemorySystem::access_hot`]) — see DESIGN.md
//! §17 for the lane contract.

use droplet_trace::MemOp;

/// One homogeneous stretch of ops: a single access kind on a single
/// virtual page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpSpan {
    /// Ops in this span (always ≥ 1).
    pub len: u32,
    /// Every op in the span is a load (else every op is a store).
    pub is_load: bool,
    /// The span's page equals the page of the op immediately preceding the
    /// span, so the memory system's same-page memo is already primed when
    /// the span's first op executes. The first span of the first block has
    /// no predecessor and reports `false`.
    pub cont_page: bool,
}

/// A reusable span plan over one fetched block of ops.
///
/// The plan carries the trailing page across [`compute`](Self::compute)
/// calls, so feeding a trace block-by-block yields the same spans as one
/// plan over the concatenation — block boundaries are invisible.
#[derive(Debug, Clone, Default)]
pub struct BlockPlan {
    spans: Vec<OpSpan>,
    /// Page of the last planned op, seeding `cont_page` of the next block.
    last_page: Option<u64>,
    /// The probe prefix found no page runs at all, so the rest of the
    /// block was not planned (see [`BlockPlan::PROBE_OPS`]).
    degenerate: bool,
}

impl BlockPlan {
    /// Ops examined before deciding a block is worth planning: if the
    /// first `PROBE_OPS` ops contain not a single same-page run, the rest
    /// of the block is abandoned as [`degenerate`](Self::is_degenerate)
    /// and the replay loop falls back to the scalar lane. Interleaved
    /// multi-array traces (offsets → neighbors → ranks every op) would
    /// otherwise pay a full span materialization — one `OpSpan` per op —
    /// for a plan that cannot offer a single hot probe.
    pub const PROBE_OPS: usize = 2048;

    /// Creates an empty plan with no carried page.
    pub fn new() -> Self {
        Self::default()
    }

    /// Recomputes the plan for `ops` in one pass, splitting spans on every
    /// access-kind or page change. Bails out early (marking the plan
    /// degenerate) if the probe prefix shows no page locality.
    pub fn compute(&mut self, ops: &[MemOp]) {
        self.spans.clear();
        self.degenerate = false;
        let mut prev_page = self.last_page;
        let Some(first) = ops.first() else {
            return;
        };
        let mut cur = OpSpan {
            len: 1,
            is_load: first.is_load(),
            cont_page: prev_page == Some(first.addr().page_number()),
        };
        let mut cur_page = first.addr().page_number();
        // Hot-lane candidates seen so far; zero at the probe boundary
        // means every span so far is a length-1 page break.
        let mut hot = cur.cont_page as u64;
        for (i, op) in ops.iter().enumerate().skip(1) {
            if hot == 0 && i == Self::PROBE_OPS {
                self.degenerate = true;
                self.spans.clear();
                // Keep cross-block continuity: the next block's first op
                // is still compared against its true predecessor.
                self.last_page = Some(ops[ops.len() - 1].addr().page_number());
                return;
            }
            let page = op.addr().page_number();
            let is_load = op.is_load();
            if is_load == cur.is_load && page == cur_page {
                cur.len += 1;
                hot += 1;
            } else {
                self.spans.push(cur);
                prev_page = Some(cur_page);
                cur = OpSpan {
                    len: 1,
                    is_load,
                    cont_page: prev_page == Some(page),
                };
                hot += cur.cont_page as u64;
                cur_page = page;
            }
        }
        self.spans.push(cur);
        self.last_page = Some(cur_page);
    }

    /// Whether the probe prefix abandoned this block (no spans computed);
    /// the replay loop then runs its scalar lane over the whole block.
    pub fn is_degenerate(&self) -> bool {
        self.degenerate
    }

    /// The computed spans, in op order. Span lengths sum to the planned
    /// block's length.
    pub fn spans(&self) -> &[OpSpan] {
        &self.spans
    }

    /// How many of the planned ops are hot-lane candidates: span interiors
    /// (primed by the span's own first op) plus `cont_page` span heads.
    /// Zero means the block has no page runs at all — the batched loop
    /// then runs the plain scalar loop and skips the span bookkeeping.
    pub fn hot_candidates(&self) -> u64 {
        self.spans
            .iter()
            .map(|s| s.len as u64 - 1 + s.cont_page as u64)
            .sum()
    }

    /// Forgets the carried page (e.g. when switching traces).
    pub fn reset(&mut self) {
        self.spans.clear();
        self.last_page = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use droplet_trace::{AccessKind, DataType, OpId, VirtAddr, PAGE_BYTES};

    fn op(page: u64, offset: u64, kind: AccessKind) -> MemOp {
        MemOp::new(
            VirtAddr::new(page * PAGE_BYTES + offset * 64),
            kind,
            DataType::Property,
            None,
            OpId(0),
            0,
        )
    }

    #[test]
    fn spans_split_on_kind_and_page() {
        let ops = vec![
            op(1, 0, AccessKind::Load),
            op(1, 1, AccessKind::Load),
            op(1, 2, AccessKind::Store), // kind change, same page
            op(2, 0, AccessKind::Store), // page change, same kind
            op(2, 1, AccessKind::Store),
        ];
        let mut plan = BlockPlan::new();
        plan.compute(&ops);
        let spans = plan.spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(
            spans[0],
            OpSpan {
                len: 2,
                is_load: true,
                cont_page: false
            }
        );
        assert_eq!(
            spans[1],
            OpSpan {
                len: 1,
                is_load: false,
                cont_page: true
            }
        );
        assert_eq!(
            spans[2],
            OpSpan {
                len: 2,
                is_load: false,
                cont_page: false
            }
        );
        assert_eq!(
            spans.iter().map(|s| s.len as usize).sum::<usize>(),
            ops.len()
        );
    }

    #[test]
    fn block_boundaries_are_invisible() {
        // Plan a stream in one pass, then in two blocks: the carried page
        // must make the second block's first span report cont_page just as
        // the whole-stream plan does.
        let ops: Vec<MemOp> = (0..10).map(|i| op(7, i, AccessKind::Load)).collect();
        let mut whole = BlockPlan::new();
        whole.compute(&ops);
        assert_eq!(whole.spans().len(), 1);

        let mut split = BlockPlan::new();
        split.compute(&ops[..4]);
        assert!(!split.spans()[0].cont_page);
        split.compute(&ops[4..]);
        assert_eq!(split.spans().len(), 1);
        assert!(split.spans()[0].cont_page, "carried page primes cont_page");
    }

    #[test]
    fn reset_forgets_the_carried_page() {
        let ops = vec![op(3, 0, AccessKind::Load)];
        let mut plan = BlockPlan::new();
        plan.compute(&ops);
        plan.reset();
        plan.compute(&ops);
        assert!(!plan.spans()[0].cont_page);
    }

    #[test]
    fn empty_block_keeps_state() {
        let mut plan = BlockPlan::new();
        plan.compute(&[op(5, 0, AccessKind::Load)]);
        plan.compute(&[]);
        assert!(plan.spans().is_empty());
        plan.compute(&[op(5, 1, AccessKind::Load)]);
        assert!(
            plan.spans()[0].cont_page,
            "empty blocks keep the carried page"
        );
    }
}
