//! Memory-level-parallelism measurement.
//!
//! MLP is the average number of outstanding DRAM requests over the cycles
//! during which at least one is outstanding (Chou et al. [32], the
//! definition the paper's Section IV-A uses).

use droplet_trace::Cycle;

/// MLP summary of one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MlpStats {
    /// Average outstanding DRAM requests while any are outstanding.
    pub avg_outstanding: f64,
    /// Cycles with at least one outstanding DRAM request.
    pub busy_cycles: u64,
    /// Total DRAM request-latency cycles (sum over requests).
    pub latency_sum: u64,
    /// Number of DRAM requests observed.
    pub requests: u64,
}

/// Computes MLP from `(issue, complete)` intervals via a sweep line.
///
/// # Example
///
/// ```
/// use droplet_cpu::mlp_of_intervals;
/// // Two fully-overlapping requests: MLP 2.
/// let stats = mlp_of_intervals(&mut [(0, 100), (0, 100)]);
/// assert!((stats.avg_outstanding - 2.0).abs() < 1e-12);
/// // Two disjoint requests: MLP 1.
/// let stats = mlp_of_intervals(&mut [(0, 100), (200, 300)]);
/// assert!((stats.avg_outstanding - 1.0).abs() < 1e-12);
/// ```
pub fn mlp_of_intervals(intervals: &mut [(Cycle, Cycle)]) -> MlpStats {
    let requests = intervals.len() as u64;
    if requests == 0 {
        return MlpStats {
            avg_outstanding: 0.0,
            busy_cycles: 0,
            latency_sum: 0,
            requests: 0,
        };
    }
    let latency_sum: u64 = intervals.iter().map(|&(a, b)| b.saturating_sub(a)).sum();
    // Event sweep: +1 at issue, −1 at complete.
    let mut events: Vec<(Cycle, i64)> = Vec::with_capacity(intervals.len() * 2);
    for &(a, b) in intervals.iter() {
        events.push((a, 1));
        events.push((b, -1));
    }
    events.sort_unstable();
    let mut outstanding = 0i64;
    let mut busy_cycles = 0u64;
    let mut last_t = 0;
    for (t, d) in events {
        if outstanding > 0 {
            busy_cycles += t - last_t;
        }
        outstanding += d;
        last_t = t;
    }
    let avg = if busy_cycles == 0 {
        0.0
    } else {
        latency_sum as f64 / busy_cycles as f64
    };
    MlpStats {
        avg_outstanding: avg,
        busy_cycles,
        latency_sum,
        requests,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zero() {
        let s = mlp_of_intervals(&mut Vec::new());
        assert_eq!(s.avg_outstanding, 0.0);
        assert_eq!(s.requests, 0);
    }

    #[test]
    fn partial_overlap() {
        // [0,100) and [50,150): 200 latency cycles over 150 busy ⇒ 4/3.
        let s = mlp_of_intervals(&mut [(0, 100), (50, 150)]);
        assert!((s.avg_outstanding - 200.0 / 150.0).abs() < 1e-12);
        assert_eq!(s.busy_cycles, 150);
        assert_eq!(s.latency_sum, 200);
        assert_eq!(s.requests, 2);
    }

    #[test]
    fn serialized_chain_has_mlp_one() {
        let s = mlp_of_intervals(&mut [(0, 10), (10, 20), (20, 30)]);
        assert!((s.avg_outstanding - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unsorted_input_is_fine() {
        let s = mlp_of_intervals(&mut [(200, 300), (0, 100)]);
        assert!((s.avg_outstanding - 1.0).abs() < 1e-12);
    }
}
