//! Memory-level-parallelism measurement.
//!
//! MLP is the average number of outstanding DRAM requests over the cycles
//! during which at least one is outstanding (Chou et al. [32], the
//! definition the paper's Section IV-A uses).

use droplet_trace::Cycle;

/// MLP summary of one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MlpStats {
    /// Average outstanding DRAM requests while any are outstanding.
    pub avg_outstanding: f64,
    /// Cycles with at least one outstanding DRAM request.
    pub busy_cycles: u64,
    /// Total DRAM request-latency cycles (sum over requests).
    pub latency_sum: u64,
    /// Number of DRAM requests observed.
    pub requests: u64,
}

/// Computes MLP from `(issue, complete)` intervals via a sweep line.
///
/// # Example
///
/// ```
/// use droplet_cpu::mlp_of_intervals;
/// // Two fully-overlapping requests: MLP 2.
/// let stats = mlp_of_intervals(&[(0, 100), (0, 100)]);
/// assert!((stats.avg_outstanding - 2.0).abs() < 1e-12);
/// // Two disjoint requests: MLP 1.
/// let stats = mlp_of_intervals(&[(0, 100), (200, 300)]);
/// assert!((stats.avg_outstanding - 1.0).abs() < 1e-12);
/// ```
pub fn mlp_of_intervals(intervals: &[(Cycle, Cycle)]) -> MlpStats {
    let requests = intervals.len() as u64;
    if requests == 0 {
        return MlpStats {
            avg_outstanding: 0.0,
            busy_cycles: 0,
            latency_sum: 0,
            requests: 0,
        };
    }
    let latency_sum: u64 = intervals.iter().map(|&(a, b)| b.saturating_sub(a)).sum();
    // Event sweep: +1 at issue, −1 at complete. Issue and completion times
    // are kept in separate arrays rather than one interleaved event list:
    // the DRAM bus hands back demand completions in nondecreasing order, so
    // `completes` is almost always already sorted and the dominant cost of
    // the old single-list version — sorting 2n tagged events — drops to
    // sorting the n issue times.
    let n = intervals.len();
    let mut issues: Vec<Cycle> = Vec::with_capacity(n);
    let mut completes: Vec<Cycle> = Vec::with_capacity(n);
    for &(a, b) in intervals.iter() {
        issues.push(a);
        completes.push(b);
    }
    issues.sort_unstable();
    if !completes.is_sorted() {
        completes.sort_unstable();
    }
    let mut outstanding = 0i64;
    let mut busy_cycles = 0u64;
    let mut last_t = 0;
    let mut i = 0;
    // Two-pointer merge. Ties go to the completion (as the old sort's
    // (time, −1) < (time, +1) ordering did), though same-time event order
    // cannot change `busy_cycles`: the accrual for a timestamp happens on
    // its first event only. Issues left over once every completion is
    // processed all share the final timestamp, so they accrue nothing.
    for &comp in &completes {
        while i < n && issues[i] < comp {
            if outstanding > 0 {
                busy_cycles += issues[i] - last_t;
            }
            outstanding += 1;
            last_t = issues[i];
            i += 1;
        }
        if outstanding > 0 {
            busy_cycles += comp - last_t;
        }
        outstanding -= 1;
        last_t = comp;
    }
    let avg = if busy_cycles == 0 {
        0.0
    } else {
        latency_sum as f64 / busy_cycles as f64
    };
    MlpStats {
        avg_outstanding: avg,
        busy_cycles,
        latency_sum,
        requests,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zero() {
        let s = mlp_of_intervals(&[]);
        assert_eq!(s.avg_outstanding, 0.0);
        assert_eq!(s.requests, 0);
    }

    #[test]
    fn partial_overlap() {
        // [0,100) and [50,150): 200 latency cycles over 150 busy ⇒ 4/3.
        let s = mlp_of_intervals(&[(0, 100), (50, 150)]);
        assert!((s.avg_outstanding - 200.0 / 150.0).abs() < 1e-12);
        assert_eq!(s.busy_cycles, 150);
        assert_eq!(s.latency_sum, 200);
        assert_eq!(s.requests, 2);
    }

    #[test]
    fn serialized_chain_has_mlp_one() {
        let s = mlp_of_intervals(&[(0, 10), (10, 20), (20, 30)]);
        assert!((s.avg_outstanding - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unsorted_input_is_fine() {
        let s = mlp_of_intervals(&[(200, 300), (0, 100)]);
        assert!((s.avg_outstanding - 1.0).abs() < 1e-12);
    }

    /// The two-pointer merge must agree with a brute-force per-cycle count
    /// on adversarial overlap patterns, including out-of-order completions
    /// and zero-length intervals.
    #[test]
    fn matches_per_cycle_model() {
        let mut x: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut rnd = move |m: u64| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x % m
        };
        for case in 0..50 {
            let n = 1 + case % 7;
            let intervals: Vec<(Cycle, Cycle)> = (0..n)
                .map(|_| {
                    let a = rnd(40);
                    (a, a + rnd(30))
                })
                .collect();
            let s = mlp_of_intervals(&intervals);
            let busy = (0..80u64)
                .filter(|&t| intervals.iter().any(|&(a, b)| a <= t && t < b))
                .count() as u64;
            assert_eq!(s.busy_cycles, busy, "intervals {intervals:?}");
        }
    }
}
