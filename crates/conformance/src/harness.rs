//! Per-structure harnesses: the op vocabulary of each optimized structure,
//! its observation type (results + derived state + counters, compared for
//! exact equality every step), and the fuzzer lowering that turns a
//! [`TraceGen`] event stream into that vocabulary.

use crate::diff::Harness;
use crate::fuzz::TraceGen;
use crate::reference::{model_for, CacheModel, RefMshr, RefPageTable, RefTlb};
use droplet_cache::{
    CacheConfig, CacheMutation, CacheStats, EvictedLine, FillInfo, HitInfo, ReplacementPolicy,
    SetAssocCache,
};
use droplet_cpu::MshrFile;
use droplet_prefetch::{AccessEvent, PrefetchRequest, Prefetcher};
use droplet_trace::{
    AddressSpace, Cycle, DataType, PageEntry, PageTable, PhysAddr, Tlb, VirtAddr, PAGE_BYTES,
};
use proptest::TestRng;
use std::fmt::Debug;

/// A small, eviction-heavy cache geometry: every fuzzed stream exercises
/// victim selection constantly.
pub fn small_cache_config() -> CacheConfig {
    CacheConfig {
        name: "conformance",
        size_bytes: 16 * 2 * 64, // 16 sets × 2 ways
        assoc: 2,
        tag_latency: 1,
        data_latency: 2,
        policy: ReplacementPolicy::Lru,
    }
}

/// [`small_cache_config`] under a different replacement policy (16 sets
/// keeps both DRRIP leader constituencies populated).
pub fn small_policy_config(policy: ReplacementPolicy) -> CacheConfig {
    small_cache_config().with_policy(policy)
}

// ---------------------------------------------------------------------------
// Cache
// ---------------------------------------------------------------------------

/// One cache operation.
#[derive(Debug, Clone, Copy)]
pub enum CacheOp {
    /// Demand access.
    Touch {
        /// Line index.
        line: u64,
        /// Access cycle.
        now: Cycle,
        /// Access data type.
        dtype: DataType,
        /// Store (sets dirty).
        is_store: bool,
    },
    /// Demand or prefetch fill.
    Fill {
        /// Line index.
        line: u64,
        /// Fill parameters.
        info: FillInfo,
    },
    /// Inclusion back-invalidation.
    Invalidate {
        /// Line index.
        line: u64,
    },
    /// Consume the accuracy tag.
    TakeTracked {
        /// Line index.
        line: u64,
    },
    /// Install an accuracy tag on a resident line.
    MarkTracked {
        /// Line index.
        line: u64,
        /// Tag data type.
        dtype: DataType,
    },
}

/// The op's direct result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheResult {
    /// `touch` outcome.
    Hit(Option<HitInfo>),
    /// `fill` / `invalidate` outcome.
    Evicted(Option<EvictedLine>),
    /// `take_tracked` outcome.
    Took(Option<DataType>),
    /// `mark_tracked` outcome.
    Marked(bool),
}

/// Everything observable after one cache op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheObs {
    /// The op's direct result.
    pub result: CacheResult,
    /// Residency of the op's line afterwards.
    pub contains: bool,
    /// Total resident lines.
    pub occupancy: usize,
    /// Any accuracy tag pending.
    pub has_tracked: bool,
    /// Full statistics snapshot.
    pub stats: CacheStats,
}

/// Production [`SetAssocCache`] vs the reference model its configured
/// policy calls for (`RefCache` for LRU, `RefRripCache` otherwise),
/// optionally with an armed [`CacheMutation`] on the production side (the
/// suite's self-test).
pub struct CacheHarness {
    cfg: CacheConfig,
    mutation: CacheMutation,
    prod: SetAssocCache,
    model: Box<dyn CacheModel>,
}

impl CacheHarness {
    /// A harness over the given geometry and policy; `mutation` arms a
    /// production-side injected bug ([`CacheMutation::None`] for
    /// conformance runs).
    pub fn new(cfg: CacheConfig, mutation: CacheMutation) -> Self {
        let mut h = CacheHarness {
            prod: SetAssocCache::new(cfg.clone()),
            model: model_for(&cfg),
            cfg,
            mutation,
        };
        h.reset();
        h
    }
}

impl Harness for CacheHarness {
    type Op = CacheOp;
    type Obs = CacheObs;

    fn reset(&mut self) {
        self.prod = SetAssocCache::new(self.cfg.clone());
        self.prod.set_test_mutation(self.mutation);
        self.model = model_for(&self.cfg);
    }

    fn apply(&mut self, op: &CacheOp) -> (CacheObs, CacheObs) {
        let line = match *op {
            CacheOp::Touch { line, .. }
            | CacheOp::Fill { line, .. }
            | CacheOp::Invalidate { line }
            | CacheOp::TakeTracked { line }
            | CacheOp::MarkTracked { line, .. } => line,
        };
        let (got, want) = match *op {
            CacheOp::Touch {
                line,
                now,
                dtype,
                is_store,
            } => (
                CacheResult::Hit(self.prod.touch(line, now, dtype, is_store)),
                CacheResult::Hit(self.model.touch(line, now, dtype, is_store)),
            ),
            CacheOp::Fill { line, info } => (
                CacheResult::Evicted(self.prod.fill(line, info)),
                CacheResult::Evicted(self.model.fill(line, info)),
            ),
            CacheOp::Invalidate { line } => (
                CacheResult::Evicted(self.prod.invalidate(line)),
                CacheResult::Evicted(self.model.invalidate(line)),
            ),
            CacheOp::TakeTracked { line } => (
                CacheResult::Took(self.prod.take_tracked(line)),
                CacheResult::Took(self.model.take_tracked(line)),
            ),
            CacheOp::MarkTracked { line, dtype } => (
                CacheResult::Marked(self.prod.mark_tracked(line, dtype)),
                CacheResult::Marked(self.model.mark_tracked(line, dtype)),
            ),
        };
        (
            CacheObs {
                result: got,
                contains: self.prod.contains(line),
                occupancy: self.prod.occupancy(),
                has_tracked: self.prod.has_tracked(),
                stats: *self.prod.stats(),
            },
            CacheObs {
                result: want,
                contains: self.model.contains(line),
                occupancy: self.model.occupancy(),
                has_tracked: self.model.has_tracked(),
                stats: *self.model.stats(),
            },
        )
    }

    fn dump(&self) -> (String, String) {
        (format!("{:#?}", self.prod), format!("{:#?}", self.model))
    }
}

/// Lowers a fuzzed event stream into cache ops: typed touches and fills,
/// refresh pressure on recently seen lines, invalidations, and accuracy-tag
/// traffic.
pub fn gen_cache_ops(rng: &mut TestRng, n: usize) -> Vec<CacheOp> {
    let mut gen = TraceGen::new();
    let mut recent: Vec<u64> = Vec::new();
    let mut now: Cycle = 0;
    (0..n)
        .map(|_| {
            now += rng.below(4);
            let ev = gen.event(rng);
            let line = ev.line();
            if !recent.contains(&line) {
                if recent.len() == 16 {
                    recent.remove(0);
                }
                recent.push(line);
            }
            let recent_line = recent[rng.below(recent.len() as u64) as usize];
            match rng.below(20) {
                0..=7 => CacheOp::Touch {
                    line,
                    now,
                    dtype: ev.dtype,
                    is_store: rng.below(4) == 0,
                },
                8 => CacheOp::Touch {
                    line: recent_line,
                    now,
                    dtype: ev.dtype,
                    is_store: false,
                },
                9..=12 => {
                    let ready_at = now + rng.below(100);
                    let mut info = if rng.below(2) == 0 {
                        FillInfo::demand(ev.dtype, ready_at)
                    } else {
                        FillInfo::prefetch(ev.dtype, ready_at)
                    };
                    if rng.below(4) == 0 {
                        info = info.dirty();
                    }
                    if rng.below(3) == 0 {
                        info = info.tracked();
                    }
                    CacheOp::Fill { line, info }
                }
                // Refill of a recently seen line: the refresh path.
                13..=14 => CacheOp::Fill {
                    line: recent_line,
                    info: FillInfo::prefetch(ev.dtype, now + rng.below(50)).tracked(),
                },
                15..=16 => CacheOp::Invalidate { line: recent_line },
                17 => CacheOp::TakeTracked { line: recent_line },
                _ => CacheOp::MarkTracked {
                    line: recent_line,
                    dtype: ev.dtype,
                },
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// TLB
// ---------------------------------------------------------------------------

/// One TLB operation.
#[derive(Debug, Clone, Copy)]
pub enum TlbOp {
    /// Access with an infallible walk.
    Access(u64),
    /// Access whose walk faults (must leave the TLB untouched).
    Fault(u64),
    /// Side-effect-free probe.
    Probe(u64),
    /// Single-page invalidation.
    Invalidate(u64),
    /// MTLB shootdown rule: drop non-structure entries.
    ShootNonStructure,
    /// Range shootdown: drop vpns below the operand.
    ShootBelow(u64),
}

/// The op's direct result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TlbResult {
    /// `access_or_walk` outcome: entry + hit flag, or fault.
    Accessed(Option<(PageEntry, bool)>),
    /// `probe` outcome.
    Probed(Option<PageEntry>),
    /// `invalidate` outcome.
    Invalidated(bool),
    /// `invalidate_matching` drop count.
    Shot(usize),
}

/// Everything observable after one TLB op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbObs {
    /// The op's direct result.
    pub result: TlbResult,
    /// Resident entries afterwards.
    pub len: usize,
    /// (hits, misses, invalidations).
    pub stats: (u64, u64, u64),
}

/// Deterministic walked entry for a vpn; every third page carries the
/// structure bit so shootdown predicates discriminate.
fn tlb_entry_of(vpn: u64) -> PageEntry {
    PageEntry {
        frame: vpn * 3 + 7,
        structure: vpn.is_multiple_of(3),
    }
}

/// Production stamp-LRU [`Tlb`] vs [`RefTlb`].
pub struct TlbHarness {
    capacity: usize,
    prod: Tlb,
    model: RefTlb,
}

impl TlbHarness {
    /// A harness over a TLB of `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        TlbHarness {
            capacity,
            prod: Tlb::new(capacity),
            model: RefTlb::new(capacity),
        }
    }
}

impl Harness for TlbHarness {
    type Op = TlbOp;
    type Obs = TlbObs;

    fn reset(&mut self) {
        self.prod = Tlb::new(self.capacity);
        self.model = RefTlb::new(self.capacity);
    }

    fn apply(&mut self, op: &TlbOp) -> (TlbObs, TlbObs) {
        let (got, want) = match *op {
            TlbOp::Access(vpn) => (
                TlbResult::Accessed(self.prod.access_or_walk(vpn, || Some(tlb_entry_of(vpn)))),
                TlbResult::Accessed(self.model.access_or_walk(vpn, || Some(tlb_entry_of(vpn)))),
            ),
            TlbOp::Fault(vpn) => (
                TlbResult::Accessed(self.prod.access_or_walk(vpn, || None)),
                TlbResult::Accessed(self.model.access_or_walk(vpn, || None)),
            ),
            TlbOp::Probe(vpn) => (
                TlbResult::Probed(self.prod.probe(vpn)),
                TlbResult::Probed(self.model.probe(vpn)),
            ),
            TlbOp::Invalidate(vpn) => (
                TlbResult::Invalidated(self.prod.invalidate(vpn)),
                TlbResult::Invalidated(self.model.invalidate(vpn)),
            ),
            TlbOp::ShootNonStructure => (
                TlbResult::Shot(self.prod.invalidate_matching(|_, e| !e.structure)),
                TlbResult::Shot(self.model.invalidate_matching(|_, e| !e.structure)),
            ),
            TlbOp::ShootBelow(vpn) => (
                TlbResult::Shot(self.prod.invalidate_matching(|v, _| v < vpn)),
                TlbResult::Shot(self.model.invalidate_matching(|v, _| v < vpn)),
            ),
        };
        (
            TlbObs {
                result: got,
                len: self.prod.len(),
                stats: self.prod.stats(),
            },
            TlbObs {
                result: want,
                len: self.model.len(),
                stats: self.model.stats(),
            },
        )
    }

    fn dump(&self) -> (String, String) {
        (format!("{:#?}", self.prod), format!("{:#?}", self.model))
    }
}

/// Lowers a fuzzed event stream into TLB ops over its page universe.
pub fn gen_tlb_ops(rng: &mut TestRng, n: usize) -> Vec<TlbOp> {
    let mut gen = TraceGen::new();
    (0..n)
        .map(|_| {
            let vpn = gen.event(rng).page();
            match rng.below(16) {
                0..=9 => TlbOp::Access(vpn),
                10 => TlbOp::Fault(vpn),
                11..=12 => TlbOp::Probe(vpn),
                13 => TlbOp::Invalidate(vpn),
                14 => TlbOp::ShootNonStructure,
                _ => TlbOp::ShootBelow(vpn),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// MSHR
// ---------------------------------------------------------------------------

/// One MSHR operation.
#[derive(Debug, Clone, Copy)]
pub enum MshrOp {
    /// Claim the earliest-free slot, re-arming it to `complete_at`.
    Allocate(Cycle),
    /// Occupancy query at a cycle.
    BusyAt(Cycle),
}

/// Observation: `(earliest_free, query)` where `query` is `len` after an
/// allocation or the busy count for a query op. `earliest_free` is checked
/// after *every* op, so the free-time multisets cannot drift silently.
pub type MshrObs = (Cycle, usize);

/// Production min-heap [`MshrFile`] vs linear-scan [`RefMshr`].
pub struct MshrHarness {
    entries: usize,
    prod: MshrFile,
    model: RefMshr,
}

impl MshrHarness {
    /// A harness over a file of `entries` slots.
    pub fn new(entries: usize) -> Self {
        MshrHarness {
            entries,
            prod: MshrFile::new(entries),
            model: RefMshr::new(entries),
        }
    }
}

impl Harness for MshrHarness {
    type Op = MshrOp;
    type Obs = MshrObs;

    fn reset(&mut self) {
        self.prod = MshrFile::new(self.entries);
        self.model = RefMshr::new(self.entries);
    }

    fn apply(&mut self, op: &MshrOp) -> (MshrObs, MshrObs) {
        match *op {
            MshrOp::Allocate(complete_at) => {
                self.prod.allocate(complete_at);
                self.model.allocate(complete_at);
                (
                    (self.prod.earliest_free(), self.prod.len()),
                    (self.model.earliest_free(), self.model.len()),
                )
            }
            MshrOp::BusyAt(now) => (
                (self.prod.earliest_free(), self.prod.busy_at(now)),
                (self.model.earliest_free(), self.model.busy_at(now)),
            ),
        }
    }

    fn dump(&self) -> (String, String) {
        (format!("{:#?}", self.prod), format!("{:#?}", self.model))
    }
}

/// Adversarial allocation pattern: completion times jump forward and
/// backward so heap order and scan order disagree as much as possible.
pub fn gen_mshr_ops(rng: &mut TestRng, n: usize) -> Vec<MshrOp> {
    let mut now: Cycle = 0;
    (0..n)
        .map(|_| {
            now += rng.below(20);
            if rng.below(5) == 0 {
                MshrOp::BusyAt(now + rng.below(200))
            } else {
                // Mix far-future, near, and already-past completion times.
                let complete_at = match rng.below(4) {
                    0 => now.saturating_sub(rng.below(50)),
                    1..=2 => now + rng.below(100),
                    _ => now + 200 + rng.below(500),
                };
                MshrOp::Allocate(complete_at)
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Page table
// ---------------------------------------------------------------------------

/// One page-table operation over a raw virtual address.
#[derive(Debug, Clone, Copy)]
pub enum PageOp {
    /// Demand translation (counts a walk).
    Translate(u64),
    /// Setup pre-touch (no walk counted).
    Populate(u64),
    /// Probe without populating.
    Lookup(u64),
}

/// The op's direct result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageResult {
    /// Physical address + entry.
    Xlated(PhysAddr, PageEntry),
    /// Populate has no result.
    Populated,
    /// Lookup outcome.
    Found(Option<PageEntry>),
}

/// Everything observable after one page-table op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageObs {
    /// The op's direct result.
    pub result: PageResult,
    /// Mapped pages afterwards.
    pub mapped: usize,
    /// Counted walks afterwards.
    pub walks: u64,
}

/// The fixed address space the page-table harness translates against:
/// structure, property, and intermediate regions with their byte sizes.
pub fn page_space() -> (AddressSpace, Vec<(u64, u64)>) {
    let mut space = AddressSpace::new();
    let mut regions = Vec::new();
    for (name, dtype, pages) in [
        ("neighbors", DataType::Structure, 16u64),
        ("offsets", DataType::Structure, 4),
        ("ranks", DataType::Property, 8),
        ("frontier", DataType::Intermediate, 4),
    ] {
        let r = space.alloc(name, dtype, pages * PAGE_BYTES);
        regions.push((r.base().raw(), pages * PAGE_BYTES));
    }
    (space, regions)
}

/// Production dense/spill [`PageTable`] vs [`RefPageTable`].
pub struct PageHarness {
    space: AddressSpace,
    prod: PageTable,
    model: RefPageTable,
}

impl PageHarness {
    /// A harness translating against [`page_space`].
    pub fn new() -> Self {
        PageHarness {
            space: page_space().0,
            prod: PageTable::new(),
            model: RefPageTable::new(),
        }
    }
}

impl Default for PageHarness {
    fn default() -> Self {
        Self::new()
    }
}

impl Harness for PageHarness {
    type Op = PageOp;
    type Obs = PageObs;

    fn reset(&mut self) {
        self.prod = PageTable::new();
        self.model = RefPageTable::new();
    }

    fn apply(&mut self, op: &PageOp) -> (PageObs, PageObs) {
        let (got, want) = match *op {
            PageOp::Translate(raw) => {
                let va = VirtAddr::new(raw);
                let (pa, e) = self.prod.translate(va, &self.space);
                let (pb, f) = self.model.translate(va, &self.space);
                (PageResult::Xlated(pa, e), PageResult::Xlated(pb, f))
            }
            PageOp::Populate(raw) => {
                let va = VirtAddr::new(raw);
                self.prod.populate(va, &self.space);
                self.model.populate(va, &self.space);
                (PageResult::Populated, PageResult::Populated)
            }
            PageOp::Lookup(raw) => {
                let va = VirtAddr::new(raw);
                (
                    PageResult::Found(self.prod.lookup(va)),
                    PageResult::Found(self.model.lookup(va)),
                )
            }
        };
        (
            PageObs {
                result: got,
                mapped: self.prod.mapped_pages(),
                walks: self.prod.translations(),
            },
            PageObs {
                result: want,
                mapped: self.model.mapped_pages(),
                walks: self.model.translations(),
            },
        )
    }

    fn dump(&self) -> (String, String) {
        (format!("{:#?}", self.prod), format!("{:#?}", self.model))
    }
}

/// Addresses spanning every page-table path: region interiors (dense
/// window), guard pages past region ends, and low addresses below the space
/// base (the spill map).
pub fn gen_page_ops(rng: &mut TestRng, n: usize) -> Vec<PageOp> {
    let (_, regions) = page_space();
    (0..n)
        .map(|_| {
            let raw = match rng.below(8) {
                // Interior of a region (dense window).
                0..=5 => {
                    let (base, bytes) = regions[rng.below(regions.len() as u64) as usize];
                    base + rng.below(bytes)
                }
                // Just past a region's end: its guard page (no region, still
                // translatable, structure bit false).
                6 => {
                    let (base, bytes) = regions[rng.below(regions.len() as u64) as usize];
                    base + bytes + rng.below(PAGE_BYTES)
                }
                // Below the space base: the spill map.
                _ => rng.below(64 * PAGE_BYTES),
            };
            match rng.below(8) {
                0..=4 => PageOp::Translate(raw),
                5 => PageOp::Populate(raw),
                _ => PageOp::Lookup(raw),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Prefetchers
// ---------------------------------------------------------------------------

/// One prefetcher operation.
#[derive(Debug, Clone, Copy)]
pub enum PfOp {
    /// Observe one access event.
    Access(AccessEvent),
    /// Flip the data-aware mode (stream prefetcher only; a no-op pair on
    /// engines without the switch).
    SetDataAware(bool),
}

/// Everything observable after one prefetcher op: the requests emitted for
/// this event, the lifetime issue counter, and the mode flag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PfObs {
    /// Requests emitted by this op.
    pub reqs: Vec<PrefetchRequest>,
    /// Lifetime requests issued.
    pub issued: u64,
    /// Current data-aware mode.
    pub data_aware: bool,
}

/// Any production engine vs its reference predictor, both behind the
/// production `Prefetcher` trait.
pub struct PrefetchHarness<P, R> {
    make: Box<dyn Fn() -> (P, R)>,
    prod: P,
    model: R,
}

impl<P: Prefetcher + Debug, R: Prefetcher + Debug> PrefetchHarness<P, R> {
    /// A harness whose `make` closure builds a fresh (production, reference)
    /// pair; called on every reset.
    pub fn new(make: impl Fn() -> (P, R) + 'static) -> Self {
        let (prod, model) = make();
        PrefetchHarness {
            make: Box::new(make),
            prod,
            model,
        }
    }
}

impl<P: Prefetcher + Debug, R: Prefetcher + Debug> Harness for PrefetchHarness<P, R> {
    type Op = PfOp;
    type Obs = PfObs;

    fn reset(&mut self) {
        let (prod, model) = (self.make)();
        self.prod = prod;
        self.model = model;
    }

    fn apply(&mut self, op: &PfOp) -> (PfObs, PfObs) {
        let mut got = Vec::new();
        let mut want = Vec::new();
        match *op {
            PfOp::Access(ev) => {
                self.prod.on_access(&ev, &mut got);
                self.model.on_access(&ev, &mut want);
            }
            PfOp::SetDataAware(on) => {
                self.prod.set_data_aware(on);
                self.model.set_data_aware(on);
            }
        }
        (
            PfObs {
                reqs: got,
                issued: self.prod.issued(),
                data_aware: self.prod.is_data_aware(),
            },
            PfObs {
                reqs: want,
                issued: self.model.issued(),
                data_aware: self.model.is_data_aware(),
            },
        )
    }

    fn dump(&self) -> (String, String) {
        (format!("{:#?}", self.prod), format!("{:#?}", self.model))
    }
}

/// Lowers a fuzzed event stream into prefetcher ops; `with_mode_switch`
/// sprinkles data-aware flips (for the stream engine's runtime switch).
pub fn gen_pf_ops(rng: &mut TestRng, n: usize, with_mode_switch: bool) -> Vec<PfOp> {
    let mut gen = TraceGen::new();
    (0..n)
        .map(|_| {
            if with_mode_switch && rng.below(64) == 0 {
                PfOp::SetDataAware(rng.below(2) == 1)
            } else {
                PfOp::Access(gen.event(rng))
            }
        })
        .collect()
}
