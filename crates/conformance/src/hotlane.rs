//! Hot-lane-vs-slow-path lockstep harness: proves the batched replay fast
//! lane ([`droplet::System`]'s `access_hot`) is *access-by-access*
//! indistinguishable from the full demand path, not just digest-equal at
//! the end of a fixed workload.
//!
//! The production side offers every access to the hot lane first and falls
//! back to `access` only when the lane declines — exactly the batched
//! replay loop's routing. The reference side routes everything through the
//! slow path. Both sides are driven *directly*, below the core engine:
//! the core's span gating (`cont_page` heads, plan degeneracy) would mask
//! an ineligible-but-taken fast lane, so the harness bypasses it and
//! proves the stronger property that the lane is exact for **any** access
//! it accepts, however it is reached. The differ compares the returned
//! [`AccessResponse`] plus a [`SystemProbe`] on every op, and the armed
//! [`HotLaneMutation`] self-test shows a weakened eligibility check
//! surfaces within a few ops and shrinks to a tiny repro.

use crate::diff::Harness;
use droplet::{HotLaneMutation, System, SystemConfig, SystemProbe};
use droplet_cpu::{AccessResponse, MemorySystem};
use droplet_gap::TraceBundle;
use droplet_trace::{Cycle, MemOp, OpId};

/// Deterministic inter-access spacing: a few cycles, so consecutive
/// same-page accesses land while the line is still hot but DRAM bank and
/// bus state keep evolving between misses.
const STRIDE: Cycle = 4;

/// Differential harness pairing a hot-lane-first machine (production) with
/// a slow-path-only machine (reference) over one shared deterministic
/// clock.
pub struct HotLaneHarness<'a> {
    bundle: &'a TraceBundle,
    cfg: SystemConfig,
    mutation: HotLaneMutation,
    prod: Option<System<'a>>,
    refr: Option<System<'a>>,
    now: Cycle,
    step: u64,
}

impl<'a> HotLaneHarness<'a> {
    /// Builds the harness over `bundle`'s address space and arms `mutation`
    /// on the production side's hot lane. Use [`HotLaneMutation::None`] for
    /// the conformance run proper.
    pub fn new(bundle: &'a TraceBundle, cfg: SystemConfig, mutation: HotLaneMutation) -> Self {
        HotLaneHarness {
            bundle,
            cfg,
            mutation,
            prod: None,
            refr: None,
            now: 0,
            step: 0,
        }
    }
}

impl Harness for HotLaneHarness<'_> {
    type Op = MemOp;
    /// The access response itself (completion time and service level) plus
    /// the memory-side probe — any hot-lane shortcut that mistranslates,
    /// mistimes, or miscounts an access shows up on the op that took it.
    type Obs = (AccessResponse, SystemProbe);

    fn reset(&mut self) {
        let mut prod = System::new(self.cfg.clone(), self.bundle);
        prod.set_hot_lane_mutation(self.mutation);
        self.prod = Some(prod);
        self.refr = Some(System::new(self.cfg.clone(), self.bundle));
        self.now = 0;
        self.step = 0;
    }

    fn apply(&mut self, op: &MemOp) -> (Self::Obs, Self::Obs) {
        let now = self.now;
        let id = OpId(self.step);
        self.now += STRIDE;
        self.step += 1;

        let prod = self.prod.as_mut().expect("reset before apply");
        let got = prod
            .access_hot(op, id, now)
            .unwrap_or_else(|| prod.access(op, id, now));

        let refr = self.refr.as_mut().expect("reset before apply");
        let want = refr.access(op, id, now);

        ((got, prod.probe()), (want, refr.probe()))
    }

    fn dump(&self) -> (String, String) {
        let render = |side: &Option<System<'_>>| match side {
            Some(sys) => format!("probe: {:?}\nstats: {:?}", sys.probe(), sys.stats()),
            None => "<unreset>".into(),
        };
        (render(&self.prod), render(&self.refr))
    }
}
