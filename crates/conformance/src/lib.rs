//! Differential conformance suite for the optimized memory hierarchy.
//!
//! The hot demand path earned its speed through aggressive rewrites: packed
//! stamp-LRU caches, an SoA TLB with self-validating memos, a heap MSHR, a
//! dense packed page table, and hand-rolled prefetch engines. Golden digests
//! pin those rewrites on a handful of fixed workloads, but they cannot say
//! *which* component diverged, nor exercise inputs the fixed workloads never
//! produce. This crate closes that gap with three layers (DESIGN.md §12):
//!
//! 1. **Reference models** ([`reference`]) — small, obviously-correct
//!    re-implementations of each optimized structure's contract: a
//!    reorder-on-touch `Vec`-LRU set-associative cache, a reorder-on-touch
//!    TLB, a linear-scan MSHR, a `HashMap` page table, and per-prefetcher
//!    reference predictors (GHB, VLDP, stream, next-line) built from plain
//!    association lists and unbounded histories.
//! 2. **Differential engine** ([`diff`]) — replays one randomized operation
//!    stream through the production structure and its reference model in
//!    lockstep, reporting the first diverging step with both state dumps,
//!    plus a delta-debugging shrinker that minimizes any diverging stream.
//! 3. **Trace fuzzer** ([`fuzz`], [`harness`]) — seeded random generation of
//!    data-type-tagged access streams (sequential structure runs, skewed
//!    hot-page property reuse, dependency chains, intermediate bursts) and
//!    their lowerings to per-structure operation streams.
//!
//! Every fuzzed stream is deterministic in its seed, and every panic message
//! prints the `DROPLET_TEST_SEED` perturbation in effect, so any failure —
//! including ones found under exploratory seeds in CI — replays exactly.

pub mod diff;
pub mod fork;
pub mod fuzz;
pub mod harness;
pub mod hotlane;
pub mod reference;

pub use diff::{fuzz_and_verify, run_lockstep, shrink, Divergence, FuzzReport, Harness};
pub use fork::ForkHarness;
pub use fuzz::TraceGen;
pub use hotlane::HotLaneHarness;
