//! Reference set-associative cache: per-set reorder-on-touch LRU lists
//! (front = LRU, back = MRU), the semantics of the seed implementation that
//! the packed stamp-LRU rewrite must preserve. Mirrors the full observable
//! surface of `droplet_cache::SetAssocCache`, including every statistics
//! counter and the prefetch accuracy-tag lifecycle.

use droplet_cache::{CacheConfig, CacheStats, EvictedLine, FillInfo, HitInfo};
use droplet_trace::{Cycle, DataType};

/// One resident line with all its payload bits.
#[derive(Debug, Clone, Copy)]
struct RefLine {
    line: u64,
    dtype: DataType,
    ready_at: Cycle,
    dirty: bool,
    prefetched: bool,
    used: bool,
    tracked: Option<DataType>,
}

/// The reference cache.
#[derive(Debug)]
pub struct RefCache {
    num_sets: u64,
    assoc: usize,
    /// Per-set recency order: front = LRU, back = MRU.
    sets: Vec<Vec<RefLine>>,
    stats: CacheStats,
}

impl RefCache {
    /// An empty cache with the same geometry as the production one.
    pub fn new(cfg: &CacheConfig) -> Self {
        RefCache {
            num_sets: cfg.num_sets() as u64,
            assoc: cfg.assoc,
            sets: vec![Vec::new(); cfg.num_sets()],
            stats: CacheStats::default(),
        }
    }

    /// Accumulated statistics (compared verbatim against production).
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn set_of(&mut self, line: u64) -> &mut Vec<RefLine> {
        let s = (line % self.num_sets) as usize;
        &mut self.sets[s]
    }

    fn evicted(e: RefLine) -> EvictedLine {
        EvictedLine {
            line: e.line,
            dirty: e.dirty,
            prefetched: e.prefetched,
            used: e.used,
            dtype: e.dtype,
            tracked: e.tracked,
        }
    }

    /// Contract of `SetAssocCache::touch`.
    pub fn touch(
        &mut self,
        line: u64,
        now: Cycle,
        dtype: DataType,
        is_store: bool,
    ) -> Option<HitInfo> {
        self.stats.demand_accesses.bump(dtype);
        let set = self.set_of(line);
        let pos = set.iter().position(|l| l.line == line)?;
        let mut e = set.remove(pos);
        let first_prefetch_use = e.prefetched && !e.used;
        e.used = true;
        e.dirty |= is_store;
        let ready_at = e.ready_at.max(now);
        set.push(e);
        self.stats.demand_hits.bump(dtype);
        if first_prefetch_use {
            self.stats.prefetch_first_uses.bump(dtype);
        }
        if ready_at > now {
            self.stats.late_prefetch_hits.bump(dtype);
        }
        Some(HitInfo {
            ready_at,
            first_prefetch_use,
        })
    }

    /// Contract of `SetAssocCache::fill`: refresh keeps the earlier arrival
    /// time, a demand fill of a prefetched-unused line counts as its first
    /// use, the accuracy tag is first-writer-wins, and a full set evicts its
    /// LRU line.
    pub fn fill(&mut self, line: u64, info: FillInfo) -> Option<EvictedLine> {
        if info.prefetched {
            self.stats.prefetch_fills.bump(info.dtype);
        } else {
            self.stats.demand_fills.bump(info.dtype);
        }
        let assoc = self.assoc;
        let set = self.set_of(line);
        if let Some(pos) = set.iter().position(|l| l.line == line) {
            let mut e = set.remove(pos);
            e.ready_at = e.ready_at.min(info.ready_at);
            e.dirty |= info.dirty;
            if info.track && e.tracked.is_none() {
                e.tracked = Some(info.dtype);
            }
            let first_use = !info.prefetched && e.prefetched && !e.used;
            if first_use {
                e.used = true;
            }
            let resident_dtype = e.dtype;
            set.push(e);
            if first_use {
                // Note: counted against the *resident* line's type, not the
                // fill's — the fill is the use, the line is what was fetched.
                self.stats.prefetch_first_uses.bump(resident_dtype);
            }
            return None;
        }
        let evicted = if set.len() == assoc {
            Some(set.remove(0))
        } else {
            None
        };
        set.push(RefLine {
            line,
            dtype: info.dtype,
            ready_at: info.ready_at,
            dirty: info.dirty,
            prefetched: info.prefetched,
            used: false,
            tracked: info.track.then_some(info.dtype),
        });
        evicted.map(|v| {
            if v.prefetched && !v.used {
                self.stats.prefetch_unused_evictions.bump(v.dtype);
            }
            Self::evicted(v)
        })
    }

    /// Contract of `SetAssocCache::invalidate`.
    pub fn invalidate(&mut self, line: u64) -> Option<EvictedLine> {
        let set = self.set_of(line);
        let pos = set.iter().position(|l| l.line == line)?;
        let v = set.remove(pos);
        self.stats.inclusion_invalidations += 1;
        if v.prefetched && !v.used {
            self.stats.prefetch_unused_evictions.bump(v.dtype);
        }
        Some(Self::evicted(v))
    }

    /// Contract of `SetAssocCache::take_tracked` (pure tag operation).
    pub fn take_tracked(&mut self, line: u64) -> Option<DataType> {
        let set = self.set_of(line);
        let pos = set.iter().position(|l| l.line == line)?;
        set[pos].tracked.take()
    }

    /// Contract of `SetAssocCache::mark_tracked` (first-writer-wins).
    pub fn mark_tracked(&mut self, line: u64, dtype: DataType) -> bool {
        let set = self.set_of(line);
        match set.iter_mut().find(|l| l.line == line) {
            Some(e) => {
                if e.tracked.is_none() {
                    e.tracked = Some(dtype);
                }
                true
            }
            None => false,
        }
    }

    /// Whether any resident line carries an accuracy tag (computed by scan —
    /// the production `tracked_count` is an optimization over this).
    pub fn has_tracked(&self) -> bool {
        self.sets
            .iter()
            .any(|s| s.iter().any(|l| l.tracked.is_some()))
    }

    /// Side-effect-free residency probe.
    pub fn contains(&self, line: u64) -> bool {
        let s = (line % self.num_sets) as usize;
        self.sets[s].iter().any(|l| l.line == line)
    }

    /// Number of resident lines.
    pub fn occupancy(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }
}
