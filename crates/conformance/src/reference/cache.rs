//! Reference caches for every replacement policy.
//!
//! [`RefCache`] is the LRU reference: per-set reorder-on-touch lists
//! (front = LRU, back = MRU), the semantics of the seed implementation that
//! the packed stamp-LRU rewrite must preserve. [`RefRripCache`] is the
//! RRIP-family reference ([`RefSrrip`]/[`RefBrrip`]/[`RefDrrip`]/[`RefShip`]):
//! slot-stable per-set arrays carrying naive per-line RRPVs, signatures,
//! and outcome bits, written against the policy contract in
//! `droplet_cache::policy` rather than the production code. Both mirror the
//! full observable surface of `droplet_cache::SetAssocCache`, including
//! every statistics counter and the prefetch accuracy-tag lifecycle, and
//! both sit behind the [`CacheModel`] trait so one harness drives them all.

use droplet_cache::policy::{
    ship_signature, DuelRole, ReplacementPolicy, BRRIP_LONG_PERIOD, PSEL_INIT, PSEL_MAX, RRPV_LONG,
    RRPV_MAX, SHCT_ENTRIES, SHCT_INIT, SHCT_MAX,
};
use droplet_cache::{CacheConfig, CacheStats, EvictedLine, FillInfo, HitInfo};
use droplet_trace::{Cycle, DataType};

/// The observable cache surface shared by every reference model, so the
/// conformance harness can pair the production cache with whichever
/// reference the configured policy calls for.
pub trait CacheModel: std::fmt::Debug {
    /// Contract of `SetAssocCache::touch`.
    fn touch(&mut self, line: u64, now: Cycle, dtype: DataType, is_store: bool) -> Option<HitInfo>;
    /// Contract of `SetAssocCache::fill`.
    fn fill(&mut self, line: u64, info: FillInfo) -> Option<EvictedLine>;
    /// Contract of `SetAssocCache::invalidate`.
    fn invalidate(&mut self, line: u64) -> Option<EvictedLine>;
    /// Contract of `SetAssocCache::take_tracked`.
    fn take_tracked(&mut self, line: u64) -> Option<DataType>;
    /// Contract of `SetAssocCache::mark_tracked`.
    fn mark_tracked(&mut self, line: u64, dtype: DataType) -> bool;
    /// Contract of `SetAssocCache::has_tracked`.
    fn has_tracked(&self) -> bool;
    /// Contract of `SetAssocCache::contains`.
    fn contains(&self, line: u64) -> bool;
    /// Contract of `SetAssocCache::occupancy`.
    fn occupancy(&self) -> usize;
    /// Accumulated statistics (compared verbatim against production).
    fn stats(&self) -> &CacheStats;
}

/// The reference model for `cfg.policy`.
pub fn model_for(cfg: &CacheConfig) -> Box<dyn CacheModel> {
    match cfg.policy {
        ReplacementPolicy::Lru => Box::new(RefCache::new(cfg)),
        _ => Box::new(RefRripCache::new(cfg)),
    }
}

/// One resident line with all its payload bits.
#[derive(Debug, Clone, Copy)]
struct RefLine {
    line: u64,
    dtype: DataType,
    ready_at: Cycle,
    dirty: bool,
    prefetched: bool,
    used: bool,
    tracked: Option<DataType>,
}

/// The reference cache.
#[derive(Debug)]
pub struct RefCache {
    num_sets: u64,
    assoc: usize,
    /// Per-set recency order: front = LRU, back = MRU.
    sets: Vec<Vec<RefLine>>,
    stats: CacheStats,
}

impl RefCache {
    /// An empty cache with the same geometry as the production one.
    pub fn new(cfg: &CacheConfig) -> Self {
        RefCache {
            num_sets: cfg.num_sets() as u64,
            assoc: cfg.assoc,
            sets: vec![Vec::new(); cfg.num_sets()],
            stats: CacheStats::default(),
        }
    }

    /// Accumulated statistics (compared verbatim against production).
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn set_of(&mut self, line: u64) -> &mut Vec<RefLine> {
        let s = (line % self.num_sets) as usize;
        &mut self.sets[s]
    }

    fn evicted(e: RefLine) -> EvictedLine {
        EvictedLine {
            line: e.line,
            dirty: e.dirty,
            prefetched: e.prefetched,
            used: e.used,
            dtype: e.dtype,
            tracked: e.tracked,
        }
    }

    /// Contract of `SetAssocCache::touch`.
    pub fn touch(
        &mut self,
        line: u64,
        now: Cycle,
        dtype: DataType,
        is_store: bool,
    ) -> Option<HitInfo> {
        self.stats.demand_accesses.bump(dtype);
        let set = self.set_of(line);
        let pos = set.iter().position(|l| l.line == line)?;
        let mut e = set.remove(pos);
        let first_prefetch_use = e.prefetched && !e.used;
        e.used = true;
        e.dirty |= is_store;
        let ready_at = e.ready_at.max(now);
        set.push(e);
        self.stats.demand_hits.bump(dtype);
        if first_prefetch_use {
            self.stats.prefetch_first_uses.bump(dtype);
        }
        if ready_at > now {
            self.stats.late_prefetch_hits.bump(dtype);
        }
        Some(HitInfo {
            ready_at,
            first_prefetch_use,
        })
    }

    /// Contract of `SetAssocCache::fill`: refresh keeps the earlier arrival
    /// time, a demand fill of a prefetched-unused line counts as its first
    /// use, the accuracy tag is first-writer-wins, and a full set evicts its
    /// LRU line.
    pub fn fill(&mut self, line: u64, info: FillInfo) -> Option<EvictedLine> {
        if info.prefetched {
            self.stats.prefetch_fills.bump(info.dtype);
        } else {
            self.stats.demand_fills.bump(info.dtype);
        }
        let assoc = self.assoc;
        let set = self.set_of(line);
        if let Some(pos) = set.iter().position(|l| l.line == line) {
            let mut e = set.remove(pos);
            e.ready_at = e.ready_at.min(info.ready_at);
            e.dirty |= info.dirty;
            if info.track && e.tracked.is_none() {
                e.tracked = Some(info.dtype);
            }
            let first_use = !info.prefetched && e.prefetched && !e.used;
            if first_use {
                e.used = true;
            }
            let resident_dtype = e.dtype;
            set.push(e);
            if first_use {
                // Note: counted against the *resident* line's type, not the
                // fill's — the fill is the use, the line is what was fetched.
                self.stats.prefetch_first_uses.bump(resident_dtype);
            }
            return None;
        }
        let evicted = if set.len() == assoc {
            Some(set.remove(0))
        } else {
            None
        };
        set.push(RefLine {
            line,
            dtype: info.dtype,
            ready_at: info.ready_at,
            dirty: info.dirty,
            prefetched: info.prefetched,
            used: false,
            tracked: info.track.then_some(info.dtype),
        });
        evicted.map(|v| {
            if v.prefetched && !v.used {
                self.stats.prefetch_unused_evictions.bump(v.dtype);
            }
            Self::evicted(v)
        })
    }

    /// Contract of `SetAssocCache::invalidate`.
    pub fn invalidate(&mut self, line: u64) -> Option<EvictedLine> {
        let set = self.set_of(line);
        let pos = set.iter().position(|l| l.line == line)?;
        let v = set.remove(pos);
        self.stats.inclusion_invalidations += 1;
        if v.prefetched && !v.used {
            self.stats.prefetch_unused_evictions.bump(v.dtype);
        }
        Some(Self::evicted(v))
    }

    /// Contract of `SetAssocCache::take_tracked` (pure tag operation).
    pub fn take_tracked(&mut self, line: u64) -> Option<DataType> {
        let set = self.set_of(line);
        let pos = set.iter().position(|l| l.line == line)?;
        set[pos].tracked.take()
    }

    /// Contract of `SetAssocCache::mark_tracked` (first-writer-wins).
    pub fn mark_tracked(&mut self, line: u64, dtype: DataType) -> bool {
        let set = self.set_of(line);
        match set.iter_mut().find(|l| l.line == line) {
            Some(e) => {
                if e.tracked.is_none() {
                    e.tracked = Some(dtype);
                }
                true
            }
            None => false,
        }
    }

    /// Whether any resident line carries an accuracy tag (computed by scan —
    /// the production `tracked_count` is an optimization over this).
    pub fn has_tracked(&self) -> bool {
        self.sets
            .iter()
            .any(|s| s.iter().any(|l| l.tracked.is_some()))
    }

    /// Side-effect-free residency probe.
    pub fn contains(&self, line: u64) -> bool {
        let s = (line % self.num_sets) as usize;
        self.sets[s].iter().any(|l| l.line == line)
    }

    /// Number of resident lines.
    pub fn occupancy(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }
}

impl CacheModel for RefCache {
    fn touch(&mut self, line: u64, now: Cycle, dtype: DataType, is_store: bool) -> Option<HitInfo> {
        RefCache::touch(self, line, now, dtype, is_store)
    }
    fn fill(&mut self, line: u64, info: FillInfo) -> Option<EvictedLine> {
        RefCache::fill(self, line, info)
    }
    fn invalidate(&mut self, line: u64) -> Option<EvictedLine> {
        RefCache::invalidate(self, line)
    }
    fn take_tracked(&mut self, line: u64) -> Option<DataType> {
        RefCache::take_tracked(self, line)
    }
    fn mark_tracked(&mut self, line: u64, dtype: DataType) -> bool {
        RefCache::mark_tracked(self, line, dtype)
    }
    fn has_tracked(&self) -> bool {
        RefCache::has_tracked(self)
    }
    fn contains(&self, line: u64) -> bool {
        RefCache::contains(self, line)
    }
    fn occupancy(&self) -> usize {
        RefCache::occupancy(self)
    }
    fn stats(&self) -> &CacheStats {
        RefCache::stats(self)
    }
}

// ---------------------------------------------------------------------------
// RRIP family
// ---------------------------------------------------------------------------

/// One resident line in the RRIP reference: the [`RefLine`] payload plus
/// naive per-line replacement state.
#[derive(Debug, Clone, Copy)]
struct RefRripLine {
    line: u64,
    dtype: DataType,
    ready_at: Cycle,
    dirty: bool,
    prefetched: bool,
    used: bool,
    tracked: Option<DataType>,
    /// 2-bit re-reference prediction value.
    rrpv: u64,
    /// SHiP region signature recorded at fill.
    sig: u16,
    /// SHiP outcome bit: re-referenced since fill.
    reused: bool,
}

/// The RRIP-family reference cache (SRRIP, BRRIP, DRRIP, SHiP).
///
/// Ways are *slot-stable*: each set is a fixed array of `assoc` optional
/// lines, a new line lands in the slot its victim vacated, and victim scans
/// run in slot order — the physical-way tie-breaking the production flat
/// arrays exhibit, modeled directly instead of with reorder-on-touch lists.
#[derive(Debug)]
pub struct RefRripCache {
    policy: ReplacementPolicy,
    num_sets: u64,
    sets: Vec<Vec<Option<RefRripLine>>>,
    /// DRRIP selector (≥ [`PSEL_INIT`] ⇒ followers insert BRRIP-style).
    psel: u16,
    /// Deterministic BRRIP bimodal counter.
    brrip_ctr: u64,
    /// SHiP signature history counter table.
    shct: Vec<u8>,
    stats: CacheStats,
}

impl RefRripCache {
    /// An empty reference with the geometry and policy of `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.policy` is [`ReplacementPolicy::Lru`] — that contract
    /// belongs to [`RefCache`].
    pub fn new(cfg: &CacheConfig) -> Self {
        assert!(
            cfg.policy.is_rrip_family(),
            "RefRripCache models the RRIP family; use RefCache for LRU"
        );
        RefRripCache {
            policy: cfg.policy,
            num_sets: cfg.num_sets() as u64,
            sets: vec![vec![None; cfg.assoc]; cfg.num_sets()],
            psel: PSEL_INIT,
            brrip_ctr: 0,
            shct: vec![SHCT_INIT; SHCT_ENTRIES],
            stats: CacheStats::default(),
        }
    }

    /// Accumulated statistics (compared verbatim against production).
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn evicted(e: RefRripLine) -> EvictedLine {
        EvictedLine {
            line: e.line,
            dirty: e.dirty,
            prefetched: e.prefetched,
            used: e.used,
            dtype: e.dtype,
            tracked: e.tracked,
        }
    }

    fn slot_of(&self, line: u64) -> (usize, Option<usize>) {
        let s = (line % self.num_sets) as usize;
        let pos = self.sets[s]
            .iter()
            .position(|l| l.is_some_and(|l| l.line == line));
        (s, pos)
    }

    /// Insertion RRPV for a new line, advancing PSEL / bimodal state — the
    /// policy contract (`droplet_cache::policy`) restated naively: victim
    /// SHCT training has already happened when this runs.
    fn insertion_rrpv(&mut self, line: u64, prefetched: bool) -> u64 {
        let set = (line % self.num_sets) as usize;
        let effective = match self.policy {
            ReplacementPolicy::Drrip => {
                let role = DuelRole::of_set(set, self.num_sets as usize);
                if !prefetched {
                    match role {
                        DuelRole::SrripLeader => self.psel = (self.psel + 1).min(PSEL_MAX),
                        DuelRole::BrripLeader => self.psel = self.psel.saturating_sub(1),
                        DuelRole::Follower => {}
                    }
                }
                match role {
                    DuelRole::SrripLeader => ReplacementPolicy::Srrip,
                    DuelRole::BrripLeader => ReplacementPolicy::Brrip,
                    DuelRole::Follower => {
                        if self.psel >= PSEL_INIT {
                            ReplacementPolicy::Brrip
                        } else {
                            ReplacementPolicy::Srrip
                        }
                    }
                }
            }
            p => p,
        };
        match effective {
            ReplacementPolicy::Brrip => {
                self.brrip_ctr += 1;
                if self.brrip_ctr.is_multiple_of(BRRIP_LONG_PERIOD) {
                    RRPV_LONG
                } else {
                    RRPV_MAX
                }
            }
            ReplacementPolicy::Ship => {
                if self.shct[ship_signature(line) as usize] == 0 {
                    RRPV_MAX
                } else {
                    RRPV_LONG
                }
            }
            _ => RRPV_LONG, // SRRIP
        }
    }
}

impl CacheModel for RefRripCache {
    /// A hit promotes to RRPV 0; under SHiP the first re-reference also
    /// trains the line's signature up (once, via the outcome bit).
    fn touch(&mut self, line: u64, now: Cycle, dtype: DataType, is_store: bool) -> Option<HitInfo> {
        self.stats.demand_accesses.bump(dtype);
        let ship = self.policy == ReplacementPolicy::Ship;
        let (s, pos) = self.slot_of(line);
        let e = self.sets[s][pos?].as_mut().unwrap();
        e.rrpv = 0;
        if ship && !e.reused {
            e.reused = true;
            let c = &mut self.shct[e.sig as usize];
            *c = (*c + 1).min(SHCT_MAX);
        }
        let first_prefetch_use = e.prefetched && !e.used;
        e.used = true;
        e.dirty |= is_store;
        let ready_at = e.ready_at.max(now);
        self.stats.demand_hits.bump(dtype);
        if first_prefetch_use {
            self.stats.prefetch_first_uses.bump(dtype);
        }
        if ready_at > now {
            self.stats.late_prefetch_hits.bump(dtype);
        }
        Some(HitInfo {
            ready_at,
            first_prefetch_use,
        })
    }

    /// A refresh promotes to RRPV 0 without touching SHiP state; a new
    /// line takes the first free slot, else the lowest-indexed way at
    /// [`RRPV_MAX`] after aging. A victim evicted dead trains its signature
    /// down *before* the incoming line's insertion depth is predicted.
    fn fill(&mut self, line: u64, info: FillInfo) -> Option<EvictedLine> {
        if info.prefetched {
            self.stats.prefetch_fills.bump(info.dtype);
        } else {
            self.stats.demand_fills.bump(info.dtype);
        }
        let ship = self.policy == ReplacementPolicy::Ship;
        let (s, pos) = self.slot_of(line);
        if let Some(pos) = pos {
            let e = self.sets[s][pos].as_mut().unwrap();
            e.rrpv = 0;
            e.ready_at = e.ready_at.min(info.ready_at);
            e.dirty |= info.dirty;
            if info.track && e.tracked.is_none() {
                e.tracked = Some(info.dtype);
            }
            if !info.prefetched && e.prefetched && !e.used {
                e.used = true;
                let resident_dtype = e.dtype;
                self.stats.prefetch_first_uses.bump(resident_dtype);
            }
            return None;
        }
        let slot = match self.sets[s].iter().position(Option::is_none) {
            Some(free) => free,
            None => loop {
                let found = self.sets[s]
                    .iter()
                    .position(|l| l.unwrap().rrpv >= RRPV_MAX);
                match found {
                    Some(i) => break i,
                    None => {
                        for l in self.sets[s].iter_mut() {
                            l.as_mut().unwrap().rrpv += 1;
                        }
                    }
                }
            },
        };
        let evicted = self.sets[s][slot].take();
        if let Some(v) = evicted {
            if v.prefetched && !v.used {
                self.stats.prefetch_unused_evictions.bump(v.dtype);
            }
            if ship && !v.reused {
                let c = &mut self.shct[v.sig as usize];
                *c = c.saturating_sub(1);
            }
        }
        let rrpv = self.insertion_rrpv(line, info.prefetched);
        self.sets[s][slot] = Some(RefRripLine {
            line,
            dtype: info.dtype,
            ready_at: info.ready_at,
            dirty: info.dirty,
            prefetched: info.prefetched,
            used: false,
            tracked: info.track.then_some(info.dtype),
            rrpv,
            sig: if ship { ship_signature(line) } else { 0 },
            reused: false,
        });
        evicted.map(Self::evicted)
    }

    /// Invalidation frees the slot without SHCT training (back-invalidation
    /// is not a replacement decision, so it must not teach the predictor).
    fn invalidate(&mut self, line: u64) -> Option<EvictedLine> {
        let (s, pos) = self.slot_of(line);
        let v = self.sets[s][pos?].take().unwrap();
        self.stats.inclusion_invalidations += 1;
        if v.prefetched && !v.used {
            self.stats.prefetch_unused_evictions.bump(v.dtype);
        }
        Some(Self::evicted(v))
    }

    fn take_tracked(&mut self, line: u64) -> Option<DataType> {
        let (s, pos) = self.slot_of(line);
        self.sets[s][pos?].as_mut().unwrap().tracked.take()
    }

    fn mark_tracked(&mut self, line: u64, dtype: DataType) -> bool {
        let (s, pos) = self.slot_of(line);
        match pos {
            Some(pos) => {
                let e = self.sets[s][pos].as_mut().unwrap();
                if e.tracked.is_none() {
                    e.tracked = Some(dtype);
                }
                true
            }
            None => false,
        }
    }

    fn has_tracked(&self) -> bool {
        self.sets
            .iter()
            .flatten()
            .any(|l| l.is_some_and(|l| l.tracked.is_some()))
    }

    fn contains(&self, line: u64) -> bool {
        self.slot_of(line).1.is_some()
    }

    fn occupancy(&self) -> usize {
        self.sets.iter().flatten().filter(|l| l.is_some()).count()
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }
}

/// [`RefRripCache`] under a SRRIP configuration.
pub type RefSrrip = RefRripCache;
/// [`RefRripCache`] under a BRRIP configuration.
pub type RefBrrip = RefRripCache;
/// [`RefRripCache`] under a DRRIP configuration.
pub type RefDrrip = RefRripCache;
/// [`RefRripCache`] under a SHiP configuration.
pub type RefShip = RefRripCache;
