//! Reference page table: one `HashMap` from VPN to entry, the semantics the
//! production dense-window/spill split must preserve for *every* address —
//! inside the dense window, past its limit, and below the space base.

use droplet_trace::{AddressSpace, PageEntry, PhysAddr, VirtAddr, PAGE_BYTES};
use std::collections::HashMap;

/// The reference page table.
#[derive(Debug)]
pub struct RefPageTable {
    map: HashMap<u64, PageEntry>,
    next_frame: u64,
    walks: u64,
}

impl RefPageTable {
    /// An empty table; frames assigned sequentially from 1 on first touch.
    pub fn new() -> Self {
        RefPageTable {
            map: HashMap::new(),
            next_frame: 1,
            walks: 0,
        }
    }

    fn entry_of(&mut self, va: VirtAddr, space: &AddressSpace) -> PageEntry {
        let vpn = va.page_number();
        if let Some(e) = self.map.get(&vpn) {
            return *e;
        }
        let e = PageEntry {
            frame: self.next_frame,
            structure: space.is_structure_page(va),
        };
        self.next_frame += 1;
        self.map.insert(vpn, e);
        e
    }

    /// Contract of `PageTable::translate`: first-touch frame allocation,
    /// structure bit from the allocating region, one counted walk.
    pub fn translate(&mut self, va: VirtAddr, space: &AddressSpace) -> (PhysAddr, PageEntry) {
        let entry = self.entry_of(va, space);
        self.walks += 1;
        (
            PhysAddr::new(entry.frame * PAGE_BYTES + va.page_offset()),
            entry,
        )
    }

    /// Contract of `PageTable::populate`: maps without counting a walk.
    pub fn populate(&mut self, va: VirtAddr, space: &AddressSpace) {
        let _ = self.entry_of(va, space);
    }

    /// Contract of `PageTable::lookup`: probe without populating.
    pub fn lookup(&self, va: VirtAddr) -> Option<PageEntry> {
        self.map.get(&va.page_number()).copied()
    }

    /// Number of mapped pages.
    pub fn mapped_pages(&self) -> usize {
        self.map.len()
    }

    /// Number of counted page walks.
    pub fn translations(&self) -> u64 {
        self.walks
    }
}

impl Default for RefPageTable {
    fn default() -> Self {
        Self::new()
    }
}
