//! Executable reference models: the *contract* of each optimized structure,
//! restated with the simplest data structures that can express it.
//!
//! These models trade every optimization in the production code — packed
//! arrays, recency stamps, memo slots, heaps, dense tables — for linear
//! scans over plain `Vec`s and reorder-on-touch LRU lists. They are the
//! executable specification: when a differential run diverges, the reference
//! model's answer is the correct one by definition, and the production
//! structure has a bug (or the contract changed and both must move together).

pub mod cache;
pub mod mshr;
pub mod page;
pub mod prefetch;
pub mod tlb;

pub use cache::{
    model_for, CacheModel, RefBrrip, RefCache, RefDrrip, RefRripCache, RefShip, RefSrrip,
};
pub use mshr::RefMshr;
pub use page::RefPageTable;
pub use prefetch::{RefGhb, RefNextLine, RefStream, RefVldp};
pub use tlb::RefTlb;
