//! Reference TLB: one reorder-on-touch LRU list (front = LRU, back = MRU),
//! the semantics of the seed `Vec` implementation that the stamp-LRU SoA
//! rewrite must preserve — including the MTLB drop-on-fault rule, where a
//! failed walk leaves the TLB completely untouched.

use droplet_trace::PageEntry;

/// The reference TLB.
#[derive(Debug)]
pub struct RefTlb {
    capacity: usize,
    /// Recency order: front = LRU, back = MRU.
    entries: Vec<(u64, PageEntry)>,
    hits: u64,
    misses: u64,
    invalidations: u64,
}

impl RefTlb {
    /// An empty TLB of the given capacity.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "TLB capacity must be positive");
        RefTlb {
            capacity,
            entries: Vec::new(),
            hits: 0,
            misses: 0,
            invalidations: 0,
        }
    }

    /// Contract of `Tlb::access_or_walk`: hit refreshes recency and returns
    /// the cached entry; miss walks, and a faulting walk (`None`) leaves
    /// contents, recency, and counters all untouched.
    pub fn access_or_walk(
        &mut self,
        vpn: u64,
        walk: impl FnOnce() -> Option<PageEntry>,
    ) -> Option<(PageEntry, bool)> {
        if let Some(pos) = self.entries.iter().position(|(v, _)| *v == vpn) {
            let e = self.entries.remove(pos);
            self.entries.push(e);
            self.hits += 1;
            return Some((e.1, true));
        }
        let entry = walk()?;
        self.misses += 1;
        if self.entries.len() == self.capacity {
            self.entries.remove(0);
        }
        self.entries.push((vpn, entry));
        Some((entry, false))
    }

    /// Contract of `Tlb::access`.
    pub fn access(&mut self, vpn: u64, walk: impl FnOnce() -> PageEntry) -> Option<PageEntry> {
        let (entry, hit) = self
            .access_or_walk(vpn, || Some(walk()))
            .expect("infallible walk");
        hit.then_some(entry)
    }

    /// Contract of `Tlb::probe` (no LRU or counter side effects).
    pub fn probe(&self, vpn: u64) -> Option<PageEntry> {
        self.entries
            .iter()
            .find(|(v, _)| *v == vpn)
            .map(|(_, e)| *e)
    }

    /// Contract of `Tlb::invalidate`.
    pub fn invalidate(&mut self, vpn: u64) -> bool {
        if let Some(pos) = self.entries.iter().position(|(v, _)| *v == vpn) {
            self.entries.remove(pos);
            self.invalidations += 1;
            true
        } else {
            false
        }
    }

    /// Contract of `Tlb::invalidate_matching` (shootdown by predicate).
    pub fn invalidate_matching(&mut self, mut pred: impl FnMut(u64, &PageEntry) -> bool) -> usize {
        let before = self.entries.len();
        self.entries.retain(|(v, e)| !pred(*v, e));
        let dropped = before - self.entries.len();
        self.invalidations += dropped as u64;
        dropped
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the TLB holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// (hits, misses, invalidations) counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.invalidations)
    }
}
