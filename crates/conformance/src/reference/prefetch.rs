//! Reference prefetch predictors: the contracts of the four core-side
//! engines restated with unbounded histories and linear-scan association
//! lists instead of rings, `HashMap`s, and packed tracker tables. Each
//! implements the production `Prefetcher` trait so the differential engine
//! drives both sides through one interface.

use droplet_prefetch::{
    AccessEvent, EventKind, GhbConfig, PrefetchRequest, Prefetcher, StreamConfig, VldpConfig,
};
use droplet_trace::{LINE_BYTES, PAGE_BYTES};

fn lines_per_page() -> u64 {
    PAGE_BYTES / LINE_BYTES
}

/// Reference next-N-line: on every L1 miss, the next `degree` sequential
/// lines, stopping at the page boundary.
#[derive(Debug, Clone)]
pub struct RefNextLine {
    degree: u64,
    issued: u64,
}

impl RefNextLine {
    /// A next-`degree`-line reference predictor.
    pub fn new(degree: u64) -> Self {
        assert!(degree > 0, "degree must be positive");
        RefNextLine { degree, issued: 0 }
    }
}

impl Prefetcher for RefNextLine {
    fn on_access(&mut self, ev: &AccessEvent, out: &mut Vec<PrefetchRequest>) {
        if ev.kind != EventKind::L1Miss {
            return;
        }
        let page_last = (ev.page() + 1) * lines_per_page() - 1;
        for step in 1..=self.degree {
            let next = ev.line() + step;
            if next > page_last {
                break;
            }
            out.push(PrefetchRequest {
                vline: next,
                dtype: ev.dtype,
                into_l3_queue: false,
            });
            self.issued += 1;
        }
    }

    fn name(&self) -> &'static str {
        "ref-next-line"
    }

    fn issued(&self) -> u64 {
        self.issued
    }

    fn box_clone(&self) -> Box<dyn Prefetcher> {
        Box::new(self.clone())
    }
}

/// Reference G/DC GHB: the miss history is an unbounded `Vec` (absolute
/// position = index) with an explicit validity window of the last
/// `ghb_entries` positions; the index table is a FIFO-ordered association
/// list. The contract: look up the previous occurrence of the current delta
/// pair *before* recording the current miss, replay the deltas that followed
/// it, then point the index at the current occurrence (an existing key keeps
/// its FIFO position).
#[derive(Debug, Clone)]
pub struct RefGhb {
    cfg: GhbConfig,
    /// Full global miss history; `history[pos]` is the line at absolute
    /// position `pos`.
    history: Vec<u64>,
    /// FIFO-ordered (delta pair → absolute position) association list.
    index: Vec<((i64, i64), u64)>,
    last_line: Option<u64>,
    last_delta: Option<i64>,
    issued: u64,
}

impl RefGhb {
    /// An empty reference GHB.
    pub fn new(cfg: GhbConfig) -> Self {
        assert!(
            cfg.index_entries > 0 && cfg.ghb_entries > 1 && cfg.degree > 0,
            "degenerate GHB config"
        );
        RefGhb {
            cfg,
            history: Vec::new(),
            index: Vec::new(),
            last_line: None,
            last_delta: None,
            issued: 0,
        }
    }

    /// The line at absolute position `pos`, if still inside the buffer
    /// window (the last `ghb_entries` recorded misses).
    fn get(&self, pos: u64) -> Option<u64> {
        let head = self.history.len() as u64;
        if pos < head && head - pos <= self.cfg.ghb_entries as u64 {
            Some(self.history[pos as usize])
        } else {
            None
        }
    }

    fn index_insert(&mut self, key: (i64, i64), pos: u64) {
        if let Some(e) = self.index.iter_mut().find(|(k, _)| *k == key) {
            e.1 = pos; // existing key: update in place, FIFO position kept
            return;
        }
        if self.index.len() == self.cfg.index_entries {
            self.index.remove(0);
        }
        self.index.push((key, pos));
    }
}

impl Prefetcher for RefGhb {
    fn on_access(&mut self, ev: &AccessEvent, out: &mut Vec<PrefetchRequest>) {
        if ev.kind != EventKind::L1Miss {
            return;
        }
        let line = ev.line();
        let delta = self.last_line.map(|l| line as i64 - l as i64);

        let key = match (self.last_delta, delta) {
            (Some(d2), Some(d1)) => Some((d2, d1)),
            _ => None,
        };
        let prev_pos = key.and_then(|k| {
            self.index
                .iter()
                .find(|(key, _)| *key == k)
                .map(|(_, pos)| *pos)
        });

        let pos_cur = self.history.len() as u64;
        self.history.push(line);

        if let Some(prev) = prev_pos {
            let mut addr = line as i64;
            for pos in prev..prev + self.cfg.degree as u64 {
                let (Some(cur), Some(next)) = (self.get(pos), self.get(pos + 1)) else {
                    break;
                };
                addr += next as i64 - cur as i64;
                if addr < 0 {
                    break;
                }
                out.push(PrefetchRequest {
                    vline: addr as u64,
                    dtype: ev.dtype,
                    into_l3_queue: false,
                });
                self.issued += 1;
            }
        }

        if let Some(k) = key {
            self.index_insert(k, pos_cur);
        }
        self.last_delta = delta;
        self.last_line = Some(line);
    }

    fn name(&self) -> &'static str {
        "ref-ghb-gdc"
    }

    fn issued(&self) -> u64 {
        self.issued
    }

    fn box_clone(&self) -> Box<dyn Prefetcher> {
        Box::new(self.clone())
    }
}

/// One page's delta history in the reference DRB.
#[derive(Debug, Clone)]
struct RefDrbEntry {
    page: u64,
    last_offset: i64,
    first_offset: i64,
    history: Vec<i64>,
    accesses: u64,
    lru: u64,
}

/// A delta table as an association list. Eviction picks the minimum
/// `(lru, key)` pair — the explicit deterministic tie-break the production
/// `HashMap` implementation must honor (the PR 2 canary bug).
#[derive(Debug, Clone)]
struct RefDeltaTable {
    capacity: usize,
    rows: Vec<(Vec<i64>, i64, u64)>, // (key, next delta, lru)
}

impl RefDeltaTable {
    fn new(capacity: usize) -> Self {
        RefDeltaTable {
            capacity,
            rows: Vec::new(),
        }
    }

    fn update(&mut self, key: &[i64], next: i64, clock: u64) {
        if let Some(row) = self.rows.iter_mut().find(|(k, _, _)| k == key) {
            row.1 = next;
            row.2 = clock;
            return;
        }
        if self.rows.len() == self.capacity {
            let victim = self
                .rows
                .iter()
                .enumerate()
                .min_by(|(_, (ka, _, la)), (_, (kb, _, lb))| la.cmp(lb).then_with(|| ka.cmp(kb)))
                .map(|(i, _)| i)
                .expect("table is full, hence non-empty");
            self.rows.remove(victim);
        }
        self.rows.push((key.to_vec(), next, clock));
    }

    fn predict(&mut self, key: &[i64], clock: u64) -> Option<i64> {
        let row = self.rows.iter_mut().find(|(k, _, _)| k == key)?;
        row.2 = clock;
        Some(row.1)
    }
}

/// Reference VLDP: DRB, OPT, and cascaded DPTs as plain vectors. The
/// contract per L1 miss: bump the clock; a new page consults the OPT and
/// allocates a DRB entry (LRU eviction); a repeated line learns nothing; a
/// new delta trains the OPT (second access only) and every DPT keyed by the
/// *pre-append* history, then predicts cascaded longest-history-first up to
/// `degree` steps, each prediction bumping its DPT row's recency.
#[derive(Debug, Clone)]
pub struct RefVldp {
    cfg: VldpConfig,
    drb: Vec<RefDrbEntry>,
    opt: Vec<Option<i64>>,
    dpt: Vec<RefDeltaTable>,
    clock: u64,
    issued: u64,
}

impl RefVldp {
    /// An idle reference VLDP.
    pub fn new(cfg: VldpConfig) -> Self {
        assert!(
            cfg.drb_pages > 0 && cfg.opt_entries > 0 && cfg.dpt_entries > 0 && cfg.levels > 0,
            "degenerate VLDP config"
        );
        RefVldp {
            drb: Vec::new(),
            opt: vec![None; cfg.opt_entries],
            dpt: (0..cfg.levels)
                .map(|_| RefDeltaTable::new(cfg.dpt_entries))
                .collect(),
            cfg,
            clock: 0,
            issued: 0,
        }
    }

    fn predict(&mut self, history: &[i64]) -> Option<i64> {
        let clock = self.clock;
        for len in (1..=history.len().min(self.cfg.levels)).rev() {
            let key = &history[history.len() - len..];
            if let Some(d) = self.dpt[len - 1].predict(key, clock) {
                return Some(d);
            }
        }
        None
    }

    fn emit(
        &mut self,
        page: u64,
        offset: i64,
        ev: &AccessEvent,
        out: &mut Vec<PrefetchRequest>,
    ) -> bool {
        if offset < 0 || offset >= lines_per_page() as i64 {
            return false;
        }
        out.push(PrefetchRequest {
            vline: page * lines_per_page() + offset as u64,
            dtype: ev.dtype,
            into_l3_queue: false,
        });
        self.issued += 1;
        true
    }
}

impl Prefetcher for RefVldp {
    fn on_access(&mut self, ev: &AccessEvent, out: &mut Vec<PrefetchRequest>) {
        if ev.kind != EventKind::L1Miss {
            return;
        }
        self.clock += 1;
        let clock = self.clock;
        let page = ev.page();
        let offset = ev.line_in_page() as i64;

        let Some(i) = self.drb.iter().position(|e| e.page == page) else {
            if let Some(d) = self.opt[(offset as usize) % self.cfg.opt_entries] {
                self.emit(page, offset + d, ev, out);
            }
            let entry = RefDrbEntry {
                page,
                last_offset: offset,
                first_offset: offset,
                history: Vec::new(),
                accesses: 1,
                lru: clock,
            };
            if self.drb.len() < self.cfg.drb_pages {
                self.drb.push(entry);
            } else {
                let victim = self
                    .drb
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| e.lru)
                    .map(|(i, _)| i)
                    .expect("DRB is full, hence non-empty");
                self.drb[victim] = entry;
            }
            return;
        };

        self.drb[i].lru = clock;
        let delta = offset - self.drb[i].last_offset;
        if delta == 0 {
            return; // same line again; nothing to learn
        }
        self.drb[i].last_offset = offset;
        self.drb[i].accesses += 1;
        let first_offset = self.drb[i].first_offset;
        let accesses = self.drb[i].accesses;
        let prior = self.drb[i].history.clone();

        if accesses == 2 {
            self.opt[(first_offset as usize) % self.cfg.opt_entries] = Some(delta);
        }
        for len in 1..=prior.len().min(self.cfg.levels) {
            let key = prior[prior.len() - len..].to_vec();
            self.dpt[len - 1].update(&key, delta, clock);
        }

        let mut history = prior;
        history.push(delta);
        if history.len() > self.cfg.levels {
            history.remove(0);
        }
        self.drb[i].history = history.clone();

        let mut cur = offset;
        let mut h = history;
        for _ in 0..self.cfg.degree {
            let Some(d) = self.predict(&h) else { break };
            cur += d;
            if !self.emit(page, cur, ev, out) {
                break;
            }
            h.push(d);
            if h.len() > self.cfg.levels {
                h.remove(0);
            }
        }
    }

    fn name(&self) -> &'static str {
        "ref-vldp"
    }

    fn issued(&self) -> u64 {
        self.issued
    }

    fn box_clone(&self) -> Box<dyn Prefetcher> {
        Box::new(self.clone())
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RefTrackerState {
    Training,
    Monitoring,
}

#[derive(Debug, Clone, Copy)]
struct RefTracker {
    page: u64,
    state: RefTrackerState,
    last_line: u64,
    dir: i64,
    confirmations: u8,
    next_prefetch: u64,
    lru: u64,
    dtype: droplet_trace::DataType,
}

/// Reference stream prefetcher: page-bounded trackers in a plain `Vec` with
/// LRU replacement. The contract: conventional mode snoops L1 misses only,
/// data-aware mode accepts any structure event; two same-direction
/// confirmations arm a stream; a monitored access within twice the distance
/// advances the window (re-aiming a lagging head just ahead of the trigger);
/// any other move re-arms training; emission walks up to `degree` lines
/// bounded by the distance and the page, clamping a stepped-out head to the
/// page edge; switching modes clears every tracker.
#[derive(Debug, Clone)]
pub struct RefStream {
    cfg: StreamConfig,
    trackers: Vec<RefTracker>,
    clock: u64,
    issued: u64,
}

impl RefStream {
    /// An idle reference streamer.
    pub fn new(cfg: StreamConfig) -> Self {
        assert!(
            cfg.trackers > 0 && cfg.distance > 0,
            "degenerate stream config"
        );
        RefStream {
            cfg,
            trackers: Vec::new(),
            clock: 0,
            issued: 0,
        }
    }

    fn accepts(&self, ev: &AccessEvent) -> bool {
        if self.cfg.data_aware {
            ev.is_structure
        } else {
            ev.kind == EventKind::L1Miss
        }
    }

    fn page_bounds(page: u64) -> (u64, u64) {
        (page * lines_per_page(), (page + 1) * lines_per_page() - 1)
    }

    fn emit(&mut self, idx: usize, trigger: u64, out: &mut Vec<PrefetchRequest>) {
        let (lo, hi) = Self::page_bounds(self.trackers[idx].page);
        let mut emitted = 0;
        while emitted < self.cfg.degree {
            let t = &mut self.trackers[idx];
            let next = t.next_prefetch;
            if next.abs_diff(trigger) > self.cfg.distance || next < lo || next > hi {
                break;
            }
            out.push(PrefetchRequest {
                vline: next,
                dtype: t.dtype,
                into_l3_queue: self.cfg.data_aware,
            });
            self.issued += 1;
            emitted += 1;
            let stepped = next as i64 + t.dir;
            if stepped < lo as i64 || stepped > hi as i64 {
                t.next_prefetch = if t.dir > 0 { hi } else { lo };
                break;
            }
            t.next_prefetch = stepped as u64;
        }
    }
}

impl Prefetcher for RefStream {
    fn on_access(&mut self, ev: &AccessEvent, out: &mut Vec<PrefetchRequest>) {
        if !self.accepts(ev) {
            return;
        }
        self.clock += 1;
        let clock = self.clock;
        let line = ev.line();
        let page = ev.page();

        if let Some(idx) = self.trackers.iter().position(|t| t.page == page) {
            self.trackers[idx].lru = clock;
            match self.trackers[idx].state {
                RefTrackerState::Training => {
                    let t = &mut self.trackers[idx];
                    let step = line as i64 - t.last_line as i64;
                    if step != 0 {
                        let dir = step.signum();
                        if t.confirmations == 0 || dir == t.dir {
                            t.dir = dir;
                            t.confirmations += 1;
                        } else {
                            t.dir = dir;
                            t.confirmations = 1;
                        }
                        t.last_line = line;
                        if t.confirmations >= 2 {
                            t.state = RefTrackerState::Monitoring;
                            t.next_prefetch = (line as i64 + t.dir).max(0) as u64;
                            self.emit(idx, line, out);
                        }
                    }
                }
                RefTrackerState::Monitoring => {
                    let t = &mut self.trackers[idx];
                    let ahead = (line as i64 - t.last_line as i64) * t.dir;
                    if ahead > 0 && ahead <= 2 * self.cfg.distance as i64 {
                        t.last_line = line;
                        if (t.next_prefetch as i64 - line as i64) * t.dir <= 0 {
                            t.next_prefetch = (line as i64 + t.dir).max(0) as u64;
                        }
                        self.emit(idx, line, out);
                    } else if ahead != 0 {
                        t.state = RefTrackerState::Training;
                        t.dir = 0;
                        t.confirmations = 0;
                        t.last_line = line;
                        t.next_prefetch = line;
                    }
                }
            }
            return;
        }

        let t = RefTracker {
            page,
            state: RefTrackerState::Training,
            last_line: line,
            dir: 0,
            confirmations: 0,
            next_prefetch: line,
            lru: clock,
            dtype: ev.dtype,
        };
        if self.trackers.len() < self.cfg.trackers {
            self.trackers.push(t);
        } else {
            let victim = self
                .trackers
                .iter()
                .enumerate()
                .min_by_key(|(_, t)| t.lru)
                .map(|(i, _)| i)
                .expect("tracker table is full, hence non-empty");
            self.trackers[victim] = t;
        }
    }

    fn name(&self) -> &'static str {
        "ref-stream"
    }

    fn issued(&self) -> u64 {
        self.issued
    }

    fn box_clone(&self) -> Box<dyn Prefetcher> {
        Box::new(self.clone())
    }

    fn set_data_aware(&mut self, on: bool) {
        if self.cfg.data_aware != on {
            self.cfg.data_aware = on;
            self.trackers.clear();
        }
    }

    fn is_data_aware(&self) -> bool {
        self.cfg.data_aware
    }
}
