//! Reference MSHR file: a flat `Vec` of slot free-times with linear-scan
//! minimum, the semantics of the seed implementation the binary min-heap
//! must preserve. Slots are interchangeable, so only the *multiset* of free
//! times is observable — `earliest_free` and `busy_at` cover it entirely.

use droplet_trace::Cycle;

/// The reference MSHR file.
#[derive(Debug)]
pub struct RefMshr {
    slots: Vec<Cycle>,
}

impl RefMshr {
    /// A file of `entries` slots, all free at cycle 0.
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0, "MSHR file needs at least one entry");
        RefMshr {
            slots: vec![0; entries],
        }
    }

    /// Contract of `MshrFile::earliest_free`: minimum over all slots.
    pub fn earliest_free(&self) -> Cycle {
        *self.slots.iter().min().expect("non-empty file")
    }

    /// Contract of `MshrFile::allocate`: claim *a* slot with the minimum
    /// free time (interchangeability makes the choice unobservable) and
    /// re-arm it to free at `complete_at`.
    pub fn allocate(&mut self, complete_at: Cycle) {
        let (idx, _) = self
            .slots
            .iter()
            .enumerate()
            .min_by_key(|(_, &c)| c)
            .expect("non-empty file");
        self.slots[idx] = complete_at;
    }

    /// Contract of `MshrFile::busy_at`: slots still busy at `now`.
    pub fn busy_at(&self, now: Cycle) -> usize {
        self.slots.iter().filter(|&&c| c > now).count()
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the file has no slots (never true for a constructed file).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}
