//! The trace fuzzer: seeded random, data-type-tagged access streams shaped
//! like graph-workload traffic rather than uniform noise.
//!
//! A generated stream interleaves four burst modes:
//!
//! - **structure streams** — sequential line runs through structure pages
//!   (CSR offset/neighbor scans), ascending or descending;
//! - **property chases** — dependency chains where each address is a hash of
//!   the previous line (rank lookups indexed by just-loaded neighbor IDs),
//!   landing across the whole property region;
//! - **hot-page reuse** — skewed re-touching of a small hot property set
//!   (power-law vertices);
//! - **scratch bursts** — short bursts in a small intermediate working set
//!   (frontier queues).
//!
//! Events carry the full tag set ([`AccessEvent`]): data type, the TLB
//! structure bit, and an occasional `L2Hit` kind so data-aware engines see
//! their training feedback. The page universe is deliberately small so every
//! downstream structure (cache sets, TLB, DRB, trackers) sees heavy
//! eviction pressure.

use droplet_prefetch::{AccessEvent, EventKind};
use droplet_trace::{DataType, VirtAddr, LINE_BYTES, PAGE_BYTES};
use proptest::TestRng;

/// First structure page; structure spans [`STRUCT_PAGES`] pages from here.
const STRUCT_BASE: u64 = 0;
/// Number of structure pages.
const STRUCT_PAGES: u64 = 8;
/// First property page.
const PROP_BASE: u64 = STRUCT_BASE + STRUCT_PAGES;
/// Number of property pages (the first [`HOT_PAGES`] of them are "hot").
const PROP_PAGES: u64 = 32;
/// Size of the skewed hot property set.
const HOT_PAGES: u64 = 4;
/// First intermediate page.
const SCRATCH_BASE: u64 = PROP_BASE + PROP_PAGES;
/// Number of intermediate pages.
const SCRATCH_PAGES: u64 = 4;

const LINES_PER_PAGE: u64 = PAGE_BYTES / LINE_BYTES;

/// SplitMix64 finalizer: the dependency-chain address mixer.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[derive(Debug, Clone, Copy)]
enum Mode {
    /// Sequential run through structure lines.
    StructStream { cur: u64, dir: i64 },
    /// Dependency chain: next address hashes the previous line.
    PropChase,
    /// Skewed reuse of the hot property pages.
    HotProp,
    /// Short bursts in a small intermediate working set.
    Scratch { page: u64 },
}

/// The seeded trace generator. All state advances deterministically from
/// the [`TestRng`] passed to [`TraceGen::event`].
#[derive(Debug)]
pub struct TraceGen {
    mode: Mode,
    steps_left: u32,
    last_line: u64,
}

impl Default for TraceGen {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceGen {
    /// A generator positioned before its first burst.
    pub fn new() -> Self {
        TraceGen {
            mode: Mode::PropChase,
            steps_left: 0,
            last_line: 0,
        }
    }

    fn pick_mode(&mut self, rng: &mut TestRng) {
        self.mode = match rng.below(8) {
            0..=2 => {
                let page = STRUCT_BASE + rng.below(STRUCT_PAGES);
                let cur = page * LINES_PER_PAGE + rng.below(LINES_PER_PAGE);
                let dir = if rng.below(4) == 0 { -1 } else { 1 };
                Mode::StructStream { cur, dir }
            }
            3..=4 => Mode::PropChase,
            5..=6 => Mode::HotProp,
            _ => Mode::Scratch {
                page: SCRATCH_BASE + rng.below(SCRATCH_PAGES),
            },
        };
        self.steps_left = 3 + rng.below(20) as u32;
    }

    /// Draws the next tagged access event.
    pub fn event(&mut self, rng: &mut TestRng) -> AccessEvent {
        if self.steps_left == 0 {
            self.pick_mode(rng);
        }
        self.steps_left -= 1;

        let struct_last = (STRUCT_BASE + STRUCT_PAGES) * LINES_PER_PAGE - 1;
        let (line, dtype) = match &mut self.mode {
            Mode::StructStream { cur, dir } => {
                let line = *cur;
                let stepped = *cur as i64 + *dir;
                if stepped < STRUCT_BASE as i64 * LINES_PER_PAGE as i64
                    || stepped > struct_last as i64
                {
                    *dir = -*dir; // bounce off the region edge
                } else {
                    *cur = stepped as u64;
                }
                (line, DataType::Structure)
            }
            Mode::PropChase => {
                let h = mix(self.last_line);
                let page = PROP_BASE + h % PROP_PAGES;
                let line = page * LINES_PER_PAGE + (h >> 8) % LINES_PER_PAGE;
                (line, DataType::Property)
            }
            Mode::HotProp => {
                let page = PROP_BASE + rng.below(HOT_PAGES);
                (
                    page * LINES_PER_PAGE + rng.below(LINES_PER_PAGE),
                    DataType::Property,
                )
            }
            Mode::Scratch { page } => (
                *page * LINES_PER_PAGE + rng.below(16),
                DataType::Intermediate,
            ),
        };
        self.last_line = line;

        AccessEvent {
            vaddr: VirtAddr::new(line * LINE_BYTES),
            kind: if rng.below(8) == 0 {
                EventKind::L2Hit
            } else {
                EventKind::L1Miss
            },
            is_structure: dtype == DataType::Structure,
            dtype,
        }
    }

    /// A fresh stream of `n` events.
    pub fn events(rng: &mut TestRng, n: usize) -> Vec<AccessEvent> {
        let mut g = TraceGen::new();
        (0..n).map(|_| g.event(rng)).collect()
    }

    /// The whole page universe the generator draws from (for harnesses that
    /// need to enumerate possible pages).
    pub fn page_universe() -> std::ops::Range<u64> {
        STRUCT_BASE..SCRATCH_BASE + SCRATCH_PAGES
    }
}
