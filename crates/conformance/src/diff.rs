//! The differential engine: lockstep replay, first-divergence reporting,
//! delta-debugging shrinking, and the seeded fuzz driver.

use proptest::{env_seed, TestRng};
use std::fmt::Debug;
use std::ops::Range;

/// A production structure paired with its reference model.
///
/// `apply` drives one operation through *both* sides and returns their
/// observations; the engine compares them. `reset` must restore both sides
/// to their initial state — the shrinker replays many candidate streams, so
/// resets have to be cheap and complete.
pub trait Harness {
    /// One operation of the structure's op vocabulary.
    type Op: Clone + Debug;
    /// Everything observable after one operation (results, lengths,
    /// counters); compared for exact equality.
    type Obs: PartialEq + Debug;

    /// Restores both models to their initial state.
    fn reset(&mut self);

    /// Applies `op` to both models, returning `(production, reference)`
    /// observations.
    fn apply(&mut self, op: &Self::Op) -> (Self::Obs, Self::Obs);

    /// Full `(production, reference)` state dumps for divergence reports.
    fn dump(&self) -> (String, String);
}

/// The first step at which production and reference disagreed.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Zero-based index into the op stream.
    pub step: usize,
    /// The diverging operation, rendered.
    pub op: String,
    /// Production observation.
    pub got: String,
    /// Reference observation.
    pub want: String,
    /// Production state dump at the divergence.
    pub prod_state: String,
    /// Reference state dump at the divergence.
    pub ref_state: String,
}

/// Replays `ops` through both models in lockstep (from a fresh reset) and
/// returns the first divergence, if any.
pub fn run_lockstep<H: Harness>(h: &mut H, ops: &[H::Op]) -> Option<Divergence> {
    h.reset();
    for (step, op) in ops.iter().enumerate() {
        let (got, want) = h.apply(op);
        if got != want {
            let (prod_state, ref_state) = h.dump();
            return Some(Divergence {
                step,
                op: format!("{op:?}"),
                got: format!("{got:?}"),
                want: format!("{want:?}"),
                prod_state,
                ref_state,
            });
        }
    }
    None
}

/// Minimizes a diverging op stream by delta debugging (ddmin over chunk
/// removals, then a greedy single-op pass). The result still diverges; it is
/// usually within an op or two of minimal.
pub fn shrink<H: Harness>(h: &mut H, ops: &[H::Op]) -> Vec<H::Op> {
    let mut cur: Vec<H::Op> = ops.to_vec();
    // Everything after the diverging step is irrelevant by construction.
    if let Some(d) = run_lockstep(h, &cur) {
        cur.truncate(d.step + 1);
    } else {
        return cur; // not a diverging stream; nothing to shrink
    }

    // ddmin: try removing ever-smaller chunks while the stream still
    // diverges.
    let mut granularity = 2usize;
    while cur.len() >= 2 {
        let chunk = cur.len().div_ceil(granularity);
        let mut reduced = false;
        let mut start = 0;
        while start < cur.len() {
            let end = (start + chunk).min(cur.len());
            let mut candidate = Vec::with_capacity(cur.len() - (end - start));
            candidate.extend_from_slice(&cur[..start]);
            candidate.extend_from_slice(&cur[end..]);
            if !candidate.is_empty() && run_lockstep(h, &candidate).is_some() {
                cur = candidate;
                granularity = granularity.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
            start = end;
        }
        if !reduced {
            if granularity >= cur.len() {
                break;
            }
            granularity = (granularity * 2).min(cur.len());
        }
    }

    // Greedy polish: drop any single op that is not load-bearing.
    let mut i = 0;
    while i < cur.len() && cur.len() > 1 {
        let mut candidate = cur.clone();
        candidate.remove(i);
        if run_lockstep(h, &candidate).is_some() {
            cur = candidate;
        } else {
            i += 1;
        }
    }
    cur
}

/// What a clean fuzz run covered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuzzReport {
    /// Seeds exercised.
    pub seeds: u64,
    /// Total operations replayed through both models.
    pub ops: u64,
}

/// Fuzzes `h` over a range of seeds: each seed generates one op stream via
/// `gen` and replays it in lockstep. On divergence the stream is shrunk and
/// the panic message carries the seed, the `DROPLET_TEST_SEED` perturbation,
/// the minimized repro, and both state dumps — everything needed to replay.
///
/// The effective per-stream seed is `base_seed ^ (env_seed() * φ)`, so
/// setting `DROPLET_TEST_SEED` explores fresh streams while staying exactly
/// reproducible.
pub fn fuzz_and_verify<H: Harness>(
    h: &mut H,
    label: &str,
    seeds: Range<u64>,
    ops_per_seed: usize,
    mut gen: impl FnMut(&mut TestRng, usize) -> Vec<H::Op>,
) -> FuzzReport {
    let env = env_seed();
    let n_seeds = seeds.end - seeds.start;
    let mut total_ops = 0u64;
    for base in seeds {
        let seed = base ^ env.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = TestRng::from_seed(seed);
        let ops = gen(&mut rng, ops_per_seed);
        total_ops += ops.len() as u64;
        if let Some(d) = run_lockstep(h, &ops) {
            let repro = shrink(h, &ops[..=d.step]);
            let confirm = run_lockstep(h, &repro).expect("shrunk stream must still diverge");
            panic!(
                "[{label}] production diverged from its reference model\n\
                 seed {seed} (DROPLET_TEST_SEED={env}; set it to reproduce), \
                 first divergence at step {} of {} ops, shrunk to {} ops\n\
                 diverging op: {}\n  production: {}\n  reference:  {}\n\
                 minimized repro:\n{:#?}\n\
                 production state at divergence:\n{}\n\
                 reference state at divergence:\n{}",
                d.step,
                ops.len(),
                repro.len(),
                confirm.op,
                confirm.got,
                confirm.want,
                repro,
                confirm.prod_state,
                confirm.ref_state,
            );
        }
    }
    FuzzReport {
        seeds: n_seeds,
        ops: total_ops,
    }
}
