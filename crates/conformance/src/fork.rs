//! Fork-vs-replay lockstep harness: proves a forked simulation is
//! *op-by-op* indistinguishable from a from-scratch run, not just
//! end-of-run digest-equal.
//!
//! The production side resumes a [`WarmupSnapshot`]; the reference side
//! re-simulates the same warm-up prefix from a cold machine on every
//! `reset`. Both then replay the same measurement stream one op at a time,
//! and the differ compares a cheap per-op fingerprint — the core engine's
//! clocks plus a [`SystemProbe`] of the memory system. Any field the
//! snapshot failed to capture shows up as a divergence within a few ops of
//! first touching the stale structure, and the ddmin shrinker reduces the
//! stream to a minimal repro (see the `ForkMutation` self-tests).

use crate::diff::Harness;
use droplet::{warm_snapshot, ForkMutation, System, SystemConfig, SystemProbe, WarmupSnapshot};
use droplet_cpu::{CoreEngine, MeasureState};
use droplet_gap::TraceBundle;
use droplet_trace::MemOp;

/// One live side of the lockstep: a memory system, the core driving it,
/// and the open measurement window.
type Side<'a> = (System<'a>, CoreEngine, MeasureState);

/// Differential harness pairing a forked run (production) with a
/// from-scratch run (reference) over the same warmed prefix.
pub struct ForkHarness<'a> {
    bundle: &'a TraceBundle,
    cfg: SystemConfig,
    snap: WarmupSnapshot,
    mutation: ForkMutation,
    prod: Option<Side<'a>>,
    refr: Option<Side<'a>>,
}

impl<'a> ForkHarness<'a> {
    /// Warms one snapshot of `bundle` under `cfg` and arms `mutation` on
    /// the production (forked) side's restore path. Use
    /// [`ForkMutation::None`] for the conformance run proper.
    pub fn new(
        bundle: &'a TraceBundle,
        cfg: SystemConfig,
        warmup_ops: usize,
        mutation: ForkMutation,
    ) -> Self {
        let snap = warm_snapshot(bundle, &cfg, warmup_ops);
        ForkHarness {
            bundle,
            cfg,
            snap,
            mutation,
            prod: None,
            refr: None,
        }
    }

    /// Warm-up ops baked into the shared snapshot (post-clamp).
    pub fn applied(&self) -> usize {
        self.snap.applied() as usize
    }
}

impl Harness for ForkHarness<'_> {
    type Op = MemOp;
    /// `(dispatch units, retire units, instructions)` plus the memory-side
    /// probe: cheap enough to compare on every op, sensitive enough that a
    /// stale TLB, cache, or DRAM queue surfaces within a few ops.
    type Obs = ((u64, u64, u64), SystemProbe);

    fn reset(&mut self) {
        // Production: fork from the shared snapshot (with the armed
        // restore fault, if any) and open the measurement window.
        let (mut sys, eng) = self
            .snap
            .resume_mutated(&self.cfg, self.bundle, self.mutation);
        let m = eng.open_window(&mut sys);
        self.prod = Some((sys, eng, m));

        // Reference: the obviously-correct path — re-simulate the very
        // same warm-up prefix from a cold machine.
        let mut rsys = System::new(self.cfg.clone(), self.bundle);
        let mut reng = CoreEngine::new(self.cfg.core);
        reng.warmup(&self.bundle.ops[..self.applied()], &mut rsys);
        let rm = reng.open_window(&mut rsys);
        self.refr = Some((rsys, reng, rm));
    }

    fn apply(&mut self, op: &MemOp) -> (Self::Obs, Self::Obs) {
        fn step(side: &mut Side<'_>, op: &MemOp) -> ((u64, u64, u64), SystemProbe) {
            let (sys, eng, m) = side;
            eng.measure_chunk(std::slice::from_ref(op), sys, m);
            (eng.clocks(), sys.probe())
        }
        let got = step(self.prod.as_mut().expect("reset before apply"), op);
        let want = step(self.refr.as_mut().expect("reset before apply"), op);
        (got, want)
    }

    fn dump(&self) -> (String, String) {
        let render = |side: &Option<Side<'_>>| match side {
            Some((sys, eng, _)) => {
                format!("clocks: {:?}\nprobe: {:?}", eng.clocks(), sys.probe())
            }
            None => "<unreset>".into(),
        };
        (render(&self.prod), render(&self.refr))
    }
}
