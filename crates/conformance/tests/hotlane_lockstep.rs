//! Hot-lane conformance: every access the batched fast lane accepts must
//! be bit-identical — response, timing, statistics — to the full demand
//! path, and the differ must be able to prove the converse by catching an
//! armed [`HotLaneMutation`] and shrinking it to a tiny repro.
//!
//! Trace-order PR streams alternate pages on almost every op (offsets →
//! neighbors → ranks), which starves the lane of same-page repeats; the
//! fuzzed streams here are page-biased resamples of the trace — bursts on
//! one page with occasional jumps — so the lane fires constantly *and*
//! page changes keep probing its eligibility checks.

use conformance::{run_lockstep, shrink, HotLaneHarness};
use droplet::{HotLaneMutation, PrefetcherKind, System, SystemConfig};
use droplet_cpu::MemorySystem;
use droplet_gap::{Algorithm, TraceBundle};
use droplet_graph::{Dataset, DatasetScale};
use droplet_trace::{MemOp, OpId};
use proptest::TestRng;
use std::sync::Arc;

fn bundle() -> TraceBundle {
    let g = Arc::new(Dataset::Kron.build(DatasetScale::Tiny));
    Algorithm::Pr.trace(&g, 40_000)
}

/// The trace's ops regrouped by virtual page, so streams can dwell on one
/// page long enough to prime the translation memo and the L1.
fn ops_by_page(bundle: &TraceBundle) -> Vec<Vec<MemOp>> {
    let mut groups: std::collections::HashMap<u64, Vec<MemOp>> = std::collections::HashMap::new();
    for op in &bundle.ops {
        groups.entry(op.addr().page_number()).or_default().push(*op);
    }
    let mut v: Vec<_> = groups.into_iter().collect();
    v.sort_by_key(|(page, _)| *page); // deterministic group order
    v.into_iter().map(|(_, ops)| ops).collect()
}

/// Page-biased resample: stay on the current page's ops three times out of
/// four, jump to a random page otherwise.
fn gen_ops(rng: &mut TestRng, groups: &[Vec<MemOp>], n: usize) -> Vec<MemOp> {
    let mut ops = Vec::with_capacity(n);
    let mut g = rng.below(groups.len() as u64) as usize;
    for _ in 0..n {
        if rng.below(4) == 0 {
            g = rng.below(groups.len() as u64) as usize;
        }
        let group = &groups[g];
        ops.push(group[rng.below(group.len() as u64) as usize]);
    }
    ops
}

/// Sanity that the conformance runs below are not vacuous: a primed
/// same-page repeat is accepted by the lane, a cold memo declines.
#[test]
fn hot_lane_fires_on_a_primed_same_page_run() {
    let b = bundle();
    let mut sys = System::new(SystemConfig::test_scale(), &b);
    let op = b.ops[0];
    assert!(
        sys.access_hot(&op, OpId(0), 0).is_none(),
        "cold memo must decline"
    );
    sys.access(&op, OpId(0), 0);
    assert!(
        sys.access_hot(&op, OpId(1), 4).is_some(),
        "primed same-page repeat must be accepted"
    );
}

/// The conformance run proper: hot-lane-first routing is lockstep
/// identical to slow-path-only routing, under the demand-only baseline and
/// under a live prefetcher (whose sideband events ride the miss tail).
#[test]
fn hot_lane_is_lockstep_identical_to_slow_path() {
    let b = bundle();
    let groups = ops_by_page(&b);
    for cfg in [
        SystemConfig::test_scale(),
        SystemConfig::test_scale().with_prefetcher(PrefetcherKind::Ghb),
    ] {
        let mut h = HotLaneHarness::new(&b, cfg, HotLaneMutation::None);
        for seed in 0..16u64 {
            let mut rng = TestRng::from_seed(seed);
            let ops = gen_ops(&mut rng, &groups, 2_000);
            if let Some(d) = run_lockstep(&mut h, &ops) {
                panic!(
                    "hot lane diverged from the slow path at step {} (seed {seed}):\n\
                     op {}\n  production: {}\n  reference:  {}\n\
                     production state:\n{}\nreference state:\n{}",
                    d.step, d.op, d.got, d.want, d.prod_state, d.ref_state
                );
            }
        }
    }
}

/// The differ's self-test: a hot lane that trusts a stale translation memo
/// must surface within a few fuzzed streams and shrink to a tiny repro —
/// the proof the lockstep above would catch a broken eligibility check.
#[test]
fn stale_memo_is_caught_and_shrunk() {
    let b = bundle();
    let groups = ops_by_page(&b);
    let mut h = HotLaneHarness::new(&b, SystemConfig::test_scale(), HotLaneMutation::StaleMemo);
    for seed in 0..64u64 {
        let mut rng = TestRng::from_seed(seed);
        let ops = gen_ops(&mut rng, &groups, 700);
        if let Some(d) = run_lockstep(&mut h, &ops) {
            let repro = shrink(&mut h, &ops[..=d.step]);
            let confirm = run_lockstep(&mut h, &repro);
            assert!(confirm.is_some(), "shrunk stream no longer diverges");
            assert!(
                repro.len() <= 20,
                "repro not minimal: {} ops\n{repro:#?}",
                repro.len()
            );
            return;
        }
    }
    panic!("StaleMemo never caught in 64 fuzzed streams");
}
