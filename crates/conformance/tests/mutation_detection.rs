//! The suite's self-test: with a known bug injected into the production
//! cache (behind the test-only [`CacheMutation`] hook), the differential
//! engine must catch it quickly and shrink the failing stream to a tiny
//! repro. A fuzzer that cannot catch a flipped LRU or a stale refresh is not
//! protecting anything.

use conformance::harness::{gen_cache_ops, small_cache_config, small_policy_config, CacheHarness};
use conformance::{run_lockstep, shrink};
use droplet_cache::{CacheConfig, CacheMutation, ReplacementPolicy};
use proptest::TestRng;

/// Finds a diverging stream for the mutated cache, shrinks it, and checks
/// the repro is tiny and still diverges. The config picks the policy the
/// mutation lives under — `RripPromoteFlip` is dead code in an LRU cache.
fn catch_and_shrink_in(cfg: CacheConfig, mutation: CacheMutation) {
    let mut h = CacheHarness::new(cfg, mutation);
    for seed in 0..64u64 {
        let mut rng = TestRng::from_seed(seed);
        let ops = gen_cache_ops(&mut rng, 700);
        if let Some(d) = run_lockstep(&mut h, &ops) {
            let repro = shrink(&mut h, &ops[..=d.step]);
            let confirm = run_lockstep(&mut h, &repro);
            assert!(
                confirm.is_some(),
                "{mutation:?}: shrunk stream no longer diverges"
            );
            assert!(
                repro.len() <= 20,
                "{mutation:?}: repro not minimal: {} ops\n{repro:#?}",
                repro.len()
            );
            return;
        }
    }
    panic!("{mutation:?}: injected bug never caught in 64 fuzzed streams");
}

fn catch_and_shrink(mutation: CacheMutation) {
    catch_and_shrink_in(small_cache_config(), mutation);
}

#[test]
fn lru_flip_is_caught_and_shrunk() {
    catch_and_shrink(CacheMutation::LruFlip);
}

#[test]
fn stale_refresh_is_caught_and_shrunk() {
    catch_and_shrink(CacheMutation::StaleRefresh);
}

/// A hit that demotes to RRPV_MAX instead of promoting to 0 must surface as
/// an eviction-order divergence under every RRIP-family policy.
#[test]
fn rrip_promote_flip_is_caught_and_shrunk() {
    for policy in [
        ReplacementPolicy::Srrip,
        ReplacementPolicy::Brrip,
        ReplacementPolicy::Drrip,
        ReplacementPolicy::Ship,
    ] {
        catch_and_shrink_in(small_policy_config(policy), CacheMutation::RripPromoteFlip);
    }
}

/// A fill that records the vacated slot's stale signature poisons both SHCT
/// training and the insertion prediction of later fills with that line.
#[test]
fn ship_stale_signature_is_caught_and_shrunk() {
    catch_and_shrink_in(
        small_policy_config(ReplacementPolicy::Ship),
        CacheMutation::ShipStaleSignature,
    );
}

/// Sanity: with no mutation armed the very same streams are divergence-free
/// (otherwise the two tests above could pass by catching a harness bug).
#[test]
fn unmutated_cache_survives_the_same_streams() {
    let mut h = CacheHarness::new(small_cache_config(), CacheMutation::None);
    for seed in 0..64u64 {
        let mut rng = TestRng::from_seed(seed);
        let ops = gen_cache_ops(&mut rng, 700);
        assert!(run_lockstep(&mut h, &ops).is_none(), "seed {seed} diverged");
    }
}
