//! The suite's self-test: with a known bug injected into the production
//! cache (behind the test-only [`CacheMutation`] hook), the differential
//! engine must catch it quickly and shrink the failing stream to a tiny
//! repro. A fuzzer that cannot catch a flipped LRU or a stale refresh is not
//! protecting anything.

use conformance::harness::{gen_cache_ops, small_cache_config, CacheHarness};
use conformance::{run_lockstep, shrink};
use droplet_cache::CacheMutation;
use proptest::TestRng;

/// Finds a diverging stream for the mutated cache, shrinks it, and checks
/// the repro is tiny and still diverges.
fn catch_and_shrink(mutation: CacheMutation) {
    let mut h = CacheHarness::new(small_cache_config(), mutation);
    for seed in 0..64u64 {
        let mut rng = TestRng::from_seed(seed);
        let ops = gen_cache_ops(&mut rng, 700);
        if let Some(d) = run_lockstep(&mut h, &ops) {
            let repro = shrink(&mut h, &ops[..=d.step]);
            let confirm = run_lockstep(&mut h, &repro);
            assert!(
                confirm.is_some(),
                "{mutation:?}: shrunk stream no longer diverges"
            );
            assert!(
                repro.len() <= 20,
                "{mutation:?}: repro not minimal: {} ops\n{repro:#?}",
                repro.len()
            );
            return;
        }
    }
    panic!("{mutation:?}: injected bug never caught in 64 fuzzed streams");
}

#[test]
fn lru_flip_is_caught_and_shrunk() {
    catch_and_shrink(CacheMutation::LruFlip);
}

#[test]
fn stale_refresh_is_caught_and_shrunk() {
    catch_and_shrink(CacheMutation::StaleRefresh);
}

/// Sanity: with no mutation armed the very same streams are divergence-free
/// (otherwise the two tests above could pass by catching a harness bug).
#[test]
fn unmutated_cache_survives_the_same_streams() {
    let mut h = CacheHarness::new(small_cache_config(), CacheMutation::None);
    for seed in 0..64u64 {
        let mut rng = TestRng::from_seed(seed);
        let ops = gen_cache_ops(&mut rng, 700);
        assert!(run_lockstep(&mut h, &ops).is_none(), "seed {seed} diverged");
    }
}
