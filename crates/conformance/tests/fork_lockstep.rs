//! Fork conformance: a forked simulation must be *op-by-op* identical to a
//! from-scratch run over the same warm-up prefix — and the differ must be
//! able to prove the converse, catching a deliberately incomplete snapshot
//! restore ([`ForkMutation`]) and shrinking it to a tiny repro.

use conformance::{run_lockstep, shrink, ForkHarness};
use droplet::{ForkMutation, PrefetcherKind, SystemConfig};
use droplet_gap::{Algorithm, TraceBundle};
use droplet_graph::{Dataset, DatasetScale};
use proptest::TestRng;
use std::sync::Arc;

/// Small enough that the reference side's per-reset re-warm stays cheap
/// through a ddmin shrink, big enough to exercise every structure.
fn bundle() -> TraceBundle {
    let g = Arc::new(Dataset::Kron.build(DatasetScale::Tiny));
    Algorithm::Pr.trace(&g, 40_000)
}

const WARMUP: usize = 1_500;

/// The conformance run proper: replay the entire measurement region
/// through the forked and the from-scratch machine in lockstep. Zero
/// divergences, under the configuration with the most live state (DROPLET:
/// MPP, MRB, stream tables, per-line prefetch metadata).
#[test]
fn forked_run_is_lockstep_identical_to_replay() {
    let b = bundle();
    let cfg = SystemConfig::test_scale().with_prefetcher(PrefetcherKind::Droplet);
    let mut h = ForkHarness::new(&b, cfg, WARMUP, ForkMutation::None);
    let meas: Vec<_> = b.ops[h.applied()..].to_vec();
    if let Some(d) = run_lockstep(&mut h, &meas) {
        panic!(
            "forked run diverged from full replay at step {}:\n\
             op {}\n  production: {}\n  reference:  {}\n\
             production state:\n{}\nreference state:\n{}",
            d.step, d.op, d.got, d.want, d.prod_state, d.ref_state
        );
    }
}

/// Finds a diverging stream for a fork with `mutation` injected into its
/// restore path, shrinks it, and checks the repro is tiny and still
/// diverges — the proof the lockstep differ would catch an incomplete
/// [`droplet::SystemSnapshot`].
fn catch_and_shrink(mutation: ForkMutation) {
    let b = bundle();
    let mut h = ForkHarness::new(&b, SystemConfig::test_scale(), WARMUP, mutation);
    let meas = &b.ops[h.applied()..];
    for seed in 0..64u64 {
        let mut rng = TestRng::from_seed(seed);
        // Random subsequences of the measurement region: always mapped
        // addresses, fresh op orderings every seed.
        let ops: Vec<_> = (0..700)
            .map(|_| meas[rng.below(meas.len() as u64) as usize])
            .collect();
        if let Some(d) = run_lockstep(&mut h, &ops) {
            let repro = shrink(&mut h, &ops[..=d.step]);
            let confirm = run_lockstep(&mut h, &repro);
            assert!(
                confirm.is_some(),
                "{mutation:?}: shrunk stream no longer diverges"
            );
            assert!(
                repro.len() <= 20,
                "{mutation:?}: repro not minimal: {} ops\n{repro:#?}",
                repro.len()
            );
            return;
        }
    }
    panic!("{mutation:?}: injected restore fault never caught in 64 fuzzed streams");
}

#[test]
fn skipped_dtlb_restore_is_caught_and_shrunk() {
    catch_and_shrink(ForkMutation::SkipDtlb);
}

#[test]
fn skipped_l1_restore_is_caught_and_shrunk() {
    catch_and_shrink(ForkMutation::SkipL1);
}

/// Sanity: with no fault armed the very same streams are divergence-free
/// (otherwise the tests above could pass by catching a harness bug).
#[test]
fn unmutated_fork_survives_the_same_streams() {
    let b = bundle();
    let mut h = ForkHarness::new(&b, SystemConfig::test_scale(), WARMUP, ForkMutation::None);
    let meas = &b.ops[h.applied()..];
    for seed in 0..8u64 {
        let mut rng = TestRng::from_seed(seed);
        let ops: Vec<_> = (0..700)
            .map(|_| meas[rng.below(meas.len() as u64) as usize])
            .collect();
        assert!(run_lockstep(&mut h, &ops).is_none(), "seed {seed} diverged");
    }
}
