//! Property tests for the columnar trace codec (DESIGN.md §15): fuzzed
//! op streams in three address shapes — graph-shaped (the conformance
//! trace fuzzer), uniform random, and grid strides — must round-trip
//! encode → decode bit-exactly, and damaged artifacts must come back as
//! typed errors, never panics or silently wrong ops.
//!
//! Set `DROPLET_TEST_SEED` to explore fresh streams or replay a failure.

use conformance::fuzz::TraceGen;
use droplet_trace::columnar::{content_digest, decode, encode, BLOCK_OPS};
use droplet_trace::{AccessKind, ColumnarReader, DataType, MemOp, OpId, VirtAddr};
use proptest::TestRng;

/// Wraps a raw address stream into full `MemOp`s with fuzzed kinds,
/// producer links, and pre-compute counts — every column the codec stores.
fn ops_of_addrs(rng: &mut TestRng, addrs: impl Iterator<Item = u64>) -> Vec<MemOp> {
    addrs
        .enumerate()
        .map(|(i, addr)| {
            let id = OpId(i as u64);
            let producer = if i > 0 && rng.below(4) == 0 {
                // Bias toward short links (dependency chains), but reach
                // all the way back sometimes to stress the varint widths.
                let reach = if rng.below(8) == 0 {
                    i as u64
                } else {
                    8.min(i as u64)
                };
                let back = 1 + rng.below(reach);
                Some(OpId(i as u64 - back))
            } else {
                None
            };
            MemOp::new(
                VirtAddr::new(addr),
                if rng.below(5) == 0 {
                    AccessKind::Store
                } else {
                    AccessKind::Load
                },
                DataType::ALL[rng.below(3) as usize],
                producer,
                id,
                rng.below(100) as u16,
            )
        })
        .collect()
}

/// Graph-shaped addresses from the conformance trace fuzzer: structure
/// streams, property chases, hot-page reuse, scratch bursts.
fn graph_trace(rng: &mut TestRng, n: usize) -> Vec<MemOp> {
    let mut gen = TraceGen::new();
    let addrs: Vec<u64> = (0..n).map(|_| gen.event(rng).vaddr.raw()).collect();
    let mut tag_rng = TestRng::from_seed(rng.next_u64());
    ops_of_addrs(&mut tag_rng, addrs.into_iter())
}

/// Uniform random lines over a wide region: worst case for delta coding
/// (large, sign-alternating deltas).
fn uniform_trace(rng: &mut TestRng, n: usize) -> Vec<MemOp> {
    let addrs: Vec<u64> = (0..n).map(|_| rng.below(1 << 30) * 64).collect();
    let mut tag_rng = TestRng::from_seed(rng.next_u64());
    ops_of_addrs(&mut tag_rng, addrs.into_iter())
}

/// Grid sweep: row-major walk with a fixed row stride (stencil-style), the
/// best case for delta coding and a constant-delta RLE-like pattern.
fn grid_trace(rng: &mut TestRng, n: usize) -> Vec<MemOp> {
    let cols = 16 + rng.below(64);
    let base = rng.below(1 << 20) * 64;
    let addrs: Vec<u64> = (0..n as u64)
        .map(|i| base + (i % cols) * 64 + (i / cols) * cols * 4096)
        .collect();
    let mut tag_rng = TestRng::from_seed(rng.next_u64());
    ops_of_addrs(&mut tag_rng, addrs.into_iter())
}

fn roundtrip(label: &str, seed: u64, ops: &[MemOp]) {
    let bytes = encode(ops);
    let back = decode(&bytes)
        .unwrap_or_else(|e| panic!("{label} seed {seed}: decode failed on a fresh encode: {e}"));
    assert_eq!(
        ops,
        &back[..],
        "{label} seed {seed}: round-trip not bit-exact"
    );
    let reader = ColumnarReader::new(&bytes)
        .unwrap_or_else(|e| panic!("{label} seed {seed}: header rejected: {e}"));
    assert_eq!(reader.op_count(), ops.len() as u64);
    assert_eq!(reader.digest(), content_digest(ops), "{label} seed {seed}");
}

#[test]
fn fuzzed_traces_roundtrip_bit_exact() {
    let mut rng = TestRng::for_test("columnar_roundtrip");
    for case in 0..24u64 {
        let seed = rng.next_u64();
        let mut r = TestRng::from_seed(seed);
        // Lengths straddle the block boundary on some cases.
        let n = match case % 4 {
            0 => r.below(500) as usize,
            1 => BLOCK_OPS - 1 + r.below(3) as usize,
            2 => BLOCK_OPS + r.below(2000) as usize,
            _ => 1 + r.below(5000) as usize,
        };
        match case % 3 {
            0 => roundtrip("graph", seed, &graph_trace(&mut r, n)),
            1 => roundtrip("uniform", seed, &uniform_trace(&mut r, n)),
            _ => roundtrip("grid", seed, &grid_trace(&mut r, n)),
        }
    }
}

/// Every truncation prefix of a fuzzed artifact decodes to a typed error —
/// no panics, no partial Ok.
#[test]
fn truncated_fuzzed_artifacts_error_cleanly() {
    let mut rng = TestRng::for_test("columnar_truncation");
    let ops = graph_trace(&mut rng, 3000);
    let bytes = encode(&ops);
    // Every short length near the header plus a random sample of the rest.
    let mut cuts: Vec<usize> = (0..64.min(bytes.len())).collect();
    for _ in 0..200 {
        cuts.push(rng.below(bytes.len() as u64) as usize);
    }
    for cut in cuts {
        assert!(
            decode(&bytes[..cut]).is_err(),
            "truncation at {cut}/{} decoded successfully",
            bytes.len()
        );
    }
}

/// Single-byte corruptions anywhere in a fuzzed artifact either fail with
/// a typed error or — if the flip hit dead padding — still decode to the
/// original ops. They never panic and never return different ops.
#[test]
fn corrupted_fuzzed_artifacts_never_yield_wrong_ops() {
    let mut rng = TestRng::for_test("columnar_corruption");
    let ops = uniform_trace(&mut rng, 2000);
    let bytes = encode(&ops);
    for _ in 0..300 {
        let pos = rng.below(bytes.len() as u64) as usize;
        let flip = 1u8 << rng.below(8);
        let mut bad = bytes.clone();
        bad[pos] ^= flip;
        match decode(&bad) {
            Err(_) => {}
            Ok(back) => assert_eq!(
                ops, back,
                "corruption at byte {pos} (flip {flip:#04x}) decoded to different ops"
            ),
        }
    }
}
