//! Conformance runs: every optimized structure replayed in lockstep against
//! its executable reference model over ≥10k fuzzed, seeded operations.
//!
//! On divergence the harness panics with the seed, a delta-debugged minimal
//! repro, and both state dumps; set `DROPLET_TEST_SEED` to explore fresh
//! streams or replay a reported one.

use conformance::fuzz_and_verify;
use conformance::harness::{
    gen_cache_ops, gen_mshr_ops, gen_page_ops, gen_pf_ops, gen_tlb_ops, small_cache_config,
    small_policy_config, CacheHarness, MshrHarness, PageHarness, PrefetchHarness, TlbHarness,
};
use conformance::reference::{RefGhb, RefNextLine, RefStream, RefVldp};
use droplet_cache::{CacheMutation, ReplacementPolicy};
use droplet_prefetch::{
    GhbConfig, GhbPrefetcher, NextLinePrefetcher, StreamConfig, StreamPrefetcher, VldpConfig,
    VldpPrefetcher,
};

const SEEDS: std::ops::Range<u64> = 0..16;
const OPS_PER_SEED: usize = 700;
const MIN_TOTAL_OPS: u64 = 10_000;

#[test]
fn cache_matches_reference() {
    let mut h = CacheHarness::new(small_cache_config(), CacheMutation::None);
    let report = fuzz_and_verify(&mut h, "cache", SEEDS, OPS_PER_SEED, gen_cache_ops);
    assert!(
        report.ops >= MIN_TOTAL_OPS,
        "only {} ops fuzzed",
        report.ops
    );
}

/// Every non-LRU replacement policy in lockstep against [`RefRripCache`]
/// (via `model_for`): same observables as the LRU run — hit/miss, evicted
/// line identity and flags, residency, occupancy, stats — over the same
/// graph-shaped op streams.
fn policy_matches_reference(policy: ReplacementPolicy) {
    let mut h = CacheHarness::new(small_policy_config(policy), CacheMutation::None);
    let name = format!("cache-{policy}");
    let report = fuzz_and_verify(&mut h, &name, SEEDS, OPS_PER_SEED, gen_cache_ops);
    assert!(
        report.ops >= MIN_TOTAL_OPS,
        "only {} ops fuzzed",
        report.ops
    );
}

#[test]
fn srrip_cache_matches_reference() {
    policy_matches_reference(ReplacementPolicy::Srrip);
}

#[test]
fn brrip_cache_matches_reference() {
    policy_matches_reference(ReplacementPolicy::Brrip);
}

#[test]
fn drrip_cache_matches_reference() {
    policy_matches_reference(ReplacementPolicy::Drrip);
}

#[test]
fn ship_cache_matches_reference() {
    policy_matches_reference(ReplacementPolicy::Ship);
}

#[test]
fn tlb_matches_reference() {
    // 8 entries over a 44-page universe: constant replacement pressure.
    let mut h = TlbHarness::new(8);
    let report = fuzz_and_verify(&mut h, "tlb", SEEDS, OPS_PER_SEED, gen_tlb_ops);
    assert!(
        report.ops >= MIN_TOTAL_OPS,
        "only {} ops fuzzed",
        report.ops
    );
}

#[test]
fn mshr_matches_reference() {
    let mut h = MshrHarness::new(6);
    let report = fuzz_and_verify(&mut h, "mshr", SEEDS, OPS_PER_SEED, gen_mshr_ops);
    assert!(
        report.ops >= MIN_TOTAL_OPS,
        "only {} ops fuzzed",
        report.ops
    );
}

#[test]
fn page_table_matches_reference() {
    let mut h = PageHarness::new();
    let report = fuzz_and_verify(&mut h, "page-table", SEEDS, OPS_PER_SEED, gen_page_ops);
    assert!(
        report.ops >= MIN_TOTAL_OPS,
        "only {} ops fuzzed",
        report.ops
    );
}

#[test]
fn ghb_matches_reference() {
    // A small GHB so the ring wraps and index entries are evicted within a
    // stream, plus the paper geometry for the common case.
    for cfg in [
        GhbConfig::paper(),
        GhbConfig {
            index_entries: 8,
            ghb_entries: 16,
            degree: 2,
        },
    ] {
        let mut h = PrefetchHarness::new(move || {
            (GhbPrefetcher::new(cfg.clone()), RefGhb::new(cfg.clone()))
        });
        let report = fuzz_and_verify(&mut h, "ghb", SEEDS, OPS_PER_SEED, |rng, n| {
            gen_pf_ops(rng, n, false)
        });
        assert!(
            report.ops >= MIN_TOTAL_OPS,
            "only {} ops fuzzed",
            report.ops
        );
    }
}

#[test]
fn vldp_matches_reference() {
    for cfg in [
        VldpConfig::paper(),
        VldpConfig {
            drb_pages: 4,
            opt_entries: 8,
            dpt_entries: 4,
            levels: 3,
            degree: 2,
        },
    ] {
        let mut h = PrefetchHarness::new(move || {
            (VldpPrefetcher::new(cfg.clone()), RefVldp::new(cfg.clone()))
        });
        let report = fuzz_and_verify(&mut h, "vldp", SEEDS, OPS_PER_SEED, |rng, n| {
            gen_pf_ops(rng, n, false)
        });
        assert!(
            report.ops >= MIN_TOTAL_OPS,
            "only {} ops fuzzed",
            report.ops
        );
    }
}

#[test]
fn stream_matches_reference() {
    for cfg in [
        StreamConfig::conventional(),
        StreamConfig::data_aware(),
        StreamConfig {
            trackers: 2,
            distance: 4,
            degree: 2,
            data_aware: false,
        },
    ] {
        let mut h = PrefetchHarness::new(move || {
            (
                StreamPrefetcher::new(cfg.clone()),
                RefStream::new(cfg.clone()),
            )
        });
        // Mode switches exercise set_data_aware's tracker flush.
        let report = fuzz_and_verify(&mut h, "stream", SEEDS, OPS_PER_SEED, |rng, n| {
            gen_pf_ops(rng, n, true)
        });
        assert!(
            report.ops >= MIN_TOTAL_OPS,
            "only {} ops fuzzed",
            report.ops
        );
    }
}

#[test]
fn nextline_matches_reference() {
    for degree in [1u64, 4] {
        let mut h = PrefetchHarness::new(move || {
            (NextLinePrefetcher::new(degree), RefNextLine::new(degree))
        });
        let report = fuzz_and_verify(&mut h, "nextline", SEEDS, OPS_PER_SEED, |rng, n| {
            gen_pf_ops(rng, n, false)
        });
        assert!(
            report.ops >= MIN_TOTAL_OPS,
            "only {} ops fuzzed",
            report.ops
        );
    }
}
