//! The [`Tracer`] trait that traced workloads emit memory operations into,
//! plus the two standard implementations: [`VecTracer`] (records the full
//! trace for replay through timing models) and [`CountingTracer`] (cheap
//! aggregate statistics only).
//!
//! Traced algorithms call [`Tracer::load`] / [`Tracer::store`] for every
//! modeled memory access and [`Tracer::compute`] for intervening non-memory
//! work. Loads whose *address* was produced by an earlier load (the
//! `property[structure[i]]` idiom) pass that producer's [`OpId`], which is
//! how the paper's load-load dependency chains (Observation #2/#3) are
//! recorded.

use crate::addr::VirtAddr;
use crate::layout::AddressSpace;
use crate::op::{AccessKind, DataType, MemOp, OpId};

/// Sink for the memory operations of a traced workload.
///
/// Implementations decide what to retain. The trace *budget* mechanism
/// mirrors the paper's 600 M-instruction region of interest: once
/// [`Tracer::is_full`] reports `true`, workloads abandon the run early
/// (their functional result is then partial, which is fine for timing
/// studies and rejected by correctness tests, which run without a budget).
pub trait Tracer {
    /// Records a load of `addr` whose address depends on `producer`.
    /// Returns this op's id for use as a downstream producer.
    fn load(&mut self, addr: VirtAddr, dtype: DataType, producer: Option<OpId>) -> OpId;

    /// Records a store to `addr` whose address depends on `producer`.
    fn store(&mut self, addr: VirtAddr, dtype: DataType, producer: Option<OpId>) -> OpId;

    /// Records `n` non-memory instructions preceding the next memory op.
    fn compute(&mut self, n: u32);

    /// Whether the op budget has been exhausted (workloads should bail out).
    fn is_full(&self) -> bool;

    /// Ops recorded so far.
    fn len(&self) -> u64;

    /// Whether no ops have been recorded.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A tracer that resolves data types through an [`AddressSpace`] and stores
/// the whole trace for replay.
///
/// # Example
///
/// ```
/// use droplet_trace::{AddressSpace, DataType, Tracer, VecTracer};
/// let mut space = AddressSpace::new();
/// let prop = space.alloc_array("p", DataType::Property, 4, 16);
/// let neigh = space.alloc_array("n", DataType::Structure, 4, 16);
/// let mut t = VecTracer::new(space, u64::MAX);
/// let s = t.load(neigh.addr_of(0), DataType::Structure, None);
/// t.load(prop.addr_of(3), DataType::Property, Some(s));
/// assert_eq!(t.ops().len(), 2);
/// assert!(t.ops()[1].producer_back().is_some());
/// ```
#[derive(Debug)]
pub struct VecTracer {
    space: AddressSpace,
    ops: Vec<MemOp>,
    pending_compute: u32,
    budget: u64,
    total_instructions: u64,
}

impl VecTracer {
    /// Creates a tracer with an op `budget` (use `u64::MAX` for unlimited).
    pub fn new(space: AddressSpace, budget: u64) -> Self {
        VecTracer {
            space,
            ops: Vec::new(),
            pending_compute: 0,
            budget,
            total_instructions: 0,
        }
    }

    fn push(
        &mut self,
        addr: VirtAddr,
        kind: AccessKind,
        dtype: DataType,
        producer: Option<OpId>,
    ) -> OpId {
        debug_assert_eq!(
            self.space.data_type(addr),
            Some(dtype),
            "traced access at {addr} disagrees with the region allocator about its data type",
        );
        let id = OpId(self.ops.len() as u64);
        let pre = self.pending_compute.min(u32::from(u16::MAX)) as u16;
        self.pending_compute = 0;
        self.total_instructions += u64::from(pre) + 1;
        self.ops
            .push(MemOp::new(addr, kind, dtype, producer, id, pre));
        id
    }

    /// The recorded operations.
    pub fn ops(&self) -> &[MemOp] {
        &self.ops
    }

    /// Consumes the tracer, yielding the trace and its address space.
    pub fn into_parts(self) -> (Vec<MemOp>, AddressSpace) {
        (self.ops, self.space)
    }

    /// The address space used for data-type resolution.
    pub fn space(&self) -> &AddressSpace {
        &self.space
    }

    /// Total instructions recorded (memory ops + compute).
    pub fn instructions(&self) -> u64 {
        self.total_instructions
    }
}

impl Tracer for VecTracer {
    fn load(&mut self, addr: VirtAddr, dtype: DataType, producer: Option<OpId>) -> OpId {
        self.push(addr, AccessKind::Load, dtype, producer)
    }

    fn store(&mut self, addr: VirtAddr, dtype: DataType, producer: Option<OpId>) -> OpId {
        self.push(addr, AccessKind::Store, dtype, producer)
    }

    fn compute(&mut self, n: u32) {
        self.pending_compute = self.pending_compute.saturating_add(n);
    }

    fn is_full(&self) -> bool {
        self.ops.len() as u64 >= self.budget
    }

    fn len(&self) -> u64 {
        self.ops.len() as u64
    }
}

/// A tracer that keeps only aggregate per-type counts; useful for workload
/// sanity checks and for sizing runs without holding a trace in memory.
#[derive(Debug, Default)]
pub struct CountingTracer {
    loads: [u64; 3],
    stores: [u64; 3],
    dependent_loads: u64,
    instructions: u64,
}

impl CountingTracer {
    /// Creates a zeroed counting tracer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Loads observed for `dtype`.
    pub fn loads(&self, dtype: DataType) -> u64 {
        self.loads[dtype.index()]
    }

    /// Stores observed for `dtype`.
    pub fn stores(&self, dtype: DataType) -> u64 {
        self.stores[dtype.index()]
    }

    /// Loads that carried a producer link.
    pub fn dependent_loads(&self) -> u64 {
        self.dependent_loads
    }

    /// Total instructions (memory + compute).
    pub fn instructions(&self) -> u64 {
        self.instructions
    }
}

impl Tracer for CountingTracer {
    fn load(&mut self, addr: VirtAddr, dtype: DataType, producer: Option<OpId>) -> OpId {
        let _ = addr;
        self.loads[dtype.index()] += 1;
        if producer.is_some() {
            self.dependent_loads += 1;
        }
        self.instructions += 1;
        OpId(self.len() - 1)
    }

    fn store(&mut self, addr: VirtAddr, dtype: DataType, producer: Option<OpId>) -> OpId {
        let _ = (addr, producer);
        self.stores[dtype.index()] += 1;
        self.instructions += 1;
        OpId(self.len() - 1)
    }

    fn compute(&mut self, n: u32) {
        self.instructions += u64::from(n);
    }

    fn is_full(&self) -> bool {
        false
    }

    fn len(&self) -> u64 {
        self.loads.iter().sum::<u64>() + self.stores.iter().sum::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> (AddressSpace, VirtAddr, VirtAddr) {
        let mut s = AddressSpace::new();
        let n = s.alloc("n", DataType::Structure, 4096);
        let p = s.alloc("p", DataType::Property, 4096);
        (s, n.base(), p.base())
    }

    #[test]
    fn vec_tracer_records_dependencies_and_compute() {
        let (s, n, p) = space();
        let mut t = VecTracer::new(s, u64::MAX);
        t.compute(5);
        let a = t.load(n, DataType::Structure, None);
        t.compute(2);
        let b = t.load(p, DataType::Property, Some(a));
        t.store(p, DataType::Property, Some(b));
        assert_eq!(t.len(), 3);
        assert_eq!(t.ops()[0].pre_compute(), 5);
        assert_eq!(t.ops()[1].pre_compute(), 2);
        assert_eq!(t.ops()[1].producer(OpId(1)), Some(OpId(0)));
        assert_eq!(t.instructions(), 3 + 7);
    }

    #[test]
    fn vec_tracer_budget() {
        let (s, n, _) = space();
        let mut t = VecTracer::new(s, 2);
        assert!(!t.is_full());
        t.load(n, DataType::Structure, None);
        t.load(n, DataType::Structure, None);
        assert!(t.is_full());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "disagrees")]
    fn vec_tracer_validates_data_types() {
        let (s, n, _) = space();
        let mut t = VecTracer::new(s, u64::MAX);
        t.load(n, DataType::Property, None);
    }

    #[test]
    fn counting_tracer_aggregates() {
        let (_, n, p) = space();
        let mut t = CountingTracer::new();
        let a = t.load(n, DataType::Structure, None);
        t.load(p, DataType::Property, Some(a));
        t.store(p, DataType::Property, None);
        t.compute(10);
        assert_eq!(t.loads(DataType::Structure), 1);
        assert_eq!(t.loads(DataType::Property), 1);
        assert_eq!(t.stores(DataType::Property), 1);
        assert_eq!(t.dependent_loads(), 1);
        assert_eq!(t.instructions(), 13);
        assert!(!t.is_full());
        assert!(!t.is_empty());
    }
}
