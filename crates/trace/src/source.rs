//! The replay-side trace abstraction: where ops come from.
//!
//! The core engine consumes ops in program order but does not care whether
//! they live in a `Vec` (a freshly built trace) or in a columnar artifact
//! on disk. [`TraceSource`] is that seam: `fetch(pos)` returns a borrowed
//! run of consecutive ops starting at `pos`, letting replay loops stream a
//! trace chunk-by-chunk without ever materializing all of it.
//!
//! Two implementations:
//! - [`SliceSource`] — zero-cost view over in-memory ops;
//! - [`ColumnarSource`] — block-at-a-time decoder over an encoded byte
//!   stream (typically an `mmap`ed file, see [`crate::mmap::MappedFile`]),
//!   holding exactly one decoded block at a time.

use crate::columnar::{decode_block_at, ColumnarError, ColumnarReader, DecodeScratch, BLOCK_OPS};
use crate::mmap::MappedFile;
use crate::op::MemOp;
use std::path::Path;

/// A positional supplier of trace ops.
pub trait TraceSource {
    /// Total ops in the trace.
    fn op_count(&self) -> u64;

    /// A run of consecutive ops starting at `pos`, at most `max` long.
    /// Returns an empty slice exactly when `pos >= op_count()`; otherwise
    /// at least one op. Implementations choose the run length (e.g. up to
    /// a block boundary), so callers loop until empty.
    fn fetch(&mut self, pos: u64, max: usize) -> &[MemOp];

    /// The block cursor: the source's natural block holding `pos` — the
    /// maximal run it can serve without re-decoding — clipped to `max`.
    /// Batched replay loops precompute one span plan per returned block,
    /// so larger runs mean fewer, bigger plans; for [`SliceSource`] that
    /// is the whole remaining trace, for [`ColumnarSource`] the rest of
    /// the decoded [`BLOCK_OPS`]-op block. Defaults to
    /// [`TraceSource::fetch`], which already returns maximal runs.
    fn next_block(&mut self, pos: u64, max: usize) -> &[MemOp] {
        self.fetch(pos, max)
    }
}

/// In-memory ops as a [`TraceSource`]; `fetch` is a bounds-checked
/// subslice, nothing is copied.
pub struct SliceSource<'a> {
    ops: &'a [MemOp],
}

impl<'a> SliceSource<'a> {
    /// Wraps `ops`.
    pub fn new(ops: &'a [MemOp]) -> Self {
        SliceSource { ops }
    }
}

impl TraceSource for SliceSource<'_> {
    fn op_count(&self) -> u64 {
        self.ops.len() as u64
    }

    fn fetch(&mut self, pos: u64, max: usize) -> &[MemOp] {
        let start = (pos as usize).min(self.ops.len());
        let end = start.saturating_add(max).min(self.ops.len());
        &self.ops[start..end]
    }
}

/// Streams a columnar artifact, decoding one block at a time. The backing
/// bytes stay wherever they are (owned buffer or mapped file); resident
/// decoded state is a single [`BLOCK_OPS`]-op buffer regardless of trace
/// length.
pub struct ColumnarSource<B: AsRef<[u8]>> {
    bytes: B,
    op_count: u64,
    digest: u64,
    /// Block directory copied out of the validated header, so per-block
    /// decodes skip re-parsing (and re-allocating) the directory.
    block_offsets: Vec<u64>,
    /// Reused column staging across block decodes.
    scratch: DecodeScratch,
    /// Decoded ops of `cur_block` (`usize::MAX` = nothing decoded yet).
    buf: Vec<MemOp>,
    cur_block: usize,
}

impl<B: AsRef<[u8]>> ColumnarSource<B> {
    /// Validates the header of `bytes` and prepares streaming.
    pub fn new(bytes: B) -> Result<Self, ColumnarError> {
        let reader = ColumnarReader::new(bytes.as_ref())?;
        let (op_count, digest) = (reader.op_count(), reader.digest());
        let block_offsets = reader.block_offsets().to_vec();
        Ok(ColumnarSource {
            bytes,
            op_count,
            digest,
            block_offsets,
            scratch: DecodeScratch::default(),
            buf: Vec::new(),
            cur_block: usize::MAX,
        })
    }

    /// The artifact's stored content digest.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// The backing byte store (e.g. to ask a [`MappedFile`] whether the
    /// mapping is live or the owned fallback engaged).
    pub fn backing(&self) -> &B {
        &self.bytes
    }

    /// Decodes the block holding `pos`, propagating typed errors. The
    /// header was validated in `new` and its directory cached, so this
    /// touches only the block's own bytes and reuses the scratch staging.
    fn load_block(&mut self, block: usize) -> Result<(), ColumnarError> {
        let Some(&off) = self.block_offsets.get(block) else {
            return Err(ColumnarError::Corrupt("block index out of range"));
        };
        let start = block as u64 * BLOCK_OPS as u64;
        let expected = (self.op_count - start).min(BLOCK_OPS as u64) as usize;
        decode_block_at(
            self.bytes.as_ref(),
            off,
            expected,
            &mut self.buf,
            &mut self.scratch,
        )?;
        self.cur_block = block;
        Ok(())
    }
}

impl<B: AsRef<[u8]>> TraceSource for ColumnarSource<B> {
    fn op_count(&self) -> u64 {
        self.op_count
    }

    /// # Panics
    ///
    /// Panics if the block holding `pos` fails to decode. Artifact headers
    /// are validated at construction; a block-level failure afterwards
    /// means the file changed or rotted underneath the replay, which no
    /// caller can meaningfully continue from.
    fn fetch(&mut self, pos: u64, max: usize) -> &[MemOp] {
        if pos >= self.op_count {
            return &[];
        }
        let block = (pos / BLOCK_OPS as u64) as usize;
        if block != self.cur_block {
            self.load_block(block)
                .unwrap_or_else(|e| panic!("columnar trace block {block} unreadable: {e}"));
        }
        let within = (pos % BLOCK_OPS as u64) as usize;
        let end = within.saturating_add(max).min(self.buf.len());
        &self.buf[within..end]
    }
}

/// Opens `path` as a mapped columnar trace source.
pub fn open_columnar(path: &Path) -> Result<ColumnarSource<MappedFile>, ColumnarError> {
    let mapped = MappedFile::open(path).map_err(|_| ColumnarError::Truncated("file unreadable"))?;
    ColumnarSource::new(mapped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::VirtAddr;
    use crate::columnar::encode;
    use crate::op::{AccessKind, DataType, OpId};

    fn ops(n: u64) -> Vec<MemOp> {
        (0..n)
            .map(|i| {
                MemOp::new(
                    VirtAddr::new(0x2000 + (i * 37 % 4096) * 64),
                    if i % 5 == 0 {
                        AccessKind::Store
                    } else {
                        AccessKind::Load
                    },
                    DataType::ALL[(i % 3) as usize],
                    (i % 4 == 1).then(|| OpId(i - 1)),
                    OpId(i),
                    (i % 3) as u16,
                )
            })
            .collect()
    }

    fn drain(src: &mut impl TraceSource, chunk: usize) -> Vec<MemOp> {
        let mut all = Vec::new();
        let mut pos = 0u64;
        loop {
            let run = src.fetch(pos, chunk);
            if run.is_empty() {
                break;
            }
            pos += run.len() as u64;
            all.extend_from_slice(run);
        }
        all
    }

    #[test]
    fn slice_source_is_identity() {
        let o = ops(1000);
        let mut src = SliceSource::new(&o);
        assert_eq!(src.op_count(), 1000);
        assert_eq!(drain(&mut src, 64), o);
        assert!(src.fetch(1000, 8).is_empty());
    }

    #[test]
    fn columnar_source_streams_across_blocks() {
        let o = ops(BLOCK_OPS as u64 * 2 + 17);
        let bytes = encode(&o);
        let mut src = ColumnarSource::new(bytes.as_slice()).unwrap();
        assert_eq!(src.op_count(), o.len() as u64);
        // Odd chunk size exercises intra-block and cross-block fetches.
        assert_eq!(drain(&mut src, 1000), o);
    }

    #[test]
    fn columnar_source_random_access() {
        let o = ops(BLOCK_OPS as u64 + 100);
        let bytes = encode(&o);
        let mut src = ColumnarSource::new(bytes.as_slice()).unwrap();
        // Jump straight into the second block.
        let run = src.fetch(BLOCK_OPS as u64 + 5, 10);
        assert_eq!(run, &o[BLOCK_OPS + 5..BLOCK_OPS + 15]);
        // And back into the first.
        let run = src.fetch(3, 4);
        assert_eq!(run, &o[3..7]);
    }

    #[test]
    fn corrupt_artifact_is_rejected_at_open() {
        let mut bytes = encode(&ops(10));
        bytes[9] = 0xee; // version field
        assert!(ColumnarSource::new(bytes.as_slice()).is_err());
    }
}
