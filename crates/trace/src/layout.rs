//! The data-aware region allocator — the paper's "specialized malloc"
//! (Section VI, *System support for address identification*).
//!
//! Graph frameworks allocate each logical array (offsets, neighbor IDs,
//! vertex properties, worklists) through this allocator. Every allocation is
//! page-aligned and tagged with its [`DataType`], which is what lets the
//! simulated OS label page-table entries with the extra structure bit and
//! lets the MPP know the property array's base address and element size.

use crate::addr::{VirtAddr, PAGE_BYTES};
use crate::op::DataType;

/// Identifier of a region within an [`AddressSpace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegionId(pub usize);

/// One contiguous, page-aligned allocation.
#[derive(Debug, Clone)]
pub struct Region {
    id: RegionId,
    name: String,
    dtype: DataType,
    base: VirtAddr,
    bytes: u64,
}

impl Region {
    /// The region's identifier within its address space.
    pub fn id(&self) -> RegionId {
        self.id
    }

    /// The human-readable name given at allocation time.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The graph data type of every byte in this region.
    pub fn dtype(&self) -> DataType {
        self.dtype
    }

    /// First virtual address of the region.
    pub fn base(&self) -> VirtAddr {
        self.base
    }

    /// Size in bytes (as requested; the footprint is rounded up to pages).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// One past the last usable address.
    pub fn end(&self) -> VirtAddr {
        self.base.add_bytes(self.bytes)
    }

    /// Whether `addr` falls inside the region.
    pub fn contains(&self, addr: VirtAddr) -> bool {
        addr >= self.base && addr < self.end()
    }
}

/// A typed view of a region as an array of fixed-size elements.
///
/// # Example
///
/// ```
/// use droplet_trace::{AddressSpace, DataType};
/// let mut space = AddressSpace::new();
/// let scores = space.alloc_array("scores", DataType::Property, 8, 1000);
/// assert_eq!(scores.addr_of(1).raw(), scores.base().raw() + 8);
/// assert_eq!(scores.index_of(scores.addr_of(41)), Some(41));
/// ```
#[derive(Debug, Clone)]
pub struct ArrayRegion {
    region: Region,
    elem_bytes: u64,
    len: u64,
}

impl ArrayRegion {
    /// The underlying region.
    pub fn region(&self) -> &Region {
        &self.region
    }

    /// Size of each element in bytes.
    pub fn elem_bytes(&self) -> u64 {
        self.elem_bytes
    }

    /// Number of elements.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the array has no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// First virtual address.
    pub fn base(&self) -> VirtAddr {
        self.region.base()
    }

    /// Address of element `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn addr_of(&self, i: u64) -> VirtAddr {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        self.region.base().add_bytes(i * self.elem_bytes)
    }

    /// Address of byte `b` within the region (for sub-element accesses).
    pub fn addr_of_byte(&self, b: u64) -> VirtAddr {
        assert!(b < self.region.bytes());
        self.region.base().add_bytes(b)
    }

    /// The element index containing `addr`, if the address is in range.
    pub fn index_of(&self, addr: VirtAddr) -> Option<u64> {
        if !self.region.contains(addr) {
            return None;
        }
        Some((addr.raw() - self.region.base().raw()) / self.elem_bytes)
    }
}

/// The simulated application virtual address space.
///
/// Allocations are laid out sequentially from a fixed base, separated by one
/// guard page, mimicking how a real allocator gives each large graph array
/// its own pages (which is what makes per-page data-type tagging possible).
#[derive(Debug, Clone, Default)]
pub struct AddressSpace {
    regions: Vec<Region>,
    next_base: u64,
}

/// Base virtual address of the first allocation. `pub(crate)` so the page
/// table can index its dense slot array relative to this base.
pub(crate) const SPACE_BASE: u64 = 0x0001_0000_0000;

impl AddressSpace {
    /// Creates an empty address space.
    pub fn new() -> Self {
        AddressSpace {
            regions: Vec::new(),
            next_base: SPACE_BASE,
        }
    }

    /// Allocates `bytes` bytes tagged as `dtype`; page-aligned.
    ///
    /// This is the simulation analogue of the paper's specialized `malloc`:
    /// allocating with [`DataType::Structure`] is what sets the extra bit in
    /// the page-table entries of the returned range.
    pub fn alloc(&mut self, name: &str, dtype: DataType, bytes: u64) -> Region {
        let footprint = bytes.max(1).div_ceil(PAGE_BYTES) * PAGE_BYTES;
        let region = Region {
            id: RegionId(self.regions.len()),
            name: name.to_string(),
            dtype,
            base: VirtAddr::new(self.next_base),
            bytes,
        };
        // One guard page between regions keeps page-granular tags unambiguous.
        self.next_base += footprint + PAGE_BYTES;
        self.regions.push(region.clone());
        region
    }

    /// Allocates an array of `len` elements of `elem_bytes` each.
    pub fn alloc_array(
        &mut self,
        name: &str,
        dtype: DataType,
        elem_bytes: u64,
        len: u64,
    ) -> ArrayRegion {
        let region = self.alloc(name, dtype, elem_bytes * len.max(1));
        ArrayRegion {
            region,
            elem_bytes,
            len: len.max(1),
        }
    }

    /// All regions allocated so far, in allocation order.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// The region containing `addr`, if any.
    pub fn region_of(&self, addr: VirtAddr) -> Option<&Region> {
        // Regions are sorted by base; binary search on base then bound check.
        let idx = self
            .regions
            .partition_point(|r| r.base().raw() <= addr.raw());
        if idx == 0 {
            return None;
        }
        let r = &self.regions[idx - 1];
        r.contains(addr).then_some(r)
    }

    /// The data type of `addr`, if it falls in any region.
    pub fn data_type(&self, addr: VirtAddr) -> Option<DataType> {
        self.region_of(addr).map(Region::dtype)
    }

    /// Whether the page holding `addr` is tagged as structure data.
    ///
    /// Page-granular by construction: regions are page-aligned with guard
    /// pages, so a page never mixes data types.
    pub fn is_structure_page(&self, addr: VirtAddr) -> bool {
        self.data_type(addr) == Some(DataType::Structure)
    }

    /// Total bytes requested across all regions.
    pub fn total_bytes(&self) -> u64 {
        self.regions.iter().map(Region::bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_page_aligned_and_disjoint() {
        let mut s = AddressSpace::new();
        let a = s.alloc("a", DataType::Structure, 100);
        let b = s.alloc("b", DataType::Property, 5000);
        assert_eq!(a.base().raw() % PAGE_BYTES, 0);
        assert_eq!(b.base().raw() % PAGE_BYTES, 0);
        assert!(a.end().raw() <= b.base().raw());
        // Guard page separates them.
        assert!(b.base().raw() - a.base().raw() >= PAGE_BYTES * 2);
    }

    #[test]
    fn region_lookup() {
        let mut s = AddressSpace::new();
        let a = s.alloc("a", DataType::Structure, 4096);
        let b = s.alloc("b", DataType::Property, 4096);
        assert_eq!(s.data_type(a.base()), Some(DataType::Structure));
        assert_eq!(
            s.data_type(a.base().add_bytes(4095)),
            Some(DataType::Structure)
        );
        assert_eq!(s.data_type(b.base()), Some(DataType::Property));
        // Guard page belongs to nobody.
        assert_eq!(s.data_type(a.base().add_bytes(4096)), None);
        assert_eq!(s.data_type(VirtAddr::new(0)), None);
    }

    #[test]
    fn structure_page_tagging() {
        let mut s = AddressSpace::new();
        let a = s.alloc("neighbors", DataType::Structure, 8192);
        let p = s.alloc("prop", DataType::Property, 4096);
        assert!(s.is_structure_page(a.base()));
        assert!(s.is_structure_page(a.base().add_bytes(8191)));
        assert!(!s.is_structure_page(p.base()));
    }

    #[test]
    fn array_region_addressing() {
        let mut s = AddressSpace::new();
        let arr = s.alloc_array("offsets", DataType::Intermediate, 8, 10);
        assert_eq!(arr.len(), 10);
        assert!(!arr.is_empty());
        assert_eq!(arr.addr_of(0), arr.base());
        assert_eq!(arr.addr_of(9).raw(), arr.base().raw() + 72);
        assert_eq!(arr.index_of(arr.addr_of(7)), Some(7));
        assert_eq!(arr.index_of(VirtAddr::new(0)), None);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn array_bounds_checked() {
        let mut s = AddressSpace::new();
        let arr = s.alloc_array("x", DataType::Property, 4, 4);
        let _ = arr.addr_of(4);
    }

    #[test]
    fn zero_len_array_still_valid() {
        let mut s = AddressSpace::new();
        let arr = s.alloc_array("empty", DataType::Property, 4, 0);
        assert_eq!(arr.len(), 1); // clamped to one element footprint
        assert!(s.region_of(arr.base()).is_some());
    }

    #[test]
    fn total_bytes_sums_requests() {
        let mut s = AddressSpace::new();
        s.alloc("a", DataType::Structure, 100);
        s.alloc("b", DataType::Property, 200);
        assert_eq!(s.total_bytes(), 300);
    }
}
