//! Foundational types for the DROPLET reproduction: simulated virtual/physical
//! addresses, graph data types, memory operations, the data-aware region
//! allocator (the paper's "specialized malloc"), the page table carrying the
//! extra *structure* bit, a TLB model, and the functional-memory trait the
//! MC-side property prefetcher (MPP) uses to scan structure cachelines.
//!
//! Everything in the workspace builds on this crate; it has no dependencies.
//!
//! # Example
//!
//! ```
//! use droplet_trace::{AddressSpace, DataType, LINE_BYTES};
//!
//! let mut space = AddressSpace::new();
//! let neigh = space.alloc("neighbors", DataType::Structure, 1 << 20);
//! let prop = space.alloc("scores", DataType::Property, 1 << 16);
//! assert_eq!(space.data_type(neigh.base()), Some(DataType::Structure));
//! assert_eq!(space.data_type(prop.base()), Some(DataType::Property));
//! assert_eq!(LINE_BYTES, 64);
//! ```

pub mod addr;
pub mod columnar;
pub mod funcmem;
pub mod hash;
pub mod layout;
pub mod mmap;
pub mod op;
pub mod page;
pub mod scan;
pub mod source;
pub mod tlb;
pub mod tracer;

pub use addr::{PhysAddr, VirtAddr, LINES_PER_PAGE, LINE_BYTES, PAGE_BYTES};
pub use columnar::{ColumnarError, ColumnarReader, DecodeScratch};
pub use funcmem::FunctionalMemory;
pub use hash::{FxBuildHasher, FxHashMap, FxHasher};
pub use layout::{AddressSpace, ArrayRegion, Region, RegionId};
pub use mmap::MappedFile;
pub use op::{AccessKind, Cycle, DataType, MemOp, OpId};
pub use page::{PageEntry, PageTable};
pub use scan::{find_u64, min_index_u64};
pub use source::{open_columnar, ColumnarSource, SliceSource, TraceSource};
pub use tlb::Tlb;
pub use tracer::{CountingTracer, Tracer, VecTracer};
