//! Memory operations and the graph data-type taxonomy.
//!
//! The paper's characterization (Section II-A) divides all application data
//! into three types: *structure* (the neighbor-ID array of the CSR),
//! *property* (the vertex-data array), and *intermediate* (everything else).
//! Every memory operation in a trace carries its data type plus an optional
//! producer link encoding the load-load dependency chains that Section IV
//! identifies as the MLP bottleneck.

use crate::addr::VirtAddr;

/// A simulation clock value, in core cycles.
pub type Cycle = u64;

/// The paper's three application data types (Section II-A).
///
/// # Example
///
/// ```
/// use droplet_trace::DataType;
/// assert_eq!(DataType::ALL.len(), 3);
/// assert_eq!(DataType::Structure.to_string(), "structure");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DataType {
    /// The neighbor-ID array of the CSR (including edge weights when present).
    Structure,
    /// The vertex-data array(s), indirectly indexed through structure data.
    Property,
    /// Any other data: offsets, worklists, frontiers, bins, stacks.
    Intermediate,
}

impl DataType {
    /// All three data types, in a stable order suitable for table columns.
    pub const ALL: [DataType; 3] = [
        DataType::Structure,
        DataType::Property,
        DataType::Intermediate,
    ];

    /// A stable small index (0..3) for per-type stat arrays.
    pub const fn index(self) -> usize {
        match self {
            DataType::Structure => 0,
            DataType::Property => 1,
            DataType::Intermediate => 2,
        }
    }
}

impl std::fmt::Display for DataType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DataType::Structure => "structure",
            DataType::Property => "property",
            DataType::Intermediate => "intermediate",
        };
        f.write_str(s)
    }
}

/// Whether a memory operation reads or writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A demand read.
    Load,
    /// A demand write (write-allocate in the simulated hierarchy).
    Store,
}

impl std::fmt::Display for AccessKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            AccessKind::Load => "load",
            AccessKind::Store => "store",
        })
    }
}

/// Identifier of a memory operation within one trace: its position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpId(pub u64);

impl OpId {
    /// The raw trace position.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for OpId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "op#{}", self.0)
    }
}

/// Sentinel meaning "no producer" in the compact encoding.
const NO_PRODUCER: u32 = u32::MAX;

/// One memory operation of a traced workload.
///
/// Kept deliberately compact (24 bytes) because perf-scale traces hold
/// millions of these. The producer link is stored as a backward distance:
/// `producer_back == 0` means the op has no producer; otherwise the producer
/// is the op `producer_back` positions earlier in the trace.
///
/// # Example
///
/// ```
/// use droplet_trace::{AccessKind, DataType, MemOp, OpId, VirtAddr};
/// let op = MemOp::new(
///     VirtAddr::new(0x1000),
///     AccessKind::Load,
///     DataType::Property,
///     Some(OpId(5)),
///     OpId(9),
///     3,
/// );
/// assert_eq!(op.producer(OpId(9)), Some(OpId(5)));
/// assert_eq!(op.pre_compute(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemOp {
    addr: VirtAddr,
    /// Backward distance to the producer op; `NO_PRODUCER` if independent.
    producer_back: u32,
    /// Number of non-memory instructions executed just before this op.
    pre_compute: u16,
    kind: AccessKind,
    dtype: DataType,
}

impl MemOp {
    /// Creates an op at trace position `id` with an optional `producer`
    /// (an earlier op this op's address depends on) and `pre_compute`
    /// non-memory instructions preceding it.
    ///
    /// # Panics
    ///
    /// Panics if `producer` is not strictly earlier than `id`, or farther
    /// than `u32::MAX - 1` ops back.
    pub fn new(
        addr: VirtAddr,
        kind: AccessKind,
        dtype: DataType,
        producer: Option<OpId>,
        id: OpId,
        pre_compute: u16,
    ) -> Self {
        let producer_back = match producer {
            None => NO_PRODUCER,
            Some(p) => {
                assert!(p.0 < id.0, "producer {p} must precede op {id}");
                let back = id.0 - p.0;
                assert!(back < u64::from(NO_PRODUCER), "producer too far back");
                back as u32
            }
        };
        MemOp {
            addr,
            producer_back,
            pre_compute,
            kind,
            dtype,
        }
    }

    /// Reassembles an op from its stored columns (the columnar trace
    /// codec's decode path). `producer_back` is the raw backward distance
    /// with `0` meaning "no producer" — exactly the on-disk encoding, so
    /// the codec never re-derives absolute producer ids.
    pub(crate) const fn from_columns(
        addr: VirtAddr,
        kind: AccessKind,
        dtype: DataType,
        producer_back: u32,
        pre_compute: u16,
    ) -> Self {
        MemOp {
            addr,
            producer_back: if producer_back == 0 {
                NO_PRODUCER
            } else {
                producer_back
            },
            pre_compute,
            kind,
            dtype,
        }
    }

    /// The raw backward producer distance as stored by the columnar codec:
    /// `0` when independent, the distance otherwise.
    pub(crate) const fn producer_back_or_zero(&self) -> u32 {
        if self.producer_back == NO_PRODUCER {
            0
        } else {
            self.producer_back
        }
    }

    /// The virtual address accessed.
    pub const fn addr(&self) -> VirtAddr {
        self.addr
    }

    /// Load or store.
    pub const fn kind(&self) -> AccessKind {
        self.kind
    }

    /// Returns `true` for loads.
    pub const fn is_load(&self) -> bool {
        matches!(self.kind, AccessKind::Load)
    }

    /// The graph data type of the accessed address.
    pub const fn dtype(&self) -> DataType {
        self.dtype
    }

    /// The producer op this op's *address* depends on, given this op's own
    /// trace position `id`.
    pub fn producer(&self, id: OpId) -> Option<OpId> {
        if self.producer_back == NO_PRODUCER {
            None
        } else {
            Some(OpId(id.0 - u64::from(self.producer_back)))
        }
    }

    /// Backward distance to the producer, if any.
    pub fn producer_back(&self) -> Option<u32> {
        (self.producer_back != NO_PRODUCER).then_some(self.producer_back)
    }

    /// Non-memory instructions executed immediately before this op; used for
    /// instruction counting (MPKI, BPKI, IPC).
    pub const fn pre_compute(&self) -> u16 {
        self.pre_compute
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(producer: Option<OpId>, id: OpId) -> MemOp {
        MemOp::new(
            VirtAddr::new(64),
            AccessKind::Load,
            DataType::Structure,
            producer,
            id,
            0,
        )
    }

    #[test]
    fn data_type_indices_are_distinct() {
        let mut seen = [false; 3];
        for t in DataType::ALL {
            assert!(!seen[t.index()]);
            seen[t.index()] = true;
        }
    }

    #[test]
    fn producer_roundtrip() {
        let o = op(Some(OpId(3)), OpId(10));
        assert_eq!(o.producer(OpId(10)), Some(OpId(3)));
        assert_eq!(o.producer_back(), Some(7));
    }

    #[test]
    fn no_producer() {
        let o = op(None, OpId(10));
        assert_eq!(o.producer(OpId(10)), None);
        assert_eq!(o.producer_back(), None);
    }

    #[test]
    #[should_panic(expected = "must precede")]
    fn producer_must_precede() {
        let _ = op(Some(OpId(10)), OpId(10));
    }

    #[test]
    fn op_is_compact() {
        assert!(std::mem::size_of::<MemOp>() <= 24);
    }

    #[test]
    fn display_impls() {
        assert_eq!(AccessKind::Load.to_string(), "load");
        assert_eq!(AccessKind::Store.to_string(), "store");
        assert_eq!(OpId(4).to_string(), "op#4");
        assert_eq!(DataType::Intermediate.to_string(), "intermediate");
    }
}
