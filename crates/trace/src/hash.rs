//! A fast, deterministic hasher for simulator-internal hash maps.
//!
//! `std`'s default SipHash is DoS-resistant but costs real time on the hot
//! demand path (it showed up at ~6% of `prefetch_study` wall time hashing
//! GHB delta-pair keys). Simulator tables hash trusted, simulator-generated
//! keys, so we trade the resistance for a multiply-xor mix (FxHash-style:
//! the scheme rustc itself uses for its interner tables). The hash is a
//! pure function of the written bytes — no per-process seed — so any map
//! iteration order that leaks into results stays reproducible across runs.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the Firefox/rustc Fx hash: a 64-bit odd constant derived
/// from π with good avalanche behavior under `rotate ^ mul`.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The per-map state: [`BuildHasherDefault`] over [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` with the fast deterministic hasher plugged in.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// Word-at-a-time multiply-xor hasher (FxHash scheme).
#[derive(Debug, Clone, Copy)]
pub struct FxHasher {
    state: u64,
}

impl Default for FxHasher {
    /// Starts from a nonzero state so all-zero inputs of different lengths
    /// hash differently (plain Fx maps them all to zero).
    fn default() -> Self {
        FxHasher { state: SEED }
    }
}

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.mix(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Fold the length in so "ab" + "" and "a" + "b" differ.
            self.mix(u64::from_le_bytes(tail) ^ (rest.len() as u64));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_i64(&mut self, n: i64) {
        self.mix(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_of(parts: &[u64]) -> u64 {
        let mut h = FxHasher::default();
        for &p in parts {
            h.write_u64(p);
        }
        h.finish()
    }

    #[test]
    fn deterministic_and_sensitive() {
        assert_eq!(hash_of(&[1, 2]), hash_of(&[1, 2]));
        assert_ne!(hash_of(&[1, 2]), hash_of(&[2, 1]));
        assert_ne!(hash_of(&[0]), hash_of(&[0, 0]));
    }

    #[test]
    fn byte_writes_fold_length() {
        let mut a = FxHasher::default();
        a.write(b"ab");
        let mut b = FxHasher::default();
        b.write(b"a");
        b.write(b"b");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<(i64, i64), u64> = FxHashMap::default();
        m.insert((3, -1), 7);
        m.insert((-1, 3), 9);
        assert_eq!(m.get(&(3, -1)), Some(&7));
        assert_eq!(m.get(&(-1, 3)), Some(&9));
        assert_eq!(m.len(), 2);
    }
}
