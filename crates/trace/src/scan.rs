//! Branch-thin linear search over dense `u64` key arrays.
//!
//! The simulator's hottest loops are all tiny associative searches: a TLB
//! lookup scans up to 64 resident VPNs, a cache probe scans 8–16 way tags.
//! `slice::iter().position(..)` compiles to one compare-and-branch per
//! element, which the CPU cannot vectorize past. [`find_u64`] instead
//! compares four lanes per iteration and branches once on the OR of the
//! compares — the common all-miss chunk costs a single predictable branch,
//! and the result (first matching index) is identical to a sequential scan.

/// Returns the index of the first element equal to `needle`, like
/// `hay.iter().position(|&v| v == needle)`.
///
/// # Example
///
/// ```
/// use droplet_trace::find_u64;
/// let hay = [7, 9, 11, 9];
/// assert_eq!(find_u64(&hay, 9), Some(1));
/// assert_eq!(find_u64(&hay, 8), None);
/// ```
#[inline]
pub fn find_u64(hay: &[u64], needle: u64) -> Option<usize> {
    let mut chunks = hay.chunks_exact(4);
    let mut base = 0;
    for c in &mut chunks {
        let any = (c[0] == needle) | (c[1] == needle) | (c[2] == needle) | (c[3] == needle);
        if any {
            for (j, &v) in c.iter().enumerate() {
                if v == needle {
                    return Some(base + j);
                }
            }
        }
        base += 4;
    }
    for (j, &v) in chunks.remainder().iter().enumerate() {
        if v == needle {
            return Some(base + j);
        }
    }
    None
}

/// Returns the index of the minimum element (first occurrence on ties),
/// like `hay.iter().enumerate().min_by_key(|&(_, &v)| v)` — the
/// LRU-victim scan shared by the TLB and the caches.
#[inline]
pub fn min_index_u64(hay: &[u64]) -> usize {
    let mut best = 0;
    let mut best_v = u64::MAX;
    for (i, &v) in hay.iter().enumerate() {
        // `<` keeps the first occurrence, matching min_by_key's tie rule.
        if v < best_v {
            best_v = v;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_position_on_all_layouts() {
        // Every (length, needle position) combination around the 4-lane
        // chunk boundary, including duplicate needles and absent needles.
        for len in 0..13usize {
            let hay: Vec<u64> = (0..len as u64).map(|i| 100 + i).collect();
            for needle in 95..120u64 {
                assert_eq!(
                    find_u64(&hay, needle),
                    hay.iter().position(|&v| v == needle),
                    "len {len} needle {needle}"
                );
            }
        }
        assert_eq!(find_u64(&[5, 5, 5, 5, 5], 5), Some(0), "first duplicate");
    }

    #[test]
    fn min_index_first_on_ties() {
        assert_eq!(min_index_u64(&[3, 1, 2, 1]), 1);
        assert_eq!(min_index_u64(&[9]), 0);
        assert_eq!(min_index_u64(&[u64::MAX, u64::MAX]), 0);
    }
}
