//! Address newtypes and geometry constants for the simulated machine.
//!
//! The simulated machine uses 64 B cachelines and 4 KiB pages, matching the
//! paper's baseline architecture (Table I) and the x86-64 hierarchical paging
//! scheme discussed in the hardware-overhead analysis (Section V-D).

/// Bytes per cacheline in the simulated hierarchy.
pub const LINE_BYTES: u64 = 64;
/// Bytes per virtual-memory page.
pub const PAGE_BYTES: u64 = 4096;
/// Cachelines per page.
pub const LINES_PER_PAGE: u64 = PAGE_BYTES / LINE_BYTES;

/// A virtual address in the simulated application address space.
///
/// Virtual addresses are what the traced workloads emit, what the prefetcher
/// training logic observes (stream trackers are page-bounded in virtual
/// space), and what the MPP's property-address generator produces before
/// MTLB translation.
///
/// # Example
///
/// ```
/// use droplet_trace::VirtAddr;
/// let a = VirtAddr::new(0x1000_0040);
/// assert_eq!(a.line_index(), 0x1000_0040 / 64);
/// assert_eq!(a.page_number(), 0x1000_0040 / 4096);
/// assert_eq!(a.line_base().raw(), 0x1000_0040);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtAddr(u64);

impl VirtAddr {
    /// Creates a virtual address from a raw value.
    pub const fn new(raw: u64) -> Self {
        VirtAddr(raw)
    }

    /// The raw 64-bit value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The index of the cacheline holding this address.
    pub const fn line_index(self) -> u64 {
        self.0 / LINE_BYTES
    }

    /// The address of the first byte of the containing cacheline.
    pub const fn line_base(self) -> VirtAddr {
        VirtAddr(self.0 & !(LINE_BYTES - 1))
    }

    /// The virtual page number holding this address.
    pub const fn page_number(self) -> u64 {
        self.0 / PAGE_BYTES
    }

    /// Byte offset within the containing cacheline.
    pub const fn line_offset(self) -> u64 {
        self.0 % LINE_BYTES
    }

    /// Byte offset within the containing page.
    pub const fn page_offset(self) -> u64 {
        self.0 % PAGE_BYTES
    }

    /// Returns the address advanced by `bytes`.
    #[must_use]
    pub const fn add_bytes(self, bytes: u64) -> VirtAddr {
        VirtAddr(self.0 + bytes)
    }
}

impl std::fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v:{:#x}", self.0)
    }
}

impl std::fmt::LowerHex for VirtAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for VirtAddr {
    fn from(raw: u64) -> Self {
        VirtAddr(raw)
    }
}

/// A physical address produced by page-table translation.
///
/// The cache hierarchy and the DRAM bank mapping are physically addressed;
/// the memory-request buffer (MRB) in the memory controller records physical
/// line addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(u64);

impl PhysAddr {
    /// Creates a physical address from a raw value.
    pub const fn new(raw: u64) -> Self {
        PhysAddr(raw)
    }

    /// The raw 64-bit value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The index of the physical cacheline holding this address.
    pub const fn line_index(self) -> u64 {
        self.0 / LINE_BYTES
    }

    /// The physical frame number holding this address.
    pub const fn frame_number(self) -> u64 {
        self.0 / PAGE_BYTES
    }

    /// Byte offset within the containing page.
    pub const fn page_offset(self) -> u64 {
        self.0 % PAGE_BYTES
    }
}

impl std::fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p:{:#x}", self.0)
    }
}

impl From<u64> for PhysAddr {
    fn from(raw: u64) -> Self {
        PhysAddr(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_geometry() {
        let a = VirtAddr::new(4096 + 65);
        assert_eq!(a.line_index(), (4096 + 65) / 64);
        assert_eq!(a.line_base().raw(), 4096 + 64);
        assert_eq!(a.line_offset(), 1);
        assert_eq!(a.page_number(), 1);
        assert_eq!(a.page_offset(), 65);
    }

    #[test]
    fn lines_per_page_constant() {
        assert_eq!(LINES_PER_PAGE, 64);
    }

    #[test]
    fn add_bytes_advances() {
        let a = VirtAddr::new(100);
        assert_eq!(a.add_bytes(28).raw(), 128);
    }

    #[test]
    fn phys_geometry() {
        let p = PhysAddr::new(2 * 4096 + 130);
        assert_eq!(p.frame_number(), 2);
        assert_eq!(p.line_index(), (2 * 4096 + 130) / 64);
        assert_eq!(p.page_offset(), 130);
    }

    #[test]
    fn display_formats() {
        assert_eq!(VirtAddr::new(0x40).to_string(), "v:0x40");
        assert_eq!(PhysAddr::new(0x40).to_string(), "p:0x40");
    }

    #[test]
    fn conversions() {
        assert_eq!(VirtAddr::from(7u64).raw(), 7);
        assert_eq!(PhysAddr::from(7u64).raw(), 7);
    }
}
