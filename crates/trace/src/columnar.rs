//! The columnar on-disk trace format (`DRPLCOL1`).
//!
//! Perf-scale traces hold millions of [`MemOp`]s; storing them row-wise
//! (24 B/op) wastes both disk and — worse — decode bandwidth, because every
//! field of every op is touched even when a consumer only streams blocks.
//! This module stores each field as its own column, compressed with the
//! cheapest transform that fits its distribution:
//!
//! - **addresses** — zig-zag varint deltas (graph traversals are bursty, so
//!   consecutive ops are usually a few cache lines apart);
//! - **access kinds** and **data types** — run-length encoded byte pairs
//!   (traces are long runs of loads over one region);
//! - **producer distances** — plain varints with `0` meaning "no producer"
//!   (most distances are tiny: the paper's short load→load chains);
//! - **pre-compute counts** — plain varints.
//!
//! Ops are grouped into blocks of [`BLOCK_OPS`]; each block restarts the
//! address delta chain and records its own column section lengths, so any
//! block decodes independently of the rest of the file. A fixed header
//! carries a format version and an FNV-1a content digest over the logical
//! op stream, and a block directory maps block index → file offset. The
//! whole layout is position-independent: a reader may operate directly on
//! an `mmap`ed byte slice (see [`crate::mmap`]) and decode only the blocks
//! a replay actually reaches.
//!
//! Every decode path is total: corrupt or truncated input yields a typed
//! [`ColumnarError`], never a panic.
//!
//! # Example
//!
//! ```
//! use droplet_trace::columnar::{decode, encode};
//! use droplet_trace::{AccessKind, DataType, MemOp, OpId, VirtAddr};
//!
//! let ops: Vec<MemOp> = (0..100)
//!     .map(|i| {
//!         MemOp::new(
//!             VirtAddr::new(0x1000 + i * 64),
//!             AccessKind::Load,
//!             DataType::Structure,
//!             (i > 0).then(|| OpId(i - 1)),
//!             OpId(i),
//!             2,
//!         )
//!     })
//!     .collect();
//! let bytes = encode(&ops);
//! assert_eq!(decode(&bytes).unwrap(), ops);
//! ```

use crate::addr::VirtAddr;
use crate::op::{AccessKind, DataType, MemOp};

/// File magic: "DRPLCOL1".
pub const MAGIC: [u8; 8] = *b"DRPLCOL1";

/// Current (only) format version.
pub const FORMAT_VERSION: u32 = 1;

/// Ops per block. Blocks restart the address delta chain, so this bounds
/// both random-access decode cost and the damage radius of a corrupt block.
pub const BLOCK_OPS: usize = 32_768;

/// Fixed header size in bytes (before the block directory).
pub const HEADER_BYTES: usize = 40;

/// A typed decode failure. Every variant identifies what the reader was
/// parsing when the input ran out or contradicted itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColumnarError {
    /// The first eight bytes are not [`MAGIC`].
    BadMagic,
    /// The header's version field is not [`FORMAT_VERSION`].
    UnsupportedVersion(u32),
    /// The input ended before the named structure was complete.
    Truncated(&'static str),
    /// A structurally impossible value (with what made it impossible).
    Corrupt(&'static str),
    /// The decoded stream's FNV-1a digest disagrees with the header.
    DigestMismatch {
        /// Digest recorded in the header.
        stored: u64,
        /// Digest of the ops actually decoded.
        computed: u64,
    },
}

impl std::fmt::Display for ColumnarError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ColumnarError::BadMagic => write!(f, "not a DRPLCOL1 trace (bad magic)"),
            ColumnarError::UnsupportedVersion(v) => {
                write!(f, "unsupported columnar trace version {v}")
            }
            ColumnarError::Truncated(what) => write!(f, "truncated columnar trace: {what}"),
            ColumnarError::Corrupt(what) => write!(f, "corrupt columnar trace: {what}"),
            ColumnarError::DigestMismatch { stored, computed } => write!(
                f,
                "columnar trace digest mismatch: header {stored:#018x}, decoded {computed:#018x}"
            ),
        }
    }
}

impl std::error::Error for ColumnarError {}

// --- primitive encoders -------------------------------------------------

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn get_varint(bytes: &[u8], pos: &mut usize, what: &'static str) -> Result<u64, ColumnarError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let &b = bytes.get(*pos).ok_or(ColumnarError::Truncated(what))?;
        *pos += 1;
        if shift == 63 && b > 1 {
            return Err(ColumnarError::Corrupt("varint overflows u64"));
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(ColumnarError::Corrupt("varint longer than 10 bytes"));
        }
    }
}

/// Order-preserving signed→unsigned fold: small magnitudes stay small.
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn get_u32(bytes: &[u8], pos: usize, what: &'static str) -> Result<u32, ColumnarError> {
    let s = bytes
        .get(pos..pos + 4)
        .ok_or(ColumnarError::Truncated(what))?;
    Ok(u32::from_le_bytes(s.try_into().expect("4-byte slice")))
}

fn get_u64(bytes: &[u8], pos: usize, what: &'static str) -> Result<u64, ColumnarError> {
    let s = bytes
        .get(pos..pos + 8)
        .ok_or(ColumnarError::Truncated(what))?;
    Ok(u64::from_le_bytes(s.try_into().expect("8-byte slice")))
}

// --- content digest -----------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

const fn kind_byte(k: AccessKind) -> u8 {
    match k {
        AccessKind::Load => 0,
        AccessKind::Store => 1,
    }
}

const fn dtype_byte(d: DataType) -> u8 {
    d.index() as u8
}

fn kind_of_byte(b: u8) -> Result<AccessKind, ColumnarError> {
    match b {
        0 => Ok(AccessKind::Load),
        1 => Ok(AccessKind::Store),
        _ => Err(ColumnarError::Corrupt("access kind byte not 0/1")),
    }
}

fn dtype_of_byte(b: u8) -> Result<DataType, ColumnarError> {
    match b {
        0 => Ok(DataType::Structure),
        1 => Ok(DataType::Property),
        2 => Ok(DataType::Intermediate),
        _ => Err(ColumnarError::Corrupt("data type byte not 0/1/2")),
    }
}

/// FNV-1a digest of the logical op stream: the value stored in the header
/// and the value a replay-parity test compares across storage formats.
pub fn content_digest(ops: &[MemOp]) -> u64 {
    let mut h = FNV_OFFSET;
    for op in ops {
        h = fnv1a(h, &op.addr().raw().to_le_bytes());
        h = fnv1a(h, &[kind_byte(op.kind()), dtype_byte(op.dtype())]);
        h = fnv1a(h, &op.producer_back_or_zero().to_le_bytes());
        h = fnv1a(h, &op.pre_compute().to_le_bytes());
    }
    h
}

// --- encode -------------------------------------------------------------

/// Appends one column's RLE stream: `(value byte, varint run length)` pairs.
fn rle_encode(out: &mut Vec<u8>, values: impl Iterator<Item = u8>) {
    let mut cur: Option<(u8, u64)> = None;
    for v in values {
        match cur {
            Some((c, n)) if c == v => cur = Some((c, n + 1)),
            Some((c, n)) => {
                out.push(c);
                put_varint(out, n);
                cur = Some((v, 1));
            }
            None => cur = Some((v, 1)),
        }
    }
    if let Some((c, n)) = cur {
        out.push(c);
        put_varint(out, n);
    }
}

/// Encodes `ops` into a self-describing columnar byte stream.
pub fn encode(ops: &[MemOp]) -> Vec<u8> {
    let block_count = ops.len().div_ceil(BLOCK_OPS);
    let mut out = Vec::with_capacity(HEADER_BYTES + block_count * 8 + ops.len() * 3);
    out.extend_from_slice(&MAGIC);
    put_u32(&mut out, FORMAT_VERSION);
    put_u32(&mut out, BLOCK_OPS as u32);
    put_u64(&mut out, ops.len() as u64);
    put_u64(&mut out, content_digest(ops));
    put_u64(&mut out, block_count as u64);
    debug_assert_eq!(out.len(), HEADER_BYTES);

    // Directory placeholder, patched as blocks land.
    let dir_at = out.len();
    out.resize(dir_at + block_count * 8, 0);

    let mut scratch = Vec::new();
    for (b, block) in ops.chunks(BLOCK_OPS).enumerate() {
        let offset = out.len() as u64;
        out[dir_at + b * 8..dir_at + b * 8 + 8].copy_from_slice(&offset.to_le_bytes());

        put_u32(&mut out, block.len() as u32);
        let sizes_at = out.len();
        out.resize(sizes_at + 5 * 4, 0);

        let mut sizes = [0u32; 5];
        // Addresses: absolute varint, then zig-zag deltas.
        scratch.clear();
        let mut prev = 0i64;
        for (i, op) in block.iter().enumerate() {
            let a = op.addr().raw() as i64;
            if i == 0 {
                put_varint(&mut scratch, a as u64);
            } else {
                put_varint(&mut scratch, zigzag(a.wrapping_sub(prev)));
            }
            prev = a;
        }
        sizes[0] = scratch.len() as u32;
        out.extend_from_slice(&scratch);

        scratch.clear();
        rle_encode(&mut scratch, block.iter().map(|op| kind_byte(op.kind())));
        sizes[1] = scratch.len() as u32;
        out.extend_from_slice(&scratch);

        scratch.clear();
        rle_encode(&mut scratch, block.iter().map(|op| dtype_byte(op.dtype())));
        sizes[2] = scratch.len() as u32;
        out.extend_from_slice(&scratch);

        scratch.clear();
        for op in block {
            put_varint(&mut scratch, u64::from(op.producer_back_or_zero()));
        }
        sizes[3] = scratch.len() as u32;
        out.extend_from_slice(&scratch);

        scratch.clear();
        for op in block {
            put_varint(&mut scratch, u64::from(op.pre_compute()));
        }
        sizes[4] = scratch.len() as u32;
        out.extend_from_slice(&scratch);

        for (i, s) in sizes.iter().enumerate() {
            out[sizes_at + i * 4..sizes_at + i * 4 + 4].copy_from_slice(&s.to_le_bytes());
        }
    }
    out
}

// --- decode -------------------------------------------------------------

/// A validated view over an encoded byte stream (owned or `mmap`ed): the
/// header is parsed and bounds-checked once, then individual blocks decode
/// on demand without touching the rest of the file.
pub struct ColumnarReader<'a> {
    bytes: &'a [u8],
    op_count: u64,
    digest: u64,
    block_offsets: Vec<u64>,
}

impl<'a> ColumnarReader<'a> {
    /// Parses and validates the header + block directory of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Result<Self, ColumnarError> {
        if bytes.len() < 8 || bytes[..8] != MAGIC {
            return Err(if bytes.len() < 8 {
                ColumnarError::Truncated("header magic")
            } else {
                ColumnarError::BadMagic
            });
        }
        let version = get_u32(bytes, 8, "header version")?;
        if version != FORMAT_VERSION {
            return Err(ColumnarError::UnsupportedVersion(version));
        }
        let block_ops = get_u32(bytes, 12, "header block size")?;
        if block_ops as usize != BLOCK_OPS {
            return Err(ColumnarError::Corrupt("unexpected block size"));
        }
        let op_count = get_u64(bytes, 16, "header op count")?;
        let digest = get_u64(bytes, 24, "header digest")?;
        let block_count = get_u64(bytes, 32, "header block count")?;
        if block_count != op_count.div_ceil(BLOCK_OPS as u64) {
            return Err(ColumnarError::Corrupt(
                "block count disagrees with op count",
            ));
        }
        let dir_end = HEADER_BYTES as u64 + block_count * 8;
        if (bytes.len() as u64) < dir_end {
            return Err(ColumnarError::Truncated("block directory"));
        }
        let mut block_offsets = Vec::with_capacity(block_count as usize);
        for b in 0..block_count as usize {
            let off = get_u64(bytes, HEADER_BYTES + b * 8, "block directory entry")?;
            if off < dir_end || off >= bytes.len() as u64 {
                return Err(ColumnarError::Corrupt("block offset outside file"));
            }
            block_offsets.push(off);
        }
        Ok(ColumnarReader {
            bytes,
            op_count,
            digest,
            block_offsets,
        })
    }

    /// Total ops in the file.
    pub fn op_count(&self) -> u64 {
        self.op_count
    }

    /// The header's content digest (see [`content_digest`]).
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.block_offsets.len()
    }

    /// Ops expected in block `b` (full blocks except possibly the last).
    fn block_len(&self, b: usize) -> usize {
        let start = b as u64 * BLOCK_OPS as u64;
        (self.op_count - start).min(BLOCK_OPS as u64) as usize
    }

    /// The block directory: block index → file offset. Cheap to copy out,
    /// so a streaming source can cache it and decode blocks without
    /// re-validating the header each time.
    pub fn block_offsets(&self) -> &[u64] {
        &self.block_offsets
    }

    /// Decodes block `b` into `out` (cleared first). Only this block's
    /// bytes are touched. Allocates fresh column staging; block-streaming
    /// callers should hold a [`DecodeScratch`] and use
    /// [`ColumnarReader::decode_block_with`] instead.
    pub fn decode_block(&self, b: usize, out: &mut Vec<MemOp>) -> Result<(), ColumnarError> {
        self.decode_block_with(b, out, &mut DecodeScratch::default())
    }

    /// [`ColumnarReader::decode_block`] with caller-owned column staging:
    /// `scratch` is reused across calls, so a whole-trace replay allocates
    /// its decode buffers once instead of once per block.
    pub fn decode_block_with(
        &self,
        b: usize,
        out: &mut Vec<MemOp>,
        scratch: &mut DecodeScratch,
    ) -> Result<(), ColumnarError> {
        let Some(&off) = self.block_offsets.get(b) else {
            out.clear();
            return Err(ColumnarError::Corrupt("block index out of range"));
        };
        decode_block_at(self.bytes, off, self.block_len(b), out, scratch)
    }
}

/// Reusable column staging for block decodes: the per-column vecs
/// [`ColumnarReader::decode_block`] would otherwise reallocate for every
/// block. One scratch amortizes them across a whole replay.
#[derive(Debug, Default)]
pub struct DecodeScratch {
    addrs: Vec<u64>,
    kinds: Vec<AccessKind>,
    dtypes: Vec<DataType>,
    producers: Vec<u32>,
}

/// Decodes the block at byte offset `off` (from a validated directory)
/// into `out`, expecting `expected_n` ops. The shared body of
/// [`ColumnarReader::decode_block_with`] and the streaming
/// [`crate::source::ColumnarSource`], which caches the directory instead
/// of re-validating the header per block.
pub(crate) fn decode_block_at(
    bytes: &[u8],
    off: u64,
    expected_n: usize,
    out: &mut Vec<MemOp>,
    scratch: &mut DecodeScratch,
) -> Result<(), ColumnarError> {
    out.clear();
    let off = off as usize;
    let n = get_u32(bytes, off, "block op count")? as usize;
    if n != expected_n {
        return Err(ColumnarError::Corrupt(
            "block op count disagrees with header",
        ));
    }
    let mut sizes = [0usize; 5];
    for (i, s) in sizes.iter_mut().enumerate() {
        *s = get_u32(bytes, off + 4 + i * 4, "block section sizes")? as usize;
    }
    let mut starts = [0usize; 5];
    let mut cursor = off + 4 + 5 * 4;
    for i in 0..5 {
        starts[i] = cursor;
        cursor = cursor
            .checked_add(sizes[i])
            .ok_or(ColumnarError::Corrupt("section size overflow"))?;
    }
    if cursor > bytes.len() {
        return Err(ColumnarError::Truncated("block sections"));
    }

    let section = |i: usize| &bytes[starts[i]..starts[i] + sizes[i]];

    // Addresses.
    let addr_bytes = section(0);
    let addrs = &mut scratch.addrs;
    addrs.clear();
    addrs.reserve(n);
    let mut pos = 0usize;
    let mut prev = 0i64;
    for i in 0..n {
        let v = get_varint(addr_bytes, &mut pos, "address column")?;
        let a = if i == 0 {
            v as i64
        } else {
            prev.wrapping_add(unzigzag(v))
        };
        if a < 0 {
            return Err(ColumnarError::Corrupt("address delta below zero"));
        }
        addrs.push(a as u64);
        prev = a;
    }

    // Kinds and dtypes via RLE.
    let kinds = &mut scratch.kinds;
    kinds.clear();
    kinds.reserve(n);
    let mut pos = 0usize;
    let kind_bytes = section(1);
    while kinds.len() < n {
        let &v = kind_bytes
            .get(pos)
            .ok_or(ColumnarError::Truncated("kind column"))?;
        pos += 1;
        let run = get_varint(kind_bytes, &mut pos, "kind run length")?;
        if run == 0 || run > (n - kinds.len()) as u64 {
            return Err(ColumnarError::Corrupt("kind run length"));
        }
        let k = kind_of_byte(v)?;
        kinds.extend(std::iter::repeat_n(k, run as usize));
    }

    let dtypes = &mut scratch.dtypes;
    dtypes.clear();
    dtypes.reserve(n);
    let mut pos = 0usize;
    let dtype_bytes = section(2);
    while dtypes.len() < n {
        let &v = dtype_bytes
            .get(pos)
            .ok_or(ColumnarError::Truncated("dtype column"))?;
        pos += 1;
        let run = get_varint(dtype_bytes, &mut pos, "dtype run length")?;
        if run == 0 || run > (n - dtypes.len()) as u64 {
            return Err(ColumnarError::Corrupt("dtype run length"));
        }
        let d = dtype_of_byte(v)?;
        dtypes.extend(std::iter::repeat_n(d, run as usize));
    }

    // Producer distances and pre-compute counts.
    let prod_bytes = section(3);
    let mut pos = 0usize;
    let producers = &mut scratch.producers;
    producers.clear();
    producers.reserve(n);
    for _ in 0..n {
        let v = get_varint(prod_bytes, &mut pos, "producer column")?;
        if v >= u64::from(u32::MAX) {
            return Err(ColumnarError::Corrupt("producer distance overflows u32"));
        }
        producers.push(v as u32);
    }
    let pre_bytes = section(4);
    let mut pos = 0usize;
    out.reserve(n);
    for i in 0..n {
        let v = get_varint(pre_bytes, &mut pos, "pre-compute column")?;
        if v > u64::from(u16::MAX) {
            return Err(ColumnarError::Corrupt("pre-compute overflows u16"));
        }
        out.push(MemOp::from_columns(
            VirtAddr::new(addrs[i]),
            kinds[i],
            dtypes[i],
            producers[i],
            v as u16,
        ));
    }
    Ok(())
}

/// Decodes a whole encoded stream back into ops, verifying the content
/// digest. The block-at-a-time path ([`ColumnarReader::decode_block`])
/// skips the digest pass; replay-parity tests cover it instead.
pub fn decode(bytes: &[u8]) -> Result<Vec<MemOp>, ColumnarError> {
    let reader = ColumnarReader::new(bytes)?;
    let mut ops = Vec::with_capacity(reader.op_count() as usize);
    let mut block = Vec::new();
    let mut scratch = DecodeScratch::default();
    for b in 0..reader.block_count() {
        reader.decode_block_with(b, &mut block, &mut scratch)?;
        ops.append(&mut block);
    }
    let computed = content_digest(&ops);
    if computed != reader.digest() {
        return Err(ColumnarError::DigestMismatch {
            stored: reader.digest(),
            computed,
        });
    }
    Ok(ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::OpId;

    fn mixed_ops(n: u64) -> Vec<MemOp> {
        let mut x = 0x2545_f491_4f6c_dd1du64;
        (0..n)
            .map(|i| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let addr = 0x1_0000 + (x % (1 << 22));
                let kind = if x & 0x10 == 0 {
                    AccessKind::Load
                } else {
                    AccessKind::Store
                };
                let dtype = DataType::ALL[(x % 3) as usize];
                let producer = (i > 0 && x & 0x60 == 0).then(|| OpId(i - 1 - (x % i.min(20))));
                MemOp::new(
                    VirtAddr::new(addr),
                    kind,
                    dtype,
                    producer,
                    OpId(i),
                    (x % 7) as u16,
                )
            })
            .collect()
    }

    #[test]
    fn roundtrip_is_bit_exact_across_block_boundaries() {
        for n in [0u64, 1, 7, BLOCK_OPS as u64, BLOCK_OPS as u64 + 3, 70_000] {
            let ops = mixed_ops(n);
            let bytes = encode(&ops);
            assert_eq!(decode(&bytes).unwrap(), ops, "n={n}");
        }
    }

    #[test]
    fn compresses_sequential_traces() {
        let ops: Vec<MemOp> = (0..50_000u64)
            .map(|i| {
                MemOp::new(
                    VirtAddr::new(0x1000 + i * 64),
                    AccessKind::Load,
                    DataType::Structure,
                    None,
                    OpId(i),
                    1,
                )
            })
            .collect();
        let bytes = encode(&ops);
        let raw = ops.len() * std::mem::size_of::<MemOp>();
        assert!(
            bytes.len() * 3 < raw,
            "sequential trace should compress >3x: {} vs {raw}",
            bytes.len()
        );
        assert_eq!(decode(&bytes).unwrap(), ops);
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut bytes = encode(&mixed_ops(10));
        bytes[0] ^= 0xff;
        assert_eq!(decode(&bytes).unwrap_err(), ColumnarError::BadMagic);
    }

    #[test]
    fn unsupported_version_is_typed() {
        let mut bytes = encode(&mixed_ops(10));
        bytes[8] = 99;
        assert_eq!(
            decode(&bytes).unwrap_err(),
            ColumnarError::UnsupportedVersion(99)
        );
    }

    #[test]
    fn truncations_never_panic() {
        let bytes = encode(&mixed_ops(40_000));
        // Every prefix either decodes to an error or (at full length) the ops.
        for cut in [
            0,
            4,
            9,
            20,
            HEADER_BYTES,
            HEADER_BYTES + 4,
            bytes.len() / 2,
            bytes.len() - 1,
        ] {
            let err = decode(&bytes[..cut]);
            assert!(err.is_err(), "prefix of {cut} bytes decoded successfully");
        }
    }

    #[test]
    fn digest_mismatch_detected_on_payload_corruption() {
        let ops = mixed_ops(1000);
        let mut bytes = encode(&ops);
        // Flip a low bit deep in the payload (an address delta byte).
        let at = bytes.len() - 9;
        bytes[at] ^= 0x01;
        match decode(&bytes) {
            Err(_) => {}
            Ok(decoded) => assert_ne!(decoded, ops, "corruption silently ignored"),
        }
    }

    #[test]
    fn corrupt_header_fields_are_typed() {
        let ops = mixed_ops(100);
        let mut bytes = encode(&ops);
        bytes[32] = 7; // block count lie
        assert!(matches!(
            decode(&bytes).unwrap_err(),
            ColumnarError::Corrupt(_)
        ));
    }

    #[test]
    fn content_digest_distinguishes_every_field() {
        let base = mixed_ops(50);
        let d0 = content_digest(&base);
        let mut addr = base.clone();
        addr[10] = MemOp::new(
            VirtAddr::new(addr[10].addr().raw() + 64),
            addr[10].kind(),
            addr[10].dtype(),
            None,
            OpId(10),
            addr[10].pre_compute(),
        );
        assert_ne!(content_digest(&addr), d0);
    }
}
