//! Read-only file mapping for zero-copy trace replay.
//!
//! [`MappedFile`] maps a file into the address space so a
//! [`crate::columnar::ColumnarReader`] can decode blocks straight out of
//! the page cache — no up-front read of the whole artifact, and replays
//! that stop early never fault in the tail. The workspace carries no
//! external crates, so on Linux the mapping is a direct `mmap(2)` syscall;
//! every other platform (and any mapping failure) falls back to reading
//! the file into an owned buffer, which is semantically identical and only
//! costs the copy.

use std::fs::File;
use std::io::Read;
use std::path::Path;

enum Backing {
    /// A live `mmap` region (pointer, length), unmapped on drop.
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    Mapped(*const u8, usize),
    /// Owned fallback buffer.
    Owned(Vec<u8>),
}

/// A read-only view of a file's bytes, mapped when the platform allows.
pub struct MappedFile {
    backing: Backing,
}

// The mapped region is immutable (PROT_READ, MAP_PRIVATE) for the lifetime
// of the value, so sharing it across threads is sound.
unsafe impl Send for MappedFile {}
unsafe impl Sync for MappedFile {}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod sys {
    use std::os::fd::RawFd;

    #[cfg(target_arch = "x86_64")]
    const SYS_MMAP: i64 = 9;
    #[cfg(target_arch = "x86_64")]
    const SYS_MUNMAP: i64 = 11;
    #[cfg(target_arch = "aarch64")]
    const SYS_MMAP: i64 = 222;
    #[cfg(target_arch = "aarch64")]
    const SYS_MUNMAP: i64 = 215;

    const PROT_READ: i64 = 1;
    const MAP_PRIVATE: i64 = 2;

    #[cfg(target_arch = "x86_64")]
    unsafe fn syscall6(n: i64, a: i64, b: i64, c: i64, d: i64, e: i64, f: i64) -> i64 {
        let ret: i64;
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") n => ret,
                in("rdi") a, in("rsi") b, in("rdx") c,
                in("r10") d, in("r8") e, in("r9") f,
                lateout("rcx") _, lateout("r11") _,
                options(nostack)
            );
        }
        ret
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn syscall6(n: i64, a: i64, b: i64, c: i64, d: i64, e: i64, f: i64) -> i64 {
        let ret: i64;
        unsafe {
            std::arch::asm!(
                "svc 0",
                in("x8") n,
                inlateout("x0") a => ret,
                in("x1") b, in("x2") c, in("x3") d, in("x4") e, in("x5") f,
                options(nostack)
            );
        }
        ret
    }

    /// Maps `len` bytes of `fd` read-only; `None` on any kernel error.
    pub fn map(fd: RawFd, len: usize) -> Option<*const u8> {
        if len == 0 {
            return None;
        }
        let ret = unsafe {
            syscall6(
                SYS_MMAP,
                0,
                len as i64,
                PROT_READ,
                MAP_PRIVATE,
                i64::from(fd),
                0,
            )
        };
        // Errors come back as small negative errno values.
        if (-4095..=-1).contains(&ret) {
            None
        } else {
            Some(ret as usize as *const u8)
        }
    }

    /// Unmaps a region produced by [`map`].
    pub fn unmap(ptr: *const u8, len: usize) {
        unsafe {
            syscall6(SYS_MUNMAP, ptr as usize as i64, len as i64, 0, 0, 0, 0);
        }
    }
}

impl MappedFile {
    /// Opens `path` and maps (or reads) its full contents.
    pub fn open(path: &Path) -> std::io::Result<Self> {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len() as usize;

        #[cfg(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        ))]
        {
            use std::os::fd::AsRawFd;
            if let Some(ptr) = sys::map(file.as_raw_fd(), len) {
                // The fd may close now; the mapping keeps the pages alive.
                return Ok(MappedFile {
                    backing: Backing::Mapped(ptr, len),
                });
            }
        }

        let mut buf = Vec::with_capacity(len);
        file.read_to_end(&mut buf)?;
        Ok(MappedFile {
            backing: Backing::Owned(buf),
        })
    }

    /// The file's bytes.
    pub fn bytes(&self) -> &[u8] {
        match &self.backing {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            Backing::Mapped(ptr, len) => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            Backing::Owned(buf) => buf,
        }
    }

    /// Whether the bytes come from a live mapping (false: owned fallback).
    pub fn is_mapped(&self) -> bool {
        match &self.backing {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            Backing::Mapped(..) => true,
            Backing::Owned(_) => false,
        }
    }
}

impl Drop for MappedFile {
    fn drop(&mut self) {
        #[cfg(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        ))]
        if let Backing::Mapped(ptr, len) = self.backing {
            sys::unmap(ptr, len);
        }
    }
}

impl std::ops::Deref for MappedFile {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.bytes()
    }
}

impl AsRef<[u8]> for MappedFile {
    fn as_ref(&self) -> &[u8] {
        self.bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_real_file_contents() {
        let dir = std::env::temp_dir().join("droplet-mmap-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("t-{}.bin", std::process::id()));
        let payload: Vec<u8> = (0..10_000u32).flat_map(|v| v.to_le_bytes()).collect();
        std::fs::write(&path, &payload).unwrap();
        let mapped = MappedFile::open(&path).unwrap();
        assert_eq!(&*mapped, &payload[..]);
        drop(mapped);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_reads_as_empty() {
        let dir = std::env::temp_dir().join("droplet-mmap-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("e-{}.bin", std::process::id()));
        std::fs::write(&path, b"").unwrap();
        let mapped = MappedFile::open(&path).unwrap();
        assert!(mapped.bytes().is_empty());
        assert!(!mapped.is_mapped(), "zero-length maps fall back to owned");
        std::fs::remove_file(&path).ok();
    }
}
