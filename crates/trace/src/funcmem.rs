//! Functional-memory access for the MPP's property-address generator.
//!
//! When a prefetched structure cacheline arrives from DRAM, the PAG scans it
//! for neighbor IDs (paper Fig. 10). In the simulator the line's *contents*
//! are recovered functionally: the workload that owns the address space can
//! map any structure-region cacheline back to the CSR slice it holds.

use crate::addr::{VirtAddr, LINE_BYTES};

/// Read access to the simulated memory image at element granularity.
///
/// Implemented by the workload layer (which owns the graph arrays). Only the
/// structure region needs to be readable — the MPP never inspects property
/// bytes — but implementations may expose more.
pub trait FunctionalMemory {
    /// Reads the neighbor ID stored at `addr`, or `None` if `addr` is not a
    /// valid, element-aligned location inside the structure region.
    ///
    /// For weighted graphs each structure element is 8 bytes (ID + weight)
    /// and implementations return the ID half.
    fn neighbor_id_at(&self, addr: VirtAddr) -> Option<u32>;

    /// The size in bytes of one structure element: 4 for unweighted graphs,
    /// 8 for weighted ones (the MPP's scan-granularity register, written by
    /// the specialized `malloc`, Section VI).
    fn scan_granularity(&self) -> u64;

    /// All neighbor IDs stored in the cacheline containing `line_addr`,
    /// in element order. At the paper's geometry this yields up to 16 IDs
    /// (unweighted) or 8 (weighted) per line.
    fn neighbor_ids_in_line(&self, line_addr: VirtAddr) -> Vec<u32> {
        let step = self.scan_granularity();
        let mut out = Vec::with_capacity((LINE_BYTES / step) as usize);
        self.neighbor_ids_in_line_into(line_addr, &mut out);
        out
    }

    /// Like [`FunctionalMemory::neighbor_ids_in_line`], but clears and fills
    /// a caller-owned buffer — the MPP scans a line per structure prefetch
    /// arrival, and reusing one buffer keeps that path allocation-free.
    fn neighbor_ids_in_line_into(&self, line_addr: VirtAddr, out: &mut Vec<u32>) {
        out.clear();
        let base = line_addr.line_base();
        let step = self.scan_granularity();
        let mut off = 0;
        while off < LINE_BYTES {
            if let Some(id) = self.neighbor_id_at(base.add_bytes(off)) {
                out.push(id);
            }
            off += step;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy image: structure region at 0x1000, 10 elements of 4 bytes,
    /// element i holds ID 100 + i.
    struct Toy;

    impl FunctionalMemory for Toy {
        fn neighbor_id_at(&self, addr: VirtAddr) -> Option<u32> {
            let base = 0x1000u64;
            let raw = addr.raw();
            if raw < base || raw >= base + 40 || !(raw - base).is_multiple_of(4) {
                return None;
            }
            Some(100 + ((raw - base) / 4) as u32)
        }

        fn scan_granularity(&self) -> u64 {
            4
        }
    }

    #[test]
    fn scans_full_line() {
        let ids = Toy.neighbor_ids_in_line(VirtAddr::new(0x1000));
        // 10 valid elements in the first line (region ends mid-line).
        assert_eq!(ids, (100..110).collect::<Vec<_>>());
    }

    #[test]
    fn scan_aligns_to_line_base() {
        let a = Toy.neighbor_ids_in_line(VirtAddr::new(0x1000 + 24));
        let b = Toy.neighbor_ids_in_line(VirtAddr::new(0x1000));
        assert_eq!(a, b);
    }

    #[test]
    fn out_of_region_line_is_empty() {
        assert!(Toy.neighbor_ids_in_line(VirtAddr::new(0x2000)).is_empty());
    }
}
