//! A small fully-associative LRU TLB model.
//!
//! Used twice in the reproduction: as the core-side L1D TLB (whose entries
//! carry the extra structure bit, Fig. 9(b) ❶) and as the near-memory MTLB
//! inside the MPP (Section V-C3), which caches only property-page mappings
//! and participates in shootdowns via [`Tlb::invalidate_matching`].
//!
//! Recency is tracked with per-slot u64 stamps from a monotonic tick (the
//! same scheme as the packed set-associative cache): a hit is one in-place
//! stamp store, and eviction picks the minimum-stamp slot. The previous
//! implementation kept a reorder-on-touch `Vec` (MRU at the back), which
//! cost an O(capacity) element shift on *every* hit — measurable at 64–128
//! entries when the TLB sits on the per-op demand path. The stamp scheme is
//! pinned to the reorder-on-touch semantics by
//! `crates/trace/tests/tlb_stamp_oracle.rs`.

use crate::page::PageEntry;
use crate::scan::{find_u64, min_index_u64};

/// A fully-associative, true-LRU TLB over virtual page numbers.
///
/// The three per-slot attributes live in parallel arrays
/// (structure-of-arrays): the lookup scan touches only the dense `vpns`
/// array (8 bytes per slot instead of a 32-byte record), and the
/// eviction-victim scan touches only `stamps`. At 64 entries that is the
/// difference between streaming 512 B and 2 KiB per demand access.
///
/// # Example
///
/// ```
/// use droplet_trace::{PageEntry, Tlb};
/// let mut tlb = Tlb::new(2);
/// let e = PageEntry { frame: 7, structure: false };
/// assert!(tlb.access(1, || e).is_none()); // cold miss
/// assert!(tlb.access(1, || e).is_some()); // hit
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    capacity: usize,
    /// Resident virtual page numbers; the only array the lookup scans.
    vpns: Vec<u64>,
    /// Recency stamps; larger = more recently touched. Stamps are unique
    /// (one tick per touch), so the minimum identifies the LRU slot.
    stamps: Vec<u64>,
    /// Cached translations, index-parallel with `vpns`.
    entries: Vec<PageEntry>,
    /// Monotonic recency clock; bumped on every access.
    tick: u64,
    /// Slots of the last two distinct hits, most recent first. Graph
    /// traversal alternates between regions (offsets → neighbors → ranks),
    /// and the caller's own same-page memo already filters consecutive
    /// repeats, so the stream reaching the TLB *alternates* pages — two
    /// slots catch that pattern where one cannot. The memo is
    /// self-validating (the slot's VPN is re-checked on every use), so
    /// evictions and `swap_remove` need no invalidation hooks, and a memo
    /// hit still refreshes the stamp: behaviour is identical to the scan,
    /// it just skips the search.
    memo: [usize; 2],
    hits: u64,
    misses: u64,
    invalidations: u64,
}

impl Tlb {
    /// Creates a TLB with room for `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "TLB capacity must be positive");
        Tlb {
            capacity,
            vpns: Vec::with_capacity(capacity),
            stamps: Vec::with_capacity(capacity),
            entries: Vec::with_capacity(capacity),
            tick: 0,
            memo: [usize::MAX, usize::MAX],
            hits: 0,
            misses: 0,
            invalidations: 0,
        }
    }

    /// Looks up `vpn`. On a hit returns the cached entry (refreshing LRU).
    /// On a miss, calls `walk` to obtain the entry, inserts it (evicting the
    /// LRU entry if full), and returns `None` so the caller can charge the
    /// page-walk latency.
    #[inline]
    pub fn access(&mut self, vpn: u64, walk: impl FnOnce() -> PageEntry) -> Option<PageEntry> {
        let (entry, hit) = self.access_entry(vpn, walk);
        hit.then_some(entry)
    }

    /// Like [`Tlb::access`], but returns the entry in both cases along with
    /// the hit flag — the demand path needs the translation regardless, and
    /// re-probing after a miss would cost a second scan.
    #[inline]
    pub fn access_entry(
        &mut self,
        vpn: u64,
        walk: impl FnOnce() -> PageEntry,
    ) -> (PageEntry, bool) {
        self.access_or_walk(vpn, || Some(walk()))
            .expect("infallible walk")
    }

    /// Like [`Tlb::access_entry`], but with a fallible walk: when `walk`
    /// returns `None` (a page fault), the TLB is left completely untouched —
    /// no stats, no recency bump, no insertion — exactly as if the lookup
    /// had been a side-effect-free probe. This is the MTLB's drop-on-fault
    /// policy (Section V-C3) in one scan instead of a probe + re-access.
    #[inline]
    pub fn access_or_walk(
        &mut self,
        vpn: u64,
        walk: impl FnOnce() -> Option<PageEntry>,
    ) -> Option<(PageEntry, bool)> {
        let stamp = self.tick;
        for k in 0..2 {
            let i = self.memo[k];
            if self.vpns.get(i) == Some(&vpn) {
                self.tick += 1;
                self.memo = [i, self.memo[1 - k]];
                self.stamps[i] = stamp;
                self.hits += 1;
                return Some((self.entries[i], true));
            }
        }
        if let Some(i) = find_u64(&self.vpns, vpn) {
            self.tick += 1;
            self.memo = [i, self.memo[0]];
            self.stamps[i] = stamp;
            self.hits += 1;
            return Some((self.entries[i], true));
        }
        let entry = walk()?;
        self.tick += 1;
        self.misses += 1;
        let idx = if self.vpns.len() < self.capacity {
            self.vpns.push(vpn);
            self.stamps.push(stamp);
            self.entries.push(entry);
            self.vpns.len() - 1
        } else {
            // Miss in a full TLB: a second scan (over the stamps only)
            // finds the minimum-stamp (LRU) victim.
            let lru_idx = min_index_u64(&self.stamps);
            self.vpns[lru_idx] = vpn;
            self.stamps[lru_idx] = stamp;
            self.entries[lru_idx] = entry;
            lru_idx
        };
        self.memo = [idx, self.memo[0]];
        Some((entry, false))
    }

    /// Probes without updating LRU or stats.
    pub fn probe(&self, vpn: u64) -> Option<PageEntry> {
        find_u64(&self.vpns, vpn).map(|i| self.entries[i])
    }

    /// Invalidates a single page, returning whether it was present.
    pub fn invalidate(&mut self, vpn: u64) -> bool {
        if let Some(pos) = find_u64(&self.vpns, vpn) {
            self.vpns.swap_remove(pos);
            self.stamps.swap_remove(pos);
            self.entries.swap_remove(pos);
            self.invalidations += 1;
            true
        } else {
            false
        }
    }

    /// Invalidates all entries matching a predicate, returning how many were
    /// dropped. This models the shootdown optimization of Section V-C3: the
    /// MTLB caches only property mappings, so during a shootdown it only
    /// processes invalidations whose TLB extra bit is `0` (non-structure).
    pub fn invalidate_matching(&mut self, mut pred: impl FnMut(u64, &PageEntry) -> bool) -> usize {
        // Order-preserving lockstep compaction of the three arrays.
        let mut kept = 0;
        for i in 0..self.vpns.len() {
            if !pred(self.vpns[i], &self.entries[i]) {
                self.vpns[kept] = self.vpns[i];
                self.stamps[kept] = self.stamps[i];
                self.entries[kept] = self.entries[i];
                kept += 1;
            }
        }
        let dropped = self.vpns.len() - kept;
        self.vpns.truncate(kept);
        self.stamps.truncate(kept);
        self.entries.truncate(kept);
        self.invalidations += dropped as u64;
        dropped
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.vpns.len()
    }

    /// Whether the TLB holds no entries.
    pub fn is_empty(&self) -> bool {
        self.vpns.is_empty()
    }

    /// (hits, misses, invalidations) counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.invalidations)
    }

    /// Hit rate over all accesses so far, or 0 if never accessed.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(frame: u64) -> PageEntry {
        PageEntry {
            frame,
            structure: frame.is_multiple_of(2),
        }
    }

    #[test]
    fn hit_after_fill() {
        let mut t = Tlb::new(4);
        assert!(t.access(10, || e(1)).is_none());
        assert_eq!(t.access(10, || unreachable!()).unwrap().frame, 1);
        assert_eq!(t.stats(), (1, 1, 0));
    }

    #[test]
    fn access_entry_returns_walked_entry_on_miss() {
        let mut t = Tlb::new(2);
        let (entry, hit) = t.access_entry(3, || e(9));
        assert!(!hit);
        assert_eq!(entry.frame, 9);
        let (entry, hit) = t.access_entry(3, || unreachable!());
        assert!(hit);
        assert_eq!(entry.frame, 9);
    }

    #[test]
    fn lru_eviction_order() {
        let mut t = Tlb::new(2);
        t.access(1, || e(1));
        t.access(2, || e(2));
        t.access(1, || unreachable!()); // refresh 1; 2 becomes LRU
        t.access(3, || e(3)); // evicts 2
        assert!(t.probe(1).is_some());
        assert!(t.probe(2).is_none());
        assert!(t.probe(3).is_some());
    }

    #[test]
    fn invalidate_single() {
        let mut t = Tlb::new(4);
        t.access(5, || e(5));
        assert!(t.invalidate(5));
        assert!(!t.invalidate(5));
        assert!(t.probe(5).is_none());
        assert_eq!(t.stats().2, 1);
    }

    #[test]
    fn shootdown_filters_by_structure_bit() {
        let mut t = Tlb::new(8);
        for vpn in 0..6 {
            t.access(vpn, || e(vpn)); // even frames marked structure
        }
        // Drop only non-structure entries, like the MTLB shootdown rule.
        let dropped = t.invalidate_matching(|_, entry| !entry.structure);
        assert_eq!(dropped, 3);
        assert_eq!(t.len(), 3);
        assert!(t.probe(1).is_none());
        assert!(t.probe(2).is_some());
    }

    #[test]
    fn probe_does_not_touch_stats() {
        let mut t = Tlb::new(2);
        t.access(1, || e(1));
        let before = t.stats();
        let _ = t.probe(1);
        let _ = t.probe(9);
        assert_eq!(t.stats(), before);
    }

    #[test]
    fn hit_rate_math() {
        let mut t = Tlb::new(2);
        assert_eq!(t.hit_rate(), 0.0);
        t.access(1, || e(1));
        t.access(1, || unreachable!());
        assert!((t.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn refill_after_invalidate_reuses_capacity() {
        let mut t = Tlb::new(2);
        t.access(1, || e(1));
        t.access(2, || e(2));
        t.invalidate(1);
        t.access(3, || e(3)); // fits in the freed slot, 2 survives
        assert!(t.probe(2).is_some());
        assert!(t.probe(3).is_some());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn failed_walk_leaves_tlb_untouched() {
        let mut t = Tlb::new(2);
        t.access(1, || e(1));
        let stats = t.stats();
        assert_eq!(t.access_or_walk(9, || None), None);
        // A fault is invisible: stats, contents, and recency all unchanged.
        assert_eq!(t.stats(), stats);
        assert_eq!(t.len(), 1);
        t.access(2, || e(2));
        t.access(3, || e(3)); // evicts 1, proving 9 never aged anything
        assert!(t.probe(2).is_some());
        assert!(t.probe(3).is_some());
    }

    #[test]
    fn access_or_walk_hits_like_access() {
        let mut t = Tlb::new(2);
        t.access(4, || e(4));
        let (entry, hit) = t.access_or_walk(4, || unreachable!()).unwrap();
        assert!(hit);
        assert_eq!(entry.frame, 4);
        let (entry, hit) = t.access_or_walk(5, || Some(e(5))).unwrap();
        assert!(!hit);
        assert_eq!(entry.frame, 5);
        assert_eq!(t.stats(), (1, 2, 0));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = Tlb::new(0);
    }
}
