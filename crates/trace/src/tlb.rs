//! A small fully-associative LRU TLB model.
//!
//! Used twice in the reproduction: as the core-side L1D TLB (whose entries
//! carry the extra structure bit, Fig. 9(b) ❶) and as the near-memory MTLB
//! inside the MPP (Section V-C3), which caches only property-page mappings
//! and participates in shootdowns via [`Tlb::invalidate_matching`].

use crate::page::PageEntry;

/// A fully-associative, true-LRU TLB over virtual page numbers.
///
/// # Example
///
/// ```
/// use droplet_trace::{PageEntry, Tlb};
/// let mut tlb = Tlb::new(2);
/// let e = PageEntry { frame: 7, structure: false };
/// assert!(tlb.access(1, || e).is_none()); // cold miss
/// assert!(tlb.access(1, || e).is_some()); // hit
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    capacity: usize,
    /// MRU at the back. Linear scan is fine at TLB sizes (64–128 entries).
    entries: Vec<(u64, PageEntry)>,
    hits: u64,
    misses: u64,
    invalidations: u64,
}

impl Tlb {
    /// Creates a TLB with room for `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "TLB capacity must be positive");
        Tlb {
            capacity,
            entries: Vec::with_capacity(capacity),
            hits: 0,
            misses: 0,
            invalidations: 0,
        }
    }

    /// Looks up `vpn`. On a hit returns the cached entry (refreshing LRU).
    /// On a miss, calls `walk` to obtain the entry, inserts it (evicting the
    /// LRU entry if full), and returns `None` so the caller can charge the
    /// page-walk latency.
    pub fn access(&mut self, vpn: u64, walk: impl FnOnce() -> PageEntry) -> Option<PageEntry> {
        if let Some(pos) = self.entries.iter().position(|(v, _)| *v == vpn) {
            let e = self.entries.remove(pos);
            self.entries.push(e);
            self.hits += 1;
            return Some(e.1);
        }
        self.misses += 1;
        let entry = walk();
        if self.entries.len() == self.capacity {
            self.entries.remove(0);
        }
        self.entries.push((vpn, entry));
        None
    }

    /// Probes without updating LRU or stats.
    pub fn probe(&self, vpn: u64) -> Option<PageEntry> {
        self.entries
            .iter()
            .find(|(v, _)| *v == vpn)
            .map(|(_, e)| *e)
    }

    /// Invalidates a single page, returning whether it was present.
    pub fn invalidate(&mut self, vpn: u64) -> bool {
        if let Some(pos) = self.entries.iter().position(|(v, _)| *v == vpn) {
            self.entries.remove(pos);
            self.invalidations += 1;
            true
        } else {
            false
        }
    }

    /// Invalidates all entries matching a predicate, returning how many were
    /// dropped. This models the shootdown optimization of Section V-C3: the
    /// MTLB caches only property mappings, so during a shootdown it only
    /// processes invalidations whose TLB extra bit is `0` (non-structure).
    pub fn invalidate_matching(&mut self, mut pred: impl FnMut(u64, &PageEntry) -> bool) -> usize {
        let before = self.entries.len();
        self.entries.retain(|(v, e)| !pred(*v, e));
        let dropped = before - self.entries.len();
        self.invalidations += dropped as u64;
        dropped
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the TLB holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// (hits, misses, invalidations) counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.invalidations)
    }

    /// Hit rate over all accesses so far, or 0 if never accessed.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(frame: u64) -> PageEntry {
        PageEntry {
            frame,
            structure: frame.is_multiple_of(2),
        }
    }

    #[test]
    fn hit_after_fill() {
        let mut t = Tlb::new(4);
        assert!(t.access(10, || e(1)).is_none());
        assert_eq!(t.access(10, || unreachable!()).unwrap().frame, 1);
        assert_eq!(t.stats(), (1, 1, 0));
    }

    #[test]
    fn lru_eviction_order() {
        let mut t = Tlb::new(2);
        t.access(1, || e(1));
        t.access(2, || e(2));
        t.access(1, || unreachable!()); // refresh 1; 2 becomes LRU
        t.access(3, || e(3)); // evicts 2
        assert!(t.probe(1).is_some());
        assert!(t.probe(2).is_none());
        assert!(t.probe(3).is_some());
    }

    #[test]
    fn invalidate_single() {
        let mut t = Tlb::new(4);
        t.access(5, || e(5));
        assert!(t.invalidate(5));
        assert!(!t.invalidate(5));
        assert!(t.probe(5).is_none());
        assert_eq!(t.stats().2, 1);
    }

    #[test]
    fn shootdown_filters_by_structure_bit() {
        let mut t = Tlb::new(8);
        for vpn in 0..6 {
            t.access(vpn, || e(vpn)); // even frames marked structure
        }
        // Drop only non-structure entries, like the MTLB shootdown rule.
        let dropped = t.invalidate_matching(|_, entry| !entry.structure);
        assert_eq!(dropped, 3);
        assert_eq!(t.len(), 3);
        assert!(t.probe(1).is_none());
        assert!(t.probe(2).is_some());
    }

    #[test]
    fn probe_does_not_touch_stats() {
        let mut t = Tlb::new(2);
        t.access(1, || e(1));
        let before = t.stats();
        let _ = t.probe(1);
        let _ = t.probe(9);
        assert_eq!(t.stats(), before);
    }

    #[test]
    fn hit_rate_math() {
        let mut t = Tlb::new(2);
        assert_eq!(t.hit_rate(), 0.0);
        t.access(1, || e(1));
        t.access(1, || unreachable!());
        assert!((t.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = Tlb::new(0);
    }
}
