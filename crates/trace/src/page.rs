//! Page table with the extra structure bit (paper Fig. 9(b) and Section VI).
//!
//! The specialized `malloc` labels structure-data pages with an extra bit in
//! their page-table entries. During address translation the bit is copied
//! into the TLB entry and from there into the L1D miss path, which is how the
//! data-aware L2 streamer recognizes structure addresses without software
//! involvement on every access.

use crate::addr::{PhysAddr, VirtAddr, PAGE_BYTES};
use crate::layout::AddressSpace;
use std::collections::HashMap;

/// One page-table entry: physical frame plus the extra structure bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageEntry {
    /// Physical frame number.
    pub frame: u64,
    /// The paper's extra bit: `true` iff the page holds structure data.
    pub structure: bool,
}

/// A demand-populated page table.
///
/// Frames are assigned in first-touch order, so virtually sequential streams
/// are also physically sequential (matching the common-case behaviour of a
/// freshly booted simulation), while distinct regions land in distinct frame
/// ranges.
///
/// # Example
///
/// ```
/// use droplet_trace::{AddressSpace, DataType, PageTable, VirtAddr};
/// let mut space = AddressSpace::new();
/// let neigh = space.alloc("neighbors", DataType::Structure, 4096 * 4);
/// let mut pt = PageTable::new();
/// let (pa, entry) = pt.translate(neigh.base(), &space);
/// assert!(entry.structure);
/// assert_eq!(pa.page_offset(), neigh.base().page_offset());
/// ```
#[derive(Debug, Clone, Default)]
pub struct PageTable {
    /// Dense slots for the compact simulated address space, indexed by
    /// `vpn - BASE_VPN`. Each slot packs `frame << 1 | structure`; frames
    /// start at 1, so `0` doubles as the unmapped sentinel. The simulator
    /// walks this table on every DTLB miss and pre-touches every trace
    /// address at setup, so the lookup must not hash — [`AddressSpace`]
    /// hands out addresses sequentially from one base, making a flat array
    /// the natural index.
    dense: Vec<u64>,
    /// Spill map for addresses outside the dense window (never produced by
    /// [`AddressSpace`], but the API accepts arbitrary addresses).
    spill: HashMap<u64, PageEntry>,
    mapped: usize,
    next_frame: u64,
    walks: u64,
}

/// First VPN of the dense window (the base of [`AddressSpace`] allocations).
const BASE_VPN: u64 = crate::layout::SPACE_BASE / PAGE_BYTES;

/// Dense-window size limit: 4 Mi pages = 16 GiB of simulated address space,
/// far beyond any dataset here; the slot array tops out at 32 MiB.
const DENSE_MAX: u64 = 1 << 22;

impl PageTable {
    /// Creates an empty page table.
    pub fn new() -> Self {
        PageTable {
            dense: Vec::new(),
            spill: HashMap::new(),
            mapped: 0,
            // Leave frame 0 for the kernel, as tradition demands.
            next_frame: 1,
            walks: 0,
        }
    }

    /// Translates `va`, allocating a frame on first touch. The structure bit
    /// is derived from the allocating region's data type in `space`.
    pub fn translate(&mut self, va: VirtAddr, space: &AddressSpace) -> (PhysAddr, PageEntry) {
        let entry = self.entry_of(va, space);
        self.walks += 1;
        (
            PhysAddr::new(entry.frame * PAGE_BYTES + va.page_offset()),
            entry,
        )
    }

    /// Pre-populates the mapping for `va` without counting a walk. Used for
    /// the setup-phase pre-touch of all graph pages (the paper runs the
    /// graph-reading phase before the ROI): counting those setup
    /// translations would inflate the demand-walk statistics by one walk
    /// per graph page before the measurement window even opens.
    pub fn populate(&mut self, va: VirtAddr, space: &AddressSpace) {
        let _ = self.entry_of(va, space);
    }

    fn entry_of(&mut self, va: VirtAddr, space: &AddressSpace) -> PageEntry {
        let vpn = va.page_number();
        if let Some(slot) = Self::dense_slot(vpn) {
            if slot >= self.dense.len() {
                self.dense.resize(slot + 1, 0);
            }
            let packed = self.dense[slot];
            if packed != 0 {
                return Self::unpack(packed);
            }
            let e = PageEntry {
                frame: self.next_frame,
                structure: space.is_structure_page(va),
            };
            self.next_frame += 1;
            self.dense[slot] = (e.frame << 1) | u64::from(e.structure);
            self.mapped += 1;
            return e;
        }
        match self.spill.get(&vpn) {
            Some(e) => *e,
            None => {
                let e = PageEntry {
                    frame: self.next_frame,
                    structure: space.is_structure_page(va),
                };
                self.next_frame += 1;
                self.spill.insert(vpn, e);
                self.mapped += 1;
                e
            }
        }
    }

    /// Index into the dense slot array, or `None` for out-of-window VPNs.
    fn dense_slot(vpn: u64) -> Option<usize> {
        vpn.checked_sub(BASE_VPN)
            .filter(|&i| i < DENSE_MAX)
            .map(|i| i as usize)
    }

    fn unpack(packed: u64) -> PageEntry {
        PageEntry {
            frame: packed >> 1,
            structure: packed & 1 == 1,
        }
    }

    /// Looks up a mapping without populating it. Returns `None` for pages
    /// never touched (a prefetch to such a page is a *page fault* and, per
    /// Section V-C3, is simply dropped by the MPP).
    pub fn lookup(&self, va: VirtAddr) -> Option<PageEntry> {
        let vpn = va.page_number();
        match Self::dense_slot(vpn) {
            Some(slot) => match self.dense.get(slot) {
                Some(&packed) if packed != 0 => Some(Self::unpack(packed)),
                _ => None,
            },
            None => self.spill.get(&vpn).copied(),
        }
    }

    /// Number of mapped pages.
    pub fn mapped_pages(&self) -> usize {
        self.mapped
    }

    /// Number of counted page walks. With lazy translation the demand path
    /// only calls [`PageTable::translate`] on a DTLB miss, and setup-phase
    /// pre-touching goes through the non-counting [`PageTable::populate`],
    /// so this reflects demand walks only.
    pub fn translations(&self) -> u64 {
        self.walks
    }

    /// Storage overhead of the extra bit, mirroring the paper's Section V-D
    /// arithmetic: each x86-64 paging structure holds 512 64-bit entries
    /// (4 KiB); one extra bit per entry costs 64 B, i.e. 1.56 %.
    pub fn extra_bit_overhead_ratio() -> f64 {
        // 512 entries × 1 bit = 64 bytes, over a 4096-byte paging structure.
        (512.0 / 8.0) / 4096.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::DataType;

    fn space() -> (AddressSpace, VirtAddr, VirtAddr) {
        let mut s = AddressSpace::new();
        let a = s.alloc("neighbors", DataType::Structure, PAGE_BYTES * 2);
        let b = s.alloc("prop", DataType::Property, PAGE_BYTES);
        (s, a.base(), b.base())
    }

    #[test]
    fn first_touch_allocates_sequential_frames() {
        let (s, a, b) = space();
        let mut pt = PageTable::new();
        let (pa1, _) = pt.translate(a, &s);
        let (pa2, _) = pt.translate(a.add_bytes(PAGE_BYTES), &s);
        let (pa3, _) = pt.translate(b, &s);
        assert_eq!(pa1.frame_number() + 1, pa2.frame_number());
        assert_eq!(pa2.frame_number() + 1, pa3.frame_number());
        assert_eq!(pt.mapped_pages(), 3);
    }

    #[test]
    fn translation_is_stable() {
        let (s, a, _) = space();
        let mut pt = PageTable::new();
        let (pa1, _) = pt.translate(a.add_bytes(17), &s);
        let (pa2, _) = pt.translate(a.add_bytes(17), &s);
        assert_eq!(pa1, pa2);
        assert_eq!(pa1.page_offset(), 17);
    }

    #[test]
    fn structure_bit_follows_region_type() {
        let (s, a, b) = space();
        let mut pt = PageTable::new();
        assert!(pt.translate(a, &s).1.structure);
        assert!(!pt.translate(b, &s).1.structure);
    }

    #[test]
    fn lookup_does_not_populate() {
        let (s, a, _) = space();
        let mut pt = PageTable::new();
        assert_eq!(pt.lookup(a), None);
        pt.translate(a, &s);
        assert!(pt.lookup(a).is_some());
        assert_eq!(pt.mapped_pages(), 1);
    }

    #[test]
    fn overhead_matches_paper() {
        let pct = PageTable::extra_bit_overhead_ratio() * 100.0;
        assert!((pct - 1.5625).abs() < 1e-9);
    }
}
