//! Page table with the extra structure bit (paper Fig. 9(b) and Section VI).
//!
//! The specialized `malloc` labels structure-data pages with an extra bit in
//! their page-table entries. During address translation the bit is copied
//! into the TLB entry and from there into the L1D miss path, which is how the
//! data-aware L2 streamer recognizes structure addresses without software
//! involvement on every access.

use crate::addr::{PhysAddr, VirtAddr, PAGE_BYTES};
use crate::layout::AddressSpace;
use std::collections::HashMap;

/// One page-table entry: physical frame plus the extra structure bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageEntry {
    /// Physical frame number.
    pub frame: u64,
    /// The paper's extra bit: `true` iff the page holds structure data.
    pub structure: bool,
}

/// A demand-populated page table.
///
/// Frames are assigned in first-touch order, so virtually sequential streams
/// are also physically sequential (matching the common-case behaviour of a
/// freshly booted simulation), while distinct regions land in distinct frame
/// ranges.
///
/// # Example
///
/// ```
/// use droplet_trace::{AddressSpace, DataType, PageTable, VirtAddr};
/// let mut space = AddressSpace::new();
/// let neigh = space.alloc("neighbors", DataType::Structure, 4096 * 4);
/// let mut pt = PageTable::new();
/// let (pa, entry) = pt.translate(neigh.base(), &space);
/// assert!(entry.structure);
/// assert_eq!(pa.page_offset(), neigh.base().page_offset());
/// ```
#[derive(Debug, Clone, Default)]
pub struct PageTable {
    entries: HashMap<u64, PageEntry>,
    next_frame: u64,
    walks: u64,
}

impl PageTable {
    /// Creates an empty page table.
    pub fn new() -> Self {
        PageTable {
            entries: HashMap::new(),
            // Leave frame 0 for the kernel, as tradition demands.
            next_frame: 1,
            walks: 0,
        }
    }

    /// Translates `va`, allocating a frame on first touch. The structure bit
    /// is derived from the allocating region's data type in `space`.
    pub fn translate(&mut self, va: VirtAddr, space: &AddressSpace) -> (PhysAddr, PageEntry) {
        let vpn = va.page_number();
        let entry = match self.entries.get(&vpn) {
            Some(e) => *e,
            None => {
                let e = PageEntry {
                    frame: self.next_frame,
                    structure: space.is_structure_page(va),
                };
                self.next_frame += 1;
                self.entries.insert(vpn, e);
                e
            }
        };
        self.walks += 1;
        (
            PhysAddr::new(entry.frame * PAGE_BYTES + va.page_offset()),
            entry,
        )
    }

    /// Looks up a mapping without populating it. Returns `None` for pages
    /// never touched (a prefetch to such a page is a *page fault* and, per
    /// Section V-C3, is simply dropped by the MPP).
    pub fn lookup(&self, va: VirtAddr) -> Option<PageEntry> {
        self.entries.get(&va.page_number()).copied()
    }

    /// Number of mapped pages.
    pub fn mapped_pages(&self) -> usize {
        self.entries.len()
    }

    /// Number of translations performed (page walks in the simulator's
    /// accounting happen at the TLB layer; this counts all translate calls).
    pub fn translations(&self) -> u64 {
        self.walks
    }

    /// Storage overhead of the extra bit, mirroring the paper's Section V-D
    /// arithmetic: each x86-64 paging structure holds 512 64-bit entries
    /// (4 KiB); one extra bit per entry costs 64 B, i.e. 1.56 %.
    pub fn extra_bit_overhead_ratio() -> f64 {
        // 512 entries × 1 bit = 64 bytes, over a 4096-byte paging structure.
        (512.0 / 8.0) / 4096.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::DataType;

    fn space() -> (AddressSpace, VirtAddr, VirtAddr) {
        let mut s = AddressSpace::new();
        let a = s.alloc("neighbors", DataType::Structure, PAGE_BYTES * 2);
        let b = s.alloc("prop", DataType::Property, PAGE_BYTES);
        (s, a.base(), b.base())
    }

    #[test]
    fn first_touch_allocates_sequential_frames() {
        let (s, a, b) = space();
        let mut pt = PageTable::new();
        let (pa1, _) = pt.translate(a, &s);
        let (pa2, _) = pt.translate(a.add_bytes(PAGE_BYTES), &s);
        let (pa3, _) = pt.translate(b, &s);
        assert_eq!(pa1.frame_number() + 1, pa2.frame_number());
        assert_eq!(pa2.frame_number() + 1, pa3.frame_number());
        assert_eq!(pt.mapped_pages(), 3);
    }

    #[test]
    fn translation_is_stable() {
        let (s, a, _) = space();
        let mut pt = PageTable::new();
        let (pa1, _) = pt.translate(a.add_bytes(17), &s);
        let (pa2, _) = pt.translate(a.add_bytes(17), &s);
        assert_eq!(pa1, pa2);
        assert_eq!(pa1.page_offset(), 17);
    }

    #[test]
    fn structure_bit_follows_region_type() {
        let (s, a, b) = space();
        let mut pt = PageTable::new();
        assert!(pt.translate(a, &s).1.structure);
        assert!(!pt.translate(b, &s).1.structure);
    }

    #[test]
    fn lookup_does_not_populate() {
        let (s, a, _) = space();
        let mut pt = PageTable::new();
        assert_eq!(pt.lookup(a), None);
        pt.translate(a, &s);
        assert!(pt.lookup(a).is_some());
        assert_eq!(pt.mapped_pages(), 1);
    }

    #[test]
    fn overhead_matches_paper() {
        let pct = PageTable::extra_bit_overhead_ratio() * 100.0;
        assert!((pct - 1.5625).abs() < 1e-9);
    }
}
