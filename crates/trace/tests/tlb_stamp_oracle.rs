//! Property test pinning the stamp-recency TLB to a naive reorder-on-touch
//! LRU model — the semantics of the original `Vec` implementation (MRU at
//! the back, `remove(0)` evicts). Every observable is compared: hit/miss,
//! returned entries, probes, invalidation results (including
//! `invalidate_matching` shootdowns), residency, length, and counters.
//!
//! Mirrors `crates/cache/tests/packed_lru_oracle.rs`, which plays the same
//! role for the packed set-associative cache.

use droplet_trace::{PageEntry, Tlb};
use proptest::prelude::*;

/// Deterministic entry for a vpn; even frames carry the structure bit, so
/// shootdown predicates can discriminate.
fn entry_of(vpn: u64) -> PageEntry {
    PageEntry {
        frame: vpn + 100,
        structure: vpn.is_multiple_of(2),
    }
}

/// Reference model: reorder-on-touch LRU, front = LRU, back = MRU.
struct ModelTlb {
    capacity: usize,
    entries: Vec<(u64, PageEntry)>,
    hits: u64,
    misses: u64,
    invalidations: u64,
}

impl ModelTlb {
    fn new(capacity: usize) -> Self {
        ModelTlb {
            capacity,
            entries: Vec::new(),
            hits: 0,
            misses: 0,
            invalidations: 0,
        }
    }

    fn access(&mut self, vpn: u64) -> Option<PageEntry> {
        if let Some(pos) = self.entries.iter().position(|(v, _)| *v == vpn) {
            let e = self.entries.remove(pos);
            self.entries.push(e);
            self.hits += 1;
            return Some(e.1);
        }
        self.misses += 1;
        if self.entries.len() == self.capacity {
            self.entries.remove(0);
        }
        self.entries.push((vpn, entry_of(vpn)));
        None
    }

    fn probe(&self, vpn: u64) -> Option<PageEntry> {
        self.entries
            .iter()
            .find(|(v, _)| *v == vpn)
            .map(|(_, e)| *e)
    }

    fn invalidate(&mut self, vpn: u64) -> bool {
        if let Some(pos) = self.entries.iter().position(|(v, _)| *v == vpn) {
            self.entries.remove(pos);
            self.invalidations += 1;
            true
        } else {
            false
        }
    }

    fn invalidate_matching(&mut self, pred: impl Fn(u64, &PageEntry) -> bool) -> usize {
        let before = self.entries.len();
        self.entries.retain(|(v, e)| !pred(*v, e));
        let dropped = before - self.entries.len();
        self.invalidations += dropped as u64;
        dropped
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Mixed access / probe / invalidate / shootdown streams over an
    /// eviction-heavy vpn range (capacity 2–8, vpns 0–23).
    #[test]
    fn stamp_tlb_matches_reorder_on_touch_model(
        capacity in 2usize..9,
        ops in prop::collection::vec((0u32..6, 0u64..24), 1..300),
    ) {
        let mut tlb = Tlb::new(capacity);
        let mut model = ModelTlb::new(capacity);

        for (i, &(op, vpn)) in ops.iter().enumerate() {
            match op {
                // Demand accesses dominate the mix, as on the real path.
                0..=2 => {
                    let got = tlb.access(vpn, || entry_of(vpn));
                    let want = model.access(vpn);
                    prop_assert_eq!(got, want, "access #{} vpn {}", i, vpn);
                }
                3 => {
                    prop_assert_eq!(tlb.probe(vpn), model.probe(vpn), "probe #{}", i);
                }
                4 => {
                    let got = tlb.invalidate(vpn);
                    let want = model.invalidate(vpn);
                    prop_assert_eq!(got, want, "invalidate #{} vpn {}", i, vpn);
                }
                // Shootdown: alternate the MTLB rule (drop non-structure)
                // with a vpn-range rule, keyed off the operand's parity.
                _ => {
                    let by_structure = vpn.is_multiple_of(2);
                    let got = tlb.invalidate_matching(|v, e| {
                        if by_structure { !e.structure } else { v < vpn }
                    });
                    let want = model.invalidate_matching(|v, e| {
                        if by_structure { !e.structure } else { v < vpn }
                    });
                    prop_assert_eq!(got, want, "shootdown #{}", i);
                }
            }
            prop_assert_eq!(tlb.len(), model.entries.len(), "len after #{}", i);
        }

        // Final state: residency of every vpn, and all counters.
        for vpn in 0..24 {
            prop_assert_eq!(tlb.probe(vpn), model.probe(vpn), "final residency of {}", vpn);
        }
        prop_assert_eq!(tlb.stats(), (model.hits, model.misses, model.invalidations));
        prop_assert_eq!(tlb.is_empty(), model.entries.is_empty());
    }

    /// `access_entry` agrees with `access` on the hit flag and always
    /// returns the walked/cached entry.
    #[test]
    fn access_entry_is_access_plus_entry(
        ops in prop::collection::vec(0u64..16, 1..200),
    ) {
        let mut a = Tlb::new(4);
        let mut b = Tlb::new(4);
        for &vpn in &ops {
            let (entry, hit) = a.access_entry(vpn, || entry_of(vpn));
            let want = b.access(vpn, || entry_of(vpn));
            prop_assert_eq!(hit, want.is_some());
            prop_assert_eq!(entry, want.unwrap_or_else(|| entry_of(vpn)));
        }
        prop_assert_eq!(a.stats(), b.stats());
    }
}
