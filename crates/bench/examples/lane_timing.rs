//! Diagnostic for the batched hot lane (DESIGN.md §17): prints the
//! page-run structure of the sim_replay trace (same-page pairs, memo hit
//! rates, `BlockPlan` span shape — the numbers behind the "lane is inert
//! on GAP traces" finding in EXPERIMENTS.md) and then best-of-N times
//! batched vs scalar replay in-process, which is the only reliable A/B on
//! a drifting container. Not part of the gated bench suite.
//!
//! Run with: `cargo run --release -p droplet-bench --example lane_timing`

use droplet::gap::Algorithm;
use droplet::graph::{Dataset, DatasetScale};
use droplet::{run_workload, run_workload_scalar, SystemConfig};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let g = Arc::new(Dataset::Kron.build(DatasetScale::Tiny));
    let bundle = Algorithm::Pr.trace(&g, 120_000);
    let cfg = SystemConfig::test_scale();

    // Warm both code paths once.
    let a = run_workload(&bundle, &cfg, 0);
    let b = run_workload_scalar(&bundle, &cfg, 0);
    assert_eq!(a.core.cycles, b.core.cycles);

    println!("l1 {:?}", a.l1);
    println!("l2 {:?}", a.l2);
    println!("l3 {:?}", a.l3);
    println!("dram {:?}", a.dram);
    println!("sys {:?}", a.sys);

    // Raw page-run structure, ignoring op kind.
    let mut page_runs = 0u64;
    let mut same_page_pairs = 0u64;
    let mut last_page = u64::MAX;
    let mut memo2 = [u64::MAX; 2];
    let mut memo2_hits = 0u64;
    let mut memo4 = [u64::MAX; 4];
    let mut memo4_hits = 0u64;
    for op in bundle.ops.iter() {
        let p = op.addr().page_number();
        if p == last_page {
            same_page_pairs += 1;
        } else {
            page_runs += 1;
            last_page = p;
        }
        if memo2.contains(&p) {
            memo2_hits += 1;
        } else {
            memo2[1] = memo2[0];
            memo2[0] = p;
        }
        if memo4.contains(&p) {
            memo4_hits += 1;
        } else {
            memo4.rotate_right(1);
            memo4[0] = p;
        }
    }
    println!(
        "page runs {} (same-page pairs {} = {:.1}%), 2-entry memo hits {:.1}%, 4-entry {:.1}%",
        page_runs,
        same_page_pairs,
        same_page_pairs as f64 / bundle.ops.len() as f64 * 100.0,
        memo2_hits as f64 / bundle.ops.len() as f64 * 100.0,
        memo4_hits as f64 / bundle.ops.len() as f64 * 100.0
    );

    let mut plan = droplet::cpu::BlockPlan::new();
    plan.compute(&bundle.ops);
    let spans = plan.spans();
    let total: u64 = spans.iter().map(|s| s.len as u64).sum();
    let cont: u64 = spans.iter().filter(|s| s.cont_page).count() as u64;
    let tail: u64 = total - spans.len() as u64;
    println!(
        "{} ops, {} spans (avg len {:.2}), {} cont_page starts, {} tail ops; probing {}/{} = {:.1}%",
        total,
        spans.len(),
        total as f64 / spans.len() as f64,
        cont,
        tail,
        cont + tail,
        total,
        (cont + tail) as f64 / total as f64 * 100.0
    );

    for lane in ["batched", "scalar"] {
        let mut best = f64::MAX;
        for _ in 0..60 {
            let t = Instant::now();
            let cycles = match lane {
                "batched" => run_workload(&bundle, &cfg, 0).core.cycles,
                _ => run_workload_scalar(&bundle, &cfg, 0).core.cycles,
            };
            let dt = t.elapsed().as_secs_f64() * 1e3;
            std::hint::black_box(cycles);
            if dt < best {
                best = dt;
            }
        }
        println!("{lane:8} best {best:.3} ms");
    }
}
