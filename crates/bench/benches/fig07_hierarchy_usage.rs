//! Regenerates paper Fig. 7: memory-hierarchy usage by application data
//! type across the 5x5 workload matrix.

use droplet::experiments::{fig07_hierarchy_usage, ExperimentCtx};
use droplet_bench::{banner, ctx_from_env, timed};

fn main() {
    let ctx: ExperimentCtx = ctx_from_env();
    banner("Fig. 7 — hierarchy usage by data type", &ctx);
    let result = timed("fig07", || fig07_hierarchy_usage(&ctx));
    println!("{}", result.render());
}
