//! Load-test driver for `droplet-serve` (DESIGN.md §18): boots the
//! service in-process, then drives it with thousands of concurrent
//! submissions over raw sockets and exports the service's latency and
//! dedupe profile to `BENCH_engine.json` (section `"serve_load"`).
//!
//! Two phases:
//!
//! * **saturation** — batches of *distinct* specs (every request a fresh
//!   `(config, workload)` key, so every request is an engine run) at
//!   doubling client counts; the per-level `cN_per_sec` leaves show where
//!   added concurrency stops buying throughput, summarized as
//!   `saturation_clients`.
//! * **hot set** — 32 clients × 64 requests over 8 hot specs: after the
//!   first touch of each spec every submission is answered by the
//!   in-flight registry or the store. `hot_p50_ms`/`hot_p99_ms` gate
//!   higher-worse and `hot_throughput_per_sec` lower-worse in
//!   `droplet-bench-diff`; `dedupe_hit_rate` is recorded for the report.
//!
//! Run with: `cargo bench -p droplet-bench --bench serve_load`

use droplet_bench::bench_json;
use droplet_serve::http::request;
use droplet_serve::{spawn, ServerOptions};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

const HOT_CLIENTS: usize = 32;
const HOT_PER_CLIENT: usize = 64;
const SATURATION_LEVELS: [usize; 4] = [1, 2, 4, 8];
const SATURATION_BATCH: usize = 32;

/// The 8-spec hot set every client cycles through.
fn hot_spec(i: usize) -> String {
    let algos = ["pr", "bfs", "cc", "sssp"];
    let prefetchers = ["droplet", "none"];
    format!(
        r#"{{"algo": "{}", "dataset": "kron", "scale": "tiny", "budget": 30000, "prefetcher": "{}"}}"#,
        algos[i % 4],
        prefetchers[(i / 4) % 2]
    )
}

/// Globally distinct specs: each index names a different machine, so the
/// key never repeats and every submission is a fresh engine run.
fn distinct_spec(i: usize) -> String {
    let prefetchers = [
        "droplet",
        "none",
        "ghb",
        "vldp",
        "stream",
        "streammpp1",
        "mono",
        "adaptive",
    ];
    let policies = ["lru", "srrip", "brrip", "drrip", "ship"];
    format!(
        r#"{{"algo": "pr", "dataset": "kron", "scale": "tiny", "budget": 30000,
            "prefetcher": "{}", "l3_policy": "{}", "l2_policy": "{}"}}"#,
        prefetchers[i % 8],
        policies[(i / 8) % 5],
        policies[(i / 40) % 5]
    )
}

/// Fans `total` requests over `clients` threads; returns each request's
/// wall latency in milliseconds, submission order not preserved.
fn drive(
    addr: &str,
    clients: usize,
    total: usize,
    spec_for: &(dyn Fn(usize) -> String + Sync),
) -> Vec<f64> {
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let next = &next;
                s.spawn(move || {
                    let mut lat = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= total {
                            return lat;
                        }
                        let spec = spec_for(i);
                        let t = Instant::now();
                        let (status, _, _) = request(addr, "POST", "/run", &spec).expect("request");
                        assert_eq!(status, 200, "load request failed");
                        lat.push(t.elapsed().as_secs_f64() * 1e3);
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    })
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn main() {
    let store_dir = std::env::temp_dir().join(format!("droplet-serve-load-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let server = spawn(ServerOptions {
        store_dir: Some(store_dir.clone()),
        ..ServerOptions::default()
    })
    .expect("bind load-test server");
    let addr = server.addr_string();
    println!(
        "serve_load: {addr}, {} workers, store {}",
        server.state().pool.threads(),
        store_dir.display()
    );

    // Warm the trace cache so timed phases measure the service, not
    // first-touch graph construction.
    for i in 0..8 {
        let (status, _, _) = request(&addr, "POST", "/run", &hot_spec(i)).expect("warm");
        assert_eq!(status, 200);
    }

    // Phase 1: saturation sweep over always-distinct keys.
    let mut spent = 0usize;
    let mut saturation_pairs: Vec<(String, String)> = Vec::new();
    let mut per_level: Vec<f64> = Vec::new();
    for &clients in &SATURATION_LEVELS {
        let base = spent;
        let wall = Instant::now();
        drive(&addr, clients, SATURATION_BATCH, &|i| {
            distinct_spec(base + i)
        });
        spent += SATURATION_BATCH;
        let per_sec = SATURATION_BATCH as f64 / wall.elapsed().as_secs_f64();
        println!("  saturation c{clients}: {per_sec:.1} runs/sec");
        saturation_pairs.push((format!("c{clients}_per_sec"), format!("{per_sec:.2}")));
        per_level.push(per_sec);
    }
    // The first level whose doubling bought < 10% more throughput.
    let saturation_clients = per_level
        .windows(2)
        .position(|w| w[1] < w[0] * 1.10)
        .map(|i| SATURATION_LEVELS[i])
        .unwrap_or(*SATURATION_LEVELS.last().unwrap());
    saturation_pairs.push((
        "saturation_clients".to_string(),
        saturation_clients.to_string(),
    ));

    // Phase 2: the hot set under full concurrency.
    let stats = &server.state().stats;
    let before_subs = stats.submissions.load(Ordering::Relaxed);
    let before_hits =
        stats.dedupe_hits.load(Ordering::Relaxed) + stats.store_hits.load(Ordering::Relaxed);
    let before_runs = stats.engine_runs.load(Ordering::Relaxed);
    let total = HOT_CLIENTS * HOT_PER_CLIENT;
    let wall = Instant::now();
    let mut latencies = drive(&addr, HOT_CLIENTS, total, &|i| hot_spec(i));
    let elapsed = wall.elapsed().as_secs_f64();
    latencies.sort_by(|a, b| a.total_cmp(b));
    let (p50, p99) = (percentile(&latencies, 0.50), percentile(&latencies, 0.99));
    let throughput = total as f64 / elapsed;
    let subs = stats.submissions.load(Ordering::Relaxed) - before_subs;
    let hits = stats.dedupe_hits.load(Ordering::Relaxed) + stats.store_hits.load(Ordering::Relaxed)
        - before_hits;
    let engine_runs = stats.engine_runs.load(Ordering::Relaxed) - before_runs;
    let hit_rate = hits as f64 / subs.max(1) as f64;
    println!(
        "  hot set: {total} submissions, p50 {p50:.2} ms, p99 {p99:.2} ms, \
         {throughput:.0} req/sec, dedupe hit rate {:.3}, {engine_runs} engine runs",
        hit_rate
    );

    let section = bench_json::object(&[
        ("submissions".into(), subs.to_string()),
        ("hot_p50_ms".into(), format!("{p50:.3}")),
        ("hot_p99_ms".into(), format!("{p99:.3}")),
        ("hot_throughput_per_sec".into(), format!("{throughput:.1}")),
        ("dedupe_hit_rate".into(), format!("{hit_rate:.4}")),
        ("engine_runs".into(), engine_runs.to_string()),
        ("saturation".into(), bench_json::object(&saturation_pairs)),
    ]);
    let path = bench_json::default_report_path();
    bench_json::write_section(&path, "serve_load", &section).expect("write BENCH_engine.json");
    println!("serve_load -> {}", path.display());

    server.shutdown();
    let _ = std::fs::remove_dir_all(&store_dir);
}
