//! Regenerates paper Figs. 12-15: L2 hit rate, off-chip demand MPKI by
//! data type, prefetch accuracy, and bandwidth overhead for the
//! baseline / stream / streamMPP1 / DROPLET progression of Section VII-C.

use droplet::experiments::prefetch_study::run_study;
use droplet::experiments::ExperimentCtx;
use droplet::PrefetcherKind;
use droplet_bench::{banner, ctx_from_env, timed};

fn main() {
    let ctx: ExperimentCtx = ctx_from_env();
    banner("Figs. 12-15 — explaining DROPLET's performance", &ctx);
    let kinds = [
        PrefetcherKind::Stream,
        PrefetcherKind::StreamMpp1,
        PrefetcherKind::Droplet,
    ];
    let study = timed("fig12-15", || run_study(&ctx, &kinds));
    println!("{}", study.render_fig12());
    println!("{}", study.render_fig13());
    println!("{}", study.render_fig14());
    println!("{}", study.render_fig15());
}
