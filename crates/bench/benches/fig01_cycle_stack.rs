//! Regenerates paper Fig. 1: the cycle stack of PageRank on orkut.

use droplet::experiments::{fig01_cycle_stack, ExperimentCtx};
use droplet_bench::{banner, ctx_from_env, timed};

fn main() {
    let ctx: ExperimentCtx = ctx_from_env();
    banner("Fig. 1 — cycle stack of PR-orkut", &ctx);
    let result = timed("fig01", || fig01_cycle_stack(&ctx));
    println!("{}", result.render());
}
