//! End-to-end demand-path replay throughput (ops/sec) per prefetcher
//! configuration — the engine-performance gate for the per-op demand path
//! (`System::access`). Every paper figure is produced by replaying
//! multi-million-op traces through that path, so this number bounds the
//! wall clock of the whole evaluation.
//!
//! Besides the usual criterion report on stdout, the measured rates are
//! exported to `BENCH_engine.json` (section `"sim_replay"`) so the perf
//! trajectory is tracked across PRs.
//!
//! Run with: `cargo bench -p droplet-bench --bench sim_replay`
//!
//! `DROPLET_BENCH_ONLY=baseline,DROPLET` restricts the run to a
//! comma-separated subset of configuration names — handy when profiling one
//! configuration without the others polluting the samples. Filtered runs
//! skip the JSON export so a partial run never clobbers the full report.

use criterion::{Criterion, Throughput};
use droplet::gap::Algorithm;
use droplet::graph::{Dataset, DatasetScale};
use droplet::{run_workload, run_workload_scalar, PrefetcherKind, SystemConfig};
use droplet_bench::bench_json;
use std::sync::Arc;

/// The no-prefetcher baseline plus the six evaluated configurations.
const KINDS: [PrefetcherKind; 7] = [
    PrefetcherKind::None,
    PrefetcherKind::Ghb,
    PrefetcherKind::Vldp,
    PrefetcherKind::Stream,
    PrefetcherKind::StreamMpp1,
    PrefetcherKind::Droplet,
    PrefetcherKind::MonoDropletL1,
];

const OPS: u64 = 120_000;

fn bench_replay(c: &mut Criterion) {
    let g = Arc::new(Dataset::Kron.build(DatasetScale::Tiny));
    let bundle = Algorithm::Pr.trace(&g, OPS);
    let base = SystemConfig::test_scale();

    let only = std::env::var("DROPLET_BENCH_ONLY").ok();
    let mut group = c.benchmark_group("sim_replay");
    group.throughput(Throughput::Elements(bundle.ops.len() as u64));
    group.sample_size(12);
    for kind in KINDS {
        if let Some(filter) = &only {
            if !filter.split(',').any(|n| n.trim() == kind.name()) {
                continue;
            }
        }
        let cfg = base.with_prefetcher(kind);
        group.bench_function(kind.name(), |b| {
            b.iter(|| run_workload(&bundle, &cfg, 0).core.cycles);
        });
    }
    group.finish();
}

/// One untimed batched-vs-scalar replay per configuration: the timed loop
/// above runs the batched lane, so the report carries proof (a `*_match`
/// leaf, gated lower-worse) that the lane changed nothing it measures. The
/// full structural compare rides the `Debug` rendering — every counter the
/// simulator reports, not a summary.
fn hot_lane_matches(bundle: &droplet::gap::TraceBundle, base: &SystemConfig) -> bool {
    // The manifest stamps host wall time — the one field legitimately
    // allowed to differ between two replays of the same trace.
    let render = |mut r: droplet::RunResult| {
        r.manifest.wall_ms = 0.0;
        format!("{r:?}")
    };
    KINDS.iter().all(|&kind| {
        let cfg = base.with_prefetcher(kind);
        let batched = render(run_workload(bundle, &cfg, 0));
        let scalar = render(run_workload_scalar(bundle, &cfg, 0));
        if batched != scalar {
            eprintln!("{}: batched lane diverged from scalar replay", kind.name());
        }
        batched == scalar
    })
}

fn main() {
    let mut c = Criterion::default();
    bench_replay(&mut c);
    if std::env::var("DROPLET_BENCH_ONLY").is_ok() {
        return;
    }

    let g = Arc::new(Dataset::Kron.build(DatasetScale::Tiny));
    let bundle = Algorithm::Pr.trace(&g, OPS);
    let lane_match = hot_lane_matches(&bundle, &SystemConfig::test_scale());

    let mut configs = Vec::new();
    for r in c.take_results() {
        let ops_per_sec = r.elements_per_sec().unwrap_or(0.0);
        configs.push((
            r.name.clone(),
            bench_json::object(&[
                ("us_per_iter".into(), format!("{:.3}", r.median_ns / 1e3)),
                ("ops_per_sec".into(), format!("{ops_per_sec:.0}")),
            ]),
        ));
    }
    let section = bench_json::object(&[
        ("trace".into(), bench_json::quote("pr/kron-tiny")),
        ("ops".into(), OPS.to_string()),
        (
            "hot_lane_digest_match".into(),
            u64::from(lane_match).to_string(),
        ),
        ("configs".into(), bench_json::object(&configs)),
    ]);
    let path = bench_json::default_report_path();
    bench_json::write_section(&path, "sim_replay", &section).expect("write BENCH_engine.json");
    println!("wrote section \"sim_replay\" to {}", path.display());
}
