//! Regenerates paper Figs. 5 & 6: load-load dependency chains and the
//! producer/consumer breakdown by data type.

use droplet::experiments::{fig05_06_chains, ExperimentCtx};
use droplet_bench::{banner, ctx_from_env, timed};

fn main() {
    let ctx: ExperimentCtx = ctx_from_env();
    banner("Figs. 5 & 6 — dependency-chain analysis", &ctx);
    let result = timed("fig05_06", || fig05_06_chains(&ctx));
    println!("{}", result.render());
}
