//! Regenerates paper Fig. 4: (a) LLC capacity sensitivity, (b) private-L2
//! sensitivity, (c) off-chip accesses by data type vs LLC capacity.

use droplet::experiments::{
    fig04a_llc_sweep, fig04b_l2_sweep, fig04c_offchip_by_type, ExperimentCtx,
};
use droplet_bench::{banner, ctx_from_env, timed};

fn main() {
    let ctx: ExperimentCtx = ctx_from_env();
    banner("Fig. 4 — cache-hierarchy sensitivity sweeps", &ctx);
    let a = timed("fig04a", || fig04a_llc_sweep(&ctx));
    println!("{}", a.render());
    println!("{}", fig04c_offchip_by_type(&a));
    let b = timed("fig04b", || fig04b_l2_sweep(&ctx));
    println!("{}", b.render());
}
