//! Ablation: MPP VAB/PAB/MTLB sizing (Table V picks 512/512/128).

use droplet::experiments::{ablation_mpp_sizing, ExperimentCtx};
use droplet_bench::{banner, ctx_from_env, timed};

fn main() {
    let ctx: ExperimentCtx = ctx_from_env();
    banner("Ablation — MPP buffer sizing", &ctx);
    let result = timed("abl_mpp_sizing", || ablation_mpp_sizing(&ctx));
    println!("{}", result.render());
}
