//! Regenerates the Section V-D hardware-overhead analysis: the storage
//! cost of DROPLET's additions (page-table bit, L2-queue bit, MPP buffers,
//! MRB core-ID field).

use droplet::overhead::overheads;
use droplet::SystemConfig;

fn main() {
    println!("DROPLET reproduction — Section V-D hardware overhead");
    println!("====================================================");
    let report = overheads(&SystemConfig::baseline());
    println!("{report}");
    println!();
    println!("paper: +64 B / 1.56% page table; +4 B / 1.54% L2 queue;");
    println!("       7.7 KB MPP buffers (95.5% of MPP area); 64 B MRB core IDs.");
}
