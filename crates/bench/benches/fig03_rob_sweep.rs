//! Regenerates paper Fig. 3: bandwidth utilization and speedup from a 4x
//! larger instruction window, across the 5x5 workload matrix.

use droplet::experiments::{fig03_rob_sweep, ExperimentCtx};
use droplet_bench::{banner, ctx_from_env, timed};

fn main() {
    let ctx: ExperimentCtx = ctx_from_env();
    banner("Fig. 3 — 4x instruction window sweep", &ctx);
    let result = timed("fig03", || fig03_rob_sweep(&ctx));
    println!("{}", result.render());
}
