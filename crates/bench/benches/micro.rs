//! Criterion micro-benchmarks of the simulation substrate: cache access
//! throughput, PAG cacheline scanning, reuse-distance profiling, trace
//! generation, and a whole-system op-replay rate. These gate the wall-clock
//! budget of the figure benches.

use criterion::{Criterion, Throughput};
use droplet::cache::{CacheConfig, FillInfo, ReuseProfiler, SetAssocCache};
use droplet::gap::Algorithm;
use droplet::graph::{Dataset, DatasetScale};
use droplet::trace::{DataType, FunctionalMemory};
use droplet::{run_workload, PrefetcherKind, SystemConfig};
use std::sync::Arc;

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache");
    let accesses: Vec<u64> = (0..4096u64).map(|i| (i * 2654435761) % 16384).collect();
    group.throughput(Throughput::Elements(accesses.len() as u64));
    group.bench_function("l2_touch_fill", |b| {
        let mut cache = SetAssocCache::new(CacheConfig::l2());
        b.iter(|| {
            for (i, &line) in accesses.iter().enumerate() {
                if cache
                    .touch(line, i as u64, DataType::Property, false)
                    .is_none()
                {
                    cache.fill(line, FillInfo::demand(DataType::Property, i as u64));
                }
            }
        });
    });
    group.finish();
}

fn bench_reuse_profiler(c: &mut Criterion) {
    let mut group = c.benchmark_group("reuse");
    let stream: Vec<u64> = (0..2048u64).map(|i| (i * 48271) % 1024).collect();
    group.throughput(Throughput::Elements(stream.len() as u64));
    group.bench_function("olken_access", |b| {
        b.iter(|| {
            let mut p = ReuseProfiler::new();
            for &l in &stream {
                p.access(l, DataType::Structure);
            }
            p.distinct_lines()
        });
    });
    group.finish();
}

fn bench_pag_scan(c: &mut Criterion) {
    let g = Arc::new(Dataset::Kron.build(DatasetScale::Tiny));
    let bundle = Algorithm::Pr.trace(&g, 10_000);
    let base_line = bundle.funcmem.neighbors().base();
    let mut group = c.benchmark_group("mpp");
    group.bench_function("pag_line_scan", |b| {
        b.iter(|| bundle.funcmem.neighbor_ids_in_line(base_line).len());
    });
    group.finish();
}

fn bench_trace_generation(c: &mut Criterion) {
    let g = Arc::new(Dataset::Kron.build(DatasetScale::Tiny));
    let mut group = c.benchmark_group("trace");
    group.bench_function("pr_trace_100k_ops", |b| {
        b.iter(|| Algorithm::Pr.trace(&g, 100_000).len());
    });
    group.finish();
}

fn bench_columnar_roundtrip(c: &mut Criterion) {
    use droplet::trace::columnar;
    let g = Arc::new(Dataset::Kron.build(DatasetScale::Tiny));
    let bundle = Algorithm::Pr.trace(&g, 100_000);
    let mut group = c.benchmark_group("trace");
    group.throughput(Throughput::Elements(bundle.ops.len() as u64));
    group.bench_function("columnar_roundtrip", |b| {
        b.iter(|| {
            let bytes = columnar::encode(&bundle.ops);
            columnar::decode(&bytes)
                .expect("fresh encode must decode")
                .len()
        });
    });
    group.finish();
}

/// A deterministic graph-shaped event stream for the prefetcher hot-path
/// benches: sequential structure runs interleaved with hashed property
/// chases and hot-set reuse, over a page universe small enough to keep
/// every engine's tables under replacement pressure.
fn synth_events(n: usize) -> Vec<droplet::prefetch::AccessEvent> {
    use droplet::prefetch::{AccessEvent, EventKind};
    use droplet::trace::VirtAddr;
    let mix = |x: u64| {
        let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut events = Vec::with_capacity(n);
    let mut line = 0u64;
    for i in 0..n as u64 {
        let r = mix(i);
        let (l, structure) = match r % 8 {
            // Sequential structure run inside an 8-page region.
            0..=3 => {
                line = (line + 1) % (8 * 64);
                (line, true)
            }
            // Hashed property chase over 32 pages.
            4..=5 => ((8 + (r >> 8) % 32) * 64 + (r >> 16) % 64, false),
            // Hot-set reuse on 4 pages.
            _ => ((8 + (r >> 8) % 4) * 64 + (r >> 16) % 64, false),
        };
        events.push(AccessEvent {
            vaddr: VirtAddr::new(l * 64),
            kind: if r % 11 == 0 {
                EventKind::L2Hit
            } else {
                EventKind::L1Miss
            },
            is_structure: structure,
            dtype: if structure {
                DataType::Structure
            } else {
                DataType::Property
            },
        });
    }
    events
}

fn bench_prefetcher_hot_paths(c: &mut Criterion) {
    use droplet::prefetch::{GhbPrefetcher, Prefetcher, StreamPrefetcher, VldpPrefetcher};
    let events = synth_events(8192);
    let cfg = SystemConfig::test_scale();

    let mut group = c.benchmark_group("vldp");
    group.throughput(Throughput::Elements(events.len() as u64));
    group.bench_function("on_access", |b| {
        b.iter(|| {
            let mut pf = VldpPrefetcher::new(cfg.vldp.clone());
            let mut out = Vec::with_capacity(16);
            for ev in &events {
                out.clear();
                pf.on_access(ev, &mut out);
            }
            pf.issued()
        });
    });
    group.finish();

    let mut group = c.benchmark_group("ghb");
    group.throughput(Throughput::Elements(events.len() as u64));
    group.bench_function("on_access", |b| {
        b.iter(|| {
            let mut pf = GhbPrefetcher::new(cfg.ghb.clone());
            let mut out = Vec::with_capacity(16);
            for ev in &events {
                out.clear();
                pf.on_access(ev, &mut out);
            }
            pf.issued()
        });
    });
    group.finish();

    let mut group = c.benchmark_group("stream");
    group.throughput(Throughput::Elements(events.len() as u64));
    group.bench_function("on_access", |b| {
        b.iter(|| {
            let mut pf = StreamPrefetcher::new(cfg.stream.clone());
            let mut out = Vec::with_capacity(16);
            for ev in &events {
                out.clear();
                pf.on_access(ev, &mut out);
            }
            pf.issued()
        });
    });
    group.finish();
}

fn bench_system_replay(c: &mut Criterion) {
    let g = Arc::new(Dataset::Kron.build(DatasetScale::Tiny));
    let bundle = Algorithm::Pr.trace(&g, 100_000);
    let mut group = c.benchmark_group("system");
    group.throughput(Throughput::Elements(bundle.ops.len() as u64));
    group.sample_size(10);
    group.bench_function("baseline_replay", |b| {
        let cfg = SystemConfig::test_scale();
        b.iter(|| run_workload(&bundle, &cfg, 0).core.cycles);
    });
    group.bench_function("droplet_replay", |b| {
        let cfg = SystemConfig::test_scale().with_prefetcher(PrefetcherKind::Droplet);
        b.iter(|| run_workload(&bundle, &cfg, 0).core.cycles);
    });
    group.finish();
}

fn main() {
    let mut c = Criterion::default();
    bench_cache(&mut c);
    bench_reuse_profiler(&mut c);
    bench_pag_scan(&mut c);
    bench_trace_generation(&mut c);
    bench_columnar_roundtrip(&mut c);
    bench_prefetcher_hot_paths(&mut c);
    bench_system_replay(&mut c);

    // Export µs/iter per micro bench to the cross-PR perf report.
    use droplet_bench::bench_json;
    let entries: Vec<(String, String)> = c
        .take_results()
        .into_iter()
        .map(|r| {
            (
                format!("{}/{}", r.group, r.name),
                format!("{:.3}", r.median_ns / 1e3),
            )
        })
        .collect();
    let path = bench_json::default_report_path();
    bench_json::write_section(&path, "micro_us_per_iter", &bench_json::object(&entries))
        .expect("write BENCH_engine.json");
    println!("wrote section \"micro_us_per_iter\" to {}", path.display());
}
