//! Wall-clock gate for the replacement-policy laboratory: times the full
//! policy × workload × level study (25 workloads × 9 hierarchies) over a
//! warm trace cache — at one worker thread and at four — and exports the
//! walls (one `t<N>` object each) plus the per-policy LLC geomean
//! speedups to `BENCH_engine.json` (section `"policy_study"`).
//!
//! The walls gate higher-worse in `droplet-bench-diff`; the geomeans are
//! informational context for the EXPERIMENTS.md table (exact cycle
//! determinism is enforced separately by the digest and conformance
//! suites, so the gate only needs to catch the study getting slower). The
//! two passes must agree on every geomean — thread count may shift walls,
//! never results — which this bench asserts before writing the report.
//!
//! Run with: `cargo bench -p droplet-bench --bench policy_study`

use droplet::datasets::WorkloadSpec;
use droplet::experiments::policy_study::{run_policy_study, PolicyLevel, STUDY_POLICIES};
use droplet::experiments::ExperimentCtx;
use droplet_bench::bench_json;
use std::time::Instant;

fn main() {
    let ctx = ExperimentCtx::tiny();
    println!(
        "policy_study: scale={:?} budget={} warmup={} threads={}",
        ctx.scale,
        ctx.budget,
        ctx.warmup,
        ctx.pool.threads()
    );

    // Warm the shared trace cache so the timed pass measures simulation,
    // not graph/trace construction.
    let specs = WorkloadSpec::matrix(ctx.scale);
    let build = Instant::now();
    let ctx_ref = &ctx;
    ctx.pool.run(
        specs
            .iter()
            .map(|spec| {
                move || {
                    ctx_ref.trace(spec);
                }
            })
            .collect(),
    );
    println!(
        "traces: {} bundles built in {} ms",
        specs.len(),
        build.elapsed().as_millis()
    );

    let mut pairs = vec![
        ("scale".into(), bench_json::quote("tiny")),
        ("budget".into(), ctx.budget.to_string()),
        ("warmup".into(), ctx.warmup.to_string()),
    ];
    let mut studies = Vec::new();
    for threads in [1usize, 4] {
        let ctx = ctx.clone().with_threads(threads);
        let t = Instant::now();
        let study = run_policy_study(&ctx, &STUDY_POLICIES);
        let wall_ms = t.elapsed().as_secs_f64() * 1e3;
        println!(
            "threads={threads}: {} rows in {wall_ms:.0} ms",
            study.rows.len()
        );
        pairs.push((
            format!("t{threads}"),
            bench_json::object(&[("wall_ms".into(), format!("{wall_ms:.0}"))]),
        ));
        studies.push(study);
    }
    println!("{}", studies[0].render());
    for &p in &STUDY_POLICIES {
        let geo = studies[0].geomean_speedup(p, PolicyLevel::Llc);
        let geo4 = studies[1].geomean_speedup(p, PolicyLevel::Llc);
        assert_eq!(
            geo.to_bits(),
            geo4.to_bits(),
            "{p}: LLC geomean differs between 1 and 4 threads"
        );
        pairs.push((format!("geomean_llc_{p}"), format!("{geo:.4}")));
    }
    let section = bench_json::object(&pairs);
    let path = bench_json::default_report_path();
    bench_json::write_section(&path, "policy_study", &section).expect("write BENCH_engine.json");
    println!("wrote section \"policy_study\" to {}", path.display());
}
