//! Wall-clock gate for the replacement-policy laboratory: times the full
//! policy × workload × level study (25 workloads × 9 hierarchies) over a
//! warm trace cache and exports the wall plus the per-policy LLC geomean
//! speedups to `BENCH_engine.json` (section `"policy_study"`).
//!
//! The wall gates higher-worse in `droplet-bench-diff`; the geomeans are
//! informational context for the EXPERIMENTS.md table (exact cycle
//! determinism is enforced separately by the digest and conformance
//! suites, so the gate only needs to catch the study getting slower).
//!
//! Run with: `cargo bench -p droplet-bench --bench policy_study`

use droplet::datasets::WorkloadSpec;
use droplet::experiments::policy_study::{run_policy_study, PolicyLevel, STUDY_POLICIES};
use droplet::experiments::ExperimentCtx;
use droplet_bench::bench_json;
use std::time::Instant;

fn main() {
    let ctx = ExperimentCtx::tiny();
    println!(
        "policy_study: scale={:?} budget={} warmup={} threads={}",
        ctx.scale,
        ctx.budget,
        ctx.warmup,
        ctx.pool.threads()
    );

    // Warm the shared trace cache so the timed pass measures simulation,
    // not graph/trace construction.
    let specs = WorkloadSpec::matrix(ctx.scale);
    let build = Instant::now();
    let ctx_ref = &ctx;
    ctx.pool.run(
        specs
            .iter()
            .map(|spec| {
                move || {
                    ctx_ref.trace(spec);
                }
            })
            .collect(),
    );
    println!(
        "traces: {} bundles built in {} ms",
        specs.len(),
        build.elapsed().as_millis()
    );

    let t = Instant::now();
    let study = run_policy_study(&ctx, &STUDY_POLICIES);
    let wall_ms = t.elapsed().as_secs_f64() * 1e3;
    println!("{}", study.render());
    println!("{} rows in {wall_ms:.0} ms", study.rows.len());

    let mut pairs = vec![
        ("scale".into(), bench_json::quote("tiny")),
        ("budget".into(), ctx.budget.to_string()),
        ("warmup".into(), ctx.warmup.to_string()),
        ("threads".into(), ctx.pool.threads().to_string()),
        ("wall_ms".into(), format!("{wall_ms:.0}")),
    ];
    for &p in &STUDY_POLICIES {
        pairs.push((
            format!("geomean_llc_{p}"),
            format!("{:.4}", study.geomean_speedup(p, PolicyLevel::Llc)),
        ));
    }
    let section = bench_json::object(&pairs);
    let path = bench_json::default_report_path();
    bench_json::write_section(&path, "policy_study", &section).expect("write BENCH_engine.json");
    println!("wrote section \"policy_study\" to {}", path.display());
}
