//! Regenerates the reuse-distance analysis behind Observation #6 and
//! Table IV: Olken stack distances of the L1-miss stream, by data type.

use droplet::experiments::{tab_reuse_distances, ExperimentCtx};
use droplet_bench::{banner, ctx_from_env, timed};

fn main() {
    let ctx: ExperimentCtx = ctx_from_env();
    banner("Observation #6 — reuse distances by data type", &ctx);
    let table = timed("reuse", || tab_reuse_distances(&ctx));
    println!("{}", table.render());
}
