//! Ablation: decoupled (MC-side) vs monolithic (L1) property prefetching,
//! plus the Section VII-B adaptive extension.

use droplet::experiments::{ablation_decoupling, ExperimentCtx};
use droplet_bench::{banner, ctx_from_env, timed};

fn main() {
    let ctx: ExperimentCtx = ctx_from_env();
    banner("Ablation — decoupling & adaptivity", &ctx);
    let result = timed("abl_decoupling", || ablation_decoupling(&ctx));
    println!("{}", result.render());
}
