//! Sweep wall-clock gate for forked simulation: times the full Fig. 11
//! prefetcher study (25 workloads × 7 configurations) over a warm trace
//! cache — with per-cell full replay (`--no-fork` semantics) and with
//! shared warm-up forking, at one worker thread and at four — and exports
//! the walls plus their ratios to `BENCH_engine.json` (section
//! `"study_wall_ms"`, one `t<N>` object per thread count).
//!
//! The `*_ms` leaves gate higher-worse and the `*_speedup` leaves gate
//! lower-worse in `droplet-bench-diff`, so an absolute slowdown, a
//! regression of the fork win, and a regression of the thread-scaling win
//! (`t4_vs_t1_forked_speedup`) each fail the CI perf gate independently.
//!
//! Run with: `cargo bench -p droplet-bench --bench study_wall`
//! (tiny scale, so the gate run finishes in seconds-to-minutes; results
//! are bit-identical between the timed passes — across fork modes *and*
//! thread counts — which is separately enforced by
//! `tests/fork_determinism.rs`, `demand_path_digests`, and the
//! conformance suite).

use droplet::datasets::WorkloadSpec;
use droplet::experiments::prefetch_study::run_study;
use droplet::experiments::ExperimentCtx;
use droplet::PrefetcherKind;
use droplet_bench::bench_json;
use std::time::Instant;

/// Thread counts exercised by the gate. The pipelined `run_sweep` overlaps
/// warm-up snapshots with forked cells, so the 4-thread cell measures the
/// scheduler's scaling, not just raw core count (on a single-core runner
/// the two cells simply coincide — the ratio leaf then gates at ~1.0).
const THREADS: [usize; 2] = [1, 4];

fn main() {
    let ctx = ExperimentCtx::tiny();
    println!(
        "study_wall: scale={:?} budget={} warmup={} host threads={}",
        ctx.scale,
        ctx.budget,
        ctx.warmup,
        ctx.pool.threads()
    );

    // Warm the shared trace cache so every timed pass measures pure
    // simulation, not graph/trace construction.
    let specs = WorkloadSpec::matrix(ctx.scale);
    let build = Instant::now();
    let ctx_ref = &ctx;
    ctx.pool.run(
        specs
            .iter()
            .map(|spec| {
                move || {
                    ctx_ref.trace(spec);
                }
            })
            .collect(),
    );
    println!(
        "traces: {} bundles built in {} ms",
        specs.len(),
        build.elapsed().as_millis()
    );

    let time_study = |threads: usize, fork: bool| {
        let ctx = ctx.clone().with_threads(threads).with_fork_sweeps(fork);
        let t = Instant::now();
        let study = run_study(&ctx, &PrefetcherKind::EVALUATED);
        let ms = t.elapsed().as_secs_f64() * 1e3;
        println!(
            "threads={threads} fork={fork}: {} rows in {ms:.0} ms",
            study.rows.len()
        );
        ms
    };

    let mut pairs = vec![
        ("scale".into(), bench_json::quote("tiny")),
        ("budget".into(), ctx.budget.to_string()),
        ("warmup".into(), ctx.warmup.to_string()),
    ];
    let mut forked_by_threads = Vec::new();
    for threads in THREADS {
        let full_ms = time_study(threads, false);
        let forked_ms = time_study(threads, true);
        forked_by_threads.push(forked_ms);
        pairs.push((
            format!("t{threads}"),
            bench_json::object(&[
                ("full_replay_ms".into(), format!("{full_ms:.0}")),
                ("forked_ms".into(), format!("{forked_ms:.0}")),
                (
                    "fork_speedup".into(),
                    format!("{:.3}", full_ms / forked_ms.max(1e-9)),
                ),
            ]),
        ));
    }
    pairs.push((
        "t4_vs_t1_forked_speedup".into(),
        format!(
            "{:.3}",
            forked_by_threads[0] / forked_by_threads[1].max(1e-9)
        ),
    ));

    let section = bench_json::object(&pairs);
    let path = bench_json::default_report_path();
    bench_json::write_section(&path, "study_wall_ms", &section).expect("write BENCH_engine.json");
    println!("wrote section \"study_wall_ms\" to {}", path.display());
}
