//! Sweep wall-clock gate for forked simulation: times the full Fig. 11
//! prefetcher study (25 workloads × 7 configurations) twice over a warm
//! trace cache — once with per-cell full replay (`--no-fork` semantics)
//! and once with shared warm-up forking — and exports both walls plus
//! their ratio to `BENCH_engine.json` (section `"study_wall_ms"`).
//!
//! The `*_ms` leaves gate higher-worse and `fork_speedup` gates
//! lower-worse in `droplet-bench-diff`, so both an absolute slowdown and
//! a regression of the fork win itself fail the CI perf gate.
//!
//! Run with: `cargo bench -p droplet-bench --bench study_wall`
//! (tiny scale, so the gate run finishes in seconds-to-minutes; results
//! are bit-identical between the two timed passes, which is separately
//! enforced by `tests/fork_determinism.rs` and the conformance suite).

use droplet::datasets::WorkloadSpec;
use droplet::experiments::prefetch_study::run_study;
use droplet::experiments::ExperimentCtx;
use droplet::PrefetcherKind;
use droplet_bench::bench_json;
use std::time::Instant;

fn main() {
    let ctx = ExperimentCtx::tiny();
    println!(
        "study_wall: scale={:?} budget={} warmup={} threads={}",
        ctx.scale,
        ctx.budget,
        ctx.warmup,
        ctx.pool.threads()
    );

    // Warm the shared trace cache so both timed passes measure pure
    // simulation, not graph/trace construction.
    let specs = WorkloadSpec::matrix(ctx.scale);
    let build = Instant::now();
    let ctx_ref = &ctx;
    ctx.pool.run(
        specs
            .iter()
            .map(|spec| {
                move || {
                    ctx_ref.trace(spec);
                }
            })
            .collect(),
    );
    println!(
        "traces: {} bundles built in {} ms",
        specs.len(),
        build.elapsed().as_millis()
    );

    let time_study = |fork: bool| {
        let ctx = ctx.clone().with_fork_sweeps(fork);
        let t = Instant::now();
        let study = run_study(&ctx, &PrefetcherKind::EVALUATED);
        let ms = t.elapsed().as_secs_f64() * 1e3;
        println!("fork={fork}: {} rows in {ms:.0} ms", study.rows.len());
        ms
    };

    let full_ms = time_study(false);
    let forked_ms = time_study(true);

    let section = bench_json::object(&[
        ("scale".into(), bench_json::quote("tiny")),
        ("budget".into(), ctx.budget.to_string()),
        ("warmup".into(), ctx.warmup.to_string()),
        ("threads".into(), ctx.pool.threads().to_string()),
        ("full_replay_ms".into(), format!("{full_ms:.0}")),
        ("forked_ms".into(), format!("{forked_ms:.0}")),
        (
            "fork_speedup".into(),
            format!("{:.3}", full_ms / forked_ms.max(1e-9)),
        ),
    ]);
    let path = bench_json::default_report_path();
    bench_json::write_section(&path, "study_wall_ms", &section).expect("write BENCH_engine.json");
    println!("wrote section \"study_wall_ms\" to {}", path.display());
}
