//! Regenerates paper Fig. 11: speedups of all six prefetcher
//! configurations over the no-prefetch baseline (per workload and the
//! per-algorithm geomean summary).

use droplet::experiments::prefetch_study::run_study;
use droplet::experiments::ExperimentCtx;
use droplet::PrefetcherKind;
use droplet_bench::{banner, ctx_from_env, timed};

fn main() {
    let ctx: ExperimentCtx = ctx_from_env();
    banner("Fig. 11 — prefetcher comparison (6 configurations)", &ctx);
    let study = timed("fig11", || run_study(&ctx, &PrefetcherKind::EVALUATED));
    println!("{}", study.render_fig11());
}
