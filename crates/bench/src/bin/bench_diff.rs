//! `droplet-bench-diff` — compare two benchmark reports or run journals.
//!
//! Inputs may be `BENCH_*.json` section files (one top-level object, as
//! written by `bench_json::write_section`) or JSONL run journals (one
//! object per line, as written by `droplet-sim --obs`); the format is
//! auto-detected per file, so a journal can be diffed against a report.
//! Every numeric leaf is flattened to a dot path (`sim_replay.configs.
//! baseline.us_per_iter`) and the two files are compared leaf by leaf.
//!
//! Gating: leaves whose last path segment names a cost (`us_per_iter`,
//! `*_us`, `*_ms`, `*_cycles`) regress when they *rise*; throughput,
//! gain, and invariant leaves (`ops_per_sec`, `*_per_sec`, `*_speedup`,
//! `*_match`) regress when they *fall* — a `*_match` flag dropping from 1
//! to 0 is a −100% fall, so a broken equivalence always trips the gate.
//! Any gated leaf moving past the threshold percent in the bad direction
//! fails the run with exit code 1 — this is the CI bench gate. Other
//! leaves are printed for context but never gate.
//!
//! ```text
//! droplet-bench-diff OLD NEW [--threshold PCT]
//!                    [--threshold-up PCT] [--threshold-down PCT]
//!                    [--section NAME]
//! ```
//!
//! `--threshold` (default 15) covers both directions;
//! `--threshold-up` / `--threshold-down` override it for the
//! higher-is-worse and lower-is-worse leaf families separately — e.g. a
//! noisy wall-clock section can tolerate 35% rises while still failing
//! hard (say, 5%) on any drop of a `*_match` invariant or a fork-win
//! ratio. `--section` restricts both the display and the gate to one
//! top-level section (e.g. `sim_replay`).

use droplet_bench::bench_json::split_top_level;
use std::process::ExitCode;

struct Args {
    old: String,
    new: String,
    /// Percent rise tolerated on higher-is-worse leaves.
    threshold_up: f64,
    /// Percent fall tolerated on lower-is-worse leaves.
    threshold_down: f64,
    section: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut pos = Vec::new();
    let mut threshold = 15.0;
    let mut threshold_up = None;
    let mut threshold_down = None;
    let mut section = None;
    let mut it = std::env::args().skip(1);
    let pct = |flag: &str, v: Option<String>| -> Result<f64, String> {
        let v = v.ok_or_else(|| format!("{flag} needs a value"))?;
        v.parse::<f64>().map_err(|_| format!("bad {flag} {v:?}"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threshold" => threshold = pct("--threshold", it.next())?,
            "--threshold-up" => threshold_up = Some(pct("--threshold-up", it.next())?),
            "--threshold-down" => threshold_down = Some(pct("--threshold-down", it.next())?),
            "--section" => section = Some(it.next().ok_or("--section needs a value")?),
            "--help" | "-h" => {
                return Err("usage: droplet-bench-diff OLD NEW [--threshold PCT] \
                     [--threshold-up PCT] [--threshold-down PCT] [--section NAME]"
                    .to_string())
            }
            other if other.starts_with("--") => return Err(format!("unknown flag {other}")),
            other => pos.push(other.to_string()),
        }
    }
    let [old, new] = <[String; 2]>::try_from(pos)
        .map_err(|_| "expected exactly two files: OLD NEW".to_string())?;
    Ok(Args {
        old,
        new,
        threshold_up: threshold_up.unwrap_or(threshold),
        threshold_down: threshold_down.unwrap_or(threshold),
        section,
    })
}

/// Flattens one parsed report into sorted `(dot.path, value)` numeric
/// leaves. Non-numeric, non-object leaves (strings, nulls) are skipped.
fn flatten(pairs: &[(String, String)], prefix: &str, out: &mut Vec<(String, f64)>) {
    for (k, v) in pairs {
        let path = if prefix.is_empty() {
            k.clone()
        } else {
            format!("{prefix}.{k}")
        };
        let v = v.trim();
        if v.starts_with('{') {
            if let Some(inner) = split_top_level(v) {
                flatten(&inner, &path, out);
            }
        } else if let Ok(x) = v.parse::<f64>() {
            out.push((path, x));
        }
    }
}

/// Loads a report file: a single JSON object, or a JSONL journal whose
/// *last* line (the cumulative end-of-run epoch) is the comparison point,
/// with the line count surfaced as an `epochs` leaf.
fn load(path: &str) -> Result<Vec<(String, f64)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut leaves = Vec::new();
    if let Some(pairs) = split_top_level(&text) {
        flatten(&pairs, "", &mut leaves);
    } else {
        let lines: Vec<&str> = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty())
            .collect();
        let last = lines
            .last()
            .and_then(|l| split_top_level(l))
            .ok_or_else(|| format!("{path}: neither a JSON report nor a JSONL journal"))?;
        flatten(&last, "", &mut leaves);
        leaves.push(("epochs".to_string(), lines.len() as f64));
    }
    leaves.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(leaves)
}

/// `Some(true)` = higher is worse, `Some(false)` = lower is worse,
/// `None` = informational only.
fn gate_direction(path: &str) -> Option<bool> {
    let leaf = path.rsplit('.').next().unwrap_or(path);
    if leaf == "us_per_iter"
        || leaf.ends_with("_us")
        || leaf.ends_with("_ms")
        || leaf.ends_with("_cycles")
    {
        Some(true)
    } else if leaf == "ops_per_sec"
        || leaf.ends_with("_per_sec")
        || leaf.ends_with("_speedup")
        || leaf.ends_with("_match")
    {
        Some(false)
    } else {
        None
    }
}

fn run() -> Result<Vec<String>, String> {
    let args = parse_args()?;
    let old = load(&args.old)?;
    let new = load(&args.new)?;

    let in_section = |path: &str| {
        args.section
            .as_deref()
            .is_none_or(|s| path == s || path.starts_with(&format!("{s}.")))
    };

    // Merge the two sorted leaf lists on path.
    let mut rows: Vec<(String, Option<f64>, Option<f64>)> = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < old.len() || j < new.len() {
        match (old.get(i), new.get(j)) {
            (Some(a), Some(b)) if a.0 == b.0 => {
                rows.push((a.0.clone(), Some(a.1), Some(b.1)));
                i += 1;
                j += 1;
            }
            (Some(a), Some(b)) if a.0 < b.0 => {
                rows.push((a.0.clone(), Some(a.1), None));
                i += 1;
            }
            (Some(_), Some(b)) => {
                rows.push((b.0.clone(), None, Some(b.1)));
                j += 1;
            }
            (Some(a), None) => {
                rows.push((a.0.clone(), Some(a.1), None));
                i += 1;
            }
            (None, Some(b)) => {
                rows.push((b.0.clone(), None, Some(b.1)));
                j += 1;
            }
            (None, None) => unreachable!("loop condition"),
        }
    }

    println!(
        "{:<52} {:>14} {:>14} {:>9}  gate",
        "leaf", "old", "new", "delta%"
    );
    let mut regressions = Vec::new();
    for (path, a, b) in rows {
        if !in_section(&path) {
            continue;
        }
        let fmt = |v: Option<f64>| v.map_or("—".to_string(), |x| format!("{x:.3}"));
        let (delta_str, verdict) = match (a, b) {
            (Some(a), Some(b)) if a != 0.0 => {
                let pct = (b - a) / a * 100.0;
                let verdict = match gate_direction(&path) {
                    Some(higher_worse) => {
                        let (bad, limit) = if higher_worse {
                            (pct, args.threshold_up)
                        } else {
                            (-pct, args.threshold_down)
                        };
                        if bad > limit {
                            regressions.push(format!("{path}: {a:.3} -> {b:.3} ({pct:+.1}%)"));
                            "REGRESSED"
                        } else {
                            "ok"
                        }
                    }
                    None => "",
                };
                (format!("{pct:+.1}"), verdict)
            }
            _ => ("—".to_string(), ""),
        };
        println!(
            "{path:<52} {:>14} {:>14} {delta_str:>9}  {verdict}",
            fmt(a),
            fmt(b)
        );
    }
    Ok(regressions)
}

fn main() -> ExitCode {
    match run() {
        Ok(regressions) if regressions.is_empty() => ExitCode::SUCCESS,
        Ok(regressions) => {
            eprintln!("\n{} regression(s) past threshold:", regressions.len());
            for r in &regressions {
                eprintln!("  {r}");
            }
            ExitCode::FAILURE
        }
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
