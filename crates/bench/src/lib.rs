//! Shared scaffolding for the figure-regeneration bench targets.
//!
//! Every paper figure has its own bench (`cargo bench -p droplet-bench
//! --bench figNN_...`); each prints the figure's rows with the paper's
//! expected values annotated. The environment variable `DROPLET_SCALE`
//! (`tiny` / `small` / `sim`, default `sim`) selects the dataset scale so
//! the full suite can be smoke-tested quickly, and `DROPLET_BUDGET`
//! overrides the per-workload trace-op budget.

pub mod bench_json;

use droplet::experiments::ExperimentCtx;
use droplet::graph::DatasetScale;

/// Builds the experiment context from the environment.
///
/// # Panics
///
/// Panics if `DROPLET_SCALE` is set to an unknown value or
/// `DROPLET_BUDGET` is not a number.
pub fn ctx_from_env() -> ExperimentCtx {
    let scale = match std::env::var("DROPLET_SCALE").as_deref() {
        Ok("tiny") => DatasetScale::Tiny,
        Ok("small") => DatasetScale::Small,
        Ok("sim") | Err(_) => DatasetScale::Sim,
        Ok(other) => panic!("unknown DROPLET_SCALE {other:?} (want tiny/small/sim)"),
    };
    let mut ctx = ExperimentCtx::at(scale);
    if let Ok(budget) = std::env::var("DROPLET_BUDGET") {
        ctx.budget = budget.parse().expect("DROPLET_BUDGET must be an integer");
        ctx.warmup = (ctx.budget / 4) as usize;
    }
    ctx
}

/// Prints the standard bench banner.
pub fn banner(figure: &str, ctx: &ExperimentCtx) {
    println!("==============================================================");
    println!("DROPLET reproduction — {figure}");
    println!(
        "scale {:?}, budget {} ops, warmup {} ops",
        ctx.scale, ctx.budget, ctx.warmup
    );
    println!("==============================================================");
}

/// Wall-clock helper for progress lines.
pub fn timed<T>(label: &str, f: impl FnOnce() -> T) -> T {
    let start = std::time::Instant::now();
    let out = f();
    eprintln!("[{label}: {:.1}s]", start.elapsed().as_secs_f64());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_ctx_is_sim_scale() {
        // Only check when the variable is not set in the environment.
        if std::env::var("DROPLET_SCALE").is_err() {
            let ctx = ctx_from_env();
            assert!(matches!(ctx.scale, DatasetScale::Sim));
        }
    }

    #[test]
    fn timed_passes_value_through() {
        assert_eq!(timed("t", || 42), 42);
    }
}
