//! Machine-readable benchmark reports (`BENCH_engine.json`).
//!
//! Several independent `harness = false` bench binaries contribute numbers
//! to one JSON file at the repository root, so the perf trajectory of the
//! simulation engine can be tracked across PRs without scraping stdout.
//! Each binary owns one *top-level section* (`"sim_replay"`, `"micro"`, …)
//! and replaces only its own section on write; sections written by other
//! binaries are preserved verbatim.
//!
//! The file format is plain JSON with one object per section. No JSON
//! library is vendored, so this module carries a minimal top-level splitter
//! (string- and nesting-aware) instead of a full parser.

use std::path::{Path, PathBuf};

/// Default report location: the workspace root, next to `EXPERIMENTS.md`.
/// Overridable via `DROPLET_BENCH_JSON` (useful under CI sandboxes).
pub fn default_report_path() -> PathBuf {
    if let Ok(p) = std::env::var("DROPLET_BENCH_JSON") {
        return PathBuf::from(p);
    }
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_engine.json")
}

/// Replaces (or appends) the top-level `section` of the JSON report at
/// `path` with `value`, which must itself be a rendered JSON value.
/// Unparseable existing files are replaced wholesale rather than erroring:
/// a corrupt report should never fail a bench run.
pub fn write_section(path: &Path, section: &str, value: &str) -> std::io::Result<()> {
    let mut sections: Vec<(String, String)> = std::fs::read_to_string(path)
        .ok()
        .and_then(|s| split_top_level(&s))
        .unwrap_or_default();
    match sections.iter_mut().find(|(k, _)| k == section) {
        Some((_, v)) => *v = value.to_string(),
        None => sections.push((section.to_string(), value.to_string())),
    }
    let body = sections
        .iter()
        .map(|(k, v)| format!("  {}: {v}", quote(k)))
        .collect::<Vec<_>>()
        .join(",\n");
    std::fs::write(path, format!("{{\n{body}\n}}\n"))
}

/// Renders a JSON string literal (enough escaping for bench names).
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders an object from key/value pairs whose values are already JSON.
pub fn object(pairs: &[(String, String)]) -> String {
    let body = pairs
        .iter()
        .map(|(k, v)| format!("{}: {v}", quote(k)))
        .collect::<Vec<_>>()
        .join(", ");
    format!("{{{body}}}")
}

/// Splits `{"k1": v1, "k2": v2, ...}` into `[(k1, v1), ...]` where each `v`
/// is the raw JSON slice. Returns `None` on malformed input, including
/// stray closing brackets inside a value (`{"a": 1]}`). Public so
/// `droplet-bench-diff` can walk report files with the same parser that
/// writes them.
pub fn split_top_level(s: &str) -> Option<Vec<(String, String)>> {
    let s = s.trim();
    let inner = s.strip_prefix('{')?.strip_suffix('}')?;
    let mut out = Vec::new();
    let mut rest = inner.trim_start();
    while !rest.is_empty() {
        // Key.
        rest = rest.strip_prefix('"')?;
        let (key, after) = take_string_body(rest)?;
        rest = after.trim_start().strip_prefix(':')?.trim_start();
        // Value: scan to the next top-level ',' (or end of input).
        let mut depth = 0i32;
        let mut in_str = false;
        let mut escaped = false;
        let mut end = rest.len();
        for (i, c) in rest.char_indices() {
            if in_str {
                match c {
                    _ if escaped => escaped = false,
                    '\\' => escaped = true,
                    '"' => in_str = false,
                    _ => {}
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' | '[' => depth += 1,
                '}' | ']' => {
                    depth -= 1;
                    // A stray closer (more `}`/`]` than openers) can never
                    // become well-formed again — reject immediately rather
                    // than letting the value round-trip corrupted.
                    if depth < 0 {
                        return None;
                    }
                }
                ',' if depth == 0 => {
                    end = i;
                    break;
                }
                _ => {}
            }
        }
        if depth > 0 || in_str {
            return None;
        }
        out.push((key, rest[..end].trim().to_string()));
        rest = rest[end..].strip_prefix(',').unwrap_or("").trim_start();
    }
    Some(out)
}

/// Consumes an already-opened JSON string, returning (unescaped body, rest
/// after the closing quote). Only the escapes `quote` emits are decoded.
fn take_string_body(s: &str) -> Option<(String, &str)> {
    let mut out = String::new();
    let mut chars = s.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Some((out, &s[i + 1..])),
            '\\' => match chars.next()?.1 {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                other => {
                    out.push('\\');
                    out.push(other);
                }
            },
            c => out.push(c),
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_round_trips_nested_values() {
        let src = r#"{"a": {"x": [1, 2, {"y": "s,t"}]}, "b": 3.5, "c": "q\"c"}"#;
        let parts = split_top_level(src).unwrap();
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0].0, "a");
        assert_eq!(parts[0].1, r#"{"x": [1, 2, {"y": "s,t"}]}"#);
        assert_eq!(parts[1], ("b".into(), "3.5".into()));
        assert_eq!(parts[2], ("c".into(), r#""q\"c""#.into()));
    }

    #[test]
    fn split_rejects_malformed() {
        assert!(split_top_level("not json").is_none());
        assert!(split_top_level(r#"{"a": {"#).is_none());
        assert!(split_top_level(r#"{"a": "unterminated}"#).is_none());
    }

    #[test]
    fn split_rejects_stray_closing_brackets() {
        // Negative depth used to be accepted: the stray `]` cancelled the
        // final `}` and the corrupted value round-tripped silently.
        assert!(split_top_level(r#"{"a": 1]}"#).is_none());
        assert!(split_top_level(r#"{"a": [1]], "b": 2}"#).is_none());
        assert!(split_top_level(r#"{"a": }}"#).is_none());
        // Brackets inside strings still don't count.
        assert!(split_top_level(r#"{"a": "]"}"#).is_some());
    }

    #[test]
    fn write_section_preserves_other_sections() {
        let dir = std::env::temp_dir().join(format!("droplet_bench_json_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report.json");
        let _ = std::fs::remove_file(&path);

        write_section(&path, "micro", r#"{"l2": 28.7}"#).unwrap();
        write_section(&path, "sim_replay", r#"{"baseline": 1.5}"#).unwrap();
        write_section(&path, "micro", r#"{"l2": 14.0}"#).unwrap();

        let parts = split_top_level(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0], ("micro".into(), r#"{"l2": 14.0}"#.into()));
        assert_eq!(
            parts[1],
            ("sim_replay".into(), r#"{"baseline": 1.5}"#.into())
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn object_and_quote_render() {
        let o = object(&[("a".into(), "1".into()), ("b\"c".into(), quote("v\n"))]);
        assert_eq!(o, r#"{"a": 1, "b\"c": "v\n"}"#);
    }
}
