//! An offline, dependency-free subset of the [proptest](https://proptest-rs.github.io/proptest)
//! API, just large enough for this workspace's property tests.
//!
//! The build environment has no network access and no crates.io mirror, so
//! the real crate cannot be fetched; this shim keeps the `proptest!` tests
//! compiling and running. Semantics implemented:
//!
//! - `proptest! { #![proptest_config(...)] #[test] fn f(x in strat, ...) {..} }`
//!   runs each test body for `cases` deterministically-seeded random inputs
//!   (seed = FNV-1a of the test name, so failures reproduce across runs).
//! - Strategies: integer ranges (`0u64..64`, `1usize..16`), inclusive
//!   ranges, tuples of strategies, and `prop::collection::vec(elem, sizes)`.
//! - `prop_assert!` / `prop_assert_eq!` report the failing case index.
//! - Seed reproducibility: every test's stream is perturbed by the
//!   [`SEED_ENV`] environment variable (`DROPLET_TEST_SEED`, decimal or
//!   `0x`-prefixed hex). Failure messages print the effective seed, so any
//!   failing run — including ones under a non-zero exploration seed — can be
//!   replayed exactly by exporting that value.
//!
//! Not implemented: shrinking, `prop_oneof`, mapped/filtered strategies,
//! persistence files. Failing inputs are printed instead of shrunk.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Environment variable perturbing every property-test stream. `0` (or
/// unset) is the default deterministic stream; any other value explores a
/// different deterministic input sequence.
pub const SEED_ENV: &str = "DROPLET_TEST_SEED";

/// Parses a seed value as decimal or `0x`-prefixed hex.
pub fn parse_seed(s: &str) -> Option<u64> {
    let s = s.trim();
    match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => s.parse().ok(),
    }
}

/// The effective seed from [`SEED_ENV`], or 0 when unset/unparseable.
pub fn env_seed() -> u64 {
    std::env::var(SEED_ENV)
        .ok()
        .and_then(|v| parse_seed(&v))
        .unwrap_or(0)
}

/// Deterministic per-test random stream (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream from the test's name — XOR-perturbed by
    /// [`env_seed`], so each test gets a stable, independent sequence that
    /// `DROPLET_TEST_SEED` can both vary and reproduce.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::from_seed(h ^ env_seed())
    }

    /// Seeds the stream from an explicit value (the conformance fuzzer's
    /// entry point: it reports this seed on divergence).
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw below `n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty strategy range");
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }
}

/// Run-count configuration; mirrors the real crate's field of the same name.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default (256) is tuned for shrinking support; without
        // shrinking we keep runtimes tighter.
        ProptestConfig { cases: 64 }
    }
}

/// A failed `prop_assert*` inside a test body.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Wraps a failure message.
    pub fn new(msg: String) -> Self {
        TestCaseError(msg)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as u64) - (lo as u64) + 1;
                lo + rng.below(span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Collection strategies (`prop::collection::*`).
pub mod prop {
    /// `vec(element, sizes)` — random-length vectors.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// Strategy for `Vec<S::Value>` with length drawn from `sizes`.
        pub struct VecStrategy<S> {
            elem: S,
            sizes: Range<usize>,
        }

        /// Vectors of values drawn from `elem`, with a length in `sizes`.
        pub fn vec<S: Strategy>(elem: S, sizes: Range<usize>) -> VecStrategy<S> {
            VecStrategy { elem, sizes }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let len = self.sizes.sample(rng);
                (0..len).map(|_| self.elem.sample(rng)).collect()
            }
        }
    }
}

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{env_seed, parse_seed, SEED_ENV};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy, TestCaseError, TestRng};
}

/// Declares property tests; see the crate docs for the supported subset.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(stringify!($name));
            for case in 0..config.cases {
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $( let $arg = $crate::Strategy::sample(&($strat), &mut rng); )+
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{} (DROPLET_TEST_SEED={}; set it to reproduce): {}",
                        stringify!($name),
                        case,
                        config.cases,
                        $crate::env_seed(),
                        e
                    );
                }
            }
        }
    )*};
}

/// Fails the enclosing property test if the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::new(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::new(format!($($fmt)+)));
        }
    };
}

/// Fails the enclosing property test if the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return ::std::result::Result::Err($crate::TestCaseError::new(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                lhs,
                rhs
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return ::std::result::Result::Err($crate::TestCaseError::new(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                lhs,
                rhs
            )));
        }
    }};
}

/// Fails the enclosing property test if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs == rhs {
            return ::std::result::Result::Err($crate::TestCaseError::new(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                lhs
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let a: Vec<u64> = {
            let mut r = TestRng::for_test("t");
            (0..4).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_test("t");
            (0..4).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = TestRng::for_test("u");
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn strategies_respect_bounds() {
        let mut rng = TestRng::for_test("bounds");
        for _ in 0..200 {
            let x = (3u32..7).sample(&mut rng);
            assert!((3..7).contains(&x));
            let y = (1usize..=4).sample(&mut rng);
            assert!((1..=4).contains(&y));
            let (a, b) = (0u64..5, 10u64..12).sample(&mut rng);
            assert!(a < 5 && (10..12).contains(&b));
            let v = prop::collection::vec(0u8..4, 2..6).sample(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&e| e < 4));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_runs_and_passes(x in 0u64..100, v in prop::collection::vec(0u32..10, 0..20)) {
            prop_assert!(x < 100);
            prop_assert_eq!(v.len(), v.len());
            prop_assert!(v.iter().all(|&e| e < 10), "element out of range in {:?}", v);
        }
    }

    proptest! {
        #[test]
        fn macro_default_config_runs(x in 0u8..2) {
            prop_assert!(x < 2);
        }
    }

    #[test]
    fn seed_parsing_accepts_decimal_and_hex() {
        assert_eq!(parse_seed("0"), Some(0));
        assert_eq!(parse_seed("12345"), Some(12345));
        assert_eq!(parse_seed("0xdeadbeef"), Some(0xdead_beef));
        assert_eq!(parse_seed("0XFF"), Some(255));
        assert_eq!(parse_seed(" 7 "), Some(7));
        assert_eq!(parse_seed("nope"), None);
        assert_eq!(parse_seed(""), None);
    }

    #[test]
    fn explicit_seed_gives_independent_reproducible_streams() {
        let take = |seed: u64| -> Vec<u64> {
            let mut r = TestRng::from_seed(seed);
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(take(42), take(42));
        assert_ne!(take(42), take(43));
    }

    #[test]
    fn failing_case_reports_index() {
        // Reproduce the macro expansion by hand to keep the failure local.
        let outcome: Result<(), TestCaseError> = (|| {
            prop_assert_eq!(1 + 1, 3, "math broke");
            Ok(())
        })();
        let err = outcome.unwrap_err().to_string();
        assert!(err.contains("math broke"), "{err}");
    }
}
