//! Minimal JSON rendering for journals and manifests.
//!
//! The workspace vendors no JSON library; the bench harness
//! (`droplet-bench::bench_json`) established the house style — hand-rendered
//! objects with string-aware escaping — and this module is the same writer
//! made available below the `droplet` crate so the simulator itself can emit
//! journals. Only rendering lives here; parsing (needed by
//! `droplet-bench-diff` only) stays in the bench crate.

/// Renders a JSON string literal (enough escaping for labels and paths).
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders an object from key/value pairs whose values are already JSON.
pub fn object(pairs: &[(String, String)]) -> String {
    let body = pairs
        .iter()
        .map(|(k, v)| format!("{}: {v}", quote(k)))
        .collect::<Vec<_>>()
        .join(", ");
    format!("{{{body}}}")
}

/// Renders an `f64` as a JSON number: finite values with six decimals,
/// non-finite values (which JSON cannot represent) as `0.0`.
pub fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "0.0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_and_quote_render() {
        let o = object(&[("a".into(), "1".into()), ("b\"c".into(), quote("v\n"))]);
        assert_eq!(o, r#"{"a": 1, "b\"c": "v\n"}"#);
    }

    #[test]
    fn num_handles_non_finite() {
        assert_eq!(num(1.5), "1.500000");
        assert_eq!(num(f64::NAN), "0.0");
        assert_eq!(num(f64::INFINITY), "0.0");
    }
}
