//! **droplet-obs** — the observability layer of the DROPLET simulator.
//!
//! The paper's characterization is fundamentally *time-resolved*: DRAM
//! bandwidth and BPKI (Fig. 15), per-data-type MPKI (Fig. 13), and prefetch
//! accuracy (Fig. 14) all describe phase-heavy graph workloads whose
//! transients an end-of-run aggregate hides. This crate adds three pieces,
//! all **zero-overhead when disabled** (the simulator pays one predictable
//! `Option::is_some` branch per retired op):
//!
//! 1. **Epoch sampler** ([`ObsRecorder`]): every `epoch_ops` retired
//!    operations the simulator snapshots every statistics block it owns
//!    (core progress, per-level cache stats, DRAM traffic, MRB occupancy,
//!    MPP activity, prefetch accuracy counters) into an in-memory ring.
//!    Snapshots are *cumulative* over the measurement window, so the final
//!    snapshot equals the end-of-run [`RunResult`] counters exactly;
//!    per-epoch deltas are derived at render time ([`RunJournal::epochs`]).
//! 2. **Run journal** ([`RunJournal`]): the ring serialized as JSONL — one
//!    self-contained object per epoch — using the same hand-rendered JSON
//!    writer style as `bench_json` (no new dependencies).
//! 3. **Run manifest** ([`RunManifest`]): config hash, workload, warm-up
//!    request/clamp, thread count, seed, and wall time, emitted alongside
//!    every run so `results/*.txt` become reproducible artifacts.
//!
//! Sampling only *reads* simulator statistics — it never touches timing
//! state — so simulation digests are bit-identical with the layer off and
//! on (pinned by `crates/core/tests/demand_path_digests.rs`).
//!
//! [`RunResult`]: https://docs.rs/droplet (crate `droplet`, `system::RunResult`)

pub mod json;

use droplet_cache::{CacheStats, TypedCounter};
use droplet_mem::DramStats;
use droplet_prefetch::MppStats;
use droplet_trace::{Cycle, DataType};
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// A live feed of a run's epoch JSONL lines, for consumers that want the
/// journal *while the run is still simulating* (the `droplet-serve`
/// streaming endpoint) rather than as a [`RunJournal`] at the end.
///
/// The producing [`ObsRecorder`] pushes one rendered line per measurement
/// epoch (warm-up epochs are never streamed — the recorder only streams
/// after [`ObsRecorder::reset`] opens the window); consumers block in
/// [`EpochStream::next_line`] with a cursor. Pushing never touches
/// simulated state, so streamed and unstreamed runs stay bit-identical.
pub struct EpochStream {
    state: Mutex<StreamState>,
    cv: Condvar,
}

#[derive(Default)]
struct StreamState {
    lines: Vec<String>,
    finished: bool,
}

/// Poisoning recovery: an `EpochStream` holds only rendered lines, which
/// are always consistent, so a panicked producer must not wedge readers.
fn stream_lock(m: &Mutex<StreamState>) -> std::sync::MutexGuard<'_, StreamState> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl EpochStream {
    /// A fresh, unfinished stream ready to share with a recorder.
    pub fn new() -> Arc<Self> {
        Arc::new(EpochStream {
            state: Mutex::new(StreamState::default()),
            cv: Condvar::new(),
        })
    }

    /// Appends one rendered JSONL line and wakes blocked readers.
    pub fn push(&self, line: String) {
        let mut s = stream_lock(&self.state);
        s.lines.push(line);
        self.cv.notify_all();
    }

    /// Marks the run over; blocked and future readers past the final line
    /// get `None`. Idempotent.
    pub fn finish(&self) {
        let mut s = stream_lock(&self.state);
        s.finished = true;
        self.cv.notify_all();
    }

    /// The line at `cursor` (0-based), blocking until it is produced.
    /// `None` once the stream is finished and `cursor` is past the end.
    pub fn next_line(&self, cursor: usize) -> Option<String> {
        let mut s = stream_lock(&self.state);
        loop {
            if cursor < s.lines.len() {
                return Some(s.lines[cursor].clone());
            }
            if s.finished {
                return None;
            }
            s = self
                .cv
                .wait(s)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Lines pushed so far.
    pub fn len(&self) -> usize {
        stream_lock(&self.state).lines.len()
    }

    /// Whether no lines have been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether [`EpochStream::finish`] has been called.
    pub fn is_finished(&self) -> bool {
        stream_lock(&self.state).finished
    }
}

impl std::fmt::Debug for EpochStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = stream_lock(&self.state);
        f.debug_struct("EpochStream")
            .field("lines", &s.lines.len())
            .field("finished", &s.finished)
            .finish()
    }
}

/// Configuration of the epoch sampler; `SystemConfig::obs` carries
/// `Option<ObsConfig>` and `None` (the default) disables the layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Retired memory operations per epoch.
    pub epoch_ops: u64,
    /// Ring capacity: oldest epochs are dropped (and counted) beyond this.
    pub max_epochs: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            epoch_ops: 10_000,
            max_epochs: 4096,
        }
    }
}

impl ObsConfig {
    /// A sampler with the given epoch length and the default ring size.
    pub fn every(epoch_ops: u64) -> Self {
        ObsConfig {
            epoch_ops: epoch_ops.max(1),
            ..Self::default()
        }
    }
}

/// One cumulative statistics snapshot (measurement window so far).
///
/// Every field except `cycle` and `mrb_*` is reset at the warm-up boundary
/// together with the simulator's own stats, so snapshots accumulate over
/// the measurement window only; `mrb_inserted`/`mrb_overflowed` count from
/// run start (the MRB has no warm-up reset) and are consumed as deltas.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ObsSnapshot {
    /// Retired memory operations in the window (filled by the recorder).
    pub ops: u64,
    /// Retired instructions in the window (filled by the recorder).
    pub instructions: u64,
    /// Absolute core cycle at the sample (issue clock of the boundary op;
    /// the final flush uses the retire-clock end of run).
    pub cycle: Cycle,
    /// L1D statistics.
    pub l1: CacheStats,
    /// L2 statistics, when an L2 is configured.
    pub l2: Option<CacheStats>,
    /// Shared-LLC statistics.
    pub l3: CacheStats,
    /// DRAM statistics.
    pub dram: DramStats,
    /// MRB occupancy at the sample.
    pub mrb_len: u64,
    /// MRB insertions since run start.
    pub mrb_inserted: u64,
    /// MRB overflows since run start.
    pub mrb_overflowed: u64,
    /// MPP statistics, when the configuration has an MPP.
    pub mpp: Option<MppStats>,
    /// Prefetched lines demanded while on chip (Fig. 14 numerator).
    pub prefetch_useful: TypedCounter,
    /// Prefetched lines evicted off-chip unused.
    pub prefetch_wasted: TypedCounter,
    /// Dirty write-backs issued to DRAM.
    pub writebacks: u64,
}

/// The in-simulator epoch sampler: counts retired ops and keeps the
/// snapshot ring. Owned by `System` when `SystemConfig::obs` is set.
#[derive(Debug, Clone)]
pub struct ObsRecorder {
    cfg: ObsConfig,
    window_start: Cycle,
    baseline: ObsSnapshot,
    ops_in_epoch: u64,
    total_ops: u64,
    instructions: u64,
    dropped: u64,
    ring: VecDeque<ObsSnapshot>,
    /// Live line feed, when a consumer subscribed; lines flow only inside
    /// the measurement window (`in_window`), so warm-up epochs — which
    /// [`ObsRecorder::reset`] discards — are never streamed.
    stream: Option<Arc<EpochStream>>,
    in_window: bool,
}

impl ObsRecorder {
    /// A fresh recorder; the window opens at cycle 0 until `reset`.
    pub fn new(cfg: ObsConfig) -> Self {
        ObsRecorder {
            cfg: ObsConfig {
                epoch_ops: cfg.epoch_ops.max(1),
                max_epochs: cfg.max_epochs.max(1),
            },
            window_start: 0,
            baseline: ObsSnapshot::default(),
            ops_in_epoch: 0,
            total_ops: 0,
            instructions: 0,
            dropped: 0,
            ring: VecDeque::new(),
            stream: None,
            in_window: false,
        }
    }

    /// The sampler configuration.
    pub fn config(&self) -> ObsConfig {
        self.cfg
    }

    /// Subscribes `stream` to this recorder: every measurement-window epoch
    /// is rendered to JSONL and pushed as it is recorded. Reading simulator
    /// statistics is all the recorder ever does, so a subscribed run stays
    /// bit-identical to an unsubscribed one.
    pub fn set_stream(&mut self, stream: Arc<EpochStream>) {
        self.stream = Some(stream);
    }

    /// Counts one retired op worth `instructions` instructions; returns
    /// `true` when the epoch boundary is reached and the caller must
    /// `record` a snapshot.
    #[inline]
    pub fn on_op(&mut self, instructions: u64) -> bool {
        self.total_ops += 1;
        self.instructions += instructions;
        self.ops_in_epoch += 1;
        self.ops_in_epoch >= self.cfg.epoch_ops
    }

    /// Ops retired since the last recorded epoch (a non-zero value at end
    /// of run means a final partial epoch must be flushed).
    pub fn pending_ops(&self) -> u64 {
        self.ops_in_epoch
    }

    /// Stores `snap` as the next epoch, filling in the recorder-side op and
    /// instruction counts and evicting the oldest epoch when the ring is
    /// full.
    pub fn record(&mut self, mut snap: ObsSnapshot) {
        snap.ops = self.total_ops;
        snap.instructions = self.instructions;
        if let (Some(stream), true) = (&self.stream, self.in_window) {
            let prev = self.ring.back().unwrap_or(&self.baseline);
            let index = (self.dropped as usize) + self.ring.len();
            let m = EpochMetrics::derive(index, prev, &snap);
            stream.push(m.to_json(&snap, self.window_start));
        }
        if self.ring.len() == self.cfg.max_epochs {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(snap);
        self.ops_in_epoch = 0;
    }

    /// Opens the measurement window: drops warm-up epochs and anchors all
    /// future deltas at `baseline` (the just-reset statistics).
    pub fn reset(&mut self, baseline: ObsSnapshot) {
        self.window_start = baseline.cycle;
        self.baseline = ObsSnapshot {
            ops: 0,
            instructions: 0,
            ..baseline
        };
        self.ops_in_epoch = 0;
        self.total_ops = 0;
        self.instructions = 0;
        self.dropped = 0;
        self.ring.clear();
        self.in_window = true;
    }

    /// Closes the run at `snap` (taken at the end-of-run retire cycle):
    /// records a final partial epoch when ops are pending, otherwise
    /// extends the last epoch's cycle to the true end of the run so the
    /// journal's final window spans exactly the measurement window.
    pub fn flush_final(&mut self, snap: ObsSnapshot) {
        if self.ops_in_epoch > 0 {
            self.record(snap);
        } else if let Some(last) = self.ring.back_mut() {
            last.cycle = last.cycle.max(snap.cycle);
            last.dram = snap.dram;
        }
    }

    /// Consumes the recorder into a serializable journal, finishing any
    /// subscribed [`EpochStream`] so blocked readers drain and return.
    pub fn into_journal(self) -> RunJournal {
        if let Some(stream) = &self.stream {
            stream.finish();
        }
        RunJournal {
            epoch_ops: self.cfg.epoch_ops,
            window_start: self.window_start,
            dropped_epochs: self.dropped,
            baseline: self.baseline,
            samples: self.ring.into_iter().collect(),
        }
    }
}

/// Derived per-epoch metrics (deltas between consecutive snapshots).
#[derive(Debug, Clone, Copy)]
pub struct EpochMetrics {
    /// Epoch index (0-based over the *kept* ring).
    pub index: usize,
    /// Cumulative window ops at epoch end.
    pub ops: u64,
    /// Absolute cycle at epoch end.
    pub cycle: Cycle,
    /// Epoch IPC (delta instructions / delta cycles).
    pub ipc: f64,
    /// Epoch MPKI at each private/shared level: [L1, L2, LLC].
    pub mpki: [f64; 3],
    /// Epoch LLC demand MPKI by data type [structure, property, intermediate].
    pub llc_mpki_by_type: [f64; 3],
    /// Epoch L2 demand hit rate.
    pub l2_hit_rate: f64,
    /// Epoch DRAM bandwidth utilization (delta bus-busy / delta cycles).
    pub bw_util: f64,
    /// Epoch bus accesses per kilo instruction.
    pub bpki: f64,
    /// Epoch mean DRAM queue delay per access.
    pub avg_queue_delay: f64,
    /// MRB occupancy at the sample.
    pub mrb_len: u64,
    /// MRB overflows during the epoch.
    pub mrb_overflows: u64,
    /// Epoch prefetch accuracy by data type (useful / (useful + wasted)).
    pub pf_accuracy_by_type: [f64; 3],
    /// Epoch prefetch coverage: first-uses / (first-uses + LLC demand misses).
    pub pf_coverage: f64,
    /// Epoch prefetch timeliness: 1 − late-hits / first-uses.
    pub pf_timeliness: f64,
    /// Epoch DRAM demand bursts.
    pub dram_demand: u64,
    /// Epoch DRAM prefetch bursts.
    pub dram_prefetch: u64,
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

fn per_kilo(num: u64, instructions: u64) -> f64 {
    if instructions == 0 {
        0.0
    } else {
        num as f64 * 1000.0 / instructions as f64
    }
}

fn tc_delta(cur: &TypedCounter, prev: &TypedCounter, dt: DataType) -> u64 {
    cur.get(dt) - prev.get(dt)
}

fn first_uses_and_late(s: &ObsSnapshot) -> (u64, u64) {
    let levels = [Some(&s.l1), s.l2.as_ref(), Some(&s.l3)];
    let mut first = 0;
    let mut late = 0;
    for l in levels.into_iter().flatten() {
        first += l.prefetch_first_uses.total();
        late += l.late_prefetch_hits.total();
    }
    (first, late)
}

impl EpochMetrics {
    fn derive(index: usize, prev: &ObsSnapshot, cur: &ObsSnapshot) -> Self {
        let insns = cur.instructions - prev.instructions;
        let cycles = cur.cycle.saturating_sub(prev.cycle);
        let miss = |c: &CacheStats, p: &CacheStats| {
            (c.demand_accesses.total() - c.demand_hits.total())
                - (p.demand_accesses.total() - p.demand_hits.total())
        };
        let l2_miss = match (&cur.l2, &prev.l2) {
            (Some(c), Some(p)) => miss(c, p),
            _ => 0,
        };
        let llc_miss_cur = cur.l3.demand_misses();
        let llc_miss_prev = prev.l3.demand_misses();
        let mut llc_by_type = [0.0; 3];
        let mut acc_by_type = [0.0; 3];
        for dt in DataType::ALL {
            llc_by_type[dt.index()] = per_kilo(tc_delta(&llc_miss_cur, &llc_miss_prev, dt), insns);
            let useful = tc_delta(&cur.prefetch_useful, &prev.prefetch_useful, dt);
            let wasted = tc_delta(&cur.prefetch_wasted, &prev.prefetch_wasted, dt);
            acc_by_type[dt.index()] = ratio(useful, useful + wasted);
        }
        let (first_c, late_c) = first_uses_and_late(cur);
        let (first_p, late_p) = first_uses_and_late(prev);
        let (first, late) = (first_c - first_p, late_c - late_p);
        let llc_misses = llc_miss_cur.total() - llc_miss_prev.total();
        let dram_demand = cur.dram.demand_accesses - prev.dram.demand_accesses;
        let dram_prefetch = cur.dram.prefetch_accesses - prev.dram.prefetch_accesses;
        let bursts = dram_demand + dram_prefetch;
        let l2_acc = |s: &Option<CacheStats>, f: fn(&CacheStats) -> u64| s.as_ref().map_or(0, f);
        EpochMetrics {
            index,
            ops: cur.ops,
            cycle: cur.cycle,
            ipc: ratio(insns, cycles),
            mpki: [
                per_kilo(miss(&cur.l1, &prev.l1), insns),
                per_kilo(l2_miss, insns),
                per_kilo(llc_misses, insns),
            ],
            llc_mpki_by_type: llc_by_type,
            l2_hit_rate: ratio(
                l2_acc(&cur.l2, |s| s.demand_hits.total())
                    - l2_acc(&prev.l2, |s| s.demand_hits.total()),
                l2_acc(&cur.l2, |s| s.demand_accesses.total())
                    - l2_acc(&prev.l2, |s| s.demand_accesses.total()),
            ),
            bw_util: ratio(cur.dram.bus_busy_cycles - prev.dram.bus_busy_cycles, cycles).min(1.0),
            bpki: per_kilo(bursts, insns),
            avg_queue_delay: ratio(
                cur.dram.queue_delay_cycles - prev.dram.queue_delay_cycles,
                bursts,
            ),
            mrb_len: cur.mrb_len,
            // Saturating: the MRB counters are lifetime (never reset), so
            // the baseline can exceed a synthetic snapshot's value.
            mrb_overflows: cur.mrb_overflowed.saturating_sub(prev.mrb_overflowed),
            pf_accuracy_by_type: acc_by_type,
            pf_coverage: ratio(first, first + llc_misses),
            pf_timeliness: if first == 0 {
                0.0
            } else {
                1.0 - ratio(late, first)
            },
            dram_demand,
            dram_prefetch,
        }
    }

    /// One JSONL line for this epoch, with cumulative exact counters
    /// (`cum_*`) alongside the derived per-epoch metrics.
    pub fn to_json(&self, cum: &ObsSnapshot, window_start: Cycle) -> String {
        use json::{num, object};
        object(&[
            ("epoch".into(), self.index.to_string()),
            ("ops".into(), self.ops.to_string()),
            ("cycle".into(), self.cycle.to_string()),
            ("ipc".into(), num(self.ipc)),
            ("l1_mpki".into(), num(self.mpki[0])),
            ("l2_mpki".into(), num(self.mpki[1])),
            ("llc_mpki".into(), num(self.mpki[2])),
            (
                "llc_mpki_structure".into(),
                num(self.llc_mpki_by_type[DataType::Structure.index()]),
            ),
            (
                "llc_mpki_property".into(),
                num(self.llc_mpki_by_type[DataType::Property.index()]),
            ),
            (
                "llc_mpki_intermediate".into(),
                num(self.llc_mpki_by_type[DataType::Intermediate.index()]),
            ),
            ("l2_hit_rate".into(), num(self.l2_hit_rate)),
            ("bw_util".into(), num(self.bw_util)),
            (
                "bw_util_cum".into(),
                num(cum.dram.window_utilization(window_start, cum.cycle)),
            ),
            ("bpki".into(), num(self.bpki)),
            ("avg_queue_delay".into(), num(self.avg_queue_delay)),
            ("mrb_len".into(), self.mrb_len.to_string()),
            ("mrb_overflows".into(), self.mrb_overflows.to_string()),
            (
                "pf_accuracy_structure".into(),
                num(self.pf_accuracy_by_type[DataType::Structure.index()]),
            ),
            (
                "pf_accuracy_property".into(),
                num(self.pf_accuracy_by_type[DataType::Property.index()]),
            ),
            ("pf_coverage".into(), num(self.pf_coverage)),
            ("pf_timeliness".into(), num(self.pf_timeliness)),
            ("dram_demand".into(), self.dram_demand.to_string()),
            ("dram_prefetch".into(), self.dram_prefetch.to_string()),
            ("cum_instructions".into(), cum.instructions.to_string()),
            (
                "cum_cycles".into(),
                cum.cycle.saturating_sub(window_start).to_string(),
            ),
            (
                "cum_dram_bus_busy".into(),
                cum.dram.bus_busy_cycles.to_string(),
            ),
            ("cum_writebacks".into(), cum.writebacks.to_string()),
        ])
    }
}

/// The serializable result of one sampled run: cumulative snapshots plus
/// the window anchor needed to derive per-epoch deltas.
#[derive(Debug, Clone)]
pub struct RunJournal {
    /// Retired ops per epoch.
    pub epoch_ops: u64,
    /// Absolute cycle at which the measurement window opened.
    pub window_start: Cycle,
    /// Epochs evicted from the ring (0 unless the run exceeded
    /// `max_epochs` × `epoch_ops` retired ops).
    pub dropped_epochs: u64,
    /// The statistics baseline at the window open (all-zero except the MRB
    /// lifetime counters).
    pub baseline: ObsSnapshot,
    /// Cumulative snapshots, one per epoch, oldest first.
    pub samples: Vec<ObsSnapshot>,
}

impl RunJournal {
    /// Number of recorded epochs (the final one may be partial).
    pub fn epoch_count(&self) -> usize {
        self.samples.len()
    }

    /// The final cumulative snapshot — equal to the end-of-run statistics.
    pub fn final_snapshot(&self) -> Option<&ObsSnapshot> {
        self.samples.last()
    }

    /// Derived per-epoch metrics, oldest first.
    pub fn epochs(&self) -> Vec<EpochMetrics> {
        let mut prev = &self.baseline;
        let mut out = Vec::with_capacity(self.samples.len());
        for (i, s) in self.samples.iter().enumerate() {
            out.push(EpochMetrics::derive(i, prev, s));
            prev = s;
        }
        out
    }

    /// End-of-run bandwidth utilization over the corrected window — the
    /// same value `RunResult::bandwidth_utilization` reports.
    pub fn final_bandwidth_utilization(&self) -> f64 {
        self.final_snapshot().map_or(0.0, |s| {
            s.dram.window_utilization(self.window_start, s.cycle)
        })
    }

    /// Serializes the journal as JSONL: one epoch object per line (see
    /// DESIGN.md §13 for the schema). The manifest is *not* included;
    /// callers writing a journal file prepend it as a `{"manifest": …}`
    /// line so the artifact is self-describing.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let mut prev = &self.baseline;
        for (i, s) in self.samples.iter().enumerate() {
            let m = EpochMetrics::derive(i, prev, s);
            out.push_str(&m.to_json(s, self.window_start));
            out.push('\n');
            prev = s;
        }
        out
    }
}

/// Reproducibility manifest emitted alongside every run.
#[derive(Debug, Clone, Default)]
pub struct RunManifest {
    /// FNV-1a hash over the system configuration (observability excluded,
    /// so the hash identifies the *simulated* machine).
    pub config_hash: u64,
    /// Prefetcher configuration name.
    pub prefetcher: String,
    /// Per-level replacement policies, L1/L2/L3 (e.g. "LRU/LRU/SHiP";
    /// a removed L2 renders as "-").
    pub policies: String,
    /// Workload label ("PR-kron"), when the caller knows it.
    pub workload: Option<String>,
    /// Trace length in ops.
    pub trace_ops: u64,
    /// Warm-up ops the caller requested.
    pub warmup_requested: u64,
    /// Warm-up ops actually applied after the half-trace clamp.
    pub warmup_applied: u64,
    /// Whether the clamp changed the request — a half-warm run.
    pub warmup_clamped: bool,
    /// Absolute cycle at which the measurement window opened.
    pub warmup_boundary_cycle: Cycle,
    /// Worker-pool width, when the caller ran under a pool.
    pub threads: Option<usize>,
    /// `DROPLET_TEST_SEED`, when set.
    pub seed: Option<u64>,
    /// Sampler epoch length, when observability was enabled.
    pub epoch_ops: Option<u64>,
    /// Recorded epoch count, when observability was enabled.
    pub epochs: Option<u64>,
    /// Wall-clock milliseconds of the run (not deterministic; excluded
    /// from digests and determinism comparisons).
    pub wall_ms: f64,
    /// For forked runs: the parent snapshot's config hash. `None` for a
    /// from-scratch run — the field keeps fork and full journals
    /// distinguishable in `droplet-bench-diff`.
    pub forked_from: Option<u64>,
    /// For forked runs: the warm-up op count inherited from the shared
    /// snapshot.
    pub warmup_shared: Option<u64>,
    /// Bundles tracked by the driver's trace cache (resident + spilled),
    /// when the driver runs one.
    pub trace_cache_len: Option<u64>,
    /// Resident (non-spilled) trace-op bytes in the driver's trace cache.
    pub trace_cache_bytes: Option<u64>,
}

fn opt_json<T: ToString>(v: &Option<T>, quote_it: bool) -> String {
    match v {
        Some(x) if quote_it => json::quote(&x.to_string()),
        Some(x) => x.to_string(),
        None => "null".to_string(),
    }
}

impl RunManifest {
    /// Renders the manifest as one JSON object.
    pub fn render_json(&self) -> String {
        json::object(&[
            (
                "config_hash".into(),
                json::quote(&format!("{:016x}", self.config_hash)),
            ),
            ("prefetcher".into(), json::quote(&self.prefetcher)),
            ("policies".into(), json::quote(&self.policies)),
            ("workload".into(), opt_json(&self.workload, true)),
            ("trace_ops".into(), self.trace_ops.to_string()),
            ("warmup_requested".into(), self.warmup_requested.to_string()),
            ("warmup_applied".into(), self.warmup_applied.to_string()),
            ("warmup_clamped".into(), self.warmup_clamped.to_string()),
            (
                "warmup_boundary_cycle".into(),
                self.warmup_boundary_cycle.to_string(),
            ),
            ("threads".into(), opt_json(&self.threads, false)),
            ("seed".into(), opt_json(&self.seed, false)),
            ("epoch_ops".into(), opt_json(&self.epoch_ops, false)),
            ("epochs".into(), opt_json(&self.epochs, false)),
            ("wall_ms".into(), json::num(self.wall_ms)),
            (
                "forked_from".into(),
                opt_json(&self.forked_from.map(|h| format!("{h:016x}")), true),
            ),
            ("warmup_shared".into(), opt_json(&self.warmup_shared, false)),
            (
                "trace_cache_len".into(),
                opt_json(&self.trace_cache_len, false),
            ),
            (
                "trace_cache_bytes".into(),
                opt_json(&self.trace_cache_bytes, false),
            ),
        ])
    }
}

/// 64-bit FNV-1a (the workspace's standard digest primitive).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(cycle: Cycle, bus_busy: u64, demand: u64) -> ObsSnapshot {
        let mut s = ObsSnapshot {
            cycle,
            ..ObsSnapshot::default()
        };
        s.dram.bus_busy_cycles = bus_busy;
        s.dram.demand_accesses = demand;
        s.dram.first_request_at = Some(cycle.saturating_sub(100));
        s.dram.last_complete_at = cycle;
        s
    }

    #[test]
    fn recorder_counts_epochs_and_flags_boundaries() {
        let mut r = ObsRecorder::new(ObsConfig::every(3));
        assert!(!r.on_op(1));
        assert!(!r.on_op(1));
        assert!(r.on_op(2));
        r.record(snap(100, 8, 1));
        assert_eq!(r.pending_ops(), 0);
        assert!(!r.on_op(1));
        assert_eq!(r.pending_ops(), 1);
        let j = r.into_journal();
        assert_eq!(j.epoch_count(), 1);
        assert_eq!(j.samples[0].ops, 3);
        assert_eq!(j.samples[0].instructions, 4);
    }

    #[test]
    fn reset_drops_warmup_epochs_and_anchors_baseline() {
        let mut r = ObsRecorder::new(ObsConfig::every(1));
        r.on_op(1);
        r.record(snap(50, 8, 1));
        let mut base = snap(200, 0, 0);
        base.mrb_overflowed = 7;
        r.reset(base);
        assert_eq!(r.pending_ops(), 0);
        r.on_op(2);
        let mut cur = snap(300, 16, 2);
        cur.mrb_overflowed = 9;
        r.record(cur);
        let j = r.into_journal();
        assert_eq!(j.window_start, 200);
        assert_eq!(j.epoch_count(), 1);
        assert_eq!(j.baseline.mrb_overflowed, 7);
        let e = &j.epochs()[0];
        assert_eq!(e.ops, 1);
        assert_eq!(e.mrb_overflows, 2);
        assert!((e.bw_util - 16.0 / 100.0).abs() < 1e-12);
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut r = ObsRecorder::new(ObsConfig {
            epoch_ops: 1,
            max_epochs: 2,
        });
        for i in 0..5u64 {
            r.on_op(1);
            r.record(snap(100 * (i + 1), 0, 0));
        }
        let j = r.into_journal();
        assert_eq!(j.epoch_count(), 2);
        assert_eq!(j.dropped_epochs, 3);
        assert_eq!(j.samples[0].ops, 4);
    }

    #[test]
    fn jsonl_emits_one_line_per_epoch() {
        let mut r = ObsRecorder::new(ObsConfig::every(2));
        r.reset(ObsSnapshot::default());
        for i in 0..4u64 {
            if r.on_op(1) {
                r.record(snap(100 * (i + 1), 8 * (i + 1), i + 1));
            }
        }
        let j = r.into_journal();
        let text = j.to_jsonl();
        assert_eq!(text.lines().count(), 2);
        assert!(text.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
        assert!(text.contains("\"bw_util\""));
        assert!(text.contains("\"llc_mpki_structure\""));
    }

    #[test]
    fn manifest_renders_nulls_and_hash() {
        let m = RunManifest {
            config_hash: 0xabcd,
            prefetcher: "DROPLET".into(),
            trace_ops: 10,
            ..RunManifest::default()
        };
        let s = m.render_json();
        assert!(s.contains("\"config_hash\": \"000000000000abcd\""));
        assert!(s.contains("\"workload\": null"));
        assert!(s.contains("\"prefetcher\": \"DROPLET\""));
        assert!(s.contains("\"forked_from\": null"));
        assert!(s.contains("\"warmup_shared\": null"));
    }

    #[test]
    fn manifest_renders_fork_lineage() {
        let m = RunManifest {
            forked_from: Some(0xabcd),
            warmup_shared: Some(4096),
            ..RunManifest::default()
        };
        let s = m.render_json();
        assert!(s.contains("\"forked_from\": \"000000000000abcd\""));
        assert!(s.contains("\"warmup_shared\": 4096"));
    }

    #[test]
    fn stream_receives_window_epochs_only_and_finishes() {
        let stream = EpochStream::new();
        let mut r = ObsRecorder::new(ObsConfig::every(1));
        r.set_stream(Arc::clone(&stream));
        // Warm-up epoch: recorded, but never streamed.
        r.on_op(1);
        r.record(snap(50, 8, 1));
        assert!(stream.is_empty());
        r.reset(snap(100, 0, 0));
        for i in 0..3u64 {
            r.on_op(1);
            r.record(snap(100 * (i + 2), 8 * (i + 1), i + 1));
        }
        assert_eq!(stream.len(), 3);
        let line = stream.next_line(0).unwrap();
        assert!(line.starts_with('{') && line.contains("\"epoch\": 0"));
        assert!(!stream.is_finished());
        let j = r.into_journal();
        assert!(stream.is_finished());
        assert_eq!(stream.len(), j.epoch_count());
        // Streamed lines match the journal's own rendering exactly.
        assert_eq!(
            (0..stream.len())
                .map(|i| stream.next_line(i).unwrap() + "\n")
                .collect::<String>(),
            j.to_jsonl()
        );
        assert_eq!(stream.next_line(3), None);
    }

    #[test]
    fn stream_readers_block_until_push_or_finish() {
        let stream = EpochStream::new();
        let reader = {
            let stream = Arc::clone(&stream);
            std::thread::spawn(move || (stream.next_line(0), stream.next_line(1)))
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        stream.push("{\"epoch\": 0}".to_string());
        stream.finish();
        let (first, second) = reader.join().unwrap();
        assert_eq!(first.as_deref(), Some("{\"epoch\": 0}"));
        assert_eq!(second, None);
    }

    #[test]
    fn fnv1a_matches_reference_vector() {
        // FNV-1a("a") = 0xaf63dc4c8601ec8c
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
