//! Connected components — label propagation with pointer jumping
//! (Shiloach–Vishkin style, as in older GAP releases).
//!
//! Vertices are processed in strictly sequential order each round, which is
//! why the paper observes CC's structure stream to be the most prefetchable
//! of all workloads (100 % structure prefetch accuracy in Fig. 14). The
//! shortcut pass's `comp[comp[u]]` loads create property→property
//! dependency chains on top of the usual structure→property ones.

use crate::mem::{GraphArrays, StructureImage};
use crate::{budget_hit, Algorithm, Digest, TraceBundle};
use droplet_graph::Csr;
use droplet_trace::{AddressSpace, DataType, Tracer, VecTracer};
use std::sync::Arc;

/// Reference CC: returns the component label of every vertex (the minimum
/// vertex id reachable via undirected paths under this iteration scheme).
pub fn reference(g: &Csr) -> Vec<u32> {
    let n = g.num_vertices() as usize;
    let mut comp: Vec<u32> = (0..n as u32).collect();
    let mut changed = true;
    while changed {
        changed = false;
        for u in 0..n as u32 {
            let cu = comp[u as usize];
            for &v in g.neighbors(u) {
                let cv = comp[v as usize];
                if cv < comp[u as usize] {
                    comp[u as usize] = cv;
                    changed = true;
                }
                if cu < cv {
                    comp[v as usize] = comp[v as usize].min(cu);
                    changed = true;
                }
            }
        }
        // Pointer-jumping shortcut.
        for u in 0..n {
            while comp[u] != comp[comp[u] as usize] {
                comp[u] = comp[comp[u] as usize];
            }
        }
    }
    comp
}

/// Traced CC; computes exactly what [`reference`] computes.
pub fn traced(
    g: &Arc<Csr>,
    mut space: AddressSpace,
    arrays: GraphArrays,
    budget: u64,
) -> TraceBundle {
    let n = g.num_vertices() as usize;
    let comp_arr = space.alloc_array("comp", DataType::Property, 4, n as u64);
    let funcmem = StructureImage::new(g.clone(), &arrays);
    let mut t = VecTracer::new(space, budget);

    let mut comp: Vec<u32> = (0..n as u32).collect();
    let mut completed = true;
    let mut changed = true;

    'outer: while changed {
        changed = false;
        // Hooking pass: sequential vertex order, streaming structure reads.
        for u in 0..n as u32 {
            if budget_hit(&t) {
                completed = false;
                break 'outer;
            }
            t.compute(3);
            let o = arrays.load_offsets(&mut t, u);
            let cu_op = t.load(comp_arr.addr_of(u64::from(u)), DataType::Property, None);
            let cu = comp[u as usize];
            let mut producer = Some(o);
            for i in g.edge_range(u) {
                let s = arrays.load_neighbor(&mut t, i, producer.take());
                let v = g.targets()[i as usize];
                let _cv_op = t.load(comp_arr.addr_of(u64::from(v)), DataType::Property, Some(s));
                t.compute(2);
                let cv = comp[v as usize];
                if cv < comp[u as usize] {
                    comp[u as usize] = cv;
                    t.store(
                        comp_arr.addr_of(u64::from(u)),
                        DataType::Property,
                        Some(cu_op),
                    );
                    changed = true;
                }
                if cu < cv {
                    let newv = comp[v as usize].min(cu);
                    if newv != comp[v as usize] {
                        comp[v as usize] = newv;
                        t.store(comp_arr.addr_of(u64::from(v)), DataType::Property, Some(s));
                        changed = true;
                    }
                }
            }
        }
        if !completed {
            break;
        }
        // Shortcut pass: comp[comp[u]] — property-to-property chains.
        for u in 0..n {
            if budget_hit(&t) {
                completed = false;
                break 'outer;
            }
            t.compute(2);
            let c1 = t.load(comp_arr.addr_of(u as u64), DataType::Property, None);
            let mut link = c1;
            while comp[u] != comp[comp[u] as usize] {
                let c2 = t.load(
                    comp_arr.addr_of(u64::from(comp[u])),
                    DataType::Property,
                    Some(link),
                );
                comp[u] = comp[comp[u] as usize];
                t.store(comp_arr.addr_of(u as u64), DataType::Property, Some(c2));
                link = c2;
            }
        }
    }

    let digest = Digest::Ints(comp);
    TraceBundle::assemble(
        Algorithm::Cc,
        t,
        funcmem,
        comp_arr.base(),
        4,
        n as u64,
        completed,
        digest,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use droplet_graph::CsrBuilder;

    fn two_components() -> Arc<Csr> {
        // {0,1,2} ring and {3,4} pair, symmetric edges.
        Arc::new(
            CsrBuilder::new(5)
                .edge(0, 1)
                .edge(1, 0)
                .edge(1, 2)
                .edge(2, 1)
                .edge(3, 4)
                .edge(4, 3)
                .build(),
        )
    }

    #[test]
    fn labels_components_by_minimum_id() {
        let g = two_components();
        let c = reference(&g);
        assert_eq!(c, vec![0, 0, 0, 3, 3]);
    }

    #[test]
    fn traced_matches_reference() {
        let g = two_components();
        let mut space = AddressSpace::new();
        let arrays = GraphArrays::new(&mut space, &g);
        let bundle = traced(&g, space, arrays, u64::MAX);
        assert!(bundle.completed);
        assert_eq!(bundle.digest, Digest::Ints(reference(&g)));
    }

    #[test]
    fn union_find_agrees_on_partitions() {
        // Cross-check against an independent union-find on a random-ish graph.
        let mut b = CsrBuilder::new(30);
        for i in 0..29u32 {
            if i % 3 != 0 {
                b.push_edge(i, i + 1);
                b.push_edge(i + 1, i);
            }
        }
        let g = Arc::new(b.build());
        let c = reference(&g);
        let mut uf: Vec<u32> = (0..30).collect();
        fn find(uf: &mut Vec<u32>, x: u32) -> u32 {
            if uf[x as usize] != x {
                let r = find(uf, uf[x as usize]);
                uf[x as usize] = r;
            }
            uf[x as usize]
        }
        for u in 0..30u32 {
            for &v in g.neighbors(u) {
                let (ru, rv) = (find(&mut uf, u), find(&mut uf, v));
                if ru != rv {
                    uf[ru.max(rv) as usize] = ru.min(rv);
                }
            }
        }
        for u in 0..30u32 {
            for v in 0..30u32 {
                let same_uf = find(&mut uf, u) == find(&mut uf, v);
                let same_cc = c[u as usize] == c[v as usize];
                assert_eq!(same_uf, same_cc, "vertices {u},{v}");
            }
        }
    }

    #[test]
    fn isolated_vertices_keep_their_own_label() {
        let g = Arc::new(CsrBuilder::new(3).edge(0, 1).edge(1, 0).build());
        assert_eq!(reference(&g), vec![0, 0, 2]);
    }

    #[test]
    fn shortcut_pass_creates_property_property_chains() {
        // Vertex 2 hooks 3 onto itself *before* its own label drops to 0,
        // leaving comp[3] = 2 with comp[2] = 0 — the shortcut pass must
        // pointer-jump through comp[comp[3]].
        let mut b = CsrBuilder::new(4);
        b.push_edge(2, 3);
        b.push_edge(2, 0);
        let g = Arc::new(b.build());
        let mut space = AddressSpace::new();
        let arrays = GraphArrays::new(&mut space, &g);
        let bundle = traced(&g, space, arrays, u64::MAX);
        let mut prop_prop = 0;
        for (i, op) in bundle.ops.iter().enumerate() {
            if op.is_load() && op.dtype() == DataType::Property {
                if let Some(back) = op.producer_back() {
                    let prod = &bundle.ops[i - back as usize];
                    if prod.is_load() && prod.dtype() == DataType::Property {
                        prop_prop += 1;
                    }
                }
            }
        }
        assert!(prop_prop > 0, "no comp[comp[u]] chains traced");
    }
}
