//! Shared graph memory layout for traced workloads: the CSR arrays placed
//! in the typed address space, plus the functional structure image the MPP
//! scans.

use droplet_graph::Csr;
use droplet_trace::{
    AddressSpace, ArrayRegion, DataType, FunctionalMemory, OpId, Tracer, VirtAddr,
};
use std::sync::Arc;

/// The CSR arrays of one workload, placed via the data-aware allocator.
///
/// `offsets` is *intermediate* data and `neighbors` is *structure* data per
/// the paper's taxonomy (Section II-A). Weighted graphs use 8-byte structure
/// elements (neighbor ID + weight packed, matching the paper's description
/// and its 8 B scan granularity for weighted graphs).
#[derive(Debug, Clone)]
pub struct GraphArrays {
    /// Offset-pointer array: `n + 1` 8-byte entries.
    pub offsets: ArrayRegion,
    /// Neighbor-ID array: `m` elements of 4 B (unweighted) or 8 B (weighted).
    pub neighbors: ArrayRegion,
}

impl GraphArrays {
    /// Allocates the CSR arrays for `g` in `space`.
    pub fn new(space: &mut AddressSpace, g: &Csr) -> Self {
        let elem = if g.is_weighted() { 8 } else { 4 };
        let offsets = space.alloc_array(
            "offsets",
            DataType::Intermediate,
            8,
            u64::from(g.num_vertices()) + 1,
        );
        let neighbors = space.alloc_array("neighbors", DataType::Structure, elem, g.num_edges());
        GraphArrays { offsets, neighbors }
    }

    /// Structure element size (the MPP's scan granularity): 4 or 8 bytes.
    pub fn scan_granularity(&self) -> u64 {
        self.neighbors.elem_bytes()
    }

    /// Emits the offsets load for vertex `u` and returns its op id.
    /// Models the single 8 B load that fetches `offsets[u]` (its neighbor
    /// `offsets[u+1]` almost always shares the cacheline and stays in a
    /// register in real code).
    pub fn load_offsets(&self, t: &mut impl Tracer, u: u32) -> OpId {
        t.load(
            self.offsets.addr_of(u64::from(u)),
            DataType::Intermediate,
            None,
        )
    }

    /// Emits the structure load for edge index `i`. Only the first load of
    /// a vertex's neighbor list carries the offsets-producer link; the rest
    /// advance a register-resident index.
    pub fn load_neighbor(&self, t: &mut impl Tracer, i: u64, producer: Option<OpId>) -> OpId {
        t.load(self.neighbors.addr_of(i), DataType::Structure, producer)
    }
}

/// One decodable structure segment: a region plus the CSR whose neighbor
/// IDs it holds.
#[derive(Debug, Clone)]
struct Segment {
    region: ArrayRegion,
    csr: Arc<Csr>,
}

/// Functional view of the structure array(s) for the MPP's PAG.
///
/// Workloads that keep a second neighbor-ID array — direction-optimizing
/// BFS scans the transpose during bottom-up steps — register it as an
/// extra segment so the PAG can decode those cachelines too.
#[derive(Debug, Clone)]
pub struct StructureImage {
    segments: Vec<Segment>,
}

impl StructureImage {
    /// Creates the image for `g` laid out as `arrays`.
    pub fn new(csr: Arc<Csr>, arrays: &GraphArrays) -> Self {
        StructureImage {
            segments: vec![Segment {
                region: arrays.neighbors.clone(),
                csr,
            }],
        }
    }

    /// Registers an additional structure region holding `csr`'s targets.
    pub fn push_segment(&mut self, region: ArrayRegion, csr: Arc<Csr>) {
        self.segments.push(Segment { region, csr });
    }

    /// The underlying graph of the primary segment.
    pub fn csr(&self) -> &Arc<Csr> {
        &self.segments[0].csr
    }

    /// The primary structure region.
    pub fn neighbors(&self) -> &ArrayRegion {
        &self.segments[0].region
    }
}

impl FunctionalMemory for StructureImage {
    fn neighbor_id_at(&self, addr: VirtAddr) -> Option<u32> {
        for seg in &self.segments {
            if let Some(i) = seg.region.index_of(addr) {
                if addr != seg.region.addr_of(i) {
                    return None; // element-misaligned scan slot
                }
                return seg.csr.targets().get(i as usize).copied();
            }
        }
        None
    }

    fn scan_granularity(&self) -> u64 {
        self.segments[0].region.elem_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use droplet_graph::CsrBuilder;
    use droplet_trace::LINE_BYTES;

    fn setup() -> (Arc<Csr>, AddressSpace, GraphArrays) {
        let g = Arc::new(
            CsrBuilder::new(6)
                .edge(0, 1)
                .edge(0, 2)
                .edge(0, 5)
                .edge(1, 3)
                .edge(2, 4)
                .build(),
        );
        let mut space = AddressSpace::new();
        let arrays = GraphArrays::new(&mut space, &g);
        (g, space, arrays)
    }

    #[test]
    fn arrays_are_typed_correctly() {
        let (_, space, arrays) = setup();
        assert_eq!(
            space.data_type(arrays.offsets.base()),
            Some(DataType::Intermediate)
        );
        assert_eq!(
            space.data_type(arrays.neighbors.base()),
            Some(DataType::Structure)
        );
        assert_eq!(arrays.scan_granularity(), 4);
    }

    #[test]
    fn weighted_graphs_use_8_byte_structure_elements() {
        let mut b = CsrBuilder::new(3);
        b.push_weighted_edge(0, 1, 5);
        let g = b.build();
        let mut space = AddressSpace::new();
        let arrays = GraphArrays::new(&mut space, &g);
        assert_eq!(arrays.scan_granularity(), 8);
    }

    #[test]
    fn structure_image_decodes_neighbor_ids() {
        let (g, _, arrays) = setup();
        let img = StructureImage::new(g.clone(), &arrays);
        // targets = [1, 2, 5, 3, 4] in CSR order.
        assert_eq!(img.neighbor_id_at(arrays.neighbors.addr_of(0)), Some(1));
        assert_eq!(img.neighbor_id_at(arrays.neighbors.addr_of(2)), Some(5));
        assert_eq!(img.neighbor_id_at(arrays.neighbors.addr_of(4)), Some(4));
        // Misaligned and out-of-region addresses decode to nothing.
        assert_eq!(
            img.neighbor_id_at(arrays.neighbors.base().add_bytes(2)),
            None
        );
        assert_eq!(img.neighbor_id_at(VirtAddr::new(64)), None);
    }

    #[test]
    fn line_scan_collects_all_ids() {
        let (g, _, arrays) = setup();
        let img = StructureImage::new(g, &arrays);
        let ids = img.neighbor_ids_in_line(arrays.neighbors.base());
        assert_eq!(ids, vec![1, 2, 5, 3, 4]); // all fit in the first line
        assert_eq!(
            img.neighbor_ids_in_line(arrays.neighbors.base().add_bytes(LINE_BYTES)),
            Vec::<u32>::new()
        );
    }
}
