//! The five GAP-benchmark workloads (paper Table II) in two forms each:
//! a *reference* implementation (pure function of the graph, used by the
//! correctness tests) and a *traced* implementation that computes the same
//! result while emitting a data-type-tagged memory-operation stream with
//! explicit load-load producer links.
//!
//! Tracing covers the paper's region of interest: the iterative kernel.
//! Graph loading and array initialization happen functionally but emit no
//! ops, mirroring the paper's methodology of running the graph-reading phase
//! in cache-warm-up mode and collecting statistics inside the marked ROI.
//!
//! # Example
//!
//! ```
//! use droplet_gap::{Algorithm, TraceBundle};
//! use droplet_graph::{Dataset, DatasetScale};
//! use std::sync::Arc;
//!
//! let g = Arc::new(Dataset::Kron.build(DatasetScale::Tiny));
//! let bundle: TraceBundle = Algorithm::Pr.trace(&g, u64::MAX);
//! assert!(!bundle.ops.is_empty());
//! assert!(bundle.completed);
//! ```

pub mod bc;
pub mod bfs;
pub mod cc;
pub mod mem;
pub mod pr;
pub mod sssp;

pub use mem::{GraphArrays, StructureImage};

use droplet_graph::Csr;
use droplet_trace::{AddressSpace, MemOp, Tracer, VecTracer, VirtAddr};
use std::sync::Arc;

/// The five GAP algorithms (paper Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Betweenness centrality (Brandes, depth-synchronized).
    Bc,
    /// Breadth-first search (direction-optimizing, parent array).
    Bfs,
    /// PageRank (pull-style over CSR neighbor lists).
    Pr,
    /// Single-source shortest paths (delta-stepping buckets).
    Sssp,
    /// Connected components (label propagation + pointer jumping).
    Cc,
}

impl Algorithm {
    /// All five algorithms in the paper's figure order.
    pub const ALL: [Algorithm; 5] = [
        Algorithm::Bc,
        Algorithm::Bfs,
        Algorithm::Pr,
        Algorithm::Sssp,
        Algorithm::Cc,
    ];

    /// The short name used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Bc => "BC",
            Algorithm::Bfs => "BFS",
            Algorithm::Pr => "PR",
            Algorithm::Sssp => "SSSP",
            Algorithm::Cc => "CC",
        }
    }

    /// Whether the workload requires a weighted graph.
    pub fn needs_weights(self) -> bool {
        matches!(self, Algorithm::Sssp)
    }

    /// Runs the traced implementation with an op `budget`, returning the
    /// trace and its metadata.
    ///
    /// # Panics
    ///
    /// Panics if the graph is missing weights required by the algorithm.
    pub fn trace(self, g: &Arc<Csr>, budget: u64) -> TraceBundle {
        if self.needs_weights() {
            assert!(g.is_weighted(), "{} requires a weighted graph", self.name());
        }
        let mut space = AddressSpace::new();
        let arrays = GraphArrays::new(&mut space, g);
        match self {
            Algorithm::Pr => pr::traced(g, space, arrays, budget),
            Algorithm::Bfs => bfs::traced(g, space, arrays, budget),
            Algorithm::Cc => cc::traced(g, space, arrays, budget),
            Algorithm::Sssp => sssp::traced(g, space, arrays, budget),
            Algorithm::Bc => bc::traced(g, space, arrays, budget),
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A workload digest used to compare traced against reference runs.
#[derive(Debug, Clone, PartialEq)]
pub enum Digest {
    /// Per-vertex integer results (BFS parents, CC labels, SSSP distances).
    Ints(Vec<u32>),
    /// Per-vertex floating-point results (PR scores, BC centrality).
    Floats(Vec<f64>),
}

/// Everything the system simulator needs to replay one workload: the memory
/// trace, the address space that typed it, the functional structure image
/// for the MPP, and the MPP's software-programmed registers.
#[derive(Debug, Clone)]
pub struct TraceBundle {
    /// The algorithm that produced this trace.
    pub algorithm: Algorithm,
    /// The ROI memory operations, in program order.
    pub ops: Vec<MemOp>,
    /// The region-typed address space.
    pub space: AddressSpace,
    /// Total instructions in the ROI (memory + compute).
    pub instructions: u64,
    /// `false` when the op budget cut the run short (fine for timing runs).
    pub completed: bool,
    /// Functional memory for the MPP's PAG scans.
    pub funcmem: StructureImage,
    /// MPP register: base virtual address of the primary property array.
    pub property_base: VirtAddr,
    /// MPP register-adjacent: property element size (4 or 8 bytes).
    pub prop_elem_bytes: u64,
    /// Number of elements in the primary property array.
    pub prop_len: u64,
    /// Additional neighbor-indexed property arrays the MPP may prefetch
    /// (Section VI multi-property support): `(base, elem_bytes, len)`.
    pub extra_property_targets: Vec<(VirtAddr, u64, u64)>,
    /// Functional result for correctness checks.
    pub digest: Digest,
}

impl TraceBundle {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        algorithm: Algorithm,
        tracer: VecTracer,
        funcmem: StructureImage,
        property_base: VirtAddr,
        prop_elem_bytes: u64,
        prop_len: u64,
        completed: bool,
        digest: Digest,
    ) -> Self {
        let instructions = tracer.instructions();
        let (ops, space) = tracer.into_parts();
        TraceBundle {
            algorithm,
            ops,
            space,
            instructions,
            completed,
            funcmem,
            property_base,
            prop_elem_bytes,
            prop_len,
            extra_property_targets: Vec::new(),
            digest,
        }
    }

    /// Declares additional neighbor-indexed property arrays for the MPP
    /// (Section VI multi-property graphs).
    #[must_use]
    pub fn with_extra_property_targets(mut self, targets: Vec<(VirtAddr, u64, u64)>) -> Self {
        self.extra_property_targets = targets;
        self
    }

    /// Memory operations per trace.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// Deterministic source vertex: the highest-out-degree vertex, which is how
/// we guarantee traversals cover a meaningful portion of every dataset.
pub fn pick_source(g: &Csr) -> u32 {
    (0..g.num_vertices())
        .max_by_key(|&u| g.out_degree(u))
        .unwrap_or(0)
}

/// Checks the tracer budget once per outer-loop step.
pub(crate) fn budget_hit(t: &VecTracer) -> bool {
    t.is_full()
}
