//! Betweenness centrality — Brandes' algorithm with depth-synchronized
//! wavefronts (the GAP formulation that avoids predecessor lists by
//! rescanning neighbor lists during the backward pass).
//!
//! Properties: `depth` (the primary property array the MPP targets),
//! `sigma` shortest-path counts, `delta` dependencies, and the output `bc`
//! scores. The wavefront queues are intermediate data.

use crate::mem::{GraphArrays, StructureImage};
use crate::{budget_hit, pick_source, Algorithm, Digest, TraceBundle};
use droplet_graph::Csr;
use droplet_trace::{AddressSpace, DataType, Tracer, VecTracer};
use std::sync::Arc;

/// Unreached depth sentinel.
const UNSEEN: u32 = u32::MAX;

/// Reference single-source Brandes from [`pick_source`]; returns bc scores.
pub fn reference(g: &Csr) -> Vec<f64> {
    let n = g.num_vertices() as usize;
    if n == 0 {
        return Vec::new();
    }
    let src = pick_source(g);
    let (depth, sigma, waves) = forward(g, src);
    backward(g, &depth, &sigma, &waves)
}

fn forward(g: &Csr, src: u32) -> (Vec<u32>, Vec<u64>, Vec<Vec<u32>>) {
    let n = g.num_vertices() as usize;
    let mut depth = vec![UNSEEN; n];
    let mut sigma = vec![0u64; n];
    depth[src as usize] = 0;
    sigma[src as usize] = 1;
    let mut waves = vec![vec![src]];
    loop {
        let d = waves.len() as u32 - 1;
        let mut next = Vec::new();
        for &u in waves.last().unwrap() {
            for &v in g.neighbors(u) {
                let vd = depth[v as usize];
                if vd == UNSEEN {
                    depth[v as usize] = d + 1;
                    sigma[v as usize] = sigma[u as usize];
                    next.push(v);
                } else if vd == d + 1 {
                    sigma[v as usize] += sigma[u as usize];
                }
            }
        }
        if next.is_empty() {
            break;
        }
        waves.push(next);
    }
    (depth, sigma, waves)
}

fn backward(g: &Csr, depth: &[u32], sigma: &[u64], waves: &[Vec<u32>]) -> Vec<f64> {
    let n = g.num_vertices() as usize;
    let mut delta = vec![0.0f64; n];
    let mut bc = vec![0.0f64; n];
    for d in (0..waves.len().saturating_sub(1)).rev() {
        for &u in &waves[d] {
            let mut acc = 0.0;
            for &v in g.neighbors(u) {
                if depth[v as usize] == d as u32 + 1 {
                    acc += (sigma[u as usize] as f64 / sigma[v as usize] as f64)
                        * (1.0 + delta[v as usize]);
                }
            }
            delta[u as usize] = acc;
            if u as usize != waves[0][0] as usize || d != 0 {
                bc[u as usize] += acc;
            }
        }
    }
    // The source accumulates no centrality from its own traversal.
    bc[waves[0][0] as usize] = 0.0;
    bc
}

/// Traced BC; computes exactly what [`reference`] computes.
pub fn traced(
    g: &Arc<Csr>,
    mut space: AddressSpace,
    arrays: GraphArrays,
    budget: u64,
) -> TraceBundle {
    let n = g.num_vertices() as usize;
    let depth_arr = space.alloc_array("depth", DataType::Property, 4, n as u64);
    let sigma_arr = space.alloc_array("sigma", DataType::Property, 8, n as u64);
    let delta_arr = space.alloc_array("delta", DataType::Property, 8, n as u64);
    let bc_arr = space.alloc_array("bc", DataType::Property, 8, n as u64);
    let wave_arr = space.alloc_array(
        "wavefront",
        DataType::Intermediate,
        4,
        (n as u64).max(1) * 2,
    );
    let funcmem = StructureImage::new(g.clone(), &arrays);
    let mut t = VecTracer::new(space, budget);

    let mut bc_scores = vec![0.0f64; n];
    let mut completed = true;

    if n > 0 {
        let src = pick_source(g);
        // ---- Forward pass (traced) ----
        let mut depth = vec![UNSEEN; n];
        let mut sigma = vec![0u64; n];
        depth[src as usize] = 0;
        sigma[src as usize] = 1;
        let mut waves = vec![vec![src]];
        let ring = (n as u64).max(1) * 2;
        let mut wave_pushes = 1u64;
        'fwd: loop {
            let d = waves.len() as u32 - 1;
            let mut next = Vec::new();
            for (idx, &u) in waves.last().unwrap().clone().iter().enumerate() {
                if budget_hit(&t) {
                    completed = false;
                    break 'fwd;
                }
                t.compute(2);
                t.load(
                    wave_arr.addr_of(idx as u64 % ring),
                    DataType::Intermediate,
                    None,
                );
                let o = arrays.load_offsets(&mut t, u);
                let su = t.load(sigma_arr.addr_of(u64::from(u)), DataType::Property, None);
                let mut producer = Some(o);
                for i in g.edge_range(u) {
                    let s = arrays.load_neighbor(&mut t, i, producer.take());
                    let v = g.targets()[i as usize];
                    let dv = t.load(depth_arr.addr_of(u64::from(v)), DataType::Property, Some(s));
                    t.compute(2);
                    let vd = depth[v as usize];
                    if vd == UNSEEN {
                        depth[v as usize] = d + 1;
                        sigma[v as usize] = sigma[u as usize];
                        t.store(
                            depth_arr.addr_of(u64::from(v)),
                            DataType::Property,
                            Some(dv),
                        );
                        t.store(
                            sigma_arr.addr_of(u64::from(v)),
                            DataType::Property,
                            Some(su),
                        );
                        t.store(
                            wave_arr.addr_of(wave_pushes % ring),
                            DataType::Intermediate,
                            None,
                        );
                        wave_pushes += 1;
                        next.push(v);
                    } else if vd == d + 1 {
                        sigma[v as usize] += sigma[u as usize];
                        t.load(sigma_arr.addr_of(u64::from(v)), DataType::Property, Some(s));
                        t.store(
                            sigma_arr.addr_of(u64::from(v)),
                            DataType::Property,
                            Some(su),
                        );
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            waves.push(next);
        }

        // ---- Backward pass (traced) ----
        if completed {
            let mut delta = vec![0.0f64; n];
            'bwd: for d in (0..waves.len().saturating_sub(1)).rev() {
                for (idx, &u) in waves[d].iter().enumerate() {
                    if budget_hit(&t) {
                        completed = false;
                        break 'bwd;
                    }
                    t.compute(3);
                    t.load(
                        wave_arr.addr_of(idx as u64 % ring),
                        DataType::Intermediate,
                        None,
                    );
                    let o = arrays.load_offsets(&mut t, u);
                    let mut acc = 0.0;
                    let mut producer = Some(o);
                    for i in g.edge_range(u) {
                        let s = arrays.load_neighbor(&mut t, i, producer.take());
                        let v = g.targets()[i as usize];
                        t.load(depth_arr.addr_of(u64::from(v)), DataType::Property, Some(s));
                        t.compute(2);
                        if depth[v as usize] == d as u32 + 1 {
                            t.load(sigma_arr.addr_of(u64::from(v)), DataType::Property, Some(s));
                            t.load(delta_arr.addr_of(u64::from(v)), DataType::Property, Some(s));
                            t.compute(4);
                            acc += (sigma[u as usize] as f64 / sigma[v as usize] as f64)
                                * (1.0 + delta[v as usize]);
                        }
                    }
                    delta[u as usize] = acc;
                    t.load(sigma_arr.addr_of(u64::from(u)), DataType::Property, None);
                    t.store(delta_arr.addr_of(u64::from(u)), DataType::Property, None);
                    t.store(bc_arr.addr_of(u64::from(u)), DataType::Property, None);
                    if u as usize != waves[0][0] as usize || d != 0 {
                        bc_scores[u as usize] += acc;
                    }
                }
            }
            bc_scores[waves[0][0] as usize] = 0.0;
        }
    }

    let digest = Digest::Floats(bc_scores);
    TraceBundle::assemble(
        Algorithm::Bc,
        t,
        funcmem,
        depth_arr.base(),
        4,
        n as u64,
        completed,
        digest,
    )
    // The backward pass indexes sigma and delta through the same neighbor
    // IDs — the multi-property case of Section VI.
    .with_extra_property_targets(vec![
        (sigma_arr.base(), 8, n as u64),
        (delta_arr.base(), 8, n as u64),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use droplet_graph::CsrBuilder;

    /// Path 1-0-2 with 0 as max-degree source... make 0 the hub of a star
    /// plus a chain so intermediate vertices earn centrality.
    fn path() -> Arc<Csr> {
        // 0 -> 1 -> 2 -> 3, symmetric; 0 has extra edge to 4 to be source.
        let mut b = CsrBuilder::new(5);
        for (u, v) in [
            (0, 1),
            (1, 0),
            (1, 2),
            (2, 1),
            (2, 3),
            (3, 2),
            (0, 4),
            (4, 0),
        ] {
            b.push_edge(u, v);
        }
        Arc::new(b.build())
    }

    #[test]
    fn chain_interior_vertices_carry_flow() {
        let g = path();
        let bc = reference(&g);
        // Source is vertex 0 (degree 2, ties broken by max_by_key → last max
        // is vertex with the highest degree; 0,1,2 have degree 2 — the last
        // one wins). Whoever the source is, interior chain vertices must
        // outrank leaves.
        let src = pick_source(&g);
        assert_eq!(bc[src as usize], 0.0);
        assert!(bc.iter().all(|&x| x >= 0.0));
        assert!(bc.iter().any(|&x| x > 0.0), "{bc:?}");
    }

    #[test]
    fn traced_matches_reference_bitwise() {
        let g = path();
        let mut space = AddressSpace::new();
        let arrays = GraphArrays::new(&mut space, &g);
        let bundle = traced(&g, space, arrays, u64::MAX);
        assert!(bundle.completed);
        assert_eq!(bundle.digest, Digest::Floats(reference(&g)));
    }

    #[test]
    fn sigma_counts_shortest_paths() {
        // Diamond: 0->1,0->2,1->3,2->3 — two shortest paths to 3.
        let g = CsrBuilder::new(4)
            .edge(0, 1)
            .edge(0, 2)
            .edge(1, 3)
            .edge(2, 3)
            .build();
        let (depth, sigma, _) = forward(&g, 0);
        assert_eq!(depth, vec![0, 1, 1, 2]);
        assert_eq!(sigma, vec![1, 1, 1, 2]);
    }

    #[test]
    fn diamond_middles_share_centrality() {
        let g = Arc::new(
            CsrBuilder::new(4)
                .edge(0, 1)
                .edge(0, 2)
                .edge(1, 3)
                .edge(2, 3)
                .build(),
        );
        // Force source 0 by checking pick_source.
        assert_eq!(pick_source(&g), 0);
        let bc = reference(&g);
        assert!((bc[1] - bc[2]).abs() < 1e-12);
        assert!(bc[1] > 0.0);
        assert_eq!(bc[0], 0.0);
    }

    #[test]
    fn budget_interrupts_cleanly() {
        let g = path();
        let mut space = AddressSpace::new();
        let arrays = GraphArrays::new(&mut space, &g);
        let bundle = traced(&g, space, arrays, 5);
        assert!(!bundle.completed);
        assert!(bundle.len() >= 5);
    }
}
