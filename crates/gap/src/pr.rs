//! PageRank — pull-style gather over CSR neighbor lists.
//!
//! Per iteration: a contribution pass (`contrib[u] = scores[u] / deg(u)`)
//! followed by a gather pass in which every vertex sums the contributions
//! of its neighbors. The gather's `contrib[neighbors[i]]` loads are the
//! canonical structure→property dependency chain of the paper's
//! Observation #3. The CSR is interpreted as incoming neighbor lists, with
//! the CSR degree as the contribution normalizer (exact on symmetric
//! graphs; the access pattern — which is what the simulator studies — is
//! identical either way).

use crate::mem::{GraphArrays, StructureImage};
use crate::{budget_hit, Algorithm, Digest, TraceBundle};
use droplet_graph::Csr;
use droplet_trace::{AddressSpace, DataType, Tracer, VecTracer};
use std::sync::Arc;

/// Damping factor, as in GAP.
const DAMPING: f64 = 0.85;
/// Fixed iteration count for deterministic digests.
pub const ITERATIONS: usize = 10;

/// Reference PageRank: `ITERATIONS` synchronous pull iterations.
pub fn reference(g: &Csr) -> Vec<f64> {
    let n = g.num_vertices() as usize;
    if n == 0 {
        return Vec::new();
    }
    let base = (1.0 - DAMPING) / n as f64;
    let mut scores = vec![1.0 / n as f64; n];
    let mut contrib = vec![0.0f64; n];
    for _ in 0..ITERATIONS {
        for u in 0..n {
            let deg = g.out_degree(u as u32);
            contrib[u] = if deg == 0 {
                0.0
            } else {
                scores[u] / deg as f64
            };
        }
        #[allow(clippy::needless_range_loop)]
        for u in 0..n {
            let sum: f64 = g
                .neighbors(u as u32)
                .iter()
                .map(|&v| contrib[v as usize])
                .sum();
            scores[u] = base + DAMPING * sum;
        }
    }
    scores
}

/// Traced PageRank; computes exactly what [`reference`] computes.
pub fn traced(
    g: &Arc<Csr>,
    mut space: AddressSpace,
    arrays: GraphArrays,
    budget: u64,
) -> TraceBundle {
    let n = g.num_vertices() as usize;
    let contrib = space.alloc_array("contrib", DataType::Property, 8, n as u64);
    let scores_arr = space.alloc_array("scores", DataType::Property, 8, n as u64);
    let funcmem = StructureImage::new(g.clone(), &arrays);
    let mut t = VecTracer::new(space, budget);

    let base = if n == 0 {
        0.0
    } else {
        (1.0 - DAMPING) / n as f64
    };
    let mut scores = vec![if n == 0 { 0.0 } else { 1.0 / n as f64 }; n];
    let mut contrib_v = vec![0.0f64; n];
    let mut completed = true;

    'outer: for iteration in 0..ITERATIONS {
        // Contribution pass. The first one runs before the region of
        // interest opens (the paper's ROI starts inside the iterative
        // kernel, and the gather phase is ~95% of a real iteration's time);
        // it is computed functionally but emits no ops, so a budget-limited
        // window samples the representative gather-dominated mix.
        let in_roi = iteration > 0;
        for u in 0..n {
            if budget_hit(&t) {
                completed = false;
                break 'outer;
            }
            if in_roi {
                t.compute(2);
                t.load(scores_arr.addr_of(u as u64), DataType::Property, None);
                arrays.load_offsets(&mut t, u as u32);
                t.store(contrib.addr_of(u as u64), DataType::Property, None);
            }
            let deg = g.out_degree(u as u32);
            contrib_v[u] = if deg == 0 {
                0.0
            } else {
                scores[u] / deg as f64
            };
        }
        // Gather pass.
        #[allow(clippy::needless_range_loop)]
        for u in 0..n {
            if budget_hit(&t) {
                completed = false;
                break 'outer;
            }
            t.compute(4);
            let o = arrays.load_offsets(&mut t, u as u32);
            let mut sum = 0.0f64;
            let mut producer = Some(o);
            for i in g.edge_range(u as u32) {
                let s = arrays.load_neighbor(&mut t, i, producer.take());
                let v = g.targets()[i as usize] as usize;
                t.load(contrib.addr_of(v as u64), DataType::Property, Some(s));
                t.compute(3);
                sum += contrib_v[v];
            }
            t.store(scores_arr.addr_of(u as u64), DataType::Property, None);
            scores[u] = base + DAMPING * sum;
        }
    }

    let digest = Digest::Floats(scores);
    TraceBundle::assemble(
        Algorithm::Pr,
        t,
        funcmem,
        contrib.base(),
        8,
        n as u64,
        completed,
        digest,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use droplet_graph::CsrBuilder;

    fn chain() -> Arc<Csr> {
        // 0 <-> 1 <-> 2 (symmetric chain).
        Arc::new(
            CsrBuilder::new(3)
                .edge(0, 1)
                .edge(1, 0)
                .edge(1, 2)
                .edge(2, 1)
                .build(),
        )
    }

    #[test]
    fn scores_sum_to_one() {
        let g = chain();
        let s = reference(&g);
        let sum: f64 = s.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
        // Middle vertex of a chain ranks highest.
        assert!(s[1] > s[0] && s[1] > s[2]);
    }

    #[test]
    fn traced_matches_reference_bitwise() {
        let g = chain();
        let mut space = AddressSpace::new();
        let arrays = GraphArrays::new(&mut space, &g);
        let bundle = traced(&g, space, arrays, u64::MAX);
        assert!(bundle.completed);
        let Digest::Floats(got) = bundle.digest else {
            panic!("wrong digest kind")
        };
        assert_eq!(got, reference(&g));
    }

    #[test]
    fn trace_contains_structure_to_property_chains() {
        let g = chain();
        let mut space = AddressSpace::new();
        let arrays = GraphArrays::new(&mut space, &g);
        let bundle = traced(&g, space, arrays, u64::MAX);
        let mut chained = 0;
        for (i, op) in bundle.ops.iter().enumerate() {
            if op.dtype() == DataType::Property && op.is_load() {
                if let Some(p) = op.producer_back() {
                    let prod = &bundle.ops[i - p as usize];
                    assert_eq!(prod.dtype(), DataType::Structure);
                    chained += 1;
                }
            }
        }
        assert!(chained > 0, "no dependency chains recorded");
    }

    #[test]
    fn budget_cuts_the_run_short() {
        let g = chain();
        let mut space = AddressSpace::new();
        let arrays = GraphArrays::new(&mut space, &g);
        let bundle = traced(&g, space, arrays, 10);
        assert!(!bundle.completed);
        assert!(bundle.len() >= 10);
        assert!(bundle.len() < 40);
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = Arc::new(CsrBuilder::new(0).build());
        assert!(reference(&g).is_empty());
    }
}
