//! Breadth-first search — direction-optimizing, as in GAP.
//!
//! Top-down steps pop frontier vertices and probe `parent[neighbor]`
//! (random property accesses through structure loads). When the frontier's
//! outgoing-edge count explodes, the traversal switches to bottom-up:
//! a *sequential* sweep over all unvisited vertices scanning their neighbor
//! lists for a frontier member — this is where BFS's streamable structure
//! accesses come from, and why a streamer helps BFS at all. The frontier
//! membership bitmap and the queues are *intermediate* data; `parent` is
//! the property array.

use crate::mem::{GraphArrays, StructureImage};
use crate::{budget_hit, pick_source, Algorithm, Digest, TraceBundle};
use droplet_graph::Csr;
use droplet_trace::{AddressSpace, ArrayRegion, DataType, OpId, Tracer, VecTracer};
use std::sync::Arc;

/// Sentinel for unvisited vertices.
pub const NONE: u32 = u32::MAX;
/// Top-down → bottom-up switch threshold divisor (GAP's α).
const ALPHA: u64 = 14;
/// Bottom-up → top-down switch threshold divisor (GAP's β).
const BETA: u64 = 24;

/// Reference direction-optimizing BFS from [`pick_source`]; returns the
/// parent array.
pub fn reference(g: &Csr) -> Vec<u32> {
    run(g, &g.transpose(), None).0
}

/// Traced BFS; computes exactly what [`reference`] computes.
pub fn traced(
    g: &Arc<Csr>,
    mut space: AddressSpace,
    arrays: GraphArrays,
    budget: u64,
) -> TraceBundle {
    let n = g.num_vertices() as usize;
    let parent_arr = space.alloc_array("parent", DataType::Property, 4, n as u64);
    let fr_a = space.alloc_array("frontier_a", DataType::Intermediate, 4, n.max(1) as u64);
    let fr_b = space.alloc_array("frontier_b", DataType::Intermediate, 4, n.max(1) as u64);
    // Frontier membership bitmap for bottom-up probes (one byte per vertex
    // keeps the model simple; GAP uses a bit vector).
    let bitmap = space.alloc_array(
        "frontier_bitmap",
        DataType::Intermediate,
        1,
        n.max(1) as u64,
    );
    // Bottom-up sweeps scan the incoming-edge CSR (GAP keeps both
    // directions for direction-optimizing BFS).
    let gt = Arc::new(g.transpose());
    let offsets_in = space.alloc_array(
        "offsets_in",
        DataType::Intermediate,
        8,
        u64::from(g.num_vertices()) + 1,
    );
    let neighbors_in =
        space.alloc_array("neighbors_in", DataType::Structure, 4, g.num_edges().max(1));
    let mut funcmem = StructureImage::new(g.clone(), &arrays);
    funcmem.push_segment(neighbors_in.clone(), gt.clone());
    let mut t = VecTracer::new(space, budget);

    let (parent, completed) = run(
        g,
        &gt,
        Some(TraceCtx {
            t: &mut t,
            arrays: &arrays,
            parent: &parent_arr,
            fr_a: &fr_a,
            fr_b: &fr_b,
            bitmap: &bitmap,
            offsets_in: &offsets_in,
            neighbors_in: &neighbors_in,
        }),
    );

    let digest = Digest::Ints(parent);
    TraceBundle::assemble(
        Algorithm::Bfs,
        t,
        funcmem,
        parent_arr.base(),
        4,
        n as u64,
        completed,
        digest,
    )
}

struct TraceCtx<'a> {
    t: &'a mut VecTracer,
    arrays: &'a GraphArrays,
    parent: &'a ArrayRegion,
    fr_a: &'a ArrayRegion,
    fr_b: &'a ArrayRegion,
    bitmap: &'a ArrayRegion,
    offsets_in: &'a ArrayRegion,
    neighbors_in: &'a ArrayRegion,
}

/// Shared body: the exact same control flow with or without tracing.
/// `gt` is the transpose (incoming-edge CSR) used by bottom-up sweeps.
fn run(g: &Csr, gt: &Csr, mut ctx: Option<TraceCtx<'_>>) -> (Vec<u32>, bool) {
    let n = g.num_vertices() as usize;
    let mut parent = vec![NONE; n];
    if n == 0 {
        return (parent, true);
    }
    let m = g.num_edges();
    let src = pick_source(g);
    parent[src as usize] = src;
    let mut frontier = vec![src];
    let mut in_frontier = vec![false; n];
    in_frontier[src as usize] = true;
    let mut scout_edges = g.out_degree(src);
    let mut level = 0usize;
    let mut bottom_up = false;
    let mut completed = true;

    'outer: while !frontier.is_empty() {
        // GAP's direction heuristic.
        if !bottom_up && scout_edges > m / ALPHA {
            bottom_up = true;
        } else if bottom_up && (frontier.len() as u64) < (n as u64) / BETA {
            bottom_up = false;
        }

        let mut next = Vec::new();
        let mut next_edges = 0u64;

        if bottom_up {
            // Sequential sweep over unvisited vertices scanning their
            // *incoming* edges: streamable parent (property) and structure
            // reads, random bitmap probes.
            for u in 0..n as u32 {
                if let Some(c) = ctx.as_mut() {
                    if budget_hit(c.t) {
                        completed = false;
                        break 'outer;
                    }
                }
                if parent[u as usize] != NONE {
                    continue;
                }
                if let Some(c) = ctx.as_mut() {
                    c.t.compute(2);
                    c.t.load(c.parent.addr_of(u64::from(u)), DataType::Property, None);
                    c.t.load(
                        c.offsets_in.addr_of(u64::from(u)),
                        DataType::Intermediate,
                        None,
                    );
                }
                let mut found: Option<(u32, Option<OpId>)> = None;
                for i in gt.edge_range(u) {
                    let v = gt.targets()[i as usize];
                    let mut s_op = None;
                    if let Some(c) = ctx.as_mut() {
                        let s =
                            c.t.load(c.neighbors_in.addr_of(i), DataType::Structure, None);
                        c.t.load(
                            c.bitmap.addr_of(u64::from(v)),
                            DataType::Intermediate,
                            Some(s),
                        );
                        c.t.compute(1);
                        s_op = Some(s);
                    }
                    if in_frontier[v as usize] {
                        found = Some((v, s_op));
                        break;
                    }
                }
                if let Some((v, s_op)) = found {
                    parent[u as usize] = v;
                    if let Some(c) = ctx.as_mut() {
                        c.t.store(c.parent.addr_of(u64::from(u)), DataType::Property, s_op);
                        c.t.store(
                            c.fr_b.addr_of(next.len() as u64 % c.fr_b.len()),
                            DataType::Intermediate,
                            None,
                        );
                    }
                    next_edges += g.out_degree(u);
                    next.push(u);
                }
            }
        } else {
            let (cur_q, next_q_sel) = if level.is_multiple_of(2) {
                (0u8, 1u8)
            } else {
                (1u8, 0u8)
            };
            for (idx, &u) in frontier.iter().enumerate() {
                if let Some(c) = ctx.as_mut() {
                    if budget_hit(c.t) {
                        completed = false;
                        break 'outer;
                    }
                }
                let mut offsets_op = None;
                if let Some(c) = ctx.as_mut() {
                    let q = if cur_q == 0 { c.fr_a } else { c.fr_b };
                    c.t.compute(2);
                    c.t.load(
                        q.addr_of(idx as u64 % q.len()),
                        DataType::Intermediate,
                        None,
                    );
                    offsets_op = Some(c.arrays.load_offsets(c.t, u));
                }
                for i in g.edge_range(u) {
                    let v = g.targets()[i as usize];
                    let mut s_op = None;
                    if let Some(c) = ctx.as_mut() {
                        // The first structure load of the list depends on
                        // the offsets value; the rest stride a register.
                        let s = c.arrays.load_neighbor(c.t, i, offsets_op.take());
                        let p =
                            c.t.load(c.parent.addr_of(u64::from(v)), DataType::Property, Some(s));
                        c.t.compute(2);
                        s_op = Some(p);
                    }
                    if parent[v as usize] == NONE {
                        parent[v as usize] = u;
                        if let Some(c) = ctx.as_mut() {
                            c.t.store(c.parent.addr_of(u64::from(v)), DataType::Property, s_op);
                            let q = if next_q_sel == 0 { c.fr_a } else { c.fr_b };
                            c.t.store(
                                q.addr_of(next.len() as u64 % q.len()),
                                DataType::Intermediate,
                                None,
                            );
                        }
                        next_edges += g.out_degree(v);
                        next.push(v);
                    }
                }
            }
        }

        // Refresh the membership bitmap (writes are intermediate stores;
        // traced at page granularity would be noise, so only membership
        // flips are modeled functionally).
        for &u in &frontier {
            in_frontier[u as usize] = false;
        }
        for &u in &next {
            in_frontier[u as usize] = true;
        }
        scout_edges = next_edges;
        frontier = next;
        level += 1;
    }

    (parent, completed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use droplet_graph::CsrBuilder;

    fn diamond() -> Arc<Csr> {
        Arc::new(
            CsrBuilder::new(5)
                .edge(0, 1)
                .edge(0, 2)
                .edge(0, 4)
                .edge(1, 3)
                .edge(2, 3)
                .build(),
        )
    }

    #[test]
    fn reference_finds_valid_parents() {
        let g = diamond();
        let p = reference(&g);
        assert_eq!(p[0], 0);
        assert_eq!(p[1], 0);
        assert_eq!(p[2], 0);
        assert_eq!(p[4], 0);
        assert!(p[3] == 1 || p[3] == 2, "{p:?}");
    }

    #[test]
    fn traced_matches_reference() {
        let g = diamond();
        let mut space = AddressSpace::new();
        let arrays = GraphArrays::new(&mut space, &g);
        let bundle = traced(&g, space, arrays, u64::MAX);
        assert!(bundle.completed);
        assert_eq!(bundle.digest, Digest::Ints(reference(&g)));
    }

    #[test]
    fn unreachable_vertices_stay_unvisited() {
        let g = Arc::new(CsrBuilder::new(4).edge(0, 1).edge(0, 2).build());
        let p = reference(&g);
        assert_eq!(p[3], NONE);
    }

    #[test]
    fn bottom_up_engages_on_dense_expansions() {
        // A hub-and-clique graph: the frontier explodes on level 1,
        // forcing a bottom-up phase. Correctness must be unaffected.
        let n = 64u32;
        let mut b = CsrBuilder::new(n);
        for v in 1..n {
            b.push_edge(0, v);
            b.push_edge(v, 0);
        }
        for u in 1..n {
            for d in 1..6 {
                let v = 1 + (u - 1 + d) % (n - 1);
                b.push_edge(u, v);
            }
        }
        let g = Arc::new(b.build());
        let p = reference(&g);
        // Everything is reachable and depths are 0/1.
        assert!(p.iter().all(|&x| x != NONE));
        let mut space = AddressSpace::new();
        let arrays = GraphArrays::new(&mut space, &g);
        let bundle = traced(&g, space, arrays, u64::MAX);
        assert_eq!(bundle.digest, Digest::Ints(p));
    }

    #[test]
    fn depths_match_plain_bfs_on_random_graph() {
        // Direction optimization changes parents but never depths.
        let g = Arc::new(droplet_graph::gen::uniform(400, 3200, 7));
        let p = reference(&g);
        let src = pick_source(&g);
        // Plain BFS depth oracle.
        let n = g.num_vertices() as usize;
        let mut depth = vec![u32::MAX; n];
        depth[src as usize] = 0;
        let mut q = std::collections::VecDeque::from([src]);
        while let Some(u) = q.pop_front() {
            for &v in g.neighbors(u) {
                if depth[v as usize] == u32::MAX {
                    depth[v as usize] = depth[u as usize] + 1;
                    q.push_back(v);
                }
            }
        }
        // Derive depth from the parent tree and compare.
        for u in 0..n {
            if p[u] == NONE {
                assert_eq!(depth[u], u32::MAX, "vertex {u}");
                continue;
            }
            let mut d = 0u32;
            let mut cur = u as u32;
            while cur != src {
                cur = p[cur as usize];
                d += 1;
                assert!(d as usize <= n, "parent cycle at {u}");
            }
            assert_eq!(d, depth[u], "vertex {u}");
        }
    }

    #[test]
    fn trace_uses_all_three_data_types() {
        let g = diamond();
        let mut space = AddressSpace::new();
        let arrays = GraphArrays::new(&mut space, &g);
        let bundle = traced(&g, space, arrays, u64::MAX);
        for dt in DataType::ALL {
            assert!(
                bundle.ops.iter().any(|o| o.dtype() == dt),
                "missing {dt} ops"
            );
        }
    }

    #[test]
    fn budget_stops_traversal() {
        let g = diamond();
        let mut space = AddressSpace::new();
        let arrays = GraphArrays::new(&mut space, &g);
        let bundle = traced(&g, space, arrays, 3);
        assert!(!bundle.completed);
    }
}
