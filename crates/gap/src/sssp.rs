//! Single-source shortest paths — delta-stepping with distance buckets.
//!
//! The bucket (bin) structures are *intermediate* data; `dist` is the
//! property array. Weighted graphs pack the edge weight next to the
//! neighbor ID in an 8-byte structure element, so the MPP scans at 8 B
//! granularity (Section V-C2).

use crate::mem::{GraphArrays, StructureImage};
use crate::{budget_hit, pick_source, Algorithm, Digest, TraceBundle};
use droplet_graph::Csr;
use droplet_trace::{AddressSpace, DataType, Tracer, VecTracer};
use std::sync::Arc;

/// Unreached distance sentinel.
pub const INF: u32 = u32::MAX;
/// Bucket width. With weights in 1..=255 this keeps tens of buckets live.
pub const DELTA: u32 = 16;

/// Reference delta-stepping from [`pick_source`]; returns distances.
///
/// # Panics
///
/// Panics if the graph is unweighted.
pub fn reference(g: &Csr) -> Vec<u32> {
    run(g, None, u64::MAX).0
}

/// Traced SSSP; computes exactly what [`reference`] computes.
pub fn traced(
    g: &Arc<Csr>,
    mut space: AddressSpace,
    arrays: GraphArrays,
    budget: u64,
) -> TraceBundle {
    let n = g.num_vertices() as usize;
    let dist_arr = space.alloc_array("dist", DataType::Property, 4, n as u64);
    // Bins modeled as a ring of intermediate storage.
    let bins_arr = space.alloc_array("bins", DataType::Intermediate, 4, (n as u64).max(1) * 2);
    let funcmem = StructureImage::new(g.clone(), &arrays);
    let mut t = VecTracer::new(space, budget);

    let (dist, completed) = run(g, Some((&mut t, &arrays, &dist_arr, &bins_arr)), budget);

    let digest = Digest::Ints(dist);
    TraceBundle::assemble(
        Algorithm::Sssp,
        t,
        funcmem,
        dist_arr.base(),
        4,
        n as u64,
        completed,
        digest,
    )
}

type TraceCtx<'a> = (
    &'a mut VecTracer,
    &'a GraphArrays,
    &'a droplet_trace::ArrayRegion,
    &'a droplet_trace::ArrayRegion,
);

/// Shared body: runs delta-stepping, optionally emitting trace ops.
fn run(g: &Csr, mut ctx: Option<TraceCtx<'_>>, _budget: u64) -> (Vec<u32>, bool) {
    assert!(g.is_weighted(), "SSSP needs a weighted graph");
    let n = g.num_vertices() as usize;
    let mut dist = vec![INF; n];
    if n == 0 {
        return (dist, true);
    }
    let src = pick_source(g);
    dist[src as usize] = 0;
    // Each bin entry remembers the ring slot it was pushed into.
    let mut bins: Vec<Vec<(u32, u64)>> = vec![Vec::new(); 1];
    let ring_cap = (n as u64).max(1) * 2;
    let mut pushes = 0u64;
    bins[0].push((src, 0));
    pushes += 1;

    let mut completed = true;
    let mut k = 0usize;
    'outer: while k < bins.len() {
        while let Some((u, slot)) = bins[k].pop() {
            if let Some((t, ..)) = ctx.as_mut() {
                if budget_hit(t) {
                    completed = false;
                    break 'outer;
                }
            }
            let du = dist[u as usize];
            if let Some((t, arrays, dist_arr, bins_arr)) = ctx.as_mut() {
                t.compute(2);
                t.load(bins_arr.addr_of(slot), DataType::Intermediate, None);
                t.load(dist_arr.addr_of(u64::from(u)), DataType::Property, None);
                t.compute(1);
                if du / DELTA == k as u32 {
                    arrays.load_offsets(*t, u);
                }
            }
            // Stale entry: the vertex was settled into an earlier bucket.
            if du / DELTA != k as u32 {
                continue;
            }
            let weights = g.edge_weights(u);
            let range = g.edge_range(u);
            let mut producer_first = true;
            for (off, i) in range.clone().enumerate() {
                let v = g.targets()[i as usize];
                let w = weights[off];
                let nd = du.saturating_add(w);
                let mut s_op = None;
                if let Some((t, arrays, dist_arr, _)) = ctx.as_mut() {
                    let producer = if producer_first {
                        // First structure load depends on the offsets load,
                        // which was the most recent intermediate load.
                        None
                    } else {
                        None
                    };
                    producer_first = false;
                    let s = arrays.load_neighbor(*t, i, producer);
                    s_op = Some(s);
                    t.load(dist_arr.addr_of(u64::from(v)), DataType::Property, Some(s));
                    t.compute(3);
                }
                if nd < dist[v as usize] {
                    dist[v as usize] = nd;
                    let bucket = (nd / DELTA) as usize;
                    if bucket >= bins.len() {
                        bins.resize(bucket + 1, Vec::new());
                    }
                    let slot = pushes % ring_cap;
                    pushes += 1;
                    bins[bucket].push((v, slot));
                    if let Some((t, _, dist_arr, bins_arr)) = ctx.as_mut() {
                        t.store(dist_arr.addr_of(u64::from(v)), DataType::Property, s_op);
                        t.store(bins_arr.addr_of(slot), DataType::Intermediate, None);
                    }
                }
            }
        }
        k += 1;
    }
    (dist, completed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use droplet_graph::CsrBuilder;

    fn weighted() -> Arc<Csr> {
        // 3 is the max-degree source: 3->0 (1), 3->1 (10), 3->2 (2), 0->1 (2).
        let mut b = CsrBuilder::new(4);
        b.push_weighted_edge(3, 0, 1);
        b.push_weighted_edge(3, 1, 10);
        b.push_weighted_edge(3, 2, 2);
        b.push_weighted_edge(0, 1, 2);
        Arc::new(b.build())
    }

    #[test]
    fn distances_match_dijkstra() {
        let g = weighted();
        let d = reference(&g);
        assert_eq!(d[3], 0);
        assert_eq!(d[0], 1);
        assert_eq!(d[2], 2);
        assert_eq!(d[1], 3); // via 0, not the direct weight-10 edge
    }

    #[test]
    fn traced_matches_reference() {
        let g = weighted();
        let mut space = AddressSpace::new();
        let arrays = GraphArrays::new(&mut space, &g);
        let bundle = traced(&g, space, arrays, u64::MAX);
        assert!(bundle.completed);
        assert_eq!(bundle.digest, Digest::Ints(reference(&g)));
        assert_eq!(bundle.prop_elem_bytes, 4);
        use droplet_trace::FunctionalMemory as _;
        assert_eq!(bundle.funcmem.scan_granularity(), 8);
    }

    #[test]
    fn dijkstra_cross_check_on_grid() {
        let g = Arc::new(droplet_graph::gen::grid_weighted(6, 6, 0, 11));
        let got = reference(&g);
        // Binary-heap Dijkstra oracle.
        let src = pick_source(&g);
        let n = g.num_vertices() as usize;
        let mut dist = vec![INF; n];
        dist[src as usize] = 0;
        let mut heap = std::collections::BinaryHeap::new();
        heap.push(std::cmp::Reverse((0u32, src)));
        while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
            if d > dist[u as usize] {
                continue;
            }
            let ws = g.edge_weights(u);
            for (off, &v) in g.neighbors(u).iter().enumerate() {
                let nd = d + ws[off];
                if nd < dist[v as usize] {
                    dist[v as usize] = nd;
                    heap.push(std::cmp::Reverse((nd, v)));
                }
            }
        }
        assert_eq!(got, dist);
    }

    #[test]
    fn unreachable_vertices_stay_inf() {
        let mut b = CsrBuilder::new(3);
        b.push_weighted_edge(0, 1, 1);
        b.push_weighted_edge(1, 0, 1);
        let g = Arc::new(b.build());
        let d = reference(&g);
        assert_eq!(d[2], INF);
    }

    #[test]
    #[should_panic(expected = "weighted")]
    fn rejects_unweighted_graphs() {
        let g = CsrBuilder::new(2).edge(0, 1).build();
        let _ = reference(&g);
    }
}
