//! Cross-validation of the traced GAP kernels against their pure reference
//! implementations on fuzzed random graphs.
//!
//! Every traced kernel is also a functional computation: run un-budgeted it
//! must produce *exactly* the reference result (bit-exact, including the
//! floating-point workloads — both sides accumulate in the same order) on
//! any graph, not just the fixed datasets the inline tests use. Graphs are
//! drawn from all three generator families across seeded shapes; reproduce
//! a failure with `DROPLET_TEST_SEED`.

use droplet_gap::Algorithm;
use droplet_graph::gen::{
    grid, grid_weighted, rmat, rmat_weighted, uniform, uniform_weighted, RmatSkew,
};
use droplet_graph::Csr;
use proptest::TestRng;
use std::sync::Arc;

/// One fuzzed graph: the unweighted form for BFS/PR/CC/BC and the
/// same-shape weighted form for SSSP.
fn fuzz_graph(rng: &mut TestRng, case: usize) -> (String, Csr, Csr) {
    match case % 3 {
        0 => {
            let scale = 4 + (rng.below(3) as u32); // 16–64 vertices
            let ef = 2 + rng.below(6);
            let skew =
                [RmatSkew::Kron, RmatSkew::Social, RmatSkew::Community][rng.below(3) as usize];
            let seed = rng.next_u64();
            (
                format!("rmat(scale={scale}, ef={ef}, {skew:?}, seed={seed:#x})"),
                rmat(scale, ef, skew, seed),
                rmat_weighted(scale, ef, skew, seed),
            )
        }
        1 => {
            let n = 16 + (rng.below(200) as u32);
            let m = u64::from(n) * (1 + rng.below(8));
            let seed = rng.next_u64();
            (
                format!("uniform(n={n}, m={m}, seed={seed:#x})"),
                uniform(n, m, seed),
                uniform_weighted(n, m, seed),
            )
        }
        _ => {
            let rows = 2 + (rng.below(12) as u32);
            let cols = 2 + (rng.below(12) as u32);
            let pm = rng.below(120) as u32;
            let seed = rng.next_u64();
            (
                format!("grid({rows}x{cols}, pm={pm}, seed={seed:#x})"),
                grid(rows, cols, pm, seed),
                grid_weighted(rows, cols, pm, seed),
            )
        }
    }
}

/// The traced digest of one algorithm must equal its reference result.
fn check(alg: Algorithm, g: &Arc<Csr>, label: &str) {
    let bundle = alg.trace(g, u64::MAX);
    assert!(bundle.completed, "{alg} on {label}: budget must not bind");
    let ok = match (&bundle.digest, alg) {
        (droplet_gap::Digest::Ints(got), Algorithm::Bfs) => *got == droplet_gap::bfs::reference(g),
        (droplet_gap::Digest::Ints(got), Algorithm::Cc) => *got == droplet_gap::cc::reference(g),
        (droplet_gap::Digest::Ints(got), Algorithm::Sssp) => {
            *got == droplet_gap::sssp::reference(g)
        }
        (droplet_gap::Digest::Floats(got), Algorithm::Pr) => *got == droplet_gap::pr::reference(g),
        (droplet_gap::Digest::Floats(got), Algorithm::Bc) => *got == droplet_gap::bc::reference(g),
        (d, a) => panic!("{a} produced unexpected digest variant {d:?}"),
    };
    assert!(ok, "{alg} diverged from reference on {label}");
}

fn fuzz_algorithm(alg: Algorithm, cases: usize) {
    let mut rng = TestRng::for_test(&format!("kernel_fuzz::{alg}"));
    for case in 0..cases {
        let (label, plain, weighted) = fuzz_graph(&mut rng, case);
        let g = Arc::new(if alg.needs_weights() { weighted } else { plain });
        check(alg, &g, &label);
    }
}

#[test]
fn bfs_matches_reference_on_fuzzed_graphs() {
    fuzz_algorithm(Algorithm::Bfs, 12);
}

#[test]
fn pr_matches_reference_on_fuzzed_graphs() {
    fuzz_algorithm(Algorithm::Pr, 12);
}

#[test]
fn cc_matches_reference_on_fuzzed_graphs() {
    fuzz_algorithm(Algorithm::Cc, 12);
}

#[test]
fn sssp_matches_reference_on_fuzzed_graphs() {
    fuzz_algorithm(Algorithm::Sssp, 12);
}

#[test]
fn bc_matches_reference_on_fuzzed_graphs() {
    fuzz_algorithm(Algorithm::Bc, 12);
}

/// Degenerate shapes the generators can emit: isolated vertices, self-loop
/// heavy graphs, and a single-vertex graph must not diverge either.
#[test]
fn edge_case_graphs_match_reference() {
    use droplet_graph::CsrBuilder;

    // One vertex, no edges (weighted flavor carries a self-loop for SSSP).
    let lone = Arc::new(CsrBuilder::new(1).build());
    let mut lone_w = CsrBuilder::new(1);
    lone_w.push_weighted_edge(0, 0, 1);
    let lone_w = Arc::new(lone_w.build());

    // A star with isolated stragglers, self-loops included.
    let mut star = CsrBuilder::new(8);
    let mut star_w = CsrBuilder::new(8);
    for v in 1..5 {
        star.push_edge(0, v);
        star.push_edge(v, 0);
        star_w.push_weighted_edge(0, v, v * 7 % 11 + 1);
        star_w.push_weighted_edge(v, 0, v * 3 % 5 + 1);
    }
    star.push_edge(2, 2);
    star_w.push_weighted_edge(2, 2, 1);
    let star = Arc::new(star.build());
    let star_w = Arc::new(star_w.build());

    for alg in Algorithm::ALL {
        let (small, big) = if alg.needs_weights() {
            (&lone_w, &star_w)
        } else {
            (&lone, &star)
        };
        check(alg, small, "single-vertex");
        check(alg, big, "star-with-stragglers");
    }
}
