//! An offline, dependency-free subset of the [criterion](https://bheisler.github.io/criterion.rs)
//! benchmarking API, just large enough for this workspace's `micro` bench.
//!
//! The build environment has no network access and no crates.io mirror, so
//! the real crate cannot be fetched. This shim keeps `harness = false`
//! criterion benches compiling and produces honest wall-clock measurements:
//! each `bench_function` is warmed up, auto-calibrated to a per-sample
//! iteration count targeting ~100ms, then timed over `sample_size` samples.
//! Reported numbers are the median, min, and max ns/iter plus derived
//! throughput when one was set.
//!
//! Not implemented: statistical outlier analysis, HTML reports, baselines,
//! CLI filtering. Good enough to compare before/after on the same machine.

use std::cell::RefCell;
use std::hint;
use std::rc::Rc;
use std::time::{Duration, Instant};

/// Re-export point matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// One benchmark's measured numbers, retrievable via
/// [`Criterion::take_results`] so `harness = false` targets can export
/// machine-readable reports (not part of the real criterion API).
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// The enclosing group's name.
    pub group: String,
    /// The benchmark's name.
    pub name: String,
    /// Median wall-clock nanoseconds per iteration.
    pub median_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Slowest sample.
    pub max_ns: f64,
    /// Units per iteration, when the group declared a throughput.
    pub throughput: Option<Throughput>,
}

impl BenchResult {
    /// Elements processed per second, when element throughput was declared.
    pub fn elements_per_sec(&self) -> Option<f64> {
        match self.throughput {
            Some(Throughput::Elements(n)) if self.median_ns > 0.0 => {
                Some(n as f64 * 1e9 / self.median_ns)
            }
            _ => None,
        }
    }
}

/// Units processed per iteration, for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Rc<RefCell<Vec<BenchResult>>>,
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("group: {name}");
        BenchmarkGroup {
            group: name.to_string(),
            throughput: None,
            sample_size: 20,
            results: Rc::clone(&self.results),
        }
    }

    /// Drains every result measured so far (in run order).
    pub fn take_results(&mut self) -> Vec<BenchResult> {
        std::mem::take(&mut *self.results.borrow_mut())
    }
}

/// A named set of benchmarks sharing throughput/sample settings.
#[derive(Debug)]
pub struct BenchmarkGroup {
    group: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    results: Rc<RefCell<Vec<BenchResult>>>,
}

impl BenchmarkGroup {
    /// Sets the units-per-iteration used for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs and reports one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            mode: Mode::Calibrate {
                target: Duration::from_millis(100),
            },
            iters: 1,
            elapsed: Duration::ZERO,
        };
        // Warm-up + calibration pass: grow the iteration count until one
        // sample takes roughly the target duration.
        f(&mut b);
        let iters = b.iters;

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            b.mode = Mode::Measure;
            b.iters = iters;
            b.elapsed = Duration::ZERO;
            f(&mut b);
            samples_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        samples_ns.sort_by(|a, c| a.total_cmp(c));
        let median = samples_ns[samples_ns.len() / 2];
        let min = samples_ns[0];
        let max = samples_ns[samples_ns.len() - 1];
        self.results.borrow_mut().push(BenchResult {
            group: self.group.clone(),
            name: name.to_string(),
            median_ns: median,
            min_ns: min,
            max_ns: max,
            throughput: self.throughput,
        });

        print!(
            "  {name}: {} [{} .. {}] per iter ({iters} iters x {} samples)",
            fmt_ns(median),
            fmt_ns(min),
            fmt_ns(max),
            self.sample_size
        );
        match self.throughput {
            Some(Throughput::Elements(n)) if median > 0.0 => {
                print!(", {:.1} Melem/s", n as f64 / median * 1e3);
            }
            Some(Throughput::Bytes(n)) if median > 0.0 => {
                print!(", {:.1} MiB/s", n as f64 / median * 1e9 / (1024.0 * 1024.0));
            }
            _ => {}
        }
        println!();
        self
    }

    /// Ends the group (no-op; present for API parity).
    pub fn finish(&mut self) {}
}

#[derive(Debug, Clone, Copy)]
enum Mode {
    Calibrate { target: Duration },
    Measure,
}

/// Passed to the benchmark closure; `iter` times the hot loop.
#[derive(Debug)]
pub struct Bencher {
    mode: Mode,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it enough times for a stable measurement.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            Mode::Calibrate { target } => {
                let mut iters: u64 = 1;
                loop {
                    let start = Instant::now();
                    for _ in 0..iters {
                        hint::black_box(routine());
                    }
                    let took = start.elapsed();
                    if took >= target || iters >= 1 << 30 {
                        self.iters = iters;
                        return;
                    }
                    // Jump toward the target, doubling at minimum so cheap
                    // routines converge in a few passes.
                    let scale = (target.as_secs_f64() / took.as_secs_f64().max(1e-9)).min(64.0);
                    iters = (iters as f64 * scale.max(2.0)).ceil() as u64;
                }
            }
            Mode::Measure => {
                let start = Instant::now();
                for _ in 0..self.iters {
                    hint::black_box(routine());
                }
                self.elapsed = start.elapsed();
            }
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3}µs", ns / 1e3)
    } else {
        format!("{ns:.1}ns")
    }
}

/// Bundles benchmark functions into a runner, as in the real crate.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(64));
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0u64..64).map(black_box).sum::<u64>()));
        group.finish();
    }

    criterion_group!(shim_group, tiny_bench);

    #[test]
    fn group_runs_and_reports() {
        shim_group();
    }

    #[test]
    fn results_are_collected_and_drained() {
        let mut c = Criterion::default();
        tiny_bench(&mut c);
        let results = c.take_results();
        assert_eq!(results.len(), 1);
        let r = &results[0];
        assert_eq!(r.group, "shim");
        assert_eq!(r.name, "sum");
        assert!(r.median_ns > 0.0);
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.max_ns);
        assert!(r.elements_per_sec().unwrap() > 0.0);
        assert!(c.take_results().is_empty(), "take drains");
    }

    #[test]
    fn ns_formatting_scales() {
        assert_eq!(fmt_ns(12.0), "12.0ns");
        assert_eq!(fmt_ns(1_500.0), "1.500µs");
        assert_eq!(fmt_ns(2_500_000.0), "2.500ms");
        assert_eq!(fmt_ns(3_000_000_000.0), "3.000s");
    }
}
