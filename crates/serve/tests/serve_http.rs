//! End-to-end tests over a live `droplet-serve` socket: in-flight dedupe,
//! content-store round-trips across restart, field-level spec rejection,
//! live epoch streaming, and fork-shared sweeps.

use droplet::experiments::ExperimentCtx;
use droplet::run_workload;
use droplet_graph::DatasetScale;
use droplet_serve::http::{header, request};
use droplet_serve::{spawn, RunSpec, ServerOptions};
use std::path::PathBuf;
use std::sync::atomic::Ordering;

const SPEC: &str = r#"{"algo": "pr", "dataset": "kron", "scale": "tiny", "prefetcher": "droplet", "budget": 30000}"#;

fn tmp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("droplet-serve-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn boot(store_dir: Option<PathBuf>) -> droplet_serve::ServerHandle {
    spawn(ServerOptions {
        store_dir,
        ..ServerOptions::default()
    })
    .expect("bind test server")
}

fn field(body: &str, name: &str) -> String {
    let tail = body
        .split(&format!("\"{name}\": "))
        .nth(1)
        .unwrap_or_else(|| panic!("body has no field {name}: {body}"));
    tail.trim_start_matches('"')
        .split(['"', ',', '}'])
        .next()
        .unwrap()
        .to_string()
}

/// N concurrent identical submissions: exactly one engine run, every
/// client a 200 with the bit-identical digest and body.
#[test]
fn concurrent_identical_submissions_share_one_engine_run() {
    let dir = tmp_store("dedupe");
    let server = boot(Some(dir.clone()));
    let addr = server.addr_string();
    let responses: Vec<(u16, String, String)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let addr = addr.clone();
                s.spawn(move || {
                    let (status, headers, body) = request(&addr, "POST", "/run", SPEC).unwrap();
                    let source = header(&headers, "X-Droplet-Source").unwrap().to_string();
                    (status, source, body)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let stats = server.state();
    assert_eq!(
        stats.stats.engine_runs.load(Ordering::Relaxed),
        1,
        "identical submissions must share one simulation"
    );
    assert_eq!(stats.stats.submissions.load(Ordering::Relaxed), 8);
    assert_eq!(
        stats.stats.dedupe_hits.load(Ordering::Relaxed)
            + stats.stats.store_hits.load(Ordering::Relaxed),
        7,
        "every non-leader answered by dedupe or the store"
    );
    let first = &responses[0];
    for (status, source, body) in &responses {
        assert_eq!(*status, 200);
        assert!(matches!(source.as_str(), "engine" | "inflight" | "store"));
        assert_eq!(
            body, &first.2,
            "canonical bodies are byte-identical across sources"
        );
    }
    assert_ne!(field(&first.2, "digest"), "0000000000000000");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A stored result survives a server restart, replays byte-identical,
/// and its digest equals a fresh direct engine run of the same spec.
#[test]
fn content_store_round_trip_across_restart() {
    let dir = tmp_store("store");
    let (key, digest, body) = {
        let server = boot(Some(dir.clone()));
        let (status, headers, body) = request(&server.addr_string(), "POST", "/run", SPEC).unwrap();
        assert_eq!(status, 200);
        assert_eq!(header(&headers, "X-Droplet-Source"), Some("engine"));
        let out = (field(&body, "key"), field(&body, "digest"), body);
        server.shutdown();
        out
    };

    // Restart on the same store directory: the engine must stay cold.
    let server = boot(Some(dir.clone()));
    let (status, headers, stored) =
        request(&server.addr_string(), "GET", &format!("/result/{key}"), "").unwrap();
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "X-Droplet-Source"), Some("store"));
    assert_eq!(stored, body, "stored body replays byte-identical");
    let (status, headers, rerun) = request(&server.addr_string(), "POST", "/run", SPEC).unwrap();
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "X-Droplet-Source"), Some("store"));
    assert_eq!(rerun, body);
    assert_eq!(server.state().stats.engine_runs.load(Ordering::Relaxed), 0);

    // The served digest is the digest of a fresh direct run.
    let spec = RunSpec::parse(SPEC, DatasetScale::Tiny).unwrap();
    let ctx = ExperimentCtx::tiny();
    let cfg = spec.config(&ctx.base);
    let bundle = ctx.traces.get_or_build(spec.workload(), spec.budget);
    let fresh = run_workload(&bundle, &cfg, spec.warmup());
    assert_eq!(digest, format!("{:016x}", fresh.digest()));
    assert_eq!(key, spec.key(&cfg));

    // Unknown keys 404; malformed keys never touch the filesystem.
    let missing = format!("{:016x}-{:016x}", 1u64, 2u64);
    let (status, _, _) = request(
        &server.addr_string(),
        "GET",
        &format!("/result/{missing}"),
        "",
    )
    .unwrap();
    assert_eq!(status, 404);
    let (status, _, _) = request(&server.addr_string(), "GET", "/result/../escape", "").unwrap();
    assert_eq!(status, 400);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Invalid specs are rejected with the same field-level message the CLI
/// prints, as an HTTP 400.
#[test]
fn spec_rejection_matches_cli_diagnostics() {
    let server = boot(None);
    let addr = server.addr_string();
    let (status, _, body) = request(
        &addr,
        "POST",
        "/run",
        r#"{"algo": "pr", "dataset": "kron", "budget": "abc"}"#,
    )
    .unwrap();
    assert_eq!(status, 400);
    assert!(
        body.contains("budget: invalid value \\\"abc\\\" (expected a non-negative integer)"),
        "field-level message missing: {body}"
    );
    assert_eq!(field(&body, "field"), "budget");
    let (status, _, body) = request(&addr, "POST", "/run", r#"{"dataset": "kron"}"#).unwrap();
    assert_eq!(status, 400);
    assert_eq!(field(&body, "field"), "algo");
    let (status, _, _) = request(&addr, "POST", "/run", "not json at all").unwrap();
    assert_eq!(status, 400);
    assert_eq!(server.state().stats.rejects.load(Ordering::Relaxed), 3);
    assert_eq!(server.state().stats.engine_runs.load(Ordering::Relaxed), 0);
    server.shutdown();
}

/// `?stream=1` delivers one JSONL line per measurement epoch and then the
/// canonical result line; the epoch count matches the result's `epochs`.
#[test]
fn streaming_run_delivers_epochs_then_result() {
    let server = boot(None);
    let spec = r#"{"algo": "bfs", "dataset": "kron", "scale": "tiny", "budget": 30000, "epoch_ops": 2000}"#;
    let (status, headers, body) =
        request(&server.addr_string(), "POST", "/run?stream=1", spec).unwrap();
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "X-Droplet-Source"), Some("engine"));
    let lines: Vec<&str> = body.lines().collect();
    assert!(
        lines.len() >= 2,
        "expected epochs plus a result line: {body}"
    );
    let (epoch_lines, result_line) = (&lines[..lines.len() - 1], lines[lines.len() - 1]);
    for (i, line) in epoch_lines.iter().enumerate() {
        assert!(
            line.starts_with(&format!("{{\"epoch\": {i},")),
            "epoch line {i} malformed: {line}"
        );
    }
    assert_eq!(
        field(result_line, "epochs"),
        epoch_lines.len().to_string(),
        "streamed epoch count matches the recorded journal"
    );
    assert_ne!(field(result_line, "digest"), "0000000000000000");
    server.shutdown();
}

/// `/sweep` fans one workload across prefetchers over a shared warm-up
/// and lands each cell in the store under the key `/run` would use.
#[test]
fn sweep_stores_cells_under_run_keys() {
    let dir = tmp_store("sweep");
    let server = boot(Some(dir.clone()));
    let addr = server.addr_string();
    let sweep = r#"{"algo": "cc", "dataset": "urand", "scale": "tiny", "budget": 30000,
                    "prefetchers": ["none", "droplet"]}"#;
    let (status, headers, body) = request(&addr, "POST", "/sweep", sweep).unwrap();
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "X-Droplet-Source"), Some("engine"));
    assert_eq!(body.matches("\"digest\"").count(), 2);
    assert_eq!(server.state().stats.engine_runs.load(Ordering::Relaxed), 2);

    // An individual run of one cell now hits the store.
    let run = r#"{"algo": "cc", "dataset": "urand", "scale": "tiny", "budget": 30000,
                  "prefetcher": "droplet"}"#;
    let (status, headers, run_body) = request(&addr, "POST", "/run", run).unwrap();
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "X-Droplet-Source"), Some("store"));
    assert!(body.contains(&field(&run_body, "digest")));
    // Resubmitting the whole sweep is a pure store hit.
    let (status, headers, again) = request(&addr, "POST", "/sweep", sweep).unwrap();
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "X-Droplet-Source"), Some("store"));
    assert_eq!(again, body);
    assert_eq!(server.state().stats.engine_runs.load(Ordering::Relaxed), 2);
    // An empty prefetcher list is a field-level 400.
    let (status, _, err) = request(
        &addr,
        "POST",
        "/sweep",
        r#"{"algo": "cc", "dataset": "urand", "scale": "tiny"}"#,
    )
    .unwrap();
    assert_eq!(status, 400);
    assert_eq!(field(&err, "field"), "prefetchers");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Liveness and counters endpoints answer.
#[test]
fn healthz_and_stats_answer() {
    let server = boot(None);
    let addr = server.addr_string();
    let (status, _, body) = request(&addr, "GET", "/healthz", "").unwrap();
    assert_eq!((status, body.as_str()), (200, "ok\n"));
    let (status, _, body) = request(&addr, "GET", "/stats", "").unwrap();
    assert_eq!(status, 200);
    for key in ["submissions", "engine_runs", "trace_cache"] {
        assert!(body.contains(key), "stats missing {key}: {body}");
    }
    let (status, _, _) = request(&addr, "GET", "/nope", "").unwrap();
    assert_eq!(status, 404);
    server.shutdown();
}
