//! Experiment-spec validation: JSON body → simulator inputs.
//!
//! Every field is validated through [`droplet::specparse`] — the same
//! parsers `droplet-sim` runs its flags through — so a value the CLI
//! rejects with `error: --budget: invalid value "abc"` is rejected here
//! with an HTTP 400 carrying the identical field-level message.

use crate::json::{self, SpecValue};
use droplet::specparse::{
    parse_algo, parse_dataset, parse_policy, parse_prefetcher, parse_scale, parse_u64,
};
use droplet::{config_hash, PrefetcherKind, SpecError, SystemConfig, WorkloadSpec};
use droplet_cache::ReplacementPolicy;
use droplet_gap::Algorithm;
use droplet_graph::{Dataset, DatasetScale};
use droplet_obs::{fnv1a, ObsConfig};

/// A validated experiment spec: one workload, one configuration, plus the
/// optional `prefetchers` list `/sweep` fans out over.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// The algorithm (required field `algo`).
    pub algorithm: Algorithm,
    /// The dataset (required field `dataset`).
    pub dataset: Dataset,
    /// Dataset scale (field `scale`; default is the server's).
    pub scale: DatasetScale,
    /// Prefetcher under test (field `prefetcher`; default `droplet`).
    pub prefetcher: PrefetcherKind,
    /// Trace op budget (field `budget`; default per scale).
    pub budget: u64,
    /// Epoch sampling cadence (field `epoch_ops`); enables the journal
    /// and live epoch streaming.
    pub epoch_ops: Option<u64>,
    /// Per-level replacement-policy overrides (`l1_policy` …).
    pub l1_policy: Option<ReplacementPolicy>,
    /// See [`RunSpec::l1_policy`].
    pub l2_policy: Option<ReplacementPolicy>,
    /// See [`RunSpec::l1_policy`].
    pub l3_policy: Option<ReplacementPolicy>,
    /// `/sweep` only: the configurations to fan out over one shared
    /// warm-up (field `prefetchers`).
    pub prefetchers: Vec<PrefetcherKind>,
}

fn unknown_field(key: &str, value: &str) -> SpecError {
    SpecError {
        field: key.to_string(),
        value: value.to_string(),
        expected:
            "a known spec field (algo|dataset|prefetcher|scale|budget|epoch_ops|l1_policy|l2_policy|l3_policy|prefetchers)",
    }
}

fn missing_field(key: &str) -> SpecError {
    SpecError {
        field: key.to_string(),
        value: String::new(),
        expected: "a value (field is required)",
    }
}

impl RunSpec {
    /// Parses and validates a JSON request body.
    ///
    /// `default_scale` supplies `scale` when the body omits it; `budget`
    /// defaults to the scale's standard trace budget.
    pub fn parse(body: &str, default_scale: DatasetScale) -> Result<RunSpec, SpecError> {
        let pairs = json::parse_object(body).map_err(|e| SpecError {
            field: "body".to_string(),
            value: e,
            expected: "a flat JSON object",
        })?;
        let mut algo = None;
        let mut dataset = None;
        let mut scale = None;
        let mut prefetcher = None;
        let mut budget = None;
        let mut epoch_ops = None;
        let mut policies: [Option<ReplacementPolicy>; 3] = [None; 3];
        let mut prefetchers = Vec::new();
        for (key, value) in &pairs {
            let scalar = match value {
                SpecValue::Scalar(s) => s.as_str(),
                SpecValue::List(items) => {
                    if key == "prefetchers" {
                        for item in items {
                            prefetchers.push(parse_prefetcher("prefetchers", item)?);
                        }
                        continue;
                    }
                    return Err(unknown_field(key, &format!("[{}]", items.join(","))));
                }
            };
            match key.as_str() {
                "algo" => algo = Some(parse_algo("algo", scalar)?),
                "dataset" => dataset = Some(parse_dataset("dataset", scalar)?),
                "scale" => scale = Some(parse_scale("scale", scalar)?),
                "prefetcher" => prefetcher = Some(parse_prefetcher("prefetcher", scalar)?),
                "budget" => budget = Some(parse_u64("budget", scalar)?),
                "epoch_ops" => epoch_ops = Some(parse_u64("epoch_ops", scalar)?),
                "l1_policy" => policies[0] = Some(parse_policy("l1_policy", scalar)?),
                "l2_policy" => policies[1] = Some(parse_policy("l2_policy", scalar)?),
                "l3_policy" => policies[2] = Some(parse_policy("l3_policy", scalar)?),
                _ => return Err(unknown_field(key, scalar)),
            }
        }
        let scale = scale.unwrap_or(default_scale);
        Ok(RunSpec {
            algorithm: algo.ok_or_else(|| missing_field("algo"))?,
            dataset: dataset.ok_or_else(|| missing_field("dataset"))?,
            scale,
            prefetcher: prefetcher.unwrap_or(PrefetcherKind::Droplet),
            budget: budget.unwrap_or_else(|| WorkloadSpec::default_budget(scale)),
            epoch_ops,
            l1_policy: policies[0],
            l2_policy: policies[1],
            l3_policy: policies[2],
            prefetchers,
        })
    }

    /// The workload this spec names.
    pub fn workload(&self) -> WorkloadSpec {
        WorkloadSpec {
            algorithm: self.algorithm,
            dataset: self.dataset,
            scale: self.scale,
        }
    }

    /// Warm-up ops excluded from statistics (the CLI's `budget / 4` rule).
    pub fn warmup(&self) -> usize {
        (self.budget / 4) as usize
    }

    /// The full system configuration for `prefetcher`, derived from the
    /// server's base configuration for this scale.
    pub fn config(&self, base: &SystemConfig) -> SystemConfig {
        self.config_for(base, self.prefetcher)
    }

    /// [`RunSpec::config`] with an explicit prefetcher (sweep cells).
    pub fn config_for(&self, base: &SystemConfig, kind: PrefetcherKind) -> SystemConfig {
        let mut cfg = if kind == PrefetcherKind::None {
            base.clone()
        } else {
            base.with_prefetcher(kind)
        };
        if let Some(p) = self.l1_policy {
            cfg = cfg.with_l1_policy(p);
        }
        if let Some(p) = self.l2_policy {
            cfg = cfg.with_l2_policy(p);
        }
        if let Some(p) = self.l3_policy {
            cfg = cfg.with_l3_policy(p);
        }
        if let Some(n) = self.epoch_ops {
            cfg.obs = Some(ObsConfig::every(n));
        }
        cfg
    }

    /// FNV-1a hash of the trace identity: workload plus budget plus
    /// warm-up split. Together with [`config_hash`] this is the job key —
    /// two submissions with equal keys are guaranteed bit-identical
    /// results, which is what licenses in-flight dedupe and the store.
    pub fn workload_hash(&self) -> u64 {
        let repr = format!(
            "{:?}|{:?}|{:?}|{}|{}",
            self.algorithm,
            self.dataset,
            self.scale,
            self.budget,
            self.warmup()
        );
        fnv1a(repr.as_bytes())
    }

    /// The content-address for this spec under `cfg`:
    /// `{config_hash:016x}-{workload_hash:016x}`.
    pub fn key(&self, cfg: &SystemConfig) -> String {
        format!("{:016x}-{:016x}", config_hash(cfg), self.workload_hash())
    }

    /// The spec echoed back as JSON (the `"spec"` object in responses).
    pub fn render_json(&self, kind: PrefetcherKind) -> String {
        json::object(&[
            ("algo", json::quote(self.algorithm.name())),
            ("dataset", json::quote(self.dataset.name())),
            (
                "scale",
                json::quote(&format!("{:?}", self.scale).to_lowercase()),
            ),
            ("prefetcher", json::quote(kind.name())),
            ("budget", self.budget.to_string()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_spec() {
        let s = RunSpec::parse(
            r#"{"algo": "pr", "dataset": "kron", "scale": "tiny",
                "prefetcher": "droplet", "budget": 30000, "epoch_ops": 5000,
                "l3_policy": "srrip"}"#,
            DatasetScale::Small,
        )
        .unwrap();
        assert_eq!(s.algorithm, Algorithm::Pr);
        assert_eq!(s.dataset, Dataset::Kron);
        assert_eq!(s.scale, DatasetScale::Tiny);
        assert_eq!(s.budget, 30_000);
        assert_eq!(s.warmup(), 7_500);
        assert_eq!(s.epoch_ops, Some(5_000));
        assert_eq!(s.l3_policy, Some(ReplacementPolicy::Srrip));
    }

    #[test]
    fn defaults_follow_the_cli() {
        let s =
            RunSpec::parse(r#"{"algo": "bfs", "dataset": "road"}"#, DatasetScale::Tiny).unwrap();
        assert_eq!(s.scale, DatasetScale::Tiny);
        assert_eq!(s.prefetcher, PrefetcherKind::Droplet);
        assert_eq!(s.budget, WorkloadSpec::default_budget(DatasetScale::Tiny));
        assert_eq!(s.budget as usize / 4, s.warmup());
    }

    #[test]
    fn field_errors_match_the_cli_diagnostics() {
        let e = RunSpec::parse(
            r#"{"algo": "pr", "dataset": "kron", "budget": "abc"}"#,
            DatasetScale::Tiny,
        )
        .unwrap_err();
        assert_eq!(
            e.to_string(),
            "budget: invalid value \"abc\" (expected a non-negative integer)"
        );
        let e = RunSpec::parse(r#"{"dataset": "kron"}"#, DatasetScale::Tiny).unwrap_err();
        assert_eq!(e.field, "algo");
        let e = RunSpec::parse(
            r#"{"algo": "pr", "dataset": "kron", "turbo": "on"}"#,
            DatasetScale::Tiny,
        )
        .unwrap_err();
        assert_eq!(e.field, "turbo");
        let e = RunSpec::parse("not json", DatasetScale::Tiny).unwrap_err();
        assert_eq!(e.field, "body");
    }

    #[test]
    fn key_separates_config_and_workload() {
        let base = SystemConfig::test_scale();
        let a = RunSpec::parse(
            r#"{"algo": "pr", "dataset": "kron", "scale": "tiny"}"#,
            DatasetScale::Tiny,
        )
        .unwrap();
        let b = RunSpec::parse(
            r#"{"algo": "bfs", "dataset": "kron", "scale": "tiny"}"#,
            DatasetScale::Tiny,
        )
        .unwrap();
        let (ka, kb) = (a.key(&a.config(&base)), b.key(&b.config(&base)));
        assert_ne!(ka, kb);
        // Same machine: config half of the key is shared.
        assert_eq!(ka.split('-').next(), kb.split('-').next());
        // Sampling cadence does not change the machine identity.
        let mut c = a.clone();
        c.epoch_ops = Some(5_000);
        assert_eq!(ka, c.key(&c.config(&base)));
    }
}
