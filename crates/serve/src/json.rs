//! Minimal JSON support for the experiment-spec wire format.
//!
//! Request bodies are flat JSON objects whose values are scalars (strings,
//! numbers, booleans) or arrays of scalars — exactly the shape an
//! experiment spec needs — so the parser here handles that subset and
//! nothing more, keeping the service free of serialization dependencies.
//! Response bodies are assembled with the same hand-rolled quoting the
//! bench reports use.

/// A parsed spec value: one scalar, or an array of scalars.
///
/// Scalars are carried as their raw text (strings unescaped, numbers and
/// booleans verbatim) because every downstream consumer —
/// [`droplet::specparse`] — validates from `&str` anyway.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecValue {
    /// A string, number, boolean, or null, as text.
    Scalar(String),
    /// An array of scalars, each as text.
    List(Vec<String>),
}

/// Parses a flat JSON object into `(key, value)` pairs in source order.
///
/// Returns a human-readable description of the first syntax error.
/// Nested objects are rejected — the spec format is flat by design.
pub fn parse_object(text: &str) -> Result<Vec<(String, SpecValue)>, String> {
    let mut p = Parser {
        chars: text.char_indices().peekable(),
        text,
    };
    p.skip_ws();
    p.expect('{')?;
    let mut pairs = Vec::new();
    p.skip_ws();
    if p.eat('}') {
        p.skip_ws();
        return p.at_end(pairs);
    }
    loop {
        p.skip_ws();
        let key = p.string()?;
        p.skip_ws();
        p.expect(':')?;
        p.skip_ws();
        let value = p.value()?;
        pairs.push((key, value));
        p.skip_ws();
        if p.eat(',') {
            continue;
        }
        p.expect('}')?;
        p.skip_ws();
        return p.at_end(pairs);
    }
}

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    text: &'a str,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.chars.peek(), Some((_, c)) if c.is_ascii_whitespace()) {
            self.chars.next();
        }
    }

    fn eat(&mut self, want: char) -> bool {
        if matches!(self.chars.peek(), Some((_, c)) if *c == want) {
            self.chars.next();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, want: char) -> Result<(), String> {
        match self.chars.next() {
            Some((_, c)) if c == want => Ok(()),
            Some((i, c)) => Err(format!("expected '{want}' at byte {i}, found '{c}'")),
            None => Err(format!("expected '{want}', found end of input")),
        }
    }

    fn at_end<T>(&mut self, out: T) -> Result<T, String> {
        match self.chars.next() {
            None => Ok(out),
            Some((i, c)) => Err(format!("trailing content at byte {i}: '{c}'")),
        }
    }

    /// A quoted string, unescaping `\"`, `\\`, `\/`, `\n`, `\t`, `\r`.
    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.chars.next() {
                Some((_, '"')) => return Ok(out),
                Some((_, '\\')) => match self.chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, '/')) => out.push('/'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((i, c)) => return Err(format!("bad escape '\\{c}' at byte {i}")),
                    None => return Err("unterminated escape".into()),
                },
                Some((_, c)) => out.push(c),
                None => return Err("unterminated string".into()),
            }
        }
    }

    /// A bare scalar token: number, boolean, or null, as raw text.
    fn bare(&mut self) -> Result<String, String> {
        let start = match self.chars.peek() {
            Some((i, _)) => *i,
            None => return Err("expected a value, found end of input".into()),
        };
        let mut end = start;
        while let Some((i, c)) = self.chars.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, '-' | '+' | '.' | '_') {
                end = *i + c.len_utf8();
                self.chars.next();
            } else {
                break;
            }
        }
        if end == start {
            return Err(format!("expected a value at byte {start}"));
        }
        Ok(self.text[start..end].to_string())
    }

    fn scalar(&mut self) -> Result<String, String> {
        if matches!(self.chars.peek(), Some((_, '"'))) {
            self.string()
        } else {
            self.bare()
        }
    }

    fn value(&mut self) -> Result<SpecValue, String> {
        if self.eat('[') {
            let mut items = Vec::new();
            self.skip_ws();
            if self.eat(']') {
                return Ok(SpecValue::List(items));
            }
            loop {
                self.skip_ws();
                items.push(self.scalar()?);
                self.skip_ws();
                if self.eat(',') {
                    continue;
                }
                self.expect(']')?;
                return Ok(SpecValue::List(items));
            }
        }
        if matches!(self.chars.peek(), Some((_, '{'))) {
            return Err("nested objects are not valid in an experiment spec".into());
        }
        self.scalar().map(SpecValue::Scalar)
    }
}

/// Quotes `s` as a JSON string (escaping `"` `\` and control characters).
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders `pairs` as a single-line JSON object; values are inserted
/// verbatim (already-rendered JSON).
pub fn object(pairs: &[(&str, String)]) -> String {
    let body: Vec<String> = pairs
        .iter()
        .map(|(k, v)| format!("{}: {v}", quote(k)))
        .collect();
    format!("{{{}}}", body.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_spec_objects() {
        let pairs = parse_object(
            r#"{"algo": "pr", "budget": 30000, "stream": true,
                "prefetchers": ["none", "droplet"]}"#,
        )
        .unwrap();
        assert_eq!(pairs[0], ("algo".into(), SpecValue::Scalar("pr".into())));
        assert_eq!(
            pairs[1],
            ("budget".into(), SpecValue::Scalar("30000".into()))
        );
        assert_eq!(
            pairs[2],
            ("stream".into(), SpecValue::Scalar("true".into()))
        );
        assert_eq!(
            pairs[3],
            (
                "prefetchers".into(),
                SpecValue::List(vec!["none".into(), "droplet".into()])
            )
        );
    }

    #[test]
    fn parses_empty_object_and_escapes() {
        assert_eq!(parse_object("{}").unwrap(), vec![]);
        let pairs = parse_object(r#"{"a": "x\"y\\z"}"#).unwrap();
        assert_eq!(pairs[0].1, SpecValue::Scalar("x\"y\\z".into()));
    }

    #[test]
    fn rejects_malformed_bodies() {
        assert!(parse_object("").is_err());
        assert!(parse_object("[1,2]").is_err());
        assert!(parse_object(r#"{"a": 1"#).is_err());
        assert!(parse_object(r#"{"a": {"nested": 1}}"#).is_err());
        assert!(parse_object(r#"{"a": 1} trailing"#).is_err());
    }

    #[test]
    fn quote_round_trips_specials() {
        assert_eq!(quote("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(
            object(&[("k", quote("v")), ("n", "3".into())]),
            r#"{"k": "v", "n": 3}"#
        );
    }
}
