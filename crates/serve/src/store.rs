//! Content-addressed on-disk result store.
//!
//! Completed run bodies are persisted under
//! `<dir>/<config_hash:016x>-<workload_hash:016x>.json` — the same key the
//! in-flight registry uses — so a result survives server restarts and any
//! later identical submission is served from disk without touching the
//! engine. Writes go through a `.tmp` + rename so a crash mid-write never
//! leaves a torn entry, and keys are validated against the fixed
//! `hex-hex` shape before touching the filesystem (a `GET /result/<key>`
//! can never escape the store directory).

use std::fs;
use std::io;
use std::path::PathBuf;

/// The on-disk store; `None` dir means persistence is disabled (in-flight
/// dedupe still works, nothing survives the process).
#[derive(Debug)]
pub struct ResultStore {
    dir: Option<PathBuf>,
}

/// Whether `key` has the canonical `{16 hex}-{16 hex}` shape.
pub fn valid_key(key: &str) -> bool {
    let bytes = key.as_bytes();
    bytes.len() == 33
        && bytes[16] == b'-'
        && bytes
            .iter()
            .enumerate()
            .all(|(i, b)| i == 16 || b.is_ascii_hexdigit())
}

impl ResultStore {
    /// Opens (creating if needed) the store at `dir`.
    pub fn open(dir: Option<PathBuf>) -> io::Result<Self> {
        if let Some(dir) = &dir {
            fs::create_dir_all(dir)?;
        }
        Ok(ResultStore { dir })
    }

    fn path_for(&self, key: &str) -> Option<PathBuf> {
        if !valid_key(key) {
            return None;
        }
        self.dir.as_ref().map(|d| d.join(format!("{key}.json")))
    }

    /// The stored body for `key`, if present.
    pub fn get(&self, key: &str) -> Option<String> {
        fs::read_to_string(self.path_for(key)?).ok()
    }

    /// Persists `body` under `key` (write-then-rename; last writer wins,
    /// which is harmless because equal keys imply bit-identical bodies).
    pub fn put(&self, key: &str, body: &str) -> io::Result<()> {
        let Some(path) = self.path_for(key) else {
            return Ok(());
        };
        let tmp = path.with_extension("json.tmp");
        fs::write(&tmp, body)?;
        fs::rename(&tmp, &path)
    }

    /// Number of stored results.
    pub fn len(&self) -> usize {
        let Some(dir) = &self.dir else { return 0 };
        fs::read_dir(dir)
            .map(|entries| {
                entries
                    .filter_map(|e| e.ok())
                    .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
                    .count()
            })
            .unwrap_or(0)
    }

    /// Whether the store holds no results.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("droplet-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trips_and_survives_reopen() {
        let dir = tmp_dir("roundtrip");
        let key = "00000000deadbeef-00000000c0ffee00";
        {
            let store = ResultStore::open(Some(dir.clone())).unwrap();
            assert!(store.get(key).is_none());
            store.put(key, "{\"digest\": \"abc\"}").unwrap();
            assert_eq!(store.get(key).unwrap(), "{\"digest\": \"abc\"}");
            assert_eq!(store.len(), 1);
        }
        let reopened = ResultStore::open(Some(dir.clone())).unwrap();
        assert_eq!(reopened.get(key).unwrap(), "{\"digest\": \"abc\"}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejects_non_canonical_keys() {
        assert!(valid_key("0123456789abcdef-fedcba9876543210"));
        assert!(!valid_key("../../etc/passwd"));
        assert!(!valid_key("0123456789abcdef_fedcba9876543210"));
        assert!(!valid_key("0123456789abcdef-fedcba987654321"));
        let store = ResultStore::open(Some(tmp_dir("keys"))).unwrap();
        store.put("../escape", "x").unwrap();
        assert!(store.get("../escape").is_none());
        assert!(store.is_empty());
    }

    #[test]
    fn disabled_store_accepts_and_returns_nothing() {
        let store = ResultStore::open(None).unwrap();
        let key = "0123456789abcdef-fedcba9876543210";
        store.put(key, "body").unwrap();
        assert!(store.get(key).is_none());
        assert_eq!(store.len(), 0);
    }
}
