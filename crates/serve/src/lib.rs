//! **droplet-serve** — a long-running experiment service over the DROPLET
//! simulation engine (DESIGN.md §18).
//!
//! The service accepts experiment specs as flat JSON, validates them
//! through the same [`droplet::specparse`] parsers the CLI uses, and
//! schedules simulations on the shared [`droplet::JobPool`] and
//! [`droplet::TraceCache`] with warm-snapshot fork reuse across a sweep's
//! cells. Two layers keep repeated work off the engine:
//!
//! * **in-flight dedupe** ([`dedupe`]): concurrent identical submissions —
//!   equal `(config_hash, workload_hash)` keys — share one engine run and
//!   all receive bit-identical results;
//! * **a content-addressed result store** ([`store`]): completed canonical
//!   bodies persist on disk under their key and answer later identical
//!   submissions across restarts.
//!
//! Everything is hand-rolled over [`std::net`] — the service adds no
//! dependencies to the workspace.
//!
//! # Endpoints
//!
//! | Endpoint | Body | Answer |
//! |---|---|---|
//! | `POST /run` | spec | canonical result JSON (`?stream=1`: chunked JSONL epochs, then the result) |
//! | `POST /sweep` | spec + `prefetchers` list | per-cell results over one shared warm-up |
//! | `GET /result/<key>` | — | stored result, 404 if absent |
//! | `GET /stats` | — | service counters |
//! | `GET /healthz` | — | liveness |
//!
//! Responses carry `X-Droplet-Source: engine|inflight|store`; bodies are
//! byte-identical regardless of source.

pub mod dedupe;
pub mod http;
pub mod json;
pub mod server;
pub mod spec;
pub mod store;

pub use dedupe::{Claim, Inflight, JobCell};
pub use server::{spawn, RunOutcome, ServerHandle, ServerOptions, ServerState, Submission};
pub use spec::RunSpec;
pub use store::ResultStore;
