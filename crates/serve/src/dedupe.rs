//! In-flight job deduplication.
//!
//! Identical submissions — equal `(config_hash, workload_hash)` keys — are
//! guaranteed bit-identical results, so only the first concurrent claimant
//! (the *leader*) runs the engine; every later claimant (a *follower*)
//! subscribes to the leader's cell and receives the same `Arc`'d outcome.
//! Followers can also replay the leader's live [`EpochStream`] from the
//! first line, because the stream retains its lines until the cell drops.
//!
//! The registry only tracks jobs that are *running*: the leader publishes
//! its outcome to the cell (waking all followers) and then removes the
//! key, so a submission that arrives after completion misses the registry
//! and falls through to the result store. Leader panics are converted to
//! a failed cell by the caller — a poisoned job never wedges the registry
//! (locks recover from poisoning, mirroring the trace-cache contract).

use droplet_obs::EpochStream;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One in-flight job: completion state plus the live epoch stream.
#[derive(Debug)]
pub struct JobCell<T> {
    state: Mutex<CellState<T>>,
    done: Condvar,
    /// Live epoch lines; the leader attaches this to its run, followers
    /// replay it from line zero.
    pub stream: Arc<EpochStream>,
}

#[derive(Debug)]
enum CellState<T> {
    Running,
    Done(Arc<T>),
    Failed(String),
}

impl<T> JobCell<T> {
    fn new() -> Arc<Self> {
        Arc::new(JobCell {
            state: Mutex::new(CellState::Running),
            done: Condvar::new(),
            stream: EpochStream::new(),
        })
    }

    /// Blocks until the leader publishes, then returns the shared outcome
    /// (or the leader's failure message).
    pub fn wait(&self) -> Result<Arc<T>, String> {
        let mut state = lock_recover(&self.state);
        loop {
            match &*state {
                CellState::Running => {
                    state = self
                        .done
                        .wait(state)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                CellState::Done(out) => return Ok(Arc::clone(out)),
                CellState::Failed(msg) => return Err(msg.clone()),
            }
        }
    }

    fn publish(&self, outcome: Result<Arc<T>, String>) {
        let mut state = lock_recover(&self.state);
        *state = match outcome {
            Ok(out) => CellState::Done(out),
            Err(msg) => CellState::Failed(msg),
        };
        drop(state);
        self.done.notify_all();
    }
}

/// How a submission claimed its key.
pub enum Claim<T> {
    /// First claimant: run the job, then [`Inflight::complete`] the cell.
    Lead(Arc<JobCell<T>>),
    /// A leader is already running this key: [`JobCell::wait`] for it.
    Follow(Arc<JobCell<T>>),
}

/// The in-flight registry: key → running job cell.
#[derive(Debug, Default)]
pub struct Inflight<T> {
    cells: Mutex<HashMap<String, Arc<JobCell<T>>>>,
}

impl<T> Inflight<T> {
    /// An empty registry.
    pub fn new() -> Self {
        Inflight {
            cells: Mutex::new(HashMap::new()),
        }
    }

    /// Claims `key`: the first concurrent claimant leads, the rest follow.
    pub fn claim(&self, key: &str) -> Claim<T> {
        let mut cells = lock_recover(&self.cells);
        if let Some(cell) = cells.get(key) {
            return Claim::Follow(Arc::clone(cell));
        }
        let cell = JobCell::new();
        cells.insert(key.to_string(), Arc::clone(&cell));
        Claim::Lead(cell)
    }

    /// Publishes the leader's outcome and retires the key.
    ///
    /// Order matters for correctness with the result store: the leader
    /// persists to the store *before* calling this, so a submission that
    /// misses the registry after removal is guaranteed to hit the store.
    /// The stream is finished here so followers' replay loops terminate
    /// even when the run recorded no epochs (obs off) or failed.
    pub fn complete(&self, key: &str, cell: &JobCell<T>, outcome: Result<Arc<T>, String>) {
        cell.stream.finish();
        cell.publish(outcome);
        lock_recover(&self.cells).remove(key);
    }

    /// Number of keys currently running.
    pub fn len(&self) -> usize {
        lock_recover(&self.cells).len()
    }

    /// Whether no job is in flight.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;

    /// N concurrent claimants of one key: exactly one leads and executes,
    /// every follower receives the leader's exact `Arc`.
    #[test]
    fn concurrent_identical_claims_share_one_execution() {
        let inflight = Arc::new(Inflight::<u64>::new());
        let runs = Arc::new(AtomicUsize::new(0));
        let start = Arc::new(Barrier::new(8));
        let results: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let (inflight, runs, start) =
                        (Arc::clone(&inflight), Arc::clone(&runs), Arc::clone(&start));
                    s.spawn(move || {
                        start.wait();
                        match inflight.claim("job") {
                            Claim::Lead(cell) => {
                                // Hold the cell long enough that every
                                // other claimant lands as a follower.
                                std::thread::sleep(std::time::Duration::from_millis(50));
                                runs.fetch_add(1, Ordering::SeqCst);
                                let out = Arc::new(0xd1ce_u64);
                                inflight.complete("job", &cell, Ok(Arc::clone(&out)));
                                *out
                            }
                            Claim::Follow(cell) => *cell.wait().unwrap(),
                        }
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(runs.load(Ordering::SeqCst), 1, "exactly one execution");
        assert!(results.iter().all(|&r| r == 0xd1ce));
        assert!(inflight.is_empty(), "key retired after completion");
    }

    /// A failed leader propagates its message to every follower and
    /// retires the key so the next claim leads afresh.
    #[test]
    fn failed_leader_releases_followers_and_key() {
        let inflight = Inflight::<u64>::new();
        let Claim::Lead(lead) = inflight.claim("job") else {
            panic!("first claim must lead")
        };
        let Claim::Follow(follow) = inflight.claim("job") else {
            panic!("second claim must follow")
        };
        std::thread::scope(|s| {
            let waiter = s.spawn(|| follow.wait());
            inflight.complete("job", &lead, Err("engine panicked".into()));
            assert_eq!(waiter.join().unwrap().unwrap_err(), "engine panicked");
        });
        assert!(follow.stream.is_finished());
        assert!(matches!(inflight.claim("job"), Claim::Lead(_)));
    }
}
