//! The experiment service: spec in, deduped simulation out.
//!
//! Request lifecycle for `POST /run`:
//!
//! 1. the body is validated into a [`RunSpec`] (field-level 400 on
//!    rejection — the same message `droplet-sim` prints for the flag);
//! 2. the job key `{config_hash}-{workload_hash}` is checked against the
//!    on-disk [`ResultStore`] — a hit answers from disk without touching
//!    the engine;
//! 3. the in-flight registry is claimed: the first concurrent submission
//!    leads (spawning the engine under the concurrency limiter), every
//!    other identical submission follows the leader's cell and shares the
//!    one result;
//! 4. the leader persists the canonical body to the store *before*
//!    retiring the key, so late arrivals that miss the registry are
//!    guaranteed a store hit.
//!
//! Response bodies are canonical — byte-identical whether they came from
//! the engine, an in-flight merge, or the store (wall-clock time is
//! excluded; how the bytes were obtained rides in the `X-Droplet-Source`
//! header). `?stream=1` upgrades the response to chunked JSONL: one line
//! per measurement epoch as the engine produces them (followers replay
//! the leader's stream from its first line), then the result line.
//!
//! `POST /sweep` fans one workload across a `prefetchers` list on the
//! shared [`JobPool`] with warm-snapshot forking (`run_sweep`), so a
//! client's sweep cells reuse one warm-up simulation. Sweep cells bypass
//! the in-flight registry (the fork path owns their scheduling) but land
//! in the same store under the same per-cell keys `POST /run` would use —
//! the results are bit-identical by the fork contract.

use crate::dedupe::{Claim, Inflight, JobCell};
use crate::http::{self, ChunkedResponse, Request};
use crate::json;
use crate::spec::RunSpec;
use crate::store::{valid_key, ResultStore};
use droplet::trace::SliceSource;
use droplet::{
    run_sweep, run_workload_with_stream, JobPool, RunResult, SpecError, SweepCell, SystemConfig,
    TraceCache,
};
use droplet_graph::DatasetScale;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;

/// Server construction options.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Bind address; port 0 picks a free port (tests).
    pub addr: String,
    /// Result-store directory; `None` disables persistence.
    pub store_dir: Option<PathBuf>,
    /// Scale used when a spec omits `scale`.
    pub default_scale: DatasetScale,
    /// Worker-pool width override (`None`: `DROPLET_THREADS`/all cores).
    pub threads: Option<usize>,
    /// Maximum concurrent engine runs (0: the pool width).
    pub max_concurrent: usize,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            addr: "127.0.0.1:0".to_string(),
            store_dir: None,
            default_scale: DatasetScale::Tiny,
            threads: None,
            max_concurrent: 0,
        }
    }
}

/// Monotonic service counters (`GET /stats`).
#[derive(Debug, Default)]
pub struct Stats {
    /// Specs accepted on `/run` and `/sweep`.
    pub submissions: AtomicU64,
    /// Submissions answered by joining an in-flight identical job.
    pub dedupe_hits: AtomicU64,
    /// Submissions (or sweep cells) answered from the result store.
    pub store_hits: AtomicU64,
    /// Simulations actually executed by the engine.
    pub engine_runs: AtomicU64,
    /// Specs rejected with a 400.
    pub rejects: AtomicU64,
}

impl Stats {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// Counting semaphore bounding concurrent engine runs.
#[derive(Debug)]
struct Limiter {
    permits: Mutex<usize>,
    freed: Condvar,
}

impl Limiter {
    fn new(permits: usize) -> Self {
        Limiter {
            permits: Mutex::new(permits.max(1)),
            freed: Condvar::new(),
        }
    }

    fn acquire(&self) -> LimiterPermit<'_> {
        let mut permits = self.permits.lock().unwrap_or_else(PoisonError::into_inner);
        while *permits == 0 {
            permits = self
                .freed
                .wait(permits)
                .unwrap_or_else(PoisonError::into_inner);
        }
        *permits -= 1;
        LimiterPermit { limiter: self }
    }
}

struct LimiterPermit<'a> {
    limiter: &'a Limiter,
}

impl Drop for LimiterPermit<'_> {
    fn drop(&mut self) {
        let mut permits = self
            .limiter
            .permits
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        *permits += 1;
        drop(permits);
        self.limiter.freed.notify_one();
    }
}

/// How a `/run` submission resolved.
pub enum Submission {
    /// Answered from the store — no live epochs to stream.
    Ready {
        /// The stored outcome.
        outcome: Arc<RunOutcome>,
        /// Always `"store"`.
        source: &'static str,
    },
    /// Running (this submission leads) or joined in flight (it follows);
    /// consume `cell.stream` live, then [`JobCell::wait`].
    Pending {
        /// The shared job cell.
        cell: Arc<JobCell<RunOutcome>>,
        /// `"engine"` for the leader, `"inflight"` for followers.
        source: &'static str,
    },
}

/// A completed job as served to clients: the canonical body plus the
/// result digest (asserted bit-identical across deduped submissions).
#[derive(Debug)]
pub struct RunOutcome {
    /// The job key (`{config_hash:016x}-{workload_hash:016x}`).
    pub key: String,
    /// [`droplet::RunResult::digest`] of the simulation.
    pub digest: u64,
    /// Canonical single-line JSON response body.
    pub body: String,
}

/// Shared server state: engine seams, dedupe registry, store, counters.
pub struct ServerState {
    options: ServerOptions,
    bases: [SystemConfig; 3],
    /// Shared trace store: every submission of a workload builds it once.
    pub traces: TraceCache,
    /// Worker pool sweep cells fan out over.
    pub pool: JobPool,
    /// In-flight dedupe registry.
    pub inflight: Inflight<RunOutcome>,
    /// Content-addressed result store.
    pub store: ResultStore,
    /// Service counters.
    pub stats: Stats,
    limiter: Limiter,
}

fn scale_index(scale: DatasetScale) -> usize {
    match scale {
        DatasetScale::Tiny => 0,
        DatasetScale::Small => 1,
        DatasetScale::Sim => 2,
    }
}

impl ServerState {
    /// Builds the state (opening the store directory) without binding.
    pub fn new(options: ServerOptions) -> io::Result<Arc<Self>> {
        let bases = [
            droplet::experiments::ExperimentCtx::at(DatasetScale::Tiny).base,
            droplet::experiments::ExperimentCtx::at(DatasetScale::Small).base,
            droplet::experiments::ExperimentCtx::at(DatasetScale::Sim).base,
        ];
        let pool = match options.threads {
            Some(n) => JobPool::with_threads(n),
            None => JobPool::from_env(),
        };
        let max_concurrent = if options.max_concurrent == 0 {
            pool.threads()
        } else {
            options.max_concurrent
        };
        let store = ResultStore::open(options.store_dir.clone())?;
        Ok(Arc::new(ServerState {
            options,
            bases,
            traces: TraceCache::new(),
            pool,
            inflight: Inflight::new(),
            store,
            stats: Stats::default(),
            limiter: Limiter::new(max_concurrent),
        }))
    }

    /// The baseline configuration for `scale`.
    pub fn base_for(&self, scale: DatasetScale) -> &SystemConfig {
        &self.bases[scale_index(scale)]
    }

    /// Renders the canonical response body for one completed cell.
    ///
    /// Deterministic by construction: every field derives from the
    /// simulation state, and the manifest's wall-clock is zeroed — so the
    /// engine, an in-flight merge, and the store all serve the same
    /// bytes.
    fn render_body(
        &self,
        spec: &RunSpec,
        kind: droplet::PrefetcherKind,
        key: &str,
        r: &RunResult,
    ) -> String {
        let mut manifest = r.manifest.clone();
        manifest.workload = Some(spec.workload().label());
        manifest.wall_ms = 0.0;
        json::object(&[
            ("key", json::quote(key)),
            ("digest", json::quote(&format!("{:016x}", r.digest()))),
            ("spec", spec.render_json(kind)),
            ("cycles", r.core.cycles.to_string()),
            ("instructions", r.core.instructions.to_string()),
            ("ipc", format!("{:.4}", r.core.ipc())),
            ("llc_mpki", format!("{:.4}", r.llc_mpki())),
            ("l2_hit_rate", format!("{:.4}", r.l2_hit_rate())),
            ("bpki", format!("{:.4}", r.bpki())),
            (
                "bw_utilization",
                format!("{:.4}", r.bandwidth_utilization()),
            ),
            ("warmup_ops_applied", r.warmup_ops_applied.to_string()),
            (
                "epochs",
                r.journal
                    .as_ref()
                    .map(|j| j.epoch_count().to_string())
                    .unwrap_or_else(|| "0".to_string()),
            ),
            ("manifest", manifest.render_json()),
        ])
    }

    /// Leader path: runs the engine (bounded by the limiter), persists
    /// the body, publishes to `cell`, retires the key. Panics become a
    /// failed cell; they never wedge the registry or the cache.
    fn run_leader(
        &self,
        spec: &RunSpec,
        cfg: &SystemConfig,
        key: &str,
        cell: &JobCell<RunOutcome>,
    ) {
        let permit = self.limiter.acquire();
        let run = catch_unwind(AssertUnwindSafe(|| {
            let bundle = self.traces.get_or_build(spec.workload(), spec.budget);
            run_workload_with_stream(
                &mut SliceSource::new(&bundle.ops),
                &bundle,
                cfg,
                spec.warmup(),
                Some(Arc::clone(&cell.stream)),
            )
        }));
        drop(permit);
        match run {
            Ok(r) => {
                Stats::bump(&self.stats.engine_runs);
                let outcome = Arc::new(RunOutcome {
                    key: key.to_string(),
                    digest: r.digest(),
                    body: self.render_body(spec, spec.prefetcher, key, &r),
                });
                if let Err(e) = self.store.put(key, &outcome.body) {
                    eprintln!("droplet-serve: store write failed for {key}: {e}");
                }
                self.inflight.complete(key, cell, Ok(outcome));
            }
            Err(panic) => {
                let msg = panic_message(panic);
                eprintln!("droplet-serve: engine run {key} panicked: {msg}");
                self.inflight.complete(key, cell, Err(msg));
            }
        }
    }

    /// Runs (or joins, or loads) the job for `spec`.
    ///
    /// A store hit is [`Submission::Ready`] immediately; otherwise the
    /// submission is [`Submission::Pending`] on a cell whose stream can
    /// be consumed live while the job runs (the leader's engine executes
    /// on its own thread).
    pub fn submit(self: &Arc<Self>, spec: &RunSpec) -> Submission {
        Stats::bump(&self.stats.submissions);
        let cfg = spec.config(self.base_for(spec.scale));
        let key = spec.key(&cfg);
        if let Some(body) = self.store.get(&key) {
            Stats::bump(&self.stats.store_hits);
            let digest = digest_of(&body).unwrap_or(0);
            return Submission::Ready {
                outcome: Arc::new(RunOutcome { key, digest, body }),
                source: "store",
            };
        }
        match self.inflight.claim(&key) {
            Claim::Lead(cell) => {
                let state = Arc::clone(self);
                let (spec, cfg, key_owned, run_cell) =
                    (spec.clone(), cfg, key.clone(), Arc::clone(&cell));
                std::thread::spawn(move || {
                    state.run_leader(&spec, &cfg, &key_owned, &run_cell);
                });
                Submission::Pending {
                    cell,
                    source: "engine",
                }
            }
            Claim::Follow(cell) => {
                Stats::bump(&self.stats.dedupe_hits);
                Submission::Pending {
                    cell,
                    source: "inflight",
                }
            }
        }
    }

    /// [`ServerState::submit`] driven to completion (non-streaming
    /// callers, tests, the load driver).
    pub fn submit_and_wait(
        self: &Arc<Self>,
        spec: &RunSpec,
    ) -> (Result<Arc<RunOutcome>, String>, &'static str) {
        match self.submit(spec) {
            Submission::Ready { outcome, source } => (Ok(outcome), source),
            Submission::Pending { cell, source } => (cell.wait(), source),
        }
    }

    /// `POST /sweep`: one workload across `spec.prefetchers` over a
    /// shared warm-up on the pool. Returns the per-cell canonical bodies
    /// in list order plus the source tag.
    pub fn submit_sweep(&self, spec: &RunSpec) -> Result<(Vec<String>, &'static str), String> {
        Stats::bump(&self.stats.submissions);
        let base = self.base_for(spec.scale);
        let cells: Vec<(droplet::PrefetcherKind, SystemConfig, String)> = spec
            .prefetchers
            .iter()
            .map(|&kind| {
                let cfg = spec.config_for(base, kind);
                let key = spec.key(&cfg);
                (kind, cfg, key)
            })
            .collect();
        let stored: Vec<Option<String>> = cells
            .iter()
            .map(|(_, _, key)| self.store.get(key))
            .collect();
        if stored.iter().all(|b| b.is_some()) {
            self.stats
                .store_hits
                .fetch_add(cells.len() as u64, Ordering::Relaxed);
            return Ok((stored.into_iter().flatten().collect(), "store"));
        }
        let run = catch_unwind(AssertUnwindSafe(|| {
            let bundle = self.traces.get_or_build(spec.workload(), spec.budget);
            let sweep_cells: Vec<SweepCell> = cells
                .iter()
                .map(|(_, cfg, _)| SweepCell {
                    bundle: Arc::clone(&bundle),
                    cfg: cfg.clone(),
                })
                .collect();
            run_sweep(&self.pool, &sweep_cells, spec.warmup(), true)
        }));
        let results = match run {
            Ok(results) => results,
            Err(panic) => return Err(panic_message(panic)),
        };
        self.stats
            .engine_runs
            .fetch_add(cells.len() as u64, Ordering::Relaxed);
        let bodies: Vec<String> = cells
            .iter()
            .zip(&results)
            .map(|((kind, _, key), r)| {
                let body = self.render_body(spec, *kind, key, r);
                if let Err(e) = self.store.put(key, &body) {
                    eprintln!("droplet-serve: store write failed for {key}: {e}");
                }
                body
            })
            .collect();
        Ok((bodies, "engine"))
    }

    fn stats_body(&self) -> String {
        json::object(&[
            (
                "submissions",
                self.stats.submissions.load(Ordering::Relaxed).to_string(),
            ),
            (
                "dedupe_hits",
                self.stats.dedupe_hits.load(Ordering::Relaxed).to_string(),
            ),
            (
                "store_hits",
                self.stats.store_hits.load(Ordering::Relaxed).to_string(),
            ),
            (
                "engine_runs",
                self.stats.engine_runs.load(Ordering::Relaxed).to_string(),
            ),
            (
                "rejects",
                self.stats.rejects.load(Ordering::Relaxed).to_string(),
            ),
            ("inflight", self.inflight.len().to_string()),
            ("store_len", self.store.len().to_string()),
            ("threads", self.pool.threads().to_string()),
            (
                "trace_cache",
                json::object(&[
                    ("len", self.traces.len().to_string()),
                    ("resident_bytes", self.traces.resident_bytes().to_string()),
                    ("spilled", self.traces.spilled_len().to_string()),
                ]),
            ),
        ])
    }
}

fn panic_message(panic: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "engine panicked".to_string()
    }
}

/// Extracts the `"digest"` field from a canonical stored body.
fn digest_of(body: &str) -> Option<u64> {
    let tail = body.split("\"digest\": \"").nth(1)?;
    u64::from_str_radix(tail.get(..16)?, 16).ok()
}

fn error_body(e: &SpecError) -> String {
    json::object(&[
        ("error", json::quote(&e.to_string())),
        ("field", json::quote(&e.field)),
    ])
}

/// Streams `cell`'s epoch lines live (from line zero — followers replay
/// the leader's whole window, late lines block until pushed), then the
/// final result (or error) line.
fn respond_streaming(
    stream: &mut TcpStream,
    source: &str,
    cell: Option<&JobCell<RunOutcome>>,
    ready: Option<Arc<RunOutcome>>,
) -> io::Result<()> {
    let mut out = ChunkedResponse::start(
        stream,
        "application/x-ndjson",
        &[("X-Droplet-Source", source)],
    )?;
    if let Some(cell) = cell {
        let mut cursor = 0usize;
        while let Some(line) = cell.stream.next_line(cursor) {
            cursor += 1;
            out.write_line(&line)?;
        }
    }
    let final_line = match (ready, cell) {
        (Some(outcome), _) => outcome.body.clone(),
        (None, Some(cell)) => match cell.wait() {
            Ok(outcome) => outcome.body.clone(),
            Err(msg) => json::object(&[("error", json::quote(&msg))]),
        },
        (None, None) => unreachable!("a submission is ready or pending"),
    };
    out.write_line(&final_line)?;
    out.finish()
}

fn handle_run(state: &Arc<ServerState>, req: &Request, stream: &mut TcpStream) -> io::Result<()> {
    let spec = match RunSpec::parse(&req.body, state.options.default_scale) {
        Ok(spec) => spec,
        Err(e) => {
            Stats::bump(&state.stats.rejects);
            return http::respond(stream, 400, "application/json", &[], &error_body(&e));
        }
    };
    let want_stream = matches!(req.query_value("stream"), Some("1" | "true"));
    match state.submit(&spec) {
        Submission::Ready { outcome, source } if want_stream => {
            respond_streaming(stream, source, None, Some(outcome))
        }
        Submission::Ready { outcome, source } => http::respond(
            stream,
            200,
            "application/json",
            &[("X-Droplet-Source", source)],
            &outcome.body,
        ),
        Submission::Pending { cell, source } if want_stream => {
            respond_streaming(stream, source, Some(&cell), None)
        }
        Submission::Pending { cell, source } => match cell.wait() {
            Ok(outcome) => http::respond(
                stream,
                200,
                "application/json",
                &[("X-Droplet-Source", source)],
                &outcome.body,
            ),
            Err(msg) => http::respond(
                stream,
                500,
                "application/json",
                &[],
                &json::object(&[("error", json::quote(&msg))]),
            ),
        },
    }
}

fn handle_sweep(state: &Arc<ServerState>, req: &Request, stream: &mut TcpStream) -> io::Result<()> {
    let spec = match RunSpec::parse(&req.body, state.options.default_scale) {
        Ok(spec) if spec.prefetchers.is_empty() => {
            Stats::bump(&state.stats.rejects);
            let e = SpecError {
                field: "prefetchers".to_string(),
                value: String::new(),
                expected: "a non-empty list of prefetcher names",
            };
            return http::respond(stream, 400, "application/json", &[], &error_body(&e));
        }
        Ok(spec) => spec,
        Err(e) => {
            Stats::bump(&state.stats.rejects);
            return http::respond(stream, 400, "application/json", &[], &error_body(&e));
        }
    };
    match state.submit_sweep(&spec) {
        Ok((bodies, source)) => {
            let body = format!("{{\"results\": [{}]}}", bodies.join(", "));
            http::respond(
                stream,
                200,
                "application/json",
                &[("X-Droplet-Source", source)],
                &body,
            )
        }
        Err(msg) => http::respond(
            stream,
            500,
            "application/json",
            &[],
            &json::object(&[("error", json::quote(&msg))]),
        ),
    }
}

fn handle_connection(state: &Arc<ServerState>, mut stream: TcpStream) -> io::Result<()> {
    let Some(req) = http::read_request(&stream)? else {
        return Ok(());
    };
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => http::respond(&mut stream, 200, "text/plain", &[], "ok\n"),
        ("GET", "/stats") => http::respond(
            &mut stream,
            200,
            "application/json",
            &[],
            &state.stats_body(),
        ),
        ("POST", "/run") => handle_run(state, &req, &mut stream),
        ("POST", "/sweep") => handle_sweep(state, &req, &mut stream),
        ("GET", path) if path.starts_with("/result/") => {
            let key = &path["/result/".len()..];
            if !valid_key(key) {
                return http::respond(
                    &mut stream,
                    400,
                    "application/json",
                    &[],
                    "{\"error\": \"malformed key\"}",
                );
            }
            match state.store.get(key) {
                Some(body) => http::respond(
                    &mut stream,
                    200,
                    "application/json",
                    &[("X-Droplet-Source", "store")],
                    &body,
                ),
                None => http::respond(
                    &mut stream,
                    404,
                    "application/json",
                    &[],
                    "{\"error\": \"no stored result for key\"}",
                ),
            }
        }
        ("POST", _) | ("GET", _) => http::respond(
            &mut stream,
            404,
            "application/json",
            &[],
            "{\"error\": \"no such endpoint\"}",
        ),
        _ => http::respond(
            &mut stream,
            405,
            "application/json",
            &[],
            "{\"error\": \"method not allowed\"}",
        ),
    }
}

/// A running server bound to a socket.
pub struct ServerHandle {
    /// The bound address (resolves port 0).
    pub addr: SocketAddr,
    state: Arc<ServerState>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The shared state (tests and the load driver read counters here).
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// `host:port` string for client helpers.
    pub fn addr_string(&self) -> String {
        self.addr.to_string()
    }

    /// Stops accepting and joins the accept loop. Connections already
    /// being served finish on their own threads.
    pub fn shutdown(mut self) {
        self.stop_accepting();
    }

    fn stop_accepting(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a no-op connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.stop_accepting();
        }
    }
}

/// Binds and serves `options` on a background accept thread.
pub fn spawn(options: ServerOptions) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&options.addr)?;
    let addr = listener.local_addr()?;
    let state = ServerState::new(options)?;
    let stop = Arc::new(AtomicBool::new(false));
    let accept_state = Arc::clone(&state);
    let accept_stop = Arc::clone(&stop);
    let accept_thread = std::thread::spawn(move || {
        for conn in listener.incoming() {
            if accept_stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(conn) = conn else { continue };
            let state = Arc::clone(&accept_state);
            std::thread::spawn(move || {
                if let Err(e) = handle_connection(&state, conn) {
                    eprintln!("droplet-serve: connection error: {e}");
                }
            });
        }
    });
    Ok(ServerHandle {
        addr,
        state,
        stop,
        accept_thread: Some(accept_thread),
    })
}
