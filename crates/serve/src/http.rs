//! A deliberately small HTTP/1.1 layer over [`std::net`].
//!
//! One request per connection (`Connection: close`), bodies sized by
//! `Content-Length`, responses either sized or `Transfer-Encoding:
//! chunked` for the live epoch stream. Enough protocol for `curl`, the
//! load-test driver, and the CI smoke job — and nothing that would pull a
//! dependency into the workspace.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Largest accepted request body; experiment specs are a few hundred
/// bytes, so anything bigger is a client error, not a workload.
const MAX_BODY: usize = 64 * 1024;

/// A parsed request: method, decoded path, query pairs, body.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, …
    pub method: String,
    /// Path without the query string (`/run`).
    pub path: String,
    /// Query pairs in order (`?stream=1` → `[("stream", "1")]`).
    pub query: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length`).
    pub body: String,
}

impl Request {
    /// First value of query parameter `name`.
    pub fn query_value(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Reads one request from `stream`. Returns `None` on a clean EOF before
/// any bytes (client connected and left), an error description otherwise.
pub fn read_request(stream: &TcpStream) -> io::Result<Option<Request>> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let (Some(method), Some(target)) = (parts.next(), parts.next()) else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "malformed request line",
        ));
    };
    let (path, query_text) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q),
        None => (target.to_string(), ""),
    };
    let query = query_text
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (kv.to_string(), String::new()),
        })
        .collect();
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            break;
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "bad content-length")
                })?;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "request body too large",
        ));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8(body)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "body is not UTF-8"))?;
    Ok(Some(Request {
        method: method.to_string(),
        path,
        query,
        body,
    }))
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Writes a sized response. `extra_headers` ride along verbatim
/// (`("X-Droplet-Source", "store")`).
pub fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &str,
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        reason(status),
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// A chunked-transfer response in progress: one chunk per JSONL line.
pub struct ChunkedResponse<'a> {
    stream: &'a mut TcpStream,
}

impl<'a> ChunkedResponse<'a> {
    /// Writes the response head and returns the chunk writer.
    pub fn start(
        stream: &'a mut TcpStream,
        content_type: &str,
        extra_headers: &[(&str, &str)],
    ) -> io::Result<Self> {
        let mut head = format!(
            "HTTP/1.1 200 OK\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n"
        );
        for (name, value) in extra_headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        Ok(ChunkedResponse { stream })
    }

    /// Sends `line` (a newline is appended) as one chunk, flushed so the
    /// client sees each epoch as the engine produces it.
    pub fn write_line(&mut self, line: &str) -> io::Result<()> {
        let payload = format!("{line}\n");
        self.stream
            .write_all(format!("{:x}\r\n", payload.len()).as_bytes())?;
        self.stream.write_all(payload.as_bytes())?;
        self.stream.write_all(b"\r\n")?;
        self.stream.flush()
    }

    /// Terminates the chunk stream.
    pub fn finish(self) -> io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}

/// A decoded client-side response: status, headers, body.
pub type ClientResponse = (u16, Vec<(String, String)>, String);

/// Client-side helper (tests, load driver, smoke job): sends `method
/// path` with `body` to `addr`, returns `(status, headers, body)` with
/// any chunked transfer decoded.
pub fn request(addr: &str, method: &str, path: &str, body: &str) -> io::Result<ClientResponse> {
    let mut stream = TcpStream::connect(addr)?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    let mut headers = Vec::new();
    let mut chunked = false;
    let mut content_length = None;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let (name, value) = (name.trim().to_string(), value.trim().to_string());
            if name.eq_ignore_ascii_case("transfer-encoding") && value.contains("chunked") {
                chunked = true;
            }
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.parse::<usize>().ok();
            }
            headers.push((name, value));
        }
    }
    let mut body = String::new();
    if chunked {
        loop {
            let mut size_line = String::new();
            if reader.read_line(&mut size_line)? == 0 {
                break;
            }
            let size = usize::from_str_radix(size_line.trim(), 16)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad chunk size"))?;
            if size == 0 {
                break;
            }
            let mut chunk = vec![0u8; size + 2]; // payload + CRLF
            reader.read_exact(&mut chunk)?;
            chunk.truncate(size);
            body.push_str(&String::from_utf8_lossy(&chunk));
        }
    } else if let Some(n) = content_length {
        let mut buf = vec![0u8; n];
        reader.read_exact(&mut buf)?;
        body.push_str(&String::from_utf8_lossy(&buf));
    } else {
        reader.read_to_string(&mut body)?;
    }
    Ok((status, headers, body))
}

/// Header lookup by case-insensitive name.
pub fn header<'h>(headers: &'h [(String, String)], name: &str) -> Option<&'h str> {
    headers
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case(name))
        .map(|(_, v)| v.as_str())
}
