//! `droplet-serve` — the experiment service daemon.
//!
//! ```text
//! droplet-serve [--addr 127.0.0.1:8642] [--store-dir droplet-store]
//!               [--scale <tiny|small|sim>] [--threads <n>]
//!               [--max-concurrent <n>]
//! ```
//!
//! Runs until killed. `--scale` sets the default for specs that omit one;
//! `--max-concurrent` bounds simultaneous engine runs (default: the
//! worker-pool width).

use droplet::specparse;
use droplet_serve::{spawn, ServerOptions};
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!(
        "usage: droplet-serve [--addr <host:port>] [--store-dir <dir>|--no-store]\n\
         \x20                    [--scale <tiny|small|sim>] [--threads <n>] [--max-concurrent <n>]"
    );
    std::process::exit(2);
}

fn flag_value<T>(parsed: Result<T, droplet::SpecError>) -> T {
    parsed.unwrap_or_else(|e| {
        eprintln!("error: --{e}");
        usage()
    })
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let mut options = ServerOptions {
        addr: "127.0.0.1:8642".to_string(),
        store_dir: Some(PathBuf::from("droplet-store")),
        ..ServerOptions::default()
    };
    let mut it = argv[1..].iter();
    while let Some(flag) = it.next() {
        if flag == "--no-store" {
            options.store_dir = None;
            continue;
        }
        let Some(value) = it.next() else {
            eprintln!("error: {flag}: missing value");
            usage()
        };
        match flag.as_str() {
            "--addr" => options.addr = value.clone(),
            "--store-dir" => options.store_dir = Some(PathBuf::from(value)),
            "--scale" => options.default_scale = flag_value(specparse::parse_scale("scale", value)),
            "--threads" => {
                options.threads = Some(flag_value(specparse::parse_positive_usize(
                    "threads", value,
                )))
            }
            "--max-concurrent" => {
                options.max_concurrent =
                    flag_value(specparse::parse_positive_usize("max-concurrent", value))
            }
            _ => {
                eprintln!("error: {flag}: unknown flag");
                usage()
            }
        }
    }
    let store_desc = options
        .store_dir
        .as_ref()
        .map(|d| d.display().to_string())
        .unwrap_or_else(|| "(disabled)".to_string());
    let handle = match spawn(options) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("droplet-serve: cannot bind: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "droplet-serve: listening on {} (store {store_desc}, {} workers)",
        handle.addr,
        handle.state().pool.threads()
    );
    // Serve until killed: the accept loop runs on its own thread, so park
    // this one forever.
    loop {
        std::thread::park();
    }
}
