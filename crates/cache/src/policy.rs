//! Pluggable replacement policies for [`SetAssocCache`](crate::SetAssocCache).
//!
//! The paper fixes true LRU at every level (Table I), but graph workloads
//! are exactly where RRIP-family and signature-based policies diverge from
//! LRU — property streams with giant reuse distances thrash an LRU LLC,
//! while scan-resistant insertion keeps the hot structure working set
//! resident. The policy seam keeps [`ReplacementPolicy::Lru`] bit-identical
//! to the original stamp-LRU fast path (pinned by the golden digests in
//! `crates/core/tests/demand_path_digests.rs`) and adds four RRIP-family
//! alternatives, each lockstep-verified against an executable reference
//! model in `crates/conformance`.
//!
//! # RRPV semantics (shared by Srrip/Brrip/Drrip/Ship)
//!
//! Every way carries a 2-bit re-reference prediction value (RRPV, stored in
//! the same dense array LRU uses for recency stamps). `0` predicts
//! near-immediate re-reference, [`RRPV_MAX`] (3) predicts distant. A demand
//! hit promotes to 0 (hit-promotion policy); a refresh-fill of a resident
//! line promotes likewise. The victim is the lowest-indexed way with
//! RRPV == [`RRPV_MAX`]; if none exists, every way ages by +1 and the scan
//! repeats (at most [`RRPV_MAX`] rounds). Invalid ways always win first.
//!
//! Insertion RRPV is where the policies differ:
//!
//! * **Srrip** inserts at [`RRPV_LONG`] (2).
//! * **Brrip** inserts at [`RRPV_MAX`] (distant), except every
//!   [`BRRIP_LONG_PERIOD`]-th bimodal insertion which inserts at
//!   [`RRPV_LONG`] — a deterministic counter stands in for the paper's
//!   ε-probability so runs stay bit-reproducible.
//! * **Drrip** set-duels: leader sets are pinned to SRRIP or BRRIP by a
//!   fixed position rule (see [`DuelRole::of_set`]), follower sets obey a
//!   [`PSEL_BITS`]-bit saturating counter trained by demand misses
//!   (miss-fills) into leader sets.
//! * **Ship** predicts per region signature: a [`SHCT_ENTRIES`]-entry table
//!   of 2-bit counters, trained up on a line's first demand re-reference
//!   and down when a line is evicted dead (never re-referenced). A zero
//!   counter predicts dead-on-arrival and inserts at [`RRPV_MAX`];
//!   otherwise [`RRPV_LONG`].

/// Replacement policy of one cache level. Carried by
/// [`CacheConfig`](crate::CacheConfig), so it participates in
/// `SystemConfig::warmup_key` and the manifest config hash automatically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReplacementPolicy {
    /// Exact true LRU via per-way recency stamps (the paper's baseline).
    #[default]
    Lru,
    /// Static RRIP: scan-resistant long-interval insertion.
    Srrip,
    /// Bimodal RRIP: mostly-distant insertion, deterministically throttled.
    Brrip,
    /// Dynamic RRIP: set-dueling chooses SRRIP or BRRIP at run time.
    Drrip,
    /// SHiP-style signature-driven insertion depth prediction.
    Ship,
}

/// Maximum (most distant) 2-bit re-reference prediction value.
pub const RRPV_MAX: u64 = 3;
/// "Long" re-reference interval: the SRRIP insertion point.
pub const RRPV_LONG: u64 = RRPV_MAX - 1;
/// Every `BRRIP_LONG_PERIOD`-th bimodal insertion is long instead of
/// distant (deterministic stand-in for SRRIP's ε = 1/32).
pub const BRRIP_LONG_PERIOD: u64 = 32;
/// Width of the DRRIP policy-selection counter.
pub const PSEL_BITS: u32 = 10;
/// Saturation bound of the DRRIP PSEL counter.
pub const PSEL_MAX: u16 = (1 << PSEL_BITS) - 1;
/// PSEL midpoint and initial value; followers run BRRIP at or above it.
pub const PSEL_INIT: u16 = 1 << (PSEL_BITS - 1);
/// Entries in the SHiP signature history counter table (power of two).
pub const SHCT_ENTRIES: usize = 1024;
/// Saturation bound of one 2-bit SHCT counter.
pub const SHCT_MAX: u8 = 3;
/// Initial SHCT counter value: weakly "reuses", so cold signatures insert
/// long until proven dead.
pub const SHCT_INIT: u8 = 1;

impl ReplacementPolicy {
    /// Every policy, in CLI/report order.
    pub const ALL: [ReplacementPolicy; 5] = [
        ReplacementPolicy::Lru,
        ReplacementPolicy::Srrip,
        ReplacementPolicy::Brrip,
        ReplacementPolicy::Drrip,
        ReplacementPolicy::Ship,
    ];

    /// Display name used by reports and manifests.
    pub fn name(self) -> &'static str {
        match self {
            ReplacementPolicy::Lru => "LRU",
            ReplacementPolicy::Srrip => "SRRIP",
            ReplacementPolicy::Brrip => "BRRIP",
            ReplacementPolicy::Drrip => "DRRIP",
            ReplacementPolicy::Ship => "SHiP",
        }
    }

    /// Parses a CLI spelling (case-insensitive): `lru`, `srrip`, `brrip`,
    /// `drrip`, `ship`.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "lru" => Some(ReplacementPolicy::Lru),
            "srrip" => Some(ReplacementPolicy::Srrip),
            "brrip" => Some(ReplacementPolicy::Brrip),
            "drrip" => Some(ReplacementPolicy::Drrip),
            "ship" => Some(ReplacementPolicy::Ship),
            _ => None,
        }
    }

    /// Whether ways carry RRPVs rather than LRU recency stamps.
    pub fn is_rrip_family(self) -> bool {
        self != ReplacementPolicy::Lru
    }
}

impl std::fmt::Display for ReplacementPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// DRRIP role of one set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DuelRole {
    /// Leader pinned to SRRIP insertion; its demand misses bump PSEL up.
    SrripLeader,
    /// Leader pinned to BRRIP insertion; its demand misses bump PSEL down.
    BrripLeader,
    /// Follows the PSEL winner.
    Follower,
}

impl DuelRole {
    /// Fixed leader layout: with `period = min(32, num_sets)`, set `s` is
    /// an SRRIP leader when `s % period == 0` and a BRRIP leader when
    /// `s % period == period / 2`. The `min` keeps both constituencies
    /// populated in the tiny caches the conformance fuzzer uses.
    pub fn of_set(set: usize, num_sets: usize) -> DuelRole {
        let period = num_sets.min(32);
        if set.is_multiple_of(period) {
            DuelRole::SrripLeader
        } else if set % period == period / 2 {
            DuelRole::BrripLeader
        } else {
            DuelRole::Follower
        }
    }
}

/// SHiP region signature of a line: the line index folded into the SHCT
/// index space. Stands in for the paper's PC signature — the cache sees
/// addresses, not PCs, and on graph traces the address region (structure
/// vs property pages) is exactly what separates reuse behaviour.
pub fn ship_signature(line: u64) -> u16 {
    ((line ^ (line >> 10) ^ (line >> 20)) & (SHCT_ENTRIES as u64 - 1)) as u16
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_every_policy() {
        for p in ReplacementPolicy::ALL {
            assert_eq!(ReplacementPolicy::parse(&p.name().to_lowercase()), Some(p));
        }
        assert_eq!(
            ReplacementPolicy::parse("SHIP"),
            Some(ReplacementPolicy::Ship)
        );
        assert_eq!(ReplacementPolicy::parse("plru"), None);
    }

    #[test]
    fn default_is_lru() {
        assert_eq!(ReplacementPolicy::default(), ReplacementPolicy::Lru);
        assert!(!ReplacementPolicy::Lru.is_rrip_family());
        assert!(ReplacementPolicy::Ship.is_rrip_family());
    }

    #[test]
    fn duel_roles_cover_both_leaders_in_tiny_caches() {
        for num_sets in [4usize, 8, 16, 64, 8192] {
            let roles: Vec<DuelRole> = (0..num_sets)
                .map(|s| DuelRole::of_set(s, num_sets))
                .collect();
            assert!(roles.contains(&DuelRole::SrripLeader));
            assert!(roles.contains(&DuelRole::BrripLeader));
            assert_eq!(roles[0], DuelRole::SrripLeader);
        }
    }

    #[test]
    fn signatures_fit_the_shct() {
        for line in [0u64, 1, 63, 1024, 1 << 30, u64::MAX - 1] {
            assert!((ship_signature(line) as usize) < SHCT_ENTRIES);
        }
        // Nearby lines in different regions get different signatures.
        assert_ne!(ship_signature(3), ship_signature(4));
    }
}
