//! Cache geometry and latency configuration (paper Table I + CACTI-derived
//! latencies for the swept LLC capacities of Fig. 4a).

use crate::policy::ReplacementPolicy;
use droplet_trace::LINE_BYTES;

/// Geometry and timing of one cache level.
///
/// # Example
///
/// ```
/// use droplet_cache::CacheConfig;
/// let l2 = CacheConfig::l2();
/// assert_eq!(l2.size_bytes, 256 * 1024);
/// assert_eq!(l2.num_sets(), 512);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// Human-readable level name ("L1D", "L2", "L3").
    pub name: &'static str,
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Ways per set.
    pub assoc: usize,
    /// Cycles to access the tag array.
    pub tag_latency: u64,
    /// Cycles to access the data array (charged on hits and fills).
    pub data_latency: u64,
    /// Replacement policy of this level ([`ReplacementPolicy::Lru`] is the
    /// paper baseline). Part of the config's `Debug` form, so it flows into
    /// `SystemConfig::warmup_key` and the manifest config hash without any
    /// extra plumbing.
    pub policy: ReplacementPolicy,
}

impl CacheConfig {
    /// The baseline 32 KB, 8-way L1D (4-cycle data, 1-cycle tag).
    pub fn l1d() -> Self {
        CacheConfig {
            name: "L1D",
            size_bytes: 32 * 1024,
            assoc: 8,
            tag_latency: 1,
            data_latency: 4,
            policy: ReplacementPolicy::Lru,
        }
    }

    /// The baseline 256 KB, 8-way private L2 (8-cycle data, 3-cycle tag).
    pub fn l2() -> Self {
        CacheConfig {
            name: "L2",
            size_bytes: 256 * 1024,
            assoc: 8,
            tag_latency: 3,
            data_latency: 8,
            policy: ReplacementPolicy::Lru,
        }
    }

    /// The baseline 8 MB, 16-way shared L3 (30-cycle data, 10-cycle tag).
    pub fn l3() -> Self {
        Self::l3_sized(8)
    }

    /// An L3 of `megabytes` capacity with the CACTI-style latencies used for
    /// the Fig. 4a sweep (larger arrays are slower to access).
    ///
    /// # Panics
    ///
    /// Panics if `megabytes` is not one of 8, 16, 32, 64.
    pub fn l3_sized(megabytes: u64) -> Self {
        let (tag, data) = match megabytes {
            8 => (10, 30),
            16 => (11, 35),
            32 => (13, 41),
            64 => (15, 48),
            other => panic!("no latency model for a {other} MB LLC"),
        };
        CacheConfig {
            name: "L3",
            size_bytes: megabytes * 1024 * 1024,
            assoc: 16,
            tag_latency: tag,
            data_latency: data,
            policy: ReplacementPolicy::Lru,
        }
    }

    /// Returns the same geometry under a different replacement policy.
    #[must_use]
    pub fn with_policy(mut self, policy: ReplacementPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (capacity not divisible into
    /// `assoc`-way sets of 64 B lines, or set count not a power of two).
    pub fn num_sets(&self) -> usize {
        let lines = self.size_bytes / LINE_BYTES;
        assert!(
            lines.is_multiple_of(self.assoc as u64),
            "{}: {} lines not divisible by associativity {}",
            self.name,
            lines,
            self.assoc
        );
        let sets = (lines / self.assoc as u64) as usize;
        assert!(
            sets.is_power_of_two(),
            "{}: set count must be a power of two",
            self.name
        );
        sets
    }

    /// Total lines of capacity.
    pub fn num_lines(&self) -> u64 {
        self.size_bytes / LINE_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_geometries_match_table_i() {
        assert_eq!(CacheConfig::l1d().num_sets(), 64);
        assert_eq!(CacheConfig::l2().num_sets(), 512);
        assert_eq!(CacheConfig::l3().num_sets(), 8192);
        assert_eq!(CacheConfig::l3().data_latency, 30);
    }

    #[test]
    fn llc_sweep_latencies_grow() {
        let lat: Vec<u64> = [8, 16, 32, 64]
            .iter()
            .map(|&mb| CacheConfig::l3_sized(mb).data_latency)
            .collect();
        assert!(lat.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    #[should_panic(expected = "no latency model")]
    fn unknown_llc_size_rejected() {
        let _ = CacheConfig::l3_sized(128);
    }

    #[test]
    fn line_count() {
        assert_eq!(CacheConfig::l1d().num_lines(), 512);
    }

    #[test]
    fn constructors_default_to_lru_and_with_policy_swaps_it() {
        for cfg in [CacheConfig::l1d(), CacheConfig::l2(), CacheConfig::l3()] {
            assert_eq!(cfg.policy, ReplacementPolicy::Lru);
        }
        let srrip = CacheConfig::l3().with_policy(ReplacementPolicy::Srrip);
        assert_eq!(srrip.policy, ReplacementPolicy::Srrip);
        assert_ne!(srrip, CacheConfig::l3());
        // The policy is visible in Debug output (warmup_key relies on this).
        assert!(format!("{srrip:?}").contains("Srrip"));
    }
}
