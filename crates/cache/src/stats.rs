//! Per-data-type cache statistics.
//!
//! Every counter is split three ways by [`DataType`] because the paper's
//! whole methodology is *data-aware* profiling: L2 hit rates (Fig. 4b/12),
//! off-chip demand MPKI by type (Fig. 13), and service-level breakdowns
//! (Fig. 7) all need typed counts.

use droplet_trace::DataType;

/// A counter split by graph data type.
///
/// # Example
///
/// ```
/// use droplet_cache::TypedCounter;
/// use droplet_trace::DataType;
/// let mut c = TypedCounter::default();
/// c.add(DataType::Property, 3);
/// assert_eq!(c.get(DataType::Property), 3);
/// assert_eq!(c.total(), 3);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TypedCounter([u64; 3]);

impl TypedCounter {
    /// Increments the counter for `dtype` by `n`.
    pub fn add(&mut self, dtype: DataType, n: u64) {
        self.0[dtype.index()] += n;
    }

    /// Increments the counter for `dtype` by one.
    pub fn bump(&mut self, dtype: DataType) {
        self.add(dtype, 1);
    }

    /// Reads the counter for `dtype`.
    pub fn get(&self, dtype: DataType) -> u64 {
        self.0[dtype.index()]
    }

    /// Sum over all data types.
    pub fn total(&self) -> u64 {
        self.0.iter().sum()
    }

    /// The fraction `self[dtype] / self.total()`, or 0 when empty.
    pub fn fraction(&self, dtype: DataType) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.get(dtype) as f64 / t as f64
        }
    }
}

impl std::ops::AddAssign for TypedCounter {
    fn add_assign(&mut self, rhs: TypedCounter) {
        for i in 0..3 {
            self.0[i] += rhs.0[i];
        }
    }
}

/// Statistics for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand accesses (loads + stores) reaching this level.
    pub demand_accesses: TypedCounter,
    /// Demand accesses that hit.
    pub demand_hits: TypedCounter,
    /// Demand hits whose line was still in flight (late prefetch: partial
    /// latency was exposed).
    pub late_prefetch_hits: TypedCounter,
    /// Demand hits that were the *first* use of a prefetched line — these
    /// are the "useful prefetch" events behind Fig. 14's accuracy metric.
    pub prefetch_first_uses: TypedCounter,
    /// Lines filled by prefetchers into this level.
    pub prefetch_fills: TypedCounter,
    /// Prefetched lines evicted without ever being demanded (inaccurate
    /// prefetches).
    pub prefetch_unused_evictions: TypedCounter,
    /// Fills performed on the demand path.
    pub demand_fills: TypedCounter,
    /// Lines invalidated from above to preserve inclusion.
    pub inclusion_invalidations: u64,
}

impl CacheStats {
    /// Demand misses (accesses − hits).
    pub fn demand_misses(&self) -> TypedCounter {
        let mut out = TypedCounter::default();
        for t in DataType::ALL {
            out.add(t, self.demand_accesses.get(t) - self.demand_hits.get(t));
        }
        out
    }

    /// Demand hit rate over all types, or 0 if never accessed.
    pub fn hit_rate(&self) -> f64 {
        let a = self.demand_accesses.total();
        if a == 0 {
            0.0
        } else {
            self.demand_hits.total() as f64 / a as f64
        }
    }

    /// Demand hit rate for one data type.
    pub fn hit_rate_of(&self, dtype: DataType) -> f64 {
        let a = self.demand_accesses.get(dtype);
        if a == 0 {
            0.0
        } else {
            self.demand_hits.get(dtype) as f64 / a as f64
        }
    }

    /// Misses per `kilo` instructions given an instruction count.
    pub fn mpki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.demand_misses().total() as f64 * 1000.0 / instructions as f64
        }
    }

    /// Prefetch accuracy at this level for `dtype`: the fraction of
    /// prefetch-filled lines that saw at least one demand use.
    ///
    /// Computed as `first_uses / (first_uses + unused_evictions)` so that
    /// lines still resident (neither used nor evicted) do not distort the
    /// ratio at the end of a run.
    pub fn prefetch_accuracy(&self, dtype: DataType) -> f64 {
        let used = self.prefetch_first_uses.get(dtype);
        let bad = self.prefetch_unused_evictions.get(dtype);
        if used + bad == 0 {
            0.0
        } else {
            used as f64 / (used + bad) as f64
        }
    }

    /// Resets every counter.
    pub fn reset(&mut self) {
        *self = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_counter_fraction() {
        let mut c = TypedCounter::default();
        c.add(DataType::Structure, 1);
        c.add(DataType::Property, 3);
        assert!((c.fraction(DataType::Property) - 0.75).abs() < 1e-12);
        assert_eq!(c.total(), 4);
        let mut d = c;
        d += c;
        assert_eq!(d.total(), 8);
    }

    #[test]
    fn empty_fraction_is_zero() {
        assert_eq!(TypedCounter::default().fraction(DataType::Structure), 0.0);
    }

    #[test]
    fn miss_and_hit_rate_math() {
        let mut s = CacheStats::default();
        s.demand_accesses.add(DataType::Property, 10);
        s.demand_hits.add(DataType::Property, 4);
        assert_eq!(s.demand_misses().get(DataType::Property), 6);
        assert!((s.hit_rate() - 0.4).abs() < 1e-12);
        assert!((s.hit_rate_of(DataType::Property) - 0.4).abs() < 1e-12);
        assert_eq!(s.hit_rate_of(DataType::Structure), 0.0);
        assert!((s.mpki(1000) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn accuracy_ignores_resident_lines() {
        let mut s = CacheStats::default();
        s.prefetch_fills.add(DataType::Structure, 10);
        s.prefetch_first_uses.add(DataType::Structure, 6);
        s.prefetch_unused_evictions.add(DataType::Structure, 2);
        assert!((s.prefetch_accuracy(DataType::Structure) - 0.75).abs() < 1e-12);
        assert_eq!(s.prefetch_accuracy(DataType::Property), 0.0);
    }

    #[test]
    fn reset_zeroes() {
        let mut s = CacheStats::default();
        s.demand_accesses.bump(DataType::Structure);
        s.reset();
        assert_eq!(s.demand_accesses.total(), 0);
    }
}
