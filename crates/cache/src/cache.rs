//! A set-associative, true-LRU, write-back cache with prefetch bookkeeping.
//!
//! Lines are identified by their (physical) line index. Fills may carry a
//! future `ready_at` cycle: the tag is allocated immediately (MSHR-style)
//! but a demand hit before `ready_at` is a *late prefetch hit* and exposes
//! the residual latency — this is how DROPLET's timeliness advantage over a
//! monolithic L1 prefetcher (Section VII-B) becomes measurable.

use crate::config::CacheConfig;
use crate::stats::CacheStats;
use droplet_trace::{Cycle, DataType};

/// Resident line metadata, packed to 32 bytes so a 16-way set spans eight
/// cache lines of simulator memory and a whole-set scan stays in L1.
#[derive(Debug, Clone, Copy)]
struct LineState {
    line: u64,
    /// Cycle at which the data is actually present.
    ready_at: Cycle,
    /// Recency stamp from the per-cache tick; larger = more recently
    /// touched. Exact LRU: the minimum stamp of a set is its LRU way.
    stamp: u64,
    dtype: DataType,
    valid: bool,
    dirty: bool,
    /// Filled by a prefetcher (vs the demand path).
    prefetched: bool,
    /// Has seen at least one demand access since fill.
    used: bool,
}

impl LineState {
    const INVALID: LineState = LineState {
        line: 0,
        ready_at: 0,
        stamp: 0,
        dtype: DataType::Structure,
        valid: false,
        dirty: false,
        prefetched: false,
        used: false,
    };
}

/// Result of a demand hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HitInfo {
    /// Cycle at which the data can be forwarded (≥ `now` for in-flight lines).
    pub ready_at: Cycle,
    /// This hit was the first demand use of a prefetched line.
    pub first_prefetch_use: bool,
}

/// A line pushed out of the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedLine {
    /// The evicted line index.
    pub line: u64,
    /// Needs a write-back.
    pub dirty: bool,
    /// Was brought in by a prefetcher.
    pub prefetched: bool,
    /// Saw at least one demand use.
    pub used: bool,
    /// Data type recorded at fill time.
    pub dtype: DataType,
}

/// Parameters of a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FillInfo {
    /// Data type of the filled line.
    pub dtype: DataType,
    /// `true` when a prefetcher (not the demand path) performed the fill.
    pub prefetched: bool,
    /// When the data arrives (tag allocated immediately).
    pub ready_at: Cycle,
    /// Fill the line already dirty (demand store allocation).
    pub dirty: bool,
}

impl FillInfo {
    /// A demand fill whose data is ready at `ready_at`.
    pub fn demand(dtype: DataType, ready_at: Cycle) -> Self {
        FillInfo {
            dtype,
            prefetched: false,
            ready_at,
            dirty: false,
        }
    }

    /// A prefetch fill whose data arrives at `ready_at`.
    pub fn prefetch(dtype: DataType, ready_at: Cycle) -> Self {
        FillInfo {
            dtype,
            prefetched: true,
            ready_at,
            dirty: false,
        }
    }

    /// Marks the fill dirty (store allocation).
    #[must_use]
    pub fn dirty(mut self) -> Self {
        self.dirty = true;
        self
    }
}

/// A set-associative LRU cache.
///
/// # Example
///
/// ```
/// use droplet_cache::{CacheConfig, FillInfo, SetAssocCache};
/// use droplet_trace::DataType;
/// let mut c = SetAssocCache::new(CacheConfig::l1d());
/// c.fill(7, FillInfo::prefetch(DataType::Property, 100));
/// // A demand access at cycle 50 hits, but the data is not there yet.
/// let hit = c.touch(7, 50, DataType::Property, false).unwrap();
/// assert_eq!(hit.ready_at, 100);
/// assert!(hit.first_prefetch_use);
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    cfg: CacheConfig,
    set_mask: u64,
    assoc: usize,
    /// All ways of all sets in one flat allocation: set `s` occupies
    /// `ways[s * assoc .. (s + 1) * assoc]`. Recency lives in per-way
    /// stamps, so a hit is an in-place update — no per-access allocation
    /// or element shifting as with reorder-on-touch LRU lists.
    ways: Vec<LineState>,
    /// Monotonic recency clock; bumped on every touch/fill.
    tick: u64,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Creates an empty cache with the given geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        let num_sets = cfg.num_sets();
        SetAssocCache {
            set_mask: num_sets as u64 - 1,
            assoc: cfg.assoc,
            ways: vec![LineState::INVALID; num_sets * cfg.assoc],
            tick: 0,
            cfg,
            stats: CacheStats::default(),
        }
    }

    /// The configured geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets statistics (not contents) — used at the end of cache warm-up.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// The flat-array span of the set `line` maps to.
    fn set_range(&self, line: u64) -> std::ops::Range<usize> {
        let base = (line & self.set_mask) as usize * self.assoc;
        base..base + self.assoc
    }

    /// Checks residency without touching LRU state or statistics (the
    /// coherence-engine probe the MPP uses to avoid redundant DRAM
    /// prefetches, Section V-A).
    pub fn contains(&self, line: u64) -> bool {
        self.ways[self.set_range(line)]
            .iter()
            .any(|w| w.valid && w.line == line)
    }

    /// A demand access to `line` at cycle `now`. Returns hit info, or
    /// `None` on a miss. Updates LRU, usefulness bits, and statistics.
    pub fn touch(
        &mut self,
        line: u64,
        now: Cycle,
        dtype: DataType,
        is_store: bool,
    ) -> Option<HitInfo> {
        self.stats.demand_accesses.bump(dtype);
        let stamp = self.tick;
        let range = self.set_range(line);
        let entry = self.ways[range]
            .iter_mut()
            .find(|w| w.valid && w.line == line)?;
        let first_prefetch_use = entry.prefetched && !entry.used;
        entry.used = true;
        entry.dirty |= is_store;
        entry.stamp = stamp;
        let ready_at = entry.ready_at.max(now);
        self.tick += 1;
        self.stats.demand_hits.bump(dtype);
        if first_prefetch_use {
            self.stats.prefetch_first_uses.bump(dtype);
        }
        if ready_at > now {
            self.stats.late_prefetch_hits.bump(dtype);
        }
        Some(HitInfo {
            ready_at,
            first_prefetch_use,
        })
    }

    /// Fills `line`, evicting the LRU line of its set if full. If the line
    /// is already resident the existing entry is refreshed instead (its
    /// `ready_at` keeps the earlier of the two arrival times).
    pub fn fill(&mut self, line: u64, info: FillInfo) -> Option<EvictedLine> {
        if info.prefetched {
            self.stats.prefetch_fills.bump(info.dtype);
        } else {
            self.stats.demand_fills.bump(info.dtype);
        }
        let stamp = self.tick;
        self.tick += 1;
        let range = self.set_range(line);
        // One scan resolves all three cases: refresh a resident line, or
        // pick the victim way (first invalid, else minimum stamp = LRU).
        let mut invalid_idx = None;
        let mut lru_idx = 0;
        let mut lru_stamp = u64::MAX;
        let ways = &mut self.ways[range];
        for (i, w) in ways.iter_mut().enumerate() {
            if !w.valid {
                invalid_idx.get_or_insert(i);
                continue;
            }
            if w.line == line {
                w.ready_at = w.ready_at.min(info.ready_at);
                w.dirty |= info.dirty;
                w.stamp = stamp;
                // A demand fill of a previously prefetched line counts as
                // a use.
                if !info.prefetched && w.prefetched && !w.used {
                    w.used = true;
                    self.stats.prefetch_first_uses.bump(w.dtype);
                }
                return None;
            }
            if w.stamp < lru_stamp {
                lru_stamp = w.stamp;
                lru_idx = i;
            }
        }
        let evicted = match invalid_idx {
            Some(_) => None,
            None => {
                let victim = ways[lru_idx];
                if victim.prefetched && !victim.used {
                    self.stats.prefetch_unused_evictions.bump(victim.dtype);
                }
                Some(EvictedLine {
                    line: victim.line,
                    dirty: victim.dirty,
                    prefetched: victim.prefetched,
                    used: victim.used,
                    dtype: victim.dtype,
                })
            }
        };
        ways[invalid_idx.unwrap_or(lru_idx)] = LineState {
            line,
            ready_at: info.ready_at,
            stamp,
            dtype: info.dtype,
            valid: true,
            dirty: info.dirty,
            prefetched: info.prefetched,
            used: false,
        };
        evicted
    }

    /// Removes `line` (inclusion back-invalidation), returning its state.
    pub fn invalidate(&mut self, line: u64) -> Option<EvictedLine> {
        let range = self.set_range(line);
        let entry = self.ways[range]
            .iter_mut()
            .find(|w| w.valid && w.line == line)?;
        entry.valid = false;
        let victim = *entry;
        self.stats.inclusion_invalidations += 1;
        if victim.prefetched && !victim.used {
            self.stats.prefetch_unused_evictions.bump(victim.dtype);
        }
        Some(EvictedLine {
            line: victim.line,
            dirty: victim.dirty,
            prefetched: victim.prefetched,
            used: victim.used,
            dtype: victim.dtype,
        })
    }

    /// Number of resident lines.
    pub fn occupancy(&self) -> usize {
        self.ways.iter().filter(|w| w.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        // 4 sets × 2 ways of 64 B lines = 512 B.
        SetAssocCache::new(CacheConfig {
            name: "tiny",
            size_bytes: 512,
            assoc: 2,
            tag_latency: 1,
            data_latency: 2,
        })
    }

    const P: DataType = DataType::Property;
    const S: DataType = DataType::Structure;

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = tiny();
        assert!(c.touch(0, 0, P, false).is_none());
        assert!(c.fill(0, FillInfo::demand(P, 5)).is_none());
        let hit = c.touch(0, 10, P, false).unwrap();
        assert_eq!(hit.ready_at, 10);
        assert!(!hit.first_prefetch_use);
        assert_eq!(c.stats().demand_hits.get(P), 1);
        assert_eq!(c.stats().demand_accesses.get(P), 2);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = tiny();
        // Lines 0, 4, 8 all map to set 0 (4 sets).
        c.fill(0, FillInfo::demand(P, 0));
        c.fill(4, FillInfo::demand(P, 0));
        c.touch(0, 1, P, false); // refresh 0; 4 becomes LRU
        let ev = c.fill(8, FillInfo::demand(P, 0)).unwrap();
        assert_eq!(ev.line, 4);
        assert!(c.contains(0));
        assert!(!c.contains(4));
        assert!(c.contains(8));
    }

    #[test]
    fn late_prefetch_exposes_residual_latency() {
        let mut c = tiny();
        c.fill(3, FillInfo::prefetch(S, 100));
        let hit = c.touch(3, 40, S, false).unwrap();
        assert_eq!(hit.ready_at, 100);
        assert!(hit.first_prefetch_use);
        assert_eq!(c.stats().late_prefetch_hits.get(S), 1);
        assert_eq!(c.stats().prefetch_first_uses.get(S), 1);
        // A second touch is no longer a first use.
        let hit2 = c.touch(3, 200, S, false).unwrap();
        assert!(!hit2.first_prefetch_use);
        assert_eq!(hit2.ready_at, 200);
    }

    #[test]
    fn unused_prefetch_eviction_counts_as_inaccurate() {
        let mut c = tiny();
        c.fill(0, FillInfo::prefetch(S, 0));
        c.fill(4, FillInfo::demand(P, 0));
        c.fill(8, FillInfo::demand(P, 0)); // evicts prefetched line 0
        assert_eq!(c.stats().prefetch_unused_evictions.get(S), 1);
        assert_eq!(c.stats().prefetch_accuracy(S), 0.0);
    }

    #[test]
    fn refill_of_resident_line_keeps_earliest_ready() {
        let mut c = tiny();
        c.fill(0, FillInfo::prefetch(P, 100));
        assert!(c.fill(0, FillInfo::demand(P, 50)).is_none());
        let hit = c.touch(0, 60, P, false).unwrap();
        assert_eq!(hit.ready_at, 60);
        // Demand fill of a prefetched, unused line counted as a use.
        assert_eq!(c.stats().prefetch_first_uses.get(P), 1);
    }

    #[test]
    fn store_sets_dirty_and_eviction_reports_it() {
        let mut c = tiny();
        c.fill(0, FillInfo::demand(P, 0));
        c.touch(0, 1, P, true);
        c.fill(4, FillInfo::demand(P, 0));
        let ev = c.fill(8, FillInfo::demand(P, 0)).unwrap();
        assert_eq!(ev.line, 0);
        assert!(ev.dirty);
    }

    #[test]
    fn invalidate_removes_and_counts() {
        let mut c = tiny();
        c.fill(0, FillInfo::prefetch(S, 0));
        let ev = c.invalidate(0).unwrap();
        assert_eq!(ev.line, 0);
        assert!(!c.contains(0));
        assert_eq!(c.stats().inclusion_invalidations, 1);
        assert_eq!(c.stats().prefetch_unused_evictions.get(S), 1);
        assert!(c.invalidate(0).is_none());
    }

    #[test]
    fn contains_is_side_effect_free() {
        let mut c = tiny();
        c.fill(0, FillInfo::demand(P, 0));
        let before = *c.stats();
        assert!(c.contains(0));
        assert!(!c.contains(9));
        assert_eq!(
            c.stats().demand_accesses.total(),
            before.demand_accesses.total()
        );
    }

    #[test]
    fn occupancy_tracks_fills() {
        let mut c = tiny();
        assert_eq!(c.occupancy(), 0);
        for l in 0..8 {
            c.fill(l, FillInfo::demand(P, 0));
        }
        assert_eq!(c.occupancy(), 8); // full: 4 sets × 2 ways
        c.fill(8, FillInfo::demand(P, 0));
        assert_eq!(c.occupancy(), 8);
    }
}
