//! A set-associative, write-back cache with pluggable replacement and
//! prefetch bookkeeping.
//!
//! Lines are identified by their (physical) line index. Fills may carry a
//! future `ready_at` cycle: the tag is allocated immediately (MSHR-style)
//! but a demand hit before `ready_at` is a *late prefetch hit* and exposes
//! the residual latency — this is how DROPLET's timeliness advantage over a
//! monolithic L1 prefetcher (Section VII-B) becomes measurable.
//!
//! Replacement is selected by [`CacheConfig::policy`]: the default
//! [`ReplacementPolicy::Lru`] keeps the original stamp-LRU fast path
//! bit-identical, while the RRIP family reinterprets the same dense stamp
//! array as per-way RRPVs (see `crate::policy` for the exact semantics).

use crate::config::CacheConfig;
use crate::policy::{
    ship_signature, DuelRole, ReplacementPolicy, BRRIP_LONG_PERIOD, PSEL_INIT, PSEL_MAX, RRPV_LONG,
    RRPV_MAX, SHCT_ENTRIES, SHCT_INIT, SHCT_MAX,
};
use crate::stats::CacheStats;
use droplet_trace::{find_u64, Cycle, DataType};

/// Sentinel tag for an invalid way. Physical line indices are derived from
/// frame numbers a demand-populated page table assigns sequentially from 1,
/// so no real line ever reaches `u64::MAX`.
const TAG_INVALID: u64 = u64::MAX;

/// Per-line payload, index-parallel with the tag array. The tag (line
/// index and validity, folded into one `u64` via [`TAG_INVALID`]) lives in
/// a separate dense array so the way-matching scan — the innermost loop of
/// every touch/fill/probe — streams 8 bytes per way instead of the whole
/// record.
#[derive(Debug, Clone, Copy)]
struct LineMeta {
    /// Cycle at which the data is actually present.
    ready_at: Cycle,
    dtype: DataType,
    dirty: bool,
    /// Filled by a prefetcher (vs the demand path).
    prefetched: bool,
    /// Has seen at least one demand access since fill.
    used: bool,
    /// System-level accuracy tag: `Some(dtype)` while an outstanding
    /// prefetch to this line awaits its first demand use. Replaces an
    /// external `HashMap<line, DataType>` side table — the tag travels with
    /// the line and is reclaimed through [`EvictedLine::tracked`], so the
    /// demand path never hashes.
    tracked: Option<DataType>,
    /// SHiP region signature recorded at fill ([`ReplacementPolicy::Ship`]
    /// only; 0 otherwise).
    sig: u16,
    /// SHiP outcome bit: the line has seen a demand re-reference since
    /// fill, so its signature was already trained up. Distinct from `used`,
    /// which also flips on demand refresh-fills of prefetched lines.
    ship_reused: bool,
}

impl LineMeta {
    const EMPTY: LineMeta = LineMeta {
        ready_at: 0,
        dtype: DataType::Structure,
        dirty: false,
        prefetched: false,
        used: false,
        tracked: None,
        sig: 0,
        ship_reused: false,
    };
}

/// Test-only fault injection for the conformance suite.
///
/// The differential conformance tests (`crates/conformance`) must prove they
/// can *catch* a replacement-policy bug, not just pass on correct code.
/// These mutations plant such bugs behind a runtime flag that defaults to
/// [`CacheMutation::None`]; nothing in the simulator ever sets it. The LRU
/// mutations live on the fill path only, and [`CacheMutation::RripPromoteFlip`]
/// sits inside the RRIP-only promotion branch, so the disabled checks stay
/// off the LRU hot hit path entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheMutation {
    /// Production behaviour.
    #[default]
    None,
    /// Victim selection is flipped: a fill into a full set evicts the
    /// *most* recently used way instead of the LRU way.
    LruFlip,
    /// Refreshing an already-resident line during [`SetAssocCache::fill`]
    /// does not bump its recency stamp — the classic "forgot to touch on
    /// refresh" LRU bug, observable only via later eviction choices.
    StaleRefresh,
    /// RRIP-family hit promotion is inverted: a demand hit writes
    /// [`RRPV_MAX`] instead of 0, so hot lines look dead to the victim
    /// scan — the "promotion forgot which direction RRPVs grow" bug.
    RripPromoteFlip,
    /// A SHiP fill keeps the signature left behind by the slot's previous
    /// occupant instead of recording the incoming line's signature, so all
    /// later SHCT training credits the wrong region.
    ShipStaleSignature,
}

/// Result of a demand hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HitInfo {
    /// Cycle at which the data can be forwarded (≥ `now` for in-flight lines).
    pub ready_at: Cycle,
    /// This hit was the first demand use of a prefetched line.
    pub first_prefetch_use: bool,
}

/// A line pushed out of the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedLine {
    /// The evicted line index.
    pub line: u64,
    /// Needs a write-back.
    pub dirty: bool,
    /// Was brought in by a prefetcher.
    pub prefetched: bool,
    /// Saw at least one demand use.
    pub used: bool,
    /// Data type recorded at fill time.
    pub dtype: DataType,
    /// Accuracy tag still pending at eviction (the prefetch was wasted).
    pub tracked: Option<DataType>,
}

/// Parameters of a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FillInfo {
    /// Data type of the filled line.
    pub dtype: DataType,
    /// `true` when a prefetcher (not the demand path) performed the fill.
    pub prefetched: bool,
    /// When the data arrives (tag allocated immediately).
    pub ready_at: Cycle,
    /// Fill the line already dirty (demand store allocation).
    pub dirty: bool,
    /// Install a system-level accuracy tag (see [`LineMeta::tracked`]).
    pub track: bool,
}

impl FillInfo {
    /// A demand fill whose data is ready at `ready_at`.
    pub fn demand(dtype: DataType, ready_at: Cycle) -> Self {
        FillInfo {
            dtype,
            prefetched: false,
            ready_at,
            dirty: false,
            track: false,
        }
    }

    /// A prefetch fill whose data arrives at `ready_at`.
    pub fn prefetch(dtype: DataType, ready_at: Cycle) -> Self {
        FillInfo {
            dtype,
            prefetched: true,
            ready_at,
            dirty: false,
            track: false,
        }
    }

    /// Marks the fill dirty (store allocation).
    #[must_use]
    pub fn dirty(mut self) -> Self {
        self.dirty = true;
        self
    }

    /// Installs the system-level accuracy tag along with the fill.
    #[must_use]
    pub fn tracked(mut self) -> Self {
        self.track = true;
        self
    }
}

/// A set-associative cache with a pluggable replacement policy
/// (true LRU by default).
///
/// # Example
///
/// ```
/// use droplet_cache::{CacheConfig, FillInfo, SetAssocCache};
/// use droplet_trace::DataType;
/// let mut c = SetAssocCache::new(CacheConfig::l1d());
/// c.fill(7, FillInfo::prefetch(DataType::Property, 100));
/// // A demand access at cycle 50 hits, but the data is not there yet.
/// let hit = c.touch(7, 50, DataType::Property, false).unwrap();
/// assert_eq!(hit.ready_at, 100);
/// assert!(hit.first_prefetch_use);
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    cfg: CacheConfig,
    set_mask: u64,
    assoc: usize,
    /// Copy of `cfg.policy`, hoisted out of the config for the hot paths.
    policy: ReplacementPolicy,
    /// Way tags of all sets in one flat allocation: set `s` occupies
    /// `tags[s * assoc .. (s + 1) * assoc]`. A way holds its resident line
    /// index, or [`TAG_INVALID`].
    tags: Vec<u64>,
    /// Replacement state, index-parallel with `tags`. Under LRU these are
    /// recency stamps (larger = more recently touched; the minimum stamp of
    /// a set is its LRU way, and a hit is one in-place stamp store — no
    /// per-access allocation or element shifting as with reorder-on-touch
    /// LRU lists). Under the RRIP family the same array holds 2-bit RRPVs
    /// (smaller = sooner re-reference predicted). Kept as a dense array
    /// (not a `LineMeta` field) so the fill path's victim scan streams
    /// 8 bytes per way.
    stamps: Vec<u64>,
    /// Per-way payload, index-parallel with `tags`.
    meta: Vec<LineMeta>,
    /// Monotonic recency clock; bumped on every touch/fill.
    tick: u64,
    /// Flat-array indices of the last two distinct demand hits, most recent
    /// first. Graph traces touch the same line repeatedly (8 neighbor IDs or
    /// ranks per 64 B line) and *alternate* between regions (offsets →
    /// neighbors → ranks), so [`SetAssocCache::touch`] checks these ways
    /// first and skips the set scan when one still matches. Self-validating:
    /// a fill or invalidation rewrites the tag, which makes the check fail —
    /// no hooks needed, and a memo hit performs the same stamp/stat updates
    /// as a scan hit.
    memo: [usize; 2],
    /// Number of resident lines carrying an accuracy tag; lets the demand
    /// path skip the tag probe entirely when no prefetches are in flight.
    tracked_count: usize,
    /// Counting presence filter over a multiplicative hash of resident
    /// line indices: a zero counter *proves* the line is absent, letting
    /// miss-dominated probes — inclusion back-invalidations into private
    /// caches that almost never hold the line, touches of caches with high
    /// miss rates, coherence snoops — skip the set scan entirely. Nonzero
    /// counters fall through to the exact tag scan, so the filter is pure
    /// acceleration: hit/miss outcomes are bit-identical with or without
    /// it. Sized at 2× the line count (min 64) so `u32` counters cannot
    /// overflow and the all-miss fast path stays one load + compare.
    presence: Vec<u32>,
    /// `64 − log2(presence.len())`: the multiply-shift hash shift.
    presence_shift: u32,
    /// Conformance-suite fault injection; [`CacheMutation::None`] in
    /// production, only ever set via [`SetAssocCache::set_test_mutation`].
    mutation: CacheMutation,
    /// DRRIP policy-selection counter (≥ [`PSEL_INIT`] ⇒ followers run
    /// BRRIP). Initialized to the midpoint; untouched by other policies.
    psel: u16,
    /// Deterministic BRRIP bimodal counter: every
    /// [`BRRIP_LONG_PERIOD`]-th bimodal insertion goes long.
    brrip_ctr: u64,
    /// SHiP signature history counter table ([`SHCT_ENTRIES`] 2-bit
    /// counters); empty unless the policy is [`ReplacementPolicy::Ship`].
    shct: Vec<u8>,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Creates an empty cache with the given geometry and policy.
    pub fn new(cfg: CacheConfig) -> Self {
        let num_sets = cfg.num_sets();
        let shct = match cfg.policy {
            ReplacementPolicy::Ship => vec![SHCT_INIT; SHCT_ENTRIES],
            _ => Vec::new(),
        };
        let presence_len = (num_sets * cfg.assoc * 2).next_power_of_two().max(64);
        SetAssocCache {
            set_mask: num_sets as u64 - 1,
            assoc: cfg.assoc,
            policy: cfg.policy,
            tags: vec![TAG_INVALID; num_sets * cfg.assoc],
            stamps: vec![0; num_sets * cfg.assoc],
            meta: vec![LineMeta::EMPTY; num_sets * cfg.assoc],
            tick: 0,
            memo: [0, 0],
            tracked_count: 0,
            presence: vec![0; presence_len],
            presence_shift: 64 - presence_len.trailing_zeros(),
            mutation: CacheMutation::None,
            psel: PSEL_INIT,
            brrip_ctr: 0,
            shct,
            cfg,
            stats: CacheStats::default(),
        }
    }

    /// The configured geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets statistics (not contents) — used at the end of cache warm-up.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// The flat-array span of the set `line` maps to.
    fn set_range(&self, line: u64) -> std::ops::Range<usize> {
        let base = (line & self.set_mask) as usize * self.assoc;
        base..base + self.assoc
    }

    /// The presence-filter bucket of `line` (Fibonacci multiply-shift, so
    /// dense line runs from different regions spread across the counters).
    #[inline]
    fn presence_bucket(&self, line: u64) -> usize {
        (line.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> self.presence_shift) as usize
    }

    /// `false` proves `line` is not resident (skip the scan); `true` means
    /// "possibly resident" and the caller runs the exact tag scan.
    #[inline]
    fn maybe_resident(&self, line: u64) -> bool {
        self.presence[self.presence_bucket(line)] != 0
    }

    /// Records `line` becoming resident.
    #[inline]
    fn presence_add(&mut self, line: u64) {
        let b = self.presence_bucket(line);
        self.presence[b] += 1;
    }

    /// Records `line` leaving the cache (eviction or invalidation).
    #[inline]
    fn presence_remove(&mut self, line: u64) {
        let b = self.presence_bucket(line);
        self.presence[b] -= 1;
    }

    /// Checks residency without touching LRU state or statistics (the
    /// coherence-engine probe the MPP uses to avoid redundant DRAM
    /// prefetches, Section V-A).
    pub fn contains(&self, line: u64) -> bool {
        // Invalid ways hold `TAG_INVALID`, which no real line equals, so a
        // plain tag compare suffices.
        self.maybe_resident(line) && find_u64(&self.tags[self.set_range(line)], line).is_some()
    }

    /// A demand access to `line` at cycle `now`. Returns hit info, or
    /// `None` on a miss. Updates replacement state, usefulness bits, and
    /// statistics.
    pub fn touch(
        &mut self,
        line: u64,
        now: Cycle,
        dtype: DataType,
        is_store: bool,
    ) -> Option<HitInfo> {
        self.stats.demand_accesses.bump(dtype);
        let stamp = self.tick;
        // A matching tag can only live in `line`'s own set, so the memo
        // needs no set check to be sound.
        let way = if self.tags[self.memo[0]] == line {
            self.memo[0]
        } else if self.tags[self.memo[1]] == line {
            self.memo.swap(0, 1);
            self.memo[0]
        } else {
            if !self.maybe_resident(line) {
                return None;
            }
            let range = self.set_range(line);
            let hit = find_u64(&self.tags[range.clone()], line)?;
            self.memo = [range.start + hit, self.memo[0]];
            self.memo[0]
        };
        if self.policy == ReplacementPolicy::Lru {
            self.stamps[way] = stamp;
        } else {
            // Hit promotion: near-immediate re-reference predicted.
            self.stamps[way] = if self.mutation == CacheMutation::RripPromoteFlip {
                RRPV_MAX
            } else {
                0
            };
            if self.policy == ReplacementPolicy::Ship && !self.meta[way].ship_reused {
                // First demand re-reference trains the signature up.
                self.meta[way].ship_reused = true;
                let sig = self.meta[way].sig as usize;
                let c = &mut self.shct[sig];
                *c = (*c + 1).min(SHCT_MAX);
            }
        }
        let entry = &mut self.meta[way];
        let first_prefetch_use = entry.prefetched && !entry.used;
        entry.used = true;
        entry.dirty |= is_store;
        let ready_at = entry.ready_at.max(now);
        self.tick += 1;
        self.stats.demand_hits.bump(dtype);
        if first_prefetch_use {
            self.stats.prefetch_first_uses.bump(dtype);
        }
        if ready_at > now {
            self.stats.late_prefetch_hits.bump(dtype);
        }
        Some(HitInfo {
            ready_at,
            first_prefetch_use,
        })
    }

    /// Fills `line`, evicting the policy's victim from its set if full. If
    /// the line is already resident the existing entry is refreshed instead
    /// (its `ready_at` keeps the earlier of the two arrival times).
    pub fn fill(&mut self, line: u64, info: FillInfo) -> Option<EvictedLine> {
        if info.prefetched {
            self.stats.prefetch_fills.bump(info.dtype);
        } else {
            self.stats.demand_fills.bump(info.dtype);
        }
        let stamp = self.tick;
        self.tick += 1;
        let lru = self.policy == ReplacementPolicy::Lru;
        // What a refresh of a resident line writes: the fresh recency stamp
        // under LRU, RRPV 0 (re-reference observed) under the RRIP family.
        let refresh_val = if lru { stamp } else { 0 };
        let range = self.set_range(line);
        // One fused tag scan resolves all three cases: refresh a resident
        // line, or pick the victim way (first invalid, else minimum stamp =
        // LRU; the RRIP victim scan below reuses the same sliced array).
        // The fill path is dominated by misses installing into full sets,
        // so fusing the scans keeps it one pass over the dense tag/stamp
        // arrays; only the chosen way touches the payload array.
        let mut invalid_idx = None;
        let mut lru_idx = 0;
        let mut lru_stamp = u64::MAX;
        // Pre-slice the set's tags and stamps: the compiler then knows both
        // loops below are in bounds (`assoc` == slice length), dropping the
        // per-way bounds checks from the hottest loop in the simulator.
        let set_tags = &self.tags[range.clone()];
        let set_stamps = &mut self.stamps[range.clone()];
        for i in 0..self.assoc {
            let t = set_tags[i];
            if t == TAG_INVALID {
                invalid_idx.get_or_insert(i);
                continue;
            }
            if t == line {
                if self.mutation != CacheMutation::StaleRefresh {
                    set_stamps[i] = refresh_val;
                }
                let w = &mut self.meta[range.start + i];
                w.ready_at = w.ready_at.min(info.ready_at);
                w.dirty |= info.dirty;
                // First-writer-wins, like an `or_insert` on the old side
                // table: a refresh never overwrites an existing tag.
                if info.track && w.tracked.is_none() {
                    w.tracked = Some(info.dtype);
                    self.tracked_count += 1;
                }
                // A demand fill of a previously prefetched line counts as
                // a use.
                if !info.prefetched && w.prefetched && !w.used {
                    w.used = true;
                    self.stats.prefetch_first_uses.bump(w.dtype);
                }
                return None;
            }
            let s = set_stamps[i];
            if s < lru_stamp {
                lru_stamp = s;
                lru_idx = i;
            }
        }
        let victim_idx = match invalid_idx {
            Some(i) => i,
            None if !lru => self.rrip_victim(range.clone()),
            None if self.mutation == CacheMutation::LruFlip => {
                // Injected bug: evict the MRU way instead of the LRU way.
                (0..self.assoc)
                    .max_by_key(|&i| self.stamps[range.start + i])
                    .unwrap()
            }
            None => lru_idx,
        };
        let way = range.start + victim_idx;
        let evicted = match invalid_idx {
            Some(_) => None,
            None => {
                let victim = self.meta[way];
                if victim.prefetched && !victim.used {
                    self.stats.prefetch_unused_evictions.bump(victim.dtype);
                }
                if self.policy == ReplacementPolicy::Ship && !victim.ship_reused {
                    // Evicted dead: train the signature down.
                    let c = &mut self.shct[victim.sig as usize];
                    *c = c.saturating_sub(1);
                }
                Some(EvictedLine {
                    line: self.tags[way],
                    dirty: victim.dirty,
                    prefetched: victim.prefetched,
                    used: victim.used,
                    dtype: victim.dtype,
                    tracked: victim.tracked,
                })
            }
        };
        // Victim training above precedes the insertion prediction below, so
        // a line whose signature was just demoted sees its own demotion.
        let (insert_val, sig) = if lru {
            (stamp, 0)
        } else {
            let sig = if self.policy != ReplacementPolicy::Ship {
                0
            } else if self.mutation == CacheMutation::ShipStaleSignature {
                // Injected bug: inherit the slot's previous signature.
                self.meta[way].sig
            } else {
                ship_signature(line)
            };
            (self.insertion_rrpv(line, &info), sig)
        };
        if let Some(ev) = &evicted {
            self.presence_remove(ev.line);
        }
        self.presence_add(line);
        self.tags[way] = line;
        self.stamps[way] = insert_val;
        self.meta[way] = LineMeta {
            ready_at: info.ready_at,
            dtype: info.dtype,
            dirty: info.dirty,
            prefetched: info.prefetched,
            used: false,
            tracked: info.track.then_some(info.dtype),
            sig,
            ship_reused: false,
        };
        if info.track {
            self.tracked_count += 1;
        }
        if let Some(ev) = &evicted {
            if ev.tracked.is_some() {
                self.tracked_count -= 1;
            }
        }
        evicted
    }

    /// RRIP victim selection over a full set: the lowest-indexed way at
    /// [`RRPV_MAX`], aging every way by +1 until one qualifies (at most
    /// [`RRPV_MAX`] rounds, since every RRPV is ≤ [`RRPV_MAX`]).
    #[cold]
    fn rrip_victim(&mut self, range: std::ops::Range<usize>) -> usize {
        let set_stamps = &mut self.stamps[range];
        loop {
            for (i, s) in set_stamps.iter().enumerate() {
                if *s >= RRPV_MAX {
                    return i;
                }
            }
            for s in set_stamps.iter_mut() {
                *s += 1;
            }
        }
    }

    /// Insertion RRPV for a new line under the RRIP family, advancing the
    /// policy's adaptive state (PSEL / bimodal counter) as a side effect.
    fn insertion_rrpv(&mut self, line: u64, info: &FillInfo) -> u64 {
        let effective = match self.policy {
            ReplacementPolicy::Drrip => {
                let num_sets = self.set_mask as usize + 1;
                let set = (line & self.set_mask) as usize;
                let role = DuelRole::of_set(set, num_sets);
                // Demand miss-fills into leader sets train the selector
                // against the leader's own policy.
                if !info.prefetched {
                    match role {
                        DuelRole::SrripLeader => self.psel = (self.psel + 1).min(PSEL_MAX),
                        DuelRole::BrripLeader => self.psel = self.psel.saturating_sub(1),
                        DuelRole::Follower => {}
                    }
                }
                match role {
                    DuelRole::SrripLeader => ReplacementPolicy::Srrip,
                    DuelRole::BrripLeader => ReplacementPolicy::Brrip,
                    DuelRole::Follower if self.psel >= PSEL_INIT => ReplacementPolicy::Brrip,
                    DuelRole::Follower => ReplacementPolicy::Srrip,
                }
            }
            p => p,
        };
        match effective {
            ReplacementPolicy::Srrip => RRPV_LONG,
            ReplacementPolicy::Brrip => {
                self.brrip_ctr += 1;
                if self.brrip_ctr.is_multiple_of(BRRIP_LONG_PERIOD) {
                    RRPV_LONG
                } else {
                    RRPV_MAX
                }
            }
            ReplacementPolicy::Ship => {
                if self.shct[ship_signature(line) as usize] == 0 {
                    RRPV_MAX
                } else {
                    RRPV_LONG
                }
            }
            // `Lru` never reaches here; `Drrip` resolved above.
            _ => unreachable!(),
        }
    }

    /// Removes `line` (inclusion back-invalidation), returning its state.
    pub fn invalidate(&mut self, line: u64) -> Option<EvictedLine> {
        if !self.maybe_resident(line) {
            return None;
        }
        let range = self.set_range(line);
        let hit = find_u64(&self.tags[range.clone()], line)?;
        let way = range.start + hit;
        self.presence_remove(line);
        self.tags[way] = TAG_INVALID;
        let victim = self.meta[way];
        self.stats.inclusion_invalidations += 1;
        if victim.prefetched && !victim.used {
            self.stats.prefetch_unused_evictions.bump(victim.dtype);
        }
        if victim.tracked.is_some() {
            self.tracked_count -= 1;
        }
        Some(EvictedLine {
            line,
            dirty: victim.dirty,
            prefetched: victim.prefetched,
            used: victim.used,
            dtype: victim.dtype,
            tracked: victim.tracked,
        })
    }

    /// Consumes the accuracy tag of `line`, if any. A pure tag operation:
    /// no LRU or statistics side effects, so the demand path can settle
    /// outstanding-prefetch accounting on every access (even L1 hits)
    /// without perturbing cache state.
    pub fn take_tracked(&mut self, line: u64) -> Option<DataType> {
        if self.tracked_count == 0 || !self.maybe_resident(line) {
            return None;
        }
        let range = self.set_range(line);
        let hit = find_u64(&self.tags[range.clone()], line)?;
        let tag = self.meta[range.start + hit].tracked.take();
        if tag.is_some() {
            self.tracked_count -= 1;
        }
        tag
    }

    /// Installs an accuracy tag on an already-resident `line` (the copy-up
    /// path of a prefetch that hit in this cache). First-writer-wins like
    /// [`FillInfo::tracked`]; returns whether the line was resident.
    pub fn mark_tracked(&mut self, line: u64, dtype: DataType) -> bool {
        if !self.maybe_resident(line) {
            return false;
        }
        let range = self.set_range(line);
        match find_u64(&self.tags[range.clone()], line) {
            Some(hit) => {
                let w = &mut self.meta[range.start + hit];
                if w.tracked.is_none() {
                    w.tracked = Some(dtype);
                    self.tracked_count += 1;
                }
                true
            }
            None => false,
        }
    }

    /// Whether any resident line carries an accuracy tag — the O(1) gate
    /// the demand path checks before probing.
    pub fn has_tracked(&self) -> bool {
        self.tracked_count > 0
    }

    /// Number of resident lines.
    pub fn occupancy(&self) -> usize {
        self.tags.iter().filter(|&&t| t != TAG_INVALID).count()
    }

    /// Arms a [`CacheMutation`] — conformance-suite use only. The injected
    /// bugs exist so the differential tests can prove they catch and shrink
    /// real replacement-policy regressions.
    #[doc(hidden)]
    pub fn set_test_mutation(&mut self, mutation: CacheMutation) {
        self.mutation = mutation;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        // 4 sets × 2 ways of 64 B lines = 512 B.
        SetAssocCache::new(CacheConfig {
            name: "tiny",
            size_bytes: 512,
            assoc: 2,
            tag_latency: 1,
            data_latency: 2,
            policy: ReplacementPolicy::Lru,
        })
    }

    const P: DataType = DataType::Property;
    const S: DataType = DataType::Structure;

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = tiny();
        assert!(c.touch(0, 0, P, false).is_none());
        assert!(c.fill(0, FillInfo::demand(P, 5)).is_none());
        let hit = c.touch(0, 10, P, false).unwrap();
        assert_eq!(hit.ready_at, 10);
        assert!(!hit.first_prefetch_use);
        assert_eq!(c.stats().demand_hits.get(P), 1);
        assert_eq!(c.stats().demand_accesses.get(P), 2);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = tiny();
        // Lines 0, 4, 8 all map to set 0 (4 sets).
        c.fill(0, FillInfo::demand(P, 0));
        c.fill(4, FillInfo::demand(P, 0));
        c.touch(0, 1, P, false); // refresh 0; 4 becomes LRU
        let ev = c.fill(8, FillInfo::demand(P, 0)).unwrap();
        assert_eq!(ev.line, 4);
        assert!(c.contains(0));
        assert!(!c.contains(4));
        assert!(c.contains(8));
    }

    #[test]
    fn late_prefetch_exposes_residual_latency() {
        let mut c = tiny();
        c.fill(3, FillInfo::prefetch(S, 100));
        let hit = c.touch(3, 40, S, false).unwrap();
        assert_eq!(hit.ready_at, 100);
        assert!(hit.first_prefetch_use);
        assert_eq!(c.stats().late_prefetch_hits.get(S), 1);
        assert_eq!(c.stats().prefetch_first_uses.get(S), 1);
        // A second touch is no longer a first use.
        let hit2 = c.touch(3, 200, S, false).unwrap();
        assert!(!hit2.first_prefetch_use);
        assert_eq!(hit2.ready_at, 200);
    }

    #[test]
    fn unused_prefetch_eviction_counts_as_inaccurate() {
        let mut c = tiny();
        c.fill(0, FillInfo::prefetch(S, 0));
        c.fill(4, FillInfo::demand(P, 0));
        c.fill(8, FillInfo::demand(P, 0)); // evicts prefetched line 0
        assert_eq!(c.stats().prefetch_unused_evictions.get(S), 1);
        assert_eq!(c.stats().prefetch_accuracy(S), 0.0);
    }

    #[test]
    fn refill_of_resident_line_keeps_earliest_ready() {
        let mut c = tiny();
        c.fill(0, FillInfo::prefetch(P, 100));
        assert!(c.fill(0, FillInfo::demand(P, 50)).is_none());
        let hit = c.touch(0, 60, P, false).unwrap();
        assert_eq!(hit.ready_at, 60);
        // Demand fill of a prefetched, unused line counted as a use.
        assert_eq!(c.stats().prefetch_first_uses.get(P), 1);
    }

    #[test]
    fn store_sets_dirty_and_eviction_reports_it() {
        let mut c = tiny();
        c.fill(0, FillInfo::demand(P, 0));
        c.touch(0, 1, P, true);
        c.fill(4, FillInfo::demand(P, 0));
        let ev = c.fill(8, FillInfo::demand(P, 0)).unwrap();
        assert_eq!(ev.line, 0);
        assert!(ev.dirty);
    }

    #[test]
    fn invalidate_removes_and_counts() {
        let mut c = tiny();
        c.fill(0, FillInfo::prefetch(S, 0));
        let ev = c.invalidate(0).unwrap();
        assert_eq!(ev.line, 0);
        assert!(!c.contains(0));
        assert_eq!(c.stats().inclusion_invalidations, 1);
        assert_eq!(c.stats().prefetch_unused_evictions.get(S), 1);
        assert!(c.invalidate(0).is_none());
    }

    #[test]
    fn contains_is_side_effect_free() {
        let mut c = tiny();
        c.fill(0, FillInfo::demand(P, 0));
        let before = *c.stats();
        assert!(c.contains(0));
        assert!(!c.contains(9));
        assert_eq!(
            c.stats().demand_accesses.total(),
            before.demand_accesses.total()
        );
    }

    #[test]
    fn tracked_tag_lifecycle() {
        let mut c = tiny();
        assert!(!c.has_tracked());
        c.fill(0, FillInfo::prefetch(S, 10).tracked());
        assert!(c.has_tracked());
        // Consuming the tag is one-shot and side-effect free on stats.
        let before = *c.stats();
        assert_eq!(c.take_tracked(0), Some(S));
        assert_eq!(c.take_tracked(0), None);
        assert!(!c.has_tracked());
        assert_eq!(
            c.stats().demand_accesses.total(),
            before.demand_accesses.total()
        );
    }

    #[test]
    fn tracked_tag_first_writer_wins() {
        let mut c = tiny();
        c.fill(0, FillInfo::prefetch(S, 0).tracked());
        // Refresh with a different dtype must not overwrite the tag.
        c.fill(0, FillInfo::prefetch(P, 0).tracked());
        assert!(c.mark_tracked(0, P)); // resident, but tag already set
        assert_eq!(c.take_tracked(0), Some(S));
        assert!(!c.mark_tracked(9, P)); // not resident
    }

    #[test]
    fn eviction_reports_pending_tag() {
        let mut c = tiny();
        c.fill(0, FillInfo::prefetch(S, 0).tracked());
        c.fill(4, FillInfo::demand(P, 0));
        let ev = c.fill(8, FillInfo::demand(P, 0)).unwrap();
        assert_eq!(ev.line, 0);
        assert_eq!(ev.tracked, Some(S));
        assert!(!c.has_tracked());
    }

    #[test]
    fn invalidate_reports_pending_tag() {
        let mut c = tiny();
        c.fill(0, FillInfo::prefetch(S, 0));
        assert!(c.mark_tracked(0, S));
        let ev = c.invalidate(0).unwrap();
        assert_eq!(ev.tracked, Some(S));
        assert!(!c.has_tracked());
    }

    #[test]
    fn occupancy_tracks_fills() {
        let mut c = tiny();
        assert_eq!(c.occupancy(), 0);
        for l in 0..8 {
            c.fill(l, FillInfo::demand(P, 0));
        }
        assert_eq!(c.occupancy(), 8); // full: 4 sets × 2 ways
        c.fill(8, FillInfo::demand(P, 0));
        assert_eq!(c.occupancy(), 8);
    }
}
