//! Cache models for the DROPLET reproduction: set-associative caches with
//! pluggable replacement (true LRU by default, plus the SRRIP/BRRIP/DRRIP/
//! SHiP laboratory — see [`ReplacementPolicy`]), prefetch-usefulness
//! tracking and in-flight fill timing (so prefetch *timeliness* is modeled,
//! not just coverage), per-data-type statistics, and the reuse-distance
//! profiler behind the paper's Observation #6.
//!
//! # Example
//!
//! ```
//! use droplet_cache::{CacheConfig, FillInfo, SetAssocCache};
//! use droplet_trace::DataType;
//!
//! let mut l1 = SetAssocCache::new(CacheConfig::l1d());
//! let line = 0x1000 / 64;
//! assert!(l1.touch(line, 0, DataType::Structure, false).is_none()); // cold miss
//! l1.fill(line, FillInfo::demand(DataType::Structure, 0));
//! assert!(l1.touch(line, 10, DataType::Structure, false).is_some()); // hit
//! ```

pub mod cache;
pub mod config;
pub mod policy;
pub mod reuse;
pub mod stats;

pub use cache::{CacheMutation, EvictedLine, FillInfo, HitInfo, SetAssocCache};
pub use config::CacheConfig;
pub use policy::{ship_signature, DuelRole, ReplacementPolicy};
pub use reuse::{ReuseHistogram, ReuseProfiler, ReuseReport};
pub use stats::{CacheStats, TypedCounter};
