//! Reuse-distance (LRU stack distance) profiling — the measurement behind
//! the paper's Observation #6: *graph structure cachelines have the largest
//! reuse distance of all data types; property cachelines have a reuse
//! distance larger than the L2 stack depth but often within LLC reach.*
//!
//! Implemented with Olken's algorithm: a Fenwick tree over access
//! timestamps counts the number of *distinct* lines touched since the
//! previous access to the same line, in O(log n) per access.

use droplet_trace::DataType;
use std::collections::HashMap;

/// Growable Fenwick (binary indexed) tree over 0/1 marks.
///
/// Growth rebuilds the tree from an explicit mark bitmap: a doubling resize
/// cannot simply zero-extend, because past updates never propagated into the
/// new high-order nodes.
#[derive(Debug, Clone, Default)]
struct Fenwick {
    tree: Vec<u64>,
    marks: Vec<u64>, // bitmap of current 0/1 marks
}

impl Fenwick {
    fn mark_get(&self, idx: usize) -> bool {
        self.marks
            .get(idx / 64)
            .is_some_and(|w| w >> (idx % 64) & 1 == 1)
    }

    fn mark_set(&mut self, idx: usize, on: bool) {
        let word = idx / 64;
        if word >= self.marks.len() {
            self.marks.resize(word + 1, 0);
        }
        if on {
            self.marks[word] |= 1 << (idx % 64);
        } else {
            self.marks[word] &= !(1 << (idx % 64));
        }
    }

    fn ensure(&mut self, idx: usize) {
        if idx + 1 < self.tree.len() {
            return;
        }
        let new_len = (idx + 2).next_power_of_two();
        self.tree = vec![0; new_len];
        // Rebuild from the bitmap in O(n): bottom-up accumulation.
        for i in 1..new_len {
            if self.mark_get(i - 1) {
                self.tree[i] += 1;
            }
            let parent = i + (i & i.wrapping_neg());
            if parent < new_len {
                let v = self.tree[i];
                self.tree[parent] += v;
            }
        }
    }

    fn add(&mut self, idx: usize, delta: i64) {
        self.ensure(idx);
        self.mark_set(idx, delta > 0);
        let mut i = idx + 1; // 1-based
        while i < self.tree.len() {
            self.tree[i] = self.tree[i].wrapping_add(delta as u64);
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of marks in positions `0..=idx`.
    fn prefix(&self, idx: usize) -> u64 {
        let mut idx = (idx + 1).min(self.tree.len().saturating_sub(1));
        let mut sum = 0u64;
        while idx > 0 {
            sum = sum.wrapping_add(self.tree[idx]);
            idx -= idx & idx.wrapping_neg();
        }
        sum
    }
}

/// Histogram of reuse distances in power-of-two buckets of *distinct lines*.
#[derive(Debug, Clone, Default)]
pub struct ReuseHistogram {
    /// `buckets[k]` counts reuses with distance in `[2^k, 2^(k+1))`
    /// (bucket 0 covers distances 0 and 1).
    buckets: Vec<u64>,
    /// First-ever accesses (infinite distance).
    cold: u64,
    total_reuses: u64,
}

impl ReuseHistogram {
    fn record(&mut self, distance: u64) {
        let bucket = 64 - distance.max(1).leading_zeros() as usize - 1;
        if self.buckets.len() <= bucket {
            self.buckets.resize(bucket + 1, 0);
        }
        self.buckets[bucket] += 1;
        self.total_reuses += 1;
    }

    /// Cold (first-touch) accesses.
    pub fn cold(&self) -> u64 {
        self.cold
    }

    /// Number of non-cold reuses recorded.
    pub fn reuses(&self) -> u64 {
        self.total_reuses
    }

    /// Fraction of reuses whose stack distance fits within a fully
    /// associative cache of `lines` lines — i.e. the best-case hit rate a
    /// cache of that size could achieve on this reference stream.
    pub fn capturable_by(&self, lines: u64) -> f64 {
        if self.total_reuses == 0 {
            return 0.0;
        }
        let mut captured = 0u64;
        for (k, &count) in self.buckets.iter().enumerate() {
            let hi = 1u64 << (k + 1); // exclusive upper bound of bucket
            if hi <= lines.max(1) {
                captured += count;
            } else if (1u64 << k) <= lines {
                // Partial bucket: assume uniform spread inside the bucket.
                let lo = 1u64 << k;
                let frac = (lines - lo + 1) as f64 / (hi - lo) as f64;
                captured += (count as f64 * frac) as u64;
            }
        }
        captured as f64 / self.total_reuses as f64
    }

    /// Mean log2 reuse distance over reuses (bucket midpoints).
    pub fn mean_log2_distance(&self) -> f64 {
        if self.total_reuses == 0 {
            return 0.0;
        }
        let weighted: f64 = self
            .buckets
            .iter()
            .enumerate()
            .map(|(k, &c)| (k as f64 + 0.5) * c as f64)
            .sum();
        weighted / self.total_reuses as f64
    }

    /// The raw power-of-two bucket counts (`[k]` covers `[2^k, 2^(k+1))`,
    /// bucket 0 covering distances 0 and 1). Exposed so tests can pin
    /// hand-computed histograms exactly and drivers can render them.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.buckets
    }
}

/// One data type's row of a [`ReuseReport`].
#[derive(Debug, Clone, Copy)]
pub struct ReuseRow {
    /// The data type this row describes.
    pub dtype: DataType,
    /// First-touch accesses (infinite distance).
    pub cold: u64,
    /// Non-cold reuses.
    pub reuses: u64,
    /// Mean log2 stack distance over reuses.
    pub mean_log2_distance: f64,
    /// Best-case hit fraction within the small-cache capacity.
    pub capturable_small: f64,
    /// Best-case hit fraction within the large-cache capacity.
    pub capturable_large: f64,
}

impl ReuseRow {
    /// Fraction of reuses only the large cache can capture — the working
    /// set slice a bigger or better-managed LLC wins back.
    pub fn large_cache_gain(&self) -> f64 {
        (self.capturable_large - self.capturable_small).max(0.0)
    }

    /// Fraction of reuses beyond even the large cache: the scanning slice
    /// that thrashes LRU and that scan-resistant insertion (RRIP/SHiP)
    /// keeps away from the resident working set.
    pub fn thrash_fraction(&self) -> f64 {
        (1.0 - self.capturable_large).max(0.0)
    }
}

/// Per-data-type reuse summary at two cache capacities — the analysis
/// behind the paper's Observation #6, packaged so the replacement-policy
/// study can *explain* per-data-type wins: a type with a large
/// [`ReuseRow::thrash_fraction`] pollutes an LRU cache with dead lines,
/// and the types with high [`ReuseRow::large_cache_gain`] are the ones a
/// scan-resistant policy protects.
#[derive(Debug, Clone)]
pub struct ReuseReport {
    /// One row per [`DataType`], in `DataType::ALL` order.
    pub rows: [ReuseRow; 3],
}

impl ReuseReport {
    /// The row for one data type.
    pub fn row(&self, dtype: DataType) -> &ReuseRow {
        &self.rows[dtype.index()]
    }

    /// The data type with the largest scanning (LRU-thrashing) share,
    /// ignoring types with no reuses at all.
    pub fn most_thrashing(&self) -> DataType {
        self.rows
            .iter()
            .filter(|r| r.reuses > 0)
            .max_by(|a, b| a.thrash_fraction().total_cmp(&b.thrash_fraction()))
            .map_or(DataType::Structure, |r| r.dtype)
    }
}

/// Olken reuse-distance profiler at cacheline granularity, split by data
/// type.
///
/// # Example
///
/// ```
/// use droplet_cache::ReuseProfiler;
/// use droplet_trace::DataType;
/// let mut p = ReuseProfiler::new();
/// p.access(1, DataType::Property);
/// p.access(2, DataType::Property);
/// p.access(1, DataType::Property); // distance 1 (one distinct line between)
/// let h = p.histogram(DataType::Property);
/// assert_eq!(h.cold(), 2);
/// assert_eq!(h.reuses(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ReuseProfiler {
    time: usize,
    last_access: HashMap<u64, usize>,
    fenwick: Fenwick,
    histograms: [ReuseHistogram; 3],
}

impl ReuseProfiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an access to `line` of type `dtype`.
    pub fn access(&mut self, line: u64, dtype: DataType) {
        let t = self.time;
        self.time += 1;
        match self.last_access.insert(line, t) {
            None => {
                self.histograms[dtype.index()].cold += 1;
            }
            Some(prev) => {
                // Distinct lines whose most recent access lies in (prev, t).
                let distance = self.fenwick.prefix(t) - self.fenwick.prefix(prev);
                self.histograms[dtype.index()].record(distance);
                self.fenwick.add(prev, -1);
            }
        }
        self.fenwick.add(t, 1);
    }

    /// The histogram for one data type.
    pub fn histogram(&self, dtype: DataType) -> &ReuseHistogram {
        &self.histograms[dtype.index()]
    }

    /// Number of distinct lines seen.
    pub fn distinct_lines(&self) -> usize {
        self.last_access.len()
    }

    /// Summarizes every data type at two capacities (in lines) — typically
    /// the L2 and the LLC, so the report separates "fits in L2", "LLC
    /// recovers it", and "thrashes everything" reuse populations.
    pub fn report(&self, small_lines: u64, large_lines: u64) -> ReuseReport {
        let rows = DataType::ALL.map(|dtype| {
            let h = self.histogram(dtype);
            ReuseRow {
                dtype,
                cold: h.cold(),
                reuses: h.reuses(),
                mean_log2_distance: h.mean_log2_distance(),
                capturable_small: h.capturable_by(small_lines),
                capturable_large: h.capturable_by(large_lines),
            }
        });
        ReuseReport { rows }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: DataType = DataType::Property;
    const S: DataType = DataType::Structure;

    /// Naive oracle: stack distance = number of distinct lines accessed
    /// strictly between the two accesses to the same line.
    fn oracle(stream: &[u64]) -> Vec<Option<u64>> {
        let mut out = Vec::new();
        for (i, &line) in stream.iter().enumerate() {
            let prev = stream[..i].iter().rposition(|&l| l == line);
            out.push(prev.map(|p| {
                let mut distinct: Vec<u64> = stream[p + 1..i].to_vec();
                distinct.sort_unstable();
                distinct.dedup();
                distinct.len() as u64
            }));
        }
        out
    }

    #[test]
    fn matches_naive_oracle() {
        let stream = [1u64, 2, 3, 1, 2, 2, 4, 1, 3, 3, 5, 1];
        let expected = oracle(&stream);
        let mut p = ReuseProfiler::new();
        let mut got: Vec<Option<u64>> = Vec::new();
        // Re-derive distances by intercepting through a parallel profiler
        // whose histogram we inspect access by access.
        for &line in &stream {
            let before = (p.histogram(P).reuses(), p.histogram(P).cold());
            p.access(line, P);
            let after = (p.histogram(P).reuses(), p.histogram(P).cold());
            if after.1 > before.1 {
                got.push(None);
            } else {
                got.push(Some(0)); // placeholder: bucketed, checked below
            }
        }
        // Cold/reuse classification must match the oracle exactly.
        for (g, e) in got.iter().zip(expected.iter()) {
            assert_eq!(g.is_none(), e.is_none());
        }
        assert_eq!(p.histogram(P).cold(), 5);
        assert_eq!(p.histogram(P).reuses(), stream.len() as u64 - 5);
    }

    #[test]
    fn exact_distances_via_buckets() {
        // Access pattern with known distances: a b c a → distance 2 for 'a'.
        let mut p = ReuseProfiler::new();
        for l in [10u64, 20, 30, 10] {
            p.access(l, S);
        }
        let h = p.histogram(S);
        assert_eq!(h.reuses(), 1);
        // Distance 2 lands in bucket 1 ([2,4)): capturable by 4 lines.
        assert_eq!(h.capturable_by(4), 1.0);
        assert_eq!(h.capturable_by(1), 0.0);
    }

    #[test]
    fn immediate_reuse_is_distance_zero() {
        let mut p = ReuseProfiler::new();
        p.access(7, P);
        p.access(7, P);
        let h = p.histogram(P);
        assert_eq!(h.reuses(), 1);
        assert_eq!(h.capturable_by(1), 1.0);
    }

    #[test]
    fn types_are_kept_apart() {
        let mut p = ReuseProfiler::new();
        p.access(1, S);
        p.access(1, S);
        p.access(2, P);
        assert_eq!(p.histogram(S).reuses(), 1);
        assert_eq!(p.histogram(P).reuses(), 0);
        assert_eq!(p.histogram(P).cold(), 1);
        assert_eq!(p.distinct_lines(), 2);
    }

    #[test]
    fn capturable_is_monotone_in_capacity() {
        let mut p = ReuseProfiler::new();
        // Cyclic sweep over 64 lines, twice: distance 63 for each reuse.
        for _ in 0..2 {
            for l in 0..64u64 {
                p.access(l, S);
            }
        }
        let h = p.histogram(S);
        assert_eq!(h.reuses(), 64);
        let caps: Vec<f64> = [1u64, 16, 64, 256]
            .iter()
            .map(|&c| h.capturable_by(c))
            .collect();
        assert!(caps.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*caps.last().unwrap(), 1.0);
        assert_eq!(caps[0], 0.0);
        assert!(h.mean_log2_distance() > 4.0);
    }

    #[test]
    fn hand_computed_histogram_is_pinned_exactly() {
        // Stream: a b a c b a  (a=1, b=2, c=3), all Structure.
        //   a@0 cold, b@1 cold, a@2 dist 1 (b)      -> bucket 0
        //   c@3 cold, b@4 dist 2 (a, c)             -> bucket 1
        //   a@5 dist 2 (c, b)                       -> bucket 1
        let mut p = ReuseProfiler::new();
        for l in [1u64, 2, 1, 3, 2, 1] {
            p.access(l, S);
        }
        let h = p.histogram(S);
        assert_eq!(h.cold(), 3);
        assert_eq!(h.reuses(), 3);
        assert_eq!(h.bucket_counts(), &[1, 2]);
        // Bucket midpoints: (0.5 * 1 + 1.5 * 2) / 3.
        assert!((h.mean_log2_distance() - 3.5 / 3.0).abs() < 1e-12);
        assert_eq!(p.distinct_lines(), 3);
    }

    #[test]
    fn hand_computed_histogram_with_repeats_and_gaps() {
        // Stream: x x y x  (x=10, y=20).
        //   x@0 cold, x@1 dist 0 -> bucket 0, y@2 cold,
        //   x@3 dist 1 (y)       -> bucket 0
        let mut p = ReuseProfiler::new();
        for l in [10u64, 10, 20, 10] {
            p.access(l, P);
        }
        let h = p.histogram(P);
        assert_eq!(h.cold(), 2);
        assert_eq!(h.reuses(), 2);
        assert_eq!(h.bucket_counts(), &[2]);
        assert_eq!(h.capturable_by(1), 1.0);
    }

    #[test]
    fn report_breaks_down_structure_vs_property_wins() {
        // Synthetic graph-shaped trace: a 64-line structure scan with a hot
        // 4-line property working set re-touched every 8 structure lines.
        // Every property reuse spans 3 hot lines + 8 scan lines = distance
        // 11 (bucket [8,16)); every structure reuse spans a full cycle of
        // 63 other scan lines + 4 hot lines = distance 67 (bucket [64,128)).
        let mut p = ReuseProfiler::new();
        for _ in 0..4 {
            for l in 0..64u64 {
                if l % 8 == 0 {
                    for h in 0..4u64 {
                        p.access(1_000 + h, P);
                    }
                }
                p.access(l, S);
            }
        }
        let report = p.report(16, 256);
        let prop = report.row(P);
        let stru = report.row(S);
        assert_eq!(prop.cold, 4);
        assert_eq!(prop.reuses, 4 * 8 * 4 - 4);
        assert_eq!(stru.cold, 64);
        assert_eq!(stru.reuses, 3 * 64);
        // Property fits the small cache outright; structure reuses are
        // beyond it but fully within the large cache — the Observation #6
        // shape, now split per data type.
        assert_eq!(prop.capturable_small, 1.0);
        assert_eq!(prop.thrash_fraction(), 0.0);
        assert_eq!(stru.capturable_small, 0.0);
        assert_eq!(stru.capturable_large, 1.0);
        assert_eq!(stru.large_cache_gain(), 1.0);
        assert!(stru.mean_log2_distance > prop.mean_log2_distance);
        // Shrink the large capacity below the scan length and the structure
        // stream becomes the thrashing slice a scan-resistant policy fences.
        let tight = p.report(16, 32);
        assert_eq!(tight.row(S).thrash_fraction(), 1.0);
        assert_eq!(tight.most_thrashing(), S);
        assert_eq!(tight.row(P).thrash_fraction(), 0.0);
    }
}
