//! Reuse-distance (LRU stack distance) profiling — the measurement behind
//! the paper's Observation #6: *graph structure cachelines have the largest
//! reuse distance of all data types; property cachelines have a reuse
//! distance larger than the L2 stack depth but often within LLC reach.*
//!
//! Implemented with Olken's algorithm: a Fenwick tree over access
//! timestamps counts the number of *distinct* lines touched since the
//! previous access to the same line, in O(log n) per access.

use droplet_trace::DataType;
use std::collections::HashMap;

/// Growable Fenwick (binary indexed) tree over 0/1 marks.
///
/// Growth rebuilds the tree from an explicit mark bitmap: a doubling resize
/// cannot simply zero-extend, because past updates never propagated into the
/// new high-order nodes.
#[derive(Debug, Clone, Default)]
struct Fenwick {
    tree: Vec<u64>,
    marks: Vec<u64>, // bitmap of current 0/1 marks
}

impl Fenwick {
    fn mark_get(&self, idx: usize) -> bool {
        self.marks
            .get(idx / 64)
            .is_some_and(|w| w >> (idx % 64) & 1 == 1)
    }

    fn mark_set(&mut self, idx: usize, on: bool) {
        let word = idx / 64;
        if word >= self.marks.len() {
            self.marks.resize(word + 1, 0);
        }
        if on {
            self.marks[word] |= 1 << (idx % 64);
        } else {
            self.marks[word] &= !(1 << (idx % 64));
        }
    }

    fn ensure(&mut self, idx: usize) {
        if idx + 1 < self.tree.len() {
            return;
        }
        let new_len = (idx + 2).next_power_of_two();
        self.tree = vec![0; new_len];
        // Rebuild from the bitmap in O(n): bottom-up accumulation.
        for i in 1..new_len {
            if self.mark_get(i - 1) {
                self.tree[i] += 1;
            }
            let parent = i + (i & i.wrapping_neg());
            if parent < new_len {
                let v = self.tree[i];
                self.tree[parent] += v;
            }
        }
    }

    fn add(&mut self, idx: usize, delta: i64) {
        self.ensure(idx);
        self.mark_set(idx, delta > 0);
        let mut i = idx + 1; // 1-based
        while i < self.tree.len() {
            self.tree[i] = self.tree[i].wrapping_add(delta as u64);
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of marks in positions `0..=idx`.
    fn prefix(&self, idx: usize) -> u64 {
        let mut idx = (idx + 1).min(self.tree.len().saturating_sub(1));
        let mut sum = 0u64;
        while idx > 0 {
            sum = sum.wrapping_add(self.tree[idx]);
            idx -= idx & idx.wrapping_neg();
        }
        sum
    }
}

/// Histogram of reuse distances in power-of-two buckets of *distinct lines*.
#[derive(Debug, Clone, Default)]
pub struct ReuseHistogram {
    /// `buckets[k]` counts reuses with distance in `[2^k, 2^(k+1))`
    /// (bucket 0 covers distances 0 and 1).
    buckets: Vec<u64>,
    /// First-ever accesses (infinite distance).
    cold: u64,
    total_reuses: u64,
}

impl ReuseHistogram {
    fn record(&mut self, distance: u64) {
        let bucket = 64 - distance.max(1).leading_zeros() as usize - 1;
        if self.buckets.len() <= bucket {
            self.buckets.resize(bucket + 1, 0);
        }
        self.buckets[bucket] += 1;
        self.total_reuses += 1;
    }

    /// Cold (first-touch) accesses.
    pub fn cold(&self) -> u64 {
        self.cold
    }

    /// Number of non-cold reuses recorded.
    pub fn reuses(&self) -> u64 {
        self.total_reuses
    }

    /// Fraction of reuses whose stack distance fits within a fully
    /// associative cache of `lines` lines — i.e. the best-case hit rate a
    /// cache of that size could achieve on this reference stream.
    pub fn capturable_by(&self, lines: u64) -> f64 {
        if self.total_reuses == 0 {
            return 0.0;
        }
        let mut captured = 0u64;
        for (k, &count) in self.buckets.iter().enumerate() {
            let hi = 1u64 << (k + 1); // exclusive upper bound of bucket
            if hi <= lines.max(1) {
                captured += count;
            } else if (1u64 << k) <= lines {
                // Partial bucket: assume uniform spread inside the bucket.
                let lo = 1u64 << k;
                let frac = (lines - lo + 1) as f64 / (hi - lo) as f64;
                captured += (count as f64 * frac) as u64;
            }
        }
        captured as f64 / self.total_reuses as f64
    }

    /// Mean log2 reuse distance over reuses (bucket midpoints).
    pub fn mean_log2_distance(&self) -> f64 {
        if self.total_reuses == 0 {
            return 0.0;
        }
        let weighted: f64 = self
            .buckets
            .iter()
            .enumerate()
            .map(|(k, &c)| (k as f64 + 0.5) * c as f64)
            .sum();
        weighted / self.total_reuses as f64
    }
}

/// Olken reuse-distance profiler at cacheline granularity, split by data
/// type.
///
/// # Example
///
/// ```
/// use droplet_cache::ReuseProfiler;
/// use droplet_trace::DataType;
/// let mut p = ReuseProfiler::new();
/// p.access(1, DataType::Property);
/// p.access(2, DataType::Property);
/// p.access(1, DataType::Property); // distance 1 (one distinct line between)
/// let h = p.histogram(DataType::Property);
/// assert_eq!(h.cold(), 2);
/// assert_eq!(h.reuses(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ReuseProfiler {
    time: usize,
    last_access: HashMap<u64, usize>,
    fenwick: Fenwick,
    histograms: [ReuseHistogram; 3],
}

impl ReuseProfiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an access to `line` of type `dtype`.
    pub fn access(&mut self, line: u64, dtype: DataType) {
        let t = self.time;
        self.time += 1;
        match self.last_access.insert(line, t) {
            None => {
                self.histograms[dtype.index()].cold += 1;
            }
            Some(prev) => {
                // Distinct lines whose most recent access lies in (prev, t).
                let distance = self.fenwick.prefix(t) - self.fenwick.prefix(prev);
                self.histograms[dtype.index()].record(distance);
                self.fenwick.add(prev, -1);
            }
        }
        self.fenwick.add(t, 1);
    }

    /// The histogram for one data type.
    pub fn histogram(&self, dtype: DataType) -> &ReuseHistogram {
        &self.histograms[dtype.index()]
    }

    /// Number of distinct lines seen.
    pub fn distinct_lines(&self) -> usize {
        self.last_access.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: DataType = DataType::Property;
    const S: DataType = DataType::Structure;

    /// Naive oracle: stack distance = number of distinct lines accessed
    /// strictly between the two accesses to the same line.
    fn oracle(stream: &[u64]) -> Vec<Option<u64>> {
        let mut out = Vec::new();
        for (i, &line) in stream.iter().enumerate() {
            let prev = stream[..i].iter().rposition(|&l| l == line);
            out.push(prev.map(|p| {
                let mut distinct: Vec<u64> = stream[p + 1..i].to_vec();
                distinct.sort_unstable();
                distinct.dedup();
                distinct.len() as u64
            }));
        }
        out
    }

    #[test]
    fn matches_naive_oracle() {
        let stream = [1u64, 2, 3, 1, 2, 2, 4, 1, 3, 3, 5, 1];
        let expected = oracle(&stream);
        let mut p = ReuseProfiler::new();
        let mut got: Vec<Option<u64>> = Vec::new();
        // Re-derive distances by intercepting through a parallel profiler
        // whose histogram we inspect access by access.
        for &line in &stream {
            let before = (p.histogram(P).reuses(), p.histogram(P).cold());
            p.access(line, P);
            let after = (p.histogram(P).reuses(), p.histogram(P).cold());
            if after.1 > before.1 {
                got.push(None);
            } else {
                got.push(Some(0)); // placeholder: bucketed, checked below
            }
        }
        // Cold/reuse classification must match the oracle exactly.
        for (g, e) in got.iter().zip(expected.iter()) {
            assert_eq!(g.is_none(), e.is_none());
        }
        assert_eq!(p.histogram(P).cold(), 5);
        assert_eq!(p.histogram(P).reuses(), stream.len() as u64 - 5);
    }

    #[test]
    fn exact_distances_via_buckets() {
        // Access pattern with known distances: a b c a → distance 2 for 'a'.
        let mut p = ReuseProfiler::new();
        for l in [10u64, 20, 30, 10] {
            p.access(l, S);
        }
        let h = p.histogram(S);
        assert_eq!(h.reuses(), 1);
        // Distance 2 lands in bucket 1 ([2,4)): capturable by 4 lines.
        assert_eq!(h.capturable_by(4), 1.0);
        assert_eq!(h.capturable_by(1), 0.0);
    }

    #[test]
    fn immediate_reuse_is_distance_zero() {
        let mut p = ReuseProfiler::new();
        p.access(7, P);
        p.access(7, P);
        let h = p.histogram(P);
        assert_eq!(h.reuses(), 1);
        assert_eq!(h.capturable_by(1), 1.0);
    }

    #[test]
    fn types_are_kept_apart() {
        let mut p = ReuseProfiler::new();
        p.access(1, S);
        p.access(1, S);
        p.access(2, P);
        assert_eq!(p.histogram(S).reuses(), 1);
        assert_eq!(p.histogram(P).reuses(), 0);
        assert_eq!(p.histogram(P).cold(), 1);
        assert_eq!(p.distinct_lines(), 2);
    }

    #[test]
    fn capturable_is_monotone_in_capacity() {
        let mut p = ReuseProfiler::new();
        // Cyclic sweep over 64 lines, twice: distance 63 for each reuse.
        for _ in 0..2 {
            for l in 0..64u64 {
                p.access(l, S);
            }
        }
        let h = p.histogram(S);
        assert_eq!(h.reuses(), 64);
        let caps: Vec<f64> = [1u64, 16, 64, 256]
            .iter()
            .map(|&c| h.capturable_by(c))
            .collect();
        assert!(caps.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*caps.last().unwrap(), 1.0);
        assert_eq!(caps[0], 0.0);
        assert!(h.mean_log2_distance() > 4.0);
    }
}
