//! Per-policy oracle for the packed cache's replacement seam: each of the
//! five [`ReplacementPolicy`] variants is pinned twice —
//!
//! 1. **Exact sequences**: hand-computed traces whose eviction order only
//!    comes out right if the policy's defining mechanism works (SRRIP hit
//!    promotion, the deterministic BRRIP bimodal counter crossing its
//!    period, DRRIP set-dueling flipping the followers, SHiP dead-block
//!    prediction and its training edges).
//! 2. **Fuzzed lockstep**: ≥10k mixed operations per policy against a naive
//!    slot-stable model written in the simplest possible terms, comparing
//!    every observable per op — hit/miss, `ready_at`, first-prefetch-use,
//!    evicted-line identity and flags, residency, and occupancy.
//!
//! Mirrors `tlb_stamp_oracle.rs` / `packed_lru_oracle.rs`; the conformance
//! crate replays the same contract against its own reference models, so a
//! policy bug has to fool two independently written oracles to land.

use droplet_cache::policy::{
    DuelRole, BRRIP_LONG_PERIOD, PSEL_INIT, RRPV_LONG, RRPV_MAX, SHCT_ENTRIES, SHCT_INIT, SHCT_MAX,
};
use droplet_cache::{ship_signature, CacheConfig, FillInfo, ReplacementPolicy, SetAssocCache};
use droplet_trace::DataType;
use proptest::{env_seed, TestRng};

/// A one-set (or few-set) eviction-pressure geometry for `policy`.
fn tiny(policy: ReplacementPolicy, lines: u64, assoc: usize) -> CacheConfig {
    CacheConfig {
        name: "t",
        size_bytes: lines * 64,
        assoc,
        tag_latency: 1,
        data_latency: 1,
        policy,
    }
}

fn demand(now: u64) -> FillInfo {
    FillInfo::demand(DataType::Property, now)
}

/// Fills `line` and returns the evicted line's identity (if any).
fn fill_evicting(c: &mut SetAssocCache, line: u64, now: u64) -> Option<u64> {
    c.fill(line, demand(now)).map(|e| e.line)
}

// ---------------------------------------------------------------------------
// Exact hand-computed sequences.
// ---------------------------------------------------------------------------

/// SRRIP: inserts at RRPV_LONG, hit promotes to 0, victim = first way at
/// RRPV_MAX after aging rounds. The promoted line must outlive an aged one.
#[test]
fn srrip_exact_sequence() {
    // 1 set x 2 ways.
    let mut c = SetAssocCache::new(tiny(ReplacementPolicy::Srrip, 2, 2));
    assert_eq!(fill_evicting(&mut c, 10, 0), None); // way0: 10@LONG
    assert_eq!(fill_evicting(&mut c, 20, 1), None); // way1: 20@LONG
                                                    // No way at MAX: one aging round lifts both to MAX, way0 wins the tie.
    assert_eq!(fill_evicting(&mut c, 30, 2), Some(10)); // way0: 30@LONG, way1: 20@MAX
    assert_eq!(fill_evicting(&mut c, 40, 3), Some(20)); // way1: 40@LONG
    assert!(c.touch(30, 4, DataType::Property, false).is_some()); // 30 → RRPV 0
                                                                  // Aging: 30→1, 40→MAX. The promoted line survives.
    assert_eq!(fill_evicting(&mut c, 50, 5), Some(40));
    assert!(c.contains(30) && c.contains(50) && !c.contains(40));
}

/// BRRIP: the deterministic bimodal counter inserts at RRPV_MAX except on
/// every `BRRIP_LONG_PERIOD`-th insertion, which gets RRPV_LONG and — for
/// the first time in the whole run — outlives the set's standing occupant.
#[test]
fn brrip_exact_sequence() {
    // 1 set x 2 ways; insertions 1..=31 land at MAX, insertion 32 at LONG.
    let mut c = SetAssocCache::new(tiny(ReplacementPolicy::Brrip, 2, 2));
    assert_eq!(fill_evicting(&mut c, 1, 0), None); // way0: 1@MAX
    assert_eq!(fill_evicting(&mut c, 2, 1), None); // way1: 2@MAX
                                                   // MAX-inserted lines are immediately re-evictable: way0 thrashes while
                                                   // way1's line 2 sits untouched for 30 straight evictions.
    assert_eq!(fill_evicting(&mut c, 3, 2), Some(1));
    for n in 4..BRRIP_LONG_PERIOD {
        assert_eq!(fill_evicting(&mut c, n, n), Some(n - 1), "insertion {n}");
    }
    // Insertion 32 = the bimodal LONG insert (still evicts way0's line 31).
    assert_eq!(fill_evicting(&mut c, 32, 32), Some(31)); // way0: 32@LONG
                                                         // Now way1 (2@MAX) is finally the victim: the LONG insert survived.
    assert_eq!(fill_evicting(&mut c, 33, 33), Some(2)); // way1: 33@MAX
    assert_eq!(fill_evicting(&mut c, 34, 34), Some(33));
    assert!(c.contains(32));
}

/// The DRRIP set-dueling layout is fixed by geometry alone.
#[test]
fn drrip_duel_roles() {
    // 4 sets → period 4: set 0 leads SRRIP, set 2 (= period/2) leads BRRIP.
    assert_eq!(DuelRole::of_set(0, 4), DuelRole::SrripLeader);
    assert_eq!(DuelRole::of_set(1, 4), DuelRole::Follower);
    assert_eq!(DuelRole::of_set(2, 4), DuelRole::BrripLeader);
    assert_eq!(DuelRole::of_set(3, 4), DuelRole::Follower);
    // Large caches cap the period at 32.
    assert_eq!(DuelRole::of_set(32, 4096), DuelRole::SrripLeader);
    assert_eq!(DuelRole::of_set(16, 4096), DuelRole::BrripLeader);
    assert_eq!(DuelRole::of_set(17, 4096), DuelRole::Follower);
}

/// DRRIP: PSEL starts at the BRRIP side, a BRRIP-leader miss flips the
/// followers to SRRIP, SRRIP-leader misses flip them back — and prefetch
/// fills never train. Follower mode is observed through the eviction
/// pattern A,B,C,D → (A then C) under BRRIP vs (A then B) under SRRIP.
#[test]
fn drrip_exact_sequence() {
    // 4 sets x 2 ways; set 1 and set 3 are followers.
    let mut c = SetAssocCache::new(tiny(ReplacementPolicy::Drrip, 8, 2));
    // Phase 1 — PSEL at init ⇒ followers run BRRIP (MAX inserts thrash).
    assert_eq!(fill_evicting(&mut c, 1, 0), None);
    assert_eq!(fill_evicting(&mut c, 5, 1), None);
    assert_eq!(fill_evicting(&mut c, 9, 2), Some(1));
    assert_eq!(fill_evicting(&mut c, 13, 3), Some(9)); // BRRIP: not 5
                                                       // Phase 2 — one demand miss in the BRRIP leader (set 2) drops PSEL
                                                       // below init ⇒ followers flip to SRRIP. A prefetch fill into the SRRIP
                                                       // leader (set 0) must NOT train PSEL back.
    assert_eq!(fill_evicting(&mut c, 2, 4), None);
    assert!(c
        .fill(8, FillInfo::prefetch(DataType::Structure, 5))
        .is_none());
    assert_eq!(fill_evicting(&mut c, 3, 6), None); // set 3, LONG insert
    assert_eq!(fill_evicting(&mut c, 7, 7), None);
    assert_eq!(fill_evicting(&mut c, 11, 8), Some(3));
    assert_eq!(fill_evicting(&mut c, 15, 9), Some(7)); // SRRIP: not 11
                                                       // Phase 3 — two demand misses in the SRRIP leader (set 0) push PSEL
                                                       // back to/above init ⇒ followers return to BRRIP.
    assert_eq!(fill_evicting(&mut c, 0, 10), None);
    assert_eq!(fill_evicting(&mut c, 4, 11), Some(8));
    assert_eq!(fill_evicting(&mut c, 17, 12), Some(13)); // set 1: way0 thrash
    assert_eq!(fill_evicting(&mut c, 21, 13), Some(17)); // BRRIP: not 5
}

/// SHiP: a signature whose lines die unreferenced is trained to 0 and its
/// next fill is inserted dead-on-arrival (RRPV_MAX); a reused signature is
/// trained up and keeps LONG insertion. Inclusion invalidations do not
/// count as dead evictions.
#[test]
fn ship_exact_sequence() {
    // 1 set x 2 ways; for line < 1024 the signature is the line itself.
    assert_eq!(ship_signature(5), 5);
    assert_eq!(ship_signature((1 << 10) | 7), (1 << 10) >> 10 ^ 7);
    let mut c = SetAssocCache::new(tiny(ReplacementPolicy::Ship, 2, 2));
    assert_eq!(fill_evicting(&mut c, 1, 0), None); // SHCT[1]=init → LONG
    assert_eq!(fill_evicting(&mut c, 2, 1), None);
    // Line 1 evicted untouched → SHCT[1] trained down to 0.
    assert_eq!(fill_evicting(&mut c, 3, 2), Some(1));
    // Line 2 evicted untouched → SHCT[2] → 0; line 1 refills predicted
    // dead (RRPV_MAX) while line 3 keeps its LONG insertion.
    assert_eq!(fill_evicting(&mut c, 1, 3), Some(2));
    // The dead-predicted line is the immediate victim — plain SRRIP would
    // have aged both ways and evicted line 3 instead.
    assert_eq!(fill_evicting(&mut c, 4, 4), Some(1));
    // A demand hit trains SHCT[4] up past init.
    assert!(c.touch(4, 5, DataType::Property, false).is_some());
    assert_eq!(fill_evicting(&mut c, 6, 6), Some(3));
    // Invalidation (inclusion victim) is NOT a dead eviction: SHCT[4]
    // keeps its trained-up value...
    assert!(c.invalidate(4).is_some());
    assert_eq!(fill_evicting(&mut c, 4, 7), None); // refill into the hole
                                                   // ...so line 4 re-enters at LONG, ties with line 6, and the aging
                                                   // round evicts way 0 — not a dead-on-arrival line 4.
    assert_eq!(fill_evicting(&mut c, 8, 8), Some(6));
    assert!(c.contains(4));
}

// ---------------------------------------------------------------------------
// Fuzzed lockstep against a naive slot-stable model.
// ---------------------------------------------------------------------------

#[derive(Clone, Copy)]
struct NaiveLine {
    line: u64,
    /// Recency stamp under LRU, RRPV under the RRIP family.
    key: u64,
    dirty: bool,
    prefetched: bool,
    used: bool,
    ready_at: u64,
    sig: u16,
    reused: bool,
}

/// The policy contract restated with the simplest structures that can hold
/// it: per-set fixed slot arrays (victim scans in way order, a new line
/// lands in the vacated slot), one global tick, and plain policy state.
struct NaiveCache {
    policy: ReplacementPolicy,
    num_sets: u64,
    sets: Vec<Vec<Option<NaiveLine>>>,
    tick: u64,
    psel: u16,
    brrip_ctr: u64,
    shct: Vec<u8>,
}

impl NaiveCache {
    fn new(policy: ReplacementPolicy, num_sets: u64, assoc: usize) -> Self {
        NaiveCache {
            policy,
            num_sets,
            sets: vec![vec![None; assoc]; num_sets as usize],
            tick: 0,
            psel: PSEL_INIT,
            brrip_ctr: 0,
            shct: vec![SHCT_INIT; SHCT_ENTRIES],
        }
    }

    fn slot_of(&self, line: u64) -> (usize, Option<usize>) {
        let s = (line % self.num_sets) as usize;
        let pos = self.sets[s]
            .iter()
            .position(|l| l.is_some_and(|l| l.line == line));
        (s, pos)
    }

    fn touch(&mut self, line: u64, now: u64, is_store: bool) -> Option<(u64, bool)> {
        let (s, pos) = self.slot_of(line);
        let pos = pos?;
        let stamp = self.tick;
        self.tick += 1;
        let ship = self.policy == ReplacementPolicy::Ship;
        let e = self.sets[s][pos].as_mut().unwrap();
        if self.policy == ReplacementPolicy::Lru {
            e.key = stamp;
        } else {
            e.key = 0;
            if ship && !e.reused {
                e.reused = true;
                let sig = e.sig as usize;
                self.shct[sig] = (self.shct[sig] + 1).min(SHCT_MAX);
            }
        }
        let first = e.prefetched && !e.used;
        e.used = true;
        e.dirty |= is_store;
        Some((e.ready_at.max(now), first))
    }

    fn insertion_key(&mut self, line: u64, stamp: u64, prefetched: bool, set: usize) -> u64 {
        let mut effective = self.policy;
        if effective == ReplacementPolicy::Drrip {
            effective = match DuelRole::of_set(set, self.num_sets as usize) {
                DuelRole::SrripLeader => {
                    if !prefetched {
                        self.psel = (self.psel + 1).min(droplet_cache::policy::PSEL_MAX);
                    }
                    ReplacementPolicy::Srrip
                }
                DuelRole::BrripLeader => {
                    if !prefetched {
                        self.psel = self.psel.saturating_sub(1);
                    }
                    ReplacementPolicy::Brrip
                }
                DuelRole::Follower => {
                    if self.psel >= PSEL_INIT {
                        ReplacementPolicy::Brrip
                    } else {
                        ReplacementPolicy::Srrip
                    }
                }
            };
        }
        match effective {
            ReplacementPolicy::Lru => stamp,
            ReplacementPolicy::Srrip => RRPV_LONG,
            ReplacementPolicy::Brrip => {
                self.brrip_ctr += 1;
                if self.brrip_ctr.is_multiple_of(BRRIP_LONG_PERIOD) {
                    RRPV_LONG
                } else {
                    RRPV_MAX
                }
            }
            ReplacementPolicy::Ship => {
                if self.shct[ship_signature(line) as usize] == 0 {
                    RRPV_MAX
                } else {
                    RRPV_LONG
                }
            }
            ReplacementPolicy::Drrip => unreachable!(),
        }
    }

    fn fill(
        &mut self,
        line: u64,
        prefetched: bool,
        ready_at: u64,
        dirty: bool,
    ) -> Option<NaiveLine> {
        let stamp = self.tick;
        self.tick += 1;
        let lru = self.policy == ReplacementPolicy::Lru;
        let (s, pos) = self.slot_of(line);
        if let Some(pos) = pos {
            let refresh = if lru { stamp } else { 0 };
            let e = self.sets[s][pos].as_mut().unwrap();
            e.key = refresh;
            e.ready_at = e.ready_at.min(ready_at);
            e.dirty |= dirty;
            if !prefetched && e.prefetched && !e.used {
                e.used = true;
            }
            return None;
        }
        let slot = match self.sets[s].iter().position(Option::is_none) {
            Some(i) => i,
            None if lru => {
                // Minimum stamp, first way wins ties.
                (0..self.sets[s].len())
                    .min_by_key(|&i| self.sets[s][i].unwrap().key)
                    .unwrap()
            }
            None => loop {
                if let Some(i) = self.sets[s].iter().position(|l| l.unwrap().key >= RRPV_MAX) {
                    break i;
                }
                for l in self.sets[s].iter_mut() {
                    l.as_mut().unwrap().key += 1;
                }
            },
        };
        let evicted = self.sets[s][slot].take();
        if let Some(v) = evicted {
            if self.policy == ReplacementPolicy::Ship && !v.reused {
                self.shct[v.sig as usize] = self.shct[v.sig as usize].saturating_sub(1);
            }
        }
        let key = self.insertion_key(line, stamp, prefetched, s);
        let sig = if self.policy == ReplacementPolicy::Ship {
            ship_signature(line)
        } else {
            0
        };
        self.sets[s][slot] = Some(NaiveLine {
            line,
            key,
            dirty,
            prefetched,
            used: false,
            ready_at,
            sig,
            reused: false,
        });
        evicted
    }

    fn invalidate(&mut self, line: u64) -> Option<NaiveLine> {
        let (s, pos) = self.slot_of(line);
        self.sets[s][pos?].take()
    }

    fn contains(&self, line: u64) -> bool {
        self.slot_of(line).1.is_some()
    }

    fn occupancy(&self) -> usize {
        self.sets
            .iter()
            .map(|s| s.iter().filter(|l| l.is_some()).count())
            .sum()
    }
}

const SEEDS: u64 = 16;
const OPS_PER_SEED: u64 = 700;
const MIN_TOTAL_OPS: u64 = 10_000;
const LINE_SPACE: u64 = 48;

/// Lockstep-fuzzes one (policy, geometry) pair; returns the op count.
fn fuzz_policy(policy: ReplacementPolicy, lines: u64, assoc: usize) -> u64 {
    let cfg = tiny(policy, lines, assoc);
    let num_sets = cfg.num_sets() as u64;
    let env = env_seed();
    let mut total = 0u64;
    for seed in 0..SEEDS {
        let mut rng = TestRng::from_seed(seed ^ env.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut cache = SetAssocCache::new(cfg.clone());
        let mut model = NaiveCache::new(policy, num_sets, assoc);
        for i in 0..OPS_PER_SEED {
            let op = rng.below(6);
            let line = rng.below(LINE_SPACE);
            let now = i;
            let ctx = || format!("{policy} seed {seed} op #{i} ({op}) line {line}");
            match op {
                0 | 1 => {
                    let is_store = op == 1;
                    let got = cache.touch(line, now, DataType::Property, is_store);
                    let want = model.touch(line, now, is_store);
                    assert_eq!(
                        got.map(|h| (h.ready_at, h.first_prefetch_use)),
                        want,
                        "touch {}",
                        ctx()
                    );
                }
                2 | 3 => {
                    let dirty = op == 3;
                    let info = if dirty {
                        demand(now).dirty()
                    } else {
                        demand(now)
                    };
                    let got = cache.fill(line, info);
                    let want = model.fill(line, false, now, dirty);
                    assert_eq!(
                        got.map(|e| (e.line, e.dirty, e.prefetched, e.used)),
                        want.map(|e| (e.line, e.dirty, e.prefetched, e.used)),
                        "demand fill {}",
                        ctx()
                    );
                }
                4 => {
                    let got = cache.fill(line, FillInfo::prefetch(DataType::Structure, now + 50));
                    let want = model.fill(line, true, now + 50, false);
                    assert_eq!(
                        got.map(|e| (e.line, e.dirty, e.prefetched, e.used)),
                        want.map(|e| (e.line, e.dirty, e.prefetched, e.used)),
                        "prefetch fill {}",
                        ctx()
                    );
                }
                _ => {
                    let got = cache.invalidate(line);
                    let want = model.invalidate(line);
                    assert_eq!(
                        got.map(|e| (e.line, e.dirty, e.prefetched, e.used)),
                        want.map(|e| (e.line, e.dirty, e.prefetched, e.used)),
                        "invalidate {}",
                        ctx()
                    );
                }
            }
            assert_eq!(cache.contains(line), model.contains(line), "{}", ctx());
            total += 1;
        }
        assert_eq!(cache.occupancy(), model.occupancy(), "{policy} seed {seed}");
        for line in 0..LINE_SPACE {
            assert_eq!(
                cache.contains(line),
                model.contains(line),
                "{policy} seed {seed} residency of {line}"
            );
        }
    }
    total
}

/// Every policy, two eviction-heavy geometries, ≥10k ops per policy. The
/// 4-set shapes give DRRIP a period-4 duel (leaders at sets 0 and 2).
fn fuzz_policy_all_geometries(policy: ReplacementPolicy) {
    let ops = fuzz_policy(policy, 8, 2) + fuzz_policy(policy, 16, 4);
    assert!(ops >= MIN_TOTAL_OPS, "only {ops} ops fuzzed");
}

#[test]
fn lru_matches_naive_slot_model() {
    fuzz_policy_all_geometries(ReplacementPolicy::Lru);
}

#[test]
fn srrip_matches_naive_slot_model() {
    fuzz_policy_all_geometries(ReplacementPolicy::Srrip);
}

#[test]
fn brrip_matches_naive_slot_model() {
    fuzz_policy_all_geometries(ReplacementPolicy::Brrip);
}

#[test]
fn drrip_matches_naive_slot_model() {
    fuzz_policy_all_geometries(ReplacementPolicy::Drrip);
}

#[test]
fn ship_matches_naive_slot_model() {
    fuzz_policy_all_geometries(ReplacementPolicy::Ship);
}
