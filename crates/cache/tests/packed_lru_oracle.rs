//! Property test pinning the packed (flat-array, stamp-recency) cache to a
//! naive reorder-on-touch LRU model — the semantics of the original
//! `Vec<Vec<LineState>>` implementation. Every observable is compared:
//! hit/miss, `ready_at`, first-prefetch-use, evicted-line identity and
//! flags, `contains`, and occupancy.

use droplet_cache::{CacheConfig, FillInfo, SetAssocCache};
use droplet_trace::DataType;
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
struct ModelLine {
    line: u64,
    dirty: bool,
    prefetched: bool,
    used: bool,
    ready_at: u64,
}

/// Per-set LRU order: front = LRU, back = MRU (the seed implementation).
#[derive(Debug)]
struct ModelCache {
    sets: Vec<Vec<ModelLine>>,
    assoc: usize,
    num_sets: u64,
}

impl ModelCache {
    fn new(num_sets: u64, assoc: usize) -> Self {
        ModelCache {
            sets: vec![Vec::new(); num_sets as usize],
            assoc,
            num_sets,
        }
    }

    fn set_of(&mut self, line: u64) -> &mut Vec<ModelLine> {
        let s = (line % self.num_sets) as usize;
        &mut self.sets[s]
    }

    /// Returns (ready_at, first_prefetch_use) on a hit.
    fn touch(&mut self, line: u64, now: u64, is_store: bool) -> Option<(u64, bool)> {
        let set = self.set_of(line);
        let pos = set.iter().position(|l| l.line == line)?;
        let mut e = set.remove(pos);
        let first = e.prefetched && !e.used;
        e.used = true;
        e.dirty |= is_store;
        let ready = e.ready_at.max(now);
        set.push(e);
        Some((ready, first))
    }

    /// Returns the evicted line state, if any.
    fn fill(
        &mut self,
        line: u64,
        prefetched: bool,
        ready_at: u64,
        dirty: bool,
    ) -> Option<ModelLine> {
        let assoc = self.assoc;
        let set = self.set_of(line);
        if let Some(pos) = set.iter().position(|l| l.line == line) {
            let mut e = set.remove(pos);
            e.ready_at = e.ready_at.min(ready_at);
            e.dirty |= dirty;
            if !prefetched && e.prefetched && !e.used {
                e.used = true;
            }
            set.push(e);
            return None;
        }
        let evicted = if set.len() == assoc {
            Some(set.remove(0))
        } else {
            None
        };
        set.push(ModelLine {
            line,
            dirty,
            prefetched,
            used: false,
            ready_at,
        });
        evicted
    }

    fn invalidate(&mut self, line: u64) -> Option<ModelLine> {
        let set = self.set_of(line);
        let pos = set.iter().position(|l| l.line == line)?;
        Some(set.remove(pos))
    }

    fn contains(&mut self, line: u64) -> bool {
        self.set_of(line).iter().any(|l| l.line == line)
    }

    fn occupancy(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Mixed touch / demand-fill / prefetch-fill / invalidate streams over
    /// a small, eviction-heavy geometry.
    #[test]
    fn packed_cache_matches_reorder_on_touch_model(
        ops in prop::collection::vec((0u32..6, 0u64..48), 1..400),
    ) {
        let cfg = CacheConfig {
            name: "t",
            size_bytes: 8 * 64, // 8 lines
            assoc: 2,           // 4 sets x 2 ways
            tag_latency: 1,
            data_latency: 1,
            policy: droplet_cache::ReplacementPolicy::Lru,
        };
        let num_sets = cfg.num_sets() as u64;
        let mut cache = SetAssocCache::new(cfg);
        let mut model = ModelCache::new(num_sets, 2);

        for (i, &(op, line)) in ops.iter().enumerate() {
            let now = i as u64;
            match op {
                // Demand load / store.
                0 | 1 => {
                    let is_store = op == 1;
                    let got = cache.touch(line, now, DataType::Property, is_store);
                    let want = model.touch(line, now, is_store);
                    prop_assert_eq!(
                        got.map(|h| (h.ready_at, h.first_prefetch_use)),
                        want,
                        "touch #{} line {}",
                        i,
                        line
                    );
                }
                // Demand fill (op 2: clean, op 3: dirty store-allocate).
                2 | 3 => {
                    let info = if op == 3 {
                        FillInfo::demand(DataType::Property, now).dirty()
                    } else {
                        FillInfo::demand(DataType::Property, now)
                    };
                    let got = cache.fill(line, info);
                    let want = model.fill(line, false, now, op == 3);
                    prop_assert_eq!(
                        got.map(|e| (e.line, e.dirty, e.prefetched, e.used)),
                        want.map(|e| (e.line, e.dirty, e.prefetched, e.used)),
                        "demand fill #{} line {}",
                        i,
                        line
                    );
                }
                // Prefetch fill arriving in the future.
                4 => {
                    let got = cache.fill(line, FillInfo::prefetch(DataType::Structure, now + 50));
                    let want = model.fill(line, true, now + 50, false);
                    prop_assert_eq!(
                        got.map(|e| (e.line, e.dirty, e.prefetched, e.used)),
                        want.map(|e| (e.line, e.dirty, e.prefetched, e.used)),
                        "prefetch fill #{} line {}",
                        i,
                        line
                    );
                }
                // Back-invalidation.
                _ => {
                    let got = cache.invalidate(line);
                    let want = model.invalidate(line);
                    prop_assert_eq!(
                        got.map(|e| (e.line, e.dirty, e.prefetched, e.used)),
                        want.map(|e| (e.line, e.dirty, e.prefetched, e.used)),
                        "invalidate #{} line {}",
                        i,
                        line
                    );
                }
            }
            prop_assert_eq!(cache.contains(line), model.contains(line));
        }
        prop_assert_eq!(cache.occupancy(), model.occupancy());
        for line in 0..48 {
            prop_assert_eq!(cache.contains(line), model.contains(line), "residency of {}", line);
        }
    }
}
