//! Oracle tests for the stream prefetcher: exact request sequences for
//! confirmation, direction flips, page-bounded emission, the data-aware
//! filter, mode switching, and tracker eviction, plus seeded determinism
//! (reproduce with `DROPLET_TEST_SEED`).

use droplet_prefetch::{AccessEvent, EventKind, Prefetcher, StreamConfig, StreamPrefetcher};
use droplet_trace::{DataType, VirtAddr, LINE_BYTES, PAGE_BYTES};
use proptest::TestRng;

const LINES_PER_PAGE: u64 = PAGE_BYTES / LINE_BYTES;

fn ev(line: u64, kind: EventKind, structure: bool) -> AccessEvent {
    AccessEvent {
        vaddr: VirtAddr::new(line * LINE_BYTES),
        kind,
        is_structure: structure,
        dtype: if structure {
            DataType::Structure
        } else {
            DataType::Property
        },
    }
}

fn drive(pf: &mut StreamPrefetcher, lines: &[u64]) -> Vec<u64> {
    let mut out = Vec::new();
    for &l in lines {
        pf.on_access(&ev(l, EventKind::L1Miss, false), &mut out);
    }
    out.iter().map(|r| r.vline).collect()
}

/// Two same-direction confirmations arm the stream; the confirming miss
/// then emits `degree` lines ahead, and each later in-window miss extends
/// the run from where it left off.
#[test]
fn confirmation_then_exact_run() {
    let mut pf = StreamPrefetcher::new(StreamConfig::conventional());
    // Page 1 (lines 64..=127): 100 allocates, 101 confirms once, 102
    // confirms twice and fires.
    let got = drive(&mut pf, &[100, 101, 102]);
    assert_eq!(got, vec![103, 104, 105, 106]);
    assert_eq!(pf.issued(), 4);
    assert_eq!(pf.triggers(), 1);

    // The next miss advances the head: the window resumes at 107.
    let got = drive(&mut pf, &[103]);
    assert_eq!(got, vec![107, 108, 109, 110]);
    assert_eq!(pf.triggers(), 2);
}

/// A direction flip during training restarts confirmation; a descending
/// stream then fires downward.
#[test]
fn direction_flip_retrains_then_streams_down() {
    let mut pf = StreamPrefetcher::new(StreamConfig::conventional());
    let got = drive(&mut pf, &[100, 101, 99, 98]);
    assert_eq!(got, vec![97, 96, 95, 94]);
}

/// Emission clamps at the page end and the head parks there: a confirmed
/// stream at the edge issues only the in-page remainder, then nothing.
#[test]
fn emission_is_page_bounded() {
    let mut pf = StreamPrefetcher::new(StreamConfig::conventional());
    let got = drive(&mut pf, &[124, 125, 126]);
    assert_eq!(got, vec![127]);
    // Touching the last line re-aims past the page and emits nothing.
    let got = drive(&mut pf, &[127]);
    assert!(got.is_empty(), "{got:?}");
    assert_eq!(pf.issued(), 1);
    assert_eq!(pf.triggers(), 1);
}

/// The data-aware streamer only sees structure traffic — property misses
/// never allocate a tracker — but trains on structure L2 *hits* and routes
/// its requests through the L3 queue.
#[test]
fn data_aware_filters_and_tags() {
    let mut pf = StreamPrefetcher::new(StreamConfig::data_aware());
    let mut out = Vec::new();
    // Property misses: ignored entirely.
    for l in [100u64, 101, 102] {
        pf.on_access(&ev(l, EventKind::L1Miss, false), &mut out);
    }
    assert!(out.is_empty());

    // Structure L2 hits: accepted, confirmed, emitted into the L3 queue.
    for l in [200u64, 201, 202] {
        pf.on_access(&ev(l, EventKind::L2Hit, true), &mut out);
    }
    assert_eq!(
        out.iter().map(|r| r.vline).collect::<Vec<_>>(),
        vec![203, 204, 205, 206]
    );
    assert!(out
        .iter()
        .all(|r| r.into_l3_queue && r.dtype == DataType::Structure));

    // The conventional streamer, by contrast, ignores L2 hits.
    let mut conv = StreamPrefetcher::new(StreamConfig::conventional());
    let mut out = Vec::new();
    for l in [200u64, 201, 202] {
        conv.on_access(&ev(l, EventKind::L2Hit, true), &mut out);
    }
    assert!(out.is_empty());
}

/// Switching modes flushes every trained stream: a confirmed tracker does
/// not survive into the other mode's training regime.
#[test]
fn mode_switch_flushes_trackers() {
    let mut pf = StreamPrefetcher::new(StreamConfig::conventional());
    assert_eq!(drive(&mut pf, &[100, 101, 102]), vec![103, 104, 105, 106]);
    assert!(!pf.is_data_aware());

    pf.set_data_aware(true);
    assert!(pf.is_data_aware());
    // The page-1 stream is gone: a structure miss on the same page starts
    // training from scratch and emits nothing.
    let mut out = Vec::new();
    pf.on_access(&ev(103, EventKind::L1Miss, true), &mut out);
    assert!(out.is_empty());
}

/// With a single tracker, an intervening page steals it and the original
/// stream must reconfirm from scratch.
#[test]
fn tracker_eviction_forces_reconfirmation() {
    let mut pf = StreamPrefetcher::new(StreamConfig {
        trackers: 1,
        ..StreamConfig::conventional()
    });
    // Page 1 trains once; page 2 steals the only tracker.
    assert!(drive(&mut pf, &[100, 101, 130]).is_empty());
    // Page 1 again: allocate, confirm, confirm → fire.
    let got = drive(&mut pf, &[102, 103, 104]);
    assert_eq!(got, vec![105, 106, 107, 108]);
}

/// Seeded invariants: identical streams are deterministic, every request
/// stays within the page of some recent trigger, and `issued` matches.
#[test]
fn randomized_streams_are_deterministic_and_page_local() {
    let mut rng = TestRng::for_test("stream_oracle");
    for _ in 0..30 {
        let cfg = StreamConfig {
            trackers: 1 + rng.below(4) as usize,
            distance: 1 + rng.below(16),
            degree: 1 + rng.below(4),
            data_aware: false,
        };
        let stream: Vec<u64> = (0..300)
            .map(|_| rng.below(4) * LINES_PER_PAGE + rng.below(LINES_PER_PAGE))
            .collect();
        let mut a = StreamPrefetcher::new(cfg.clone());
        let mut b = StreamPrefetcher::new(cfg);
        let ga = drive(&mut a, &stream);
        let gb = drive(&mut b, &stream);
        assert_eq!(ga, gb);
        assert_eq!(a.issued(), ga.len() as u64);
        // Page-bounded: every emitted line shares a page with the stream.
        let pages: std::collections::HashSet<u64> =
            stream.iter().map(|l| l / LINES_PER_PAGE).collect();
        assert!(ga.iter().all(|l| pages.contains(&(l / LINES_PER_PAGE))));
    }
}
