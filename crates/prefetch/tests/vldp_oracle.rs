//! Oracle tests for VLDP: exact expected emissions for OPT training,
//! cascaded DPT prediction, the delta-0 early return, page-edge clamping,
//! and DRB eviction, plus seeded determinism (reproduce with
//! `DROPLET_TEST_SEED`).

use droplet_prefetch::{AccessEvent, EventKind, Prefetcher, VldpConfig, VldpPrefetcher};
use droplet_trace::{DataType, VirtAddr, LINE_BYTES, PAGE_BYTES};
use proptest::TestRng;

const LINES_PER_PAGE: u64 = PAGE_BYTES / LINE_BYTES;

fn miss_at(page: u64, offset: u64) -> AccessEvent {
    AccessEvent {
        vaddr: VirtAddr::new((page * LINES_PER_PAGE + offset) * LINE_BYTES),
        kind: EventKind::L1Miss,
        is_structure: false,
        dtype: DataType::Property,
    }
}

fn drive(pf: &mut VldpPrefetcher, accesses: &[(u64, u64)]) -> Vec<u64> {
    let mut out = Vec::new();
    for &(page, offset) in accesses {
        pf.on_access(&miss_at(page, offset), &mut out);
    }
    out.iter().map(|r| r.vline).collect()
}

/// The OPT generalizes across pages: the second access to page 10 trains
/// offset-class 0 with delta +2, so the *first* access to page 20 at offset
/// 0 immediately prefetches its offset 2 — before any per-page history
/// exists.
#[test]
fn opt_predicts_first_delta_on_new_pages() {
    let mut pf = VldpPrefetcher::new(VldpConfig::paper());
    let got = drive(&mut pf, &[(10, 0), (10, 2), (20, 0)]);
    assert_eq!(got, vec![20 * LINES_PER_PAGE + 2]);
    assert_eq!(pf.issued(), 1);
}

/// A +2 stride within one page, emission by emission. The first two
/// accesses only train; the third predicts offsets 6 and 8 via the
/// length-1 DPT; the fourth has the length-2 table trained and predicts 8
/// and 10 cascaded.
#[test]
fn stride_predicts_cascaded_exact() {
    let mut pf = VldpPrefetcher::new(VldpConfig::paper());
    let base = 10 * LINES_PER_PAGE;
    let got = drive(&mut pf, &[(10, 0), (10, 2), (10, 4), (10, 6)]);
    assert_eq!(got, vec![base + 6, base + 8, base + 8, base + 10]);
    assert_eq!(pf.issued(), 4);
}

/// Predicted offsets past the page end are suppressed entirely: the walk
/// stops at the first out-of-page offset.
#[test]
fn predictions_clamp_at_page_edge() {
    let mut pf = VldpPrefetcher::new(VldpConfig::paper());
    // Stride +2 ending at offset 63: the prediction (65) is out of page.
    let got = drive(&mut pf, &[(5, 59), (5, 61), (5, 63)]);
    assert!(got.is_empty(), "{got:?}");
    assert_eq!(pf.issued(), 0);
}

/// Re-touching the same line is not a delta: it must not advance the access
/// count, or the OPT would be trained with the wrong "second" access.
#[test]
fn repeated_line_is_ignored_by_training() {
    let mut pf = VldpPrefetcher::new(VldpConfig::paper());
    // The repeat at offset 5 must not count; offset 7 is then the true
    // second access and trains opt[5] = +2 …
    let got = drive(&mut pf, &[(7, 5), (7, 5), (7, 7)]);
    assert!(got.is_empty(), "{got:?}");
    // … which the first touch of page 9 at offset 5 consumes.
    let got = drive(&mut pf, &[(9, 5)]);
    assert_eq!(got, vec![9 * LINES_PER_PAGE + 7]);
}

/// With a 1-page DRB, a second page evicts the first; returning to the
/// first page is a fresh first access (OPT consult, empty history).
#[test]
fn drb_evicts_lru_page() {
    let mut pf = VldpPrefetcher::new(VldpConfig {
        drb_pages: 1,
        ..VldpConfig::paper()
    });
    // Page 10 trains opt[0] = +2; page 20's first access at offset 0
    // consumes it and evicts page 10 from the DRB.
    let got = drive(&mut pf, &[(10, 0), (10, 2), (20, 0)]);
    assert_eq!(got, vec![20 * LINES_PER_PAGE + 2]);
    // Page 10 again: first access once more, and offset-class 4 is
    // untrained, so nothing fires.
    let got = drive(&mut pf, &[(10, 4)]);
    assert!(got.is_empty(), "{got:?}");
}

/// Seeded determinism across table-eviction pressure: two engines fed the
/// same stream emit identical requests, and `issued` counts them exactly.
#[test]
fn randomized_streams_are_deterministic() {
    let mut rng = TestRng::for_test("vldp_oracle");
    for _ in 0..30 {
        let cfg = VldpConfig {
            drb_pages: 1 + rng.below(8) as usize,
            opt_entries: 1 + rng.below(16) as usize,
            dpt_entries: 1 + rng.below(8) as usize,
            levels: 1 + rng.below(3) as usize,
            degree: 1 + rng.below(3) as usize,
        };
        let stream: Vec<(u64, u64)> = (0..300)
            .map(|_| (rng.below(6), rng.below(LINES_PER_PAGE)))
            .collect();
        let mut a = VldpPrefetcher::new(cfg.clone());
        let mut b = VldpPrefetcher::new(cfg);
        let ga = drive(&mut a, &stream);
        let gb = drive(&mut b, &stream);
        assert_eq!(ga, gb);
        assert_eq!(a.issued(), ga.len() as u64);
    }
}
