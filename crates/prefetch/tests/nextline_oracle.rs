//! Oracle tests for the next-line prefetcher: exact expected request
//! sequences computed by hand, plus seeded randomized invariants
//! (reproduce with `DROPLET_TEST_SEED`).

use droplet_prefetch::{AccessEvent, EventKind, NextLinePrefetcher, Prefetcher};
use droplet_trace::{DataType, VirtAddr, LINE_BYTES, PAGE_BYTES};
use proptest::TestRng;

const LINES_PER_PAGE: u64 = PAGE_BYTES / LINE_BYTES;

fn miss(line: u64, dtype: DataType) -> AccessEvent {
    AccessEvent {
        vaddr: VirtAddr::new(line * LINE_BYTES),
        kind: EventKind::L1Miss,
        is_structure: dtype == DataType::Structure,
        dtype,
    }
}

fn lines(out: &[droplet_prefetch::PrefetchRequest]) -> Vec<u64> {
    out.iter().map(|r| r.vline).collect()
}

#[test]
fn exact_sequence_and_tags() {
    let mut pf = NextLinePrefetcher::new(3);
    let mut out = Vec::new();
    pf.on_access(&miss(200, DataType::Property), &mut out);
    assert_eq!(lines(&out), vec![201, 202, 203]);
    // Requests inherit the trigger's data type and never use the L3 queue.
    assert!(out
        .iter()
        .all(|r| r.dtype == DataType::Property && !r.into_l3_queue));
    assert_eq!(pf.issued(), 3);

    // The counter accumulates across triggers.
    out.clear();
    pf.on_access(&miss(500, DataType::Structure), &mut out);
    assert_eq!(lines(&out), vec![501, 502, 503]);
    assert_eq!(out[0].dtype, DataType::Structure);
    assert_eq!(pf.issued(), 6);
}

#[test]
fn clamps_exactly_at_page_end() {
    let mut pf = NextLinePrefetcher::new(8);
    let mut out = Vec::new();
    // Line 61 of page 0: only 62 and 63 remain in the page.
    pf.on_access(&miss(61, DataType::Structure), &mut out);
    assert_eq!(lines(&out), vec![62, 63]);

    // The very last line of a page prefetches nothing.
    out.clear();
    pf.on_access(&miss(LINES_PER_PAGE - 1, DataType::Structure), &mut out);
    assert!(out.is_empty());
    assert_eq!(pf.issued(), 2);
}

#[test]
fn only_l1_misses_trigger() {
    let mut pf = NextLinePrefetcher::new(2);
    let mut out = Vec::new();
    let mut ev = miss(10, DataType::Structure);
    ev.kind = EventKind::L2Hit;
    pf.on_access(&ev, &mut out);
    assert!(out.is_empty());
    assert_eq!(pf.issued(), 0);
}

/// Seeded invariant sweep: for random lines and degrees, the emitted run is
/// exactly the consecutive lines after the trigger, truncated at the page
/// end, and the issue counter matches.
#[test]
fn randomized_requests_are_consecutive_and_page_bounded() {
    let mut rng = TestRng::for_test("nextline_oracle");
    for _ in 0..2_000 {
        let degree = 1 + rng.below(8);
        let line = rng.below(256 * LINES_PER_PAGE);
        let page_last = (line / LINES_PER_PAGE + 1) * LINES_PER_PAGE - 1;

        let mut pf = NextLinePrefetcher::new(degree);
        let mut out = Vec::new();
        pf.on_access(&miss(line, DataType::Property), &mut out);

        let expect: Vec<u64> = (line + 1..=(line + degree).min(page_last)).collect();
        assert_eq!(lines(&out), expect, "line {line} degree {degree}");
        assert_eq!(pf.issued(), expect.len() as u64);
    }
}
