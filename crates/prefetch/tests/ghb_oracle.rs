//! Oracle tests for the G/DC GHB prefetcher: step-by-step expected
//! emissions for delta-pair patterns, the negative-address walk guard, FIFO
//! index eviction, and seeded determinism (reproduce with
//! `DROPLET_TEST_SEED`).

use droplet_prefetch::{AccessEvent, EventKind, GhbConfig, GhbPrefetcher, Prefetcher};
use droplet_trace::{DataType, VirtAddr, LINE_BYTES};
use proptest::TestRng;

fn miss(line: u64) -> AccessEvent {
    AccessEvent {
        vaddr: VirtAddr::new(line * LINE_BYTES),
        kind: EventKind::L1Miss,
        is_structure: false,
        dtype: DataType::Structure,
    }
}

fn drive(pf: &mut GhbPrefetcher, lines: &[u64]) -> Vec<u64> {
    let mut out = Vec::new();
    for &l in lines {
        pf.on_access(&miss(l), &mut out);
    }
    out.iter().map(|r| r.vline).collect()
}

/// The +3,+1 repeating pattern, emission by emission.
///
/// Misses 0,3,4,7 build the index: pair (3,1) recorded at history position
/// 2 (line 4), pair (1,3) at position 3 (line 7). Miss 8 completes (3,1)
/// again, so the walk replays the deltas that followed position 2 — ring
/// pairs (4,7) and (7,8) give +3,+1 — predicting 11 then 12. Misses 11 and
/// 12 hit (1,3) and (3,1) the same way.
#[test]
fn delta_pair_walk_emits_exact_sequence() {
    let mut pf = GhbPrefetcher::new(GhbConfig {
        degree: 2,
        ..GhbConfig::paper()
    });
    let got = drive(&mut pf, &[0, 3, 4, 7, 8, 11, 12]);
    assert_eq!(got, vec![11, 12, 12, 15, 15, 16]);
    assert_eq!(pf.issued(), 6);
}

/// A descending stream walks below zero: the walk must stop before
/// emitting a negative address, so the trigger at line 0 predicts nothing.
#[test]
fn walk_stops_before_negative_addresses() {
    let mut pf = GhbPrefetcher::new(GhbConfig {
        degree: 4,
        ..GhbConfig::paper()
    });
    // Deltas −100,−100 record pair (−100,−100) at line 100; line 0
    // completes it again, and the replayed first delta is −100 → −100 < 0.
    let got = drive(&mut pf, &[300, 200, 100, 0]);
    assert!(got.is_empty(), "{got:?}");
    assert_eq!(pf.issued(), 0);
}

/// FIFO index eviction: with capacity 2, a third distinct pair evicts the
/// oldest key, and a later trigger on the evicted pair predicts nothing.
#[test]
fn index_evicts_oldest_pair_first() {
    let mut pf = GhbPrefetcher::new(GhbConfig {
        index_entries: 2,
        ghb_entries: 64,
        degree: 2,
    });
    // Install (3,1) then (1,3); re-completing (3,1) at line 8 updates it
    // in place (no eviction) and predicts 11,12.
    let got = drive(&mut pf, &[0, 3, 4, 7, 8]);
    assert_eq!(got, vec![11, 12]);

    // Pair (1,4) is new: the FIFO front — (3,1), whose re-insert kept its
    // original FIFO position — is evicted. Pair (4,3) then evicts (1,3).
    let got = drive(&mut pf, &[12, 15]);
    assert!(got.is_empty(), "{got:?}");

    // Completing (3,1) again now finds nothing: it was evicted.
    let got = drive(&mut pf, &[16]);
    assert!(got.is_empty(), "{got:?}");
    assert_eq!(pf.issued(), 2);
}

/// The history ring is a sliding window: positions older than `ghb_entries`
/// misses are invalid, so a stale index entry walks nothing.
#[test]
fn expired_ring_positions_predict_nothing() {
    let mut pf = GhbPrefetcher::new(GhbConfig {
        index_entries: 16,
        ghb_entries: 4,
        degree: 2,
    });
    // Record (3,1) at position 2, then push 5 unrelated misses (distinct
    // deltas) so position 2 falls out of the 4-entry window.
    drive(&mut pf, &[0, 3, 4]);
    drive(&mut pf, &[1000, 2500, 4300, 6400, 9000]);
    let before = pf.issued();
    // Completing (3,1) finds the stale position; ring_get rejects it.
    let got = drive(&mut pf, &[20, 23, 24]);
    assert!(got.is_empty(), "{got:?}");
    assert_eq!(pf.issued(), before);
}

/// Seeded determinism: identical streams produce identical emissions, and
/// the issue counter always equals the number of requests pushed.
#[test]
fn randomized_streams_are_deterministic() {
    let mut rng = TestRng::for_test("ghb_oracle");
    for _ in 0..50 {
        let stream: Vec<u64> = (0..200).map(|_| rng.below(1 << 20)).collect();
        let cfg = GhbConfig {
            index_entries: 1 + rng.below(32) as usize,
            ghb_entries: 2 + rng.below(64) as usize,
            degree: 1 + rng.below(4) as usize,
        };
        let mut a = GhbPrefetcher::new(cfg.clone());
        let mut b = GhbPrefetcher::new(cfg);
        let ga = drive(&mut a, &stream);
        let gb = drive(&mut b, &stream);
        assert_eq!(ga, gb);
        assert_eq!(a.issued(), ga.len() as u64);
    }
}
