//! The Variable Length Delta Prefetcher (Shevgoor et al. [38]) — the
//! paper's `VLDP` comparison point. Per Table V: a DRB tracking the last 64
//! pages, a 64-entry OPT (offset prediction table), and 3 cascaded 64-entry
//! DPTs (delta prediction tables keyed by delta histories of length 1–3,
//! longest match wins).
//!
//! # Hot-path shape
//!
//! The predictor sits inside a cache simulator whose own tag arrays span
//! megabytes, so any VLDP state not touched on every miss is cold by the
//! next one. The tables are therefore built to fit a few kilobytes that
//! stay L1-resident: every delta is a line-offset difference within a
//! 4 KiB page (|d| ≤ 63), so deltas live in `i8` columns, whole delta
//! histories pack into one `u64` of biased 16-bit lanes ([`pack_suffix`] —
//! equality- and order-preserving, so packed keys behave exactly like the
//! `[i64; 4]` histories they replace), LRU stamps are `u32`, and a DRB row
//! is 8 bytes. Probes are [`find_u64`] sweeps over dense key columns;
//! there is no hashing and no per-access allocation.

use crate::event::{AccessEvent, EventKind, PrefetchRequest, Prefetcher};
use droplet_trace::{find_u64, LINE_BYTES, PAGE_BYTES};

/// Upper bound on cascaded DPT levels, so delta histories and table keys
/// live in fixed-size arrays instead of heap vectors — and so a whole
/// history fits the four 16-bit lanes of a packed `u64` key. The paper uses
/// 3 levels; [`VldpPrefetcher::new`] rejects configurations beyond this.
const MAX_LEVELS: usize = 4;

/// VLDP parameters (paper Table V).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VldpConfig {
    /// Pages tracked by the delta-history buffer.
    pub drb_pages: usize,
    /// Offset-prediction-table entries (one per possible first offset).
    pub opt_entries: usize,
    /// Entries per delta prediction table.
    pub dpt_entries: usize,
    /// Number of cascaded DPTs (history lengths 1..=levels).
    pub levels: usize,
    /// Predictions issued per trigger (cascaded).
    pub degree: usize,
}

impl VldpConfig {
    /// The Table V configuration.
    pub fn paper() -> Self {
        VldpConfig {
            drb_pages: 64,
            opt_entries: 64,
            dpt_entries: 64,
            levels: 3,
            degree: 2,
        }
    }
}

/// A short delta sequence (≤ [`MAX_LEVELS`] entries) kept directly in its
/// [`pack_suffix`] form: one `u64` of biased 16-bit lanes, oldest delta in
/// the top lane, pad lanes below. Appending a delta is O(1) lane math on
/// the key instead of an array rotate plus a repack, so the replay hot path
/// never materializes an `[i8]` history at all. `key` is always exactly
/// `pack_suffix` of the deltas it holds — [`key`](Self::key) hands the DPTs
/// their probe key for free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct History {
    key: u64,
    len: u8,
}

/// The packed empty history: every lane holds the bias of zero.
const EMPTY_KEY: u64 = 0x8000_8000_8000_8000;

impl Default for History {
    fn default() -> Self {
        History {
            key: EMPTY_KEY,
            len: 0,
        }
    }
}

impl History {
    /// Appends `delta`, dropping the oldest entry once `cap` is reached —
    /// the `push` + `remove(0)` idiom of a bounded Vec, as lane math: the
    /// raw `u16` image of a delta is its biased lane XOR the pad, so one
    /// XOR turns a pad lane into the delta's lane (and a left shift by one
    /// lane is exactly `pack` of the history minus its oldest entry).
    fn push_capped(&mut self, delta: i8, cap: usize) {
        let raw = u64::from(delta as i16 as u16);
        let len = self.len as usize;
        if len == cap {
            self.key = if cap == MAX_LEVELS {
                (self.key << 16) ^ raw ^ 0x8000
            } else {
                // The shift pulls the old pad into lane `cap - 1` (turned
                // into the new delta) and a zero into the bottom (re-padded).
                ((self.key << 16) | 0x8000) ^ (raw << (16 * (MAX_LEVELS - cap)))
            };
        } else {
            self.key ^= raw << (16 * (MAX_LEVELS - 1 - len));
            self.len += 1;
        }
    }

    /// `pack_suffix` of the whole history, precomputed.
    #[inline]
    fn key(&self) -> u64 {
        self.key
    }
}

/// Packs a delta-history suffix into one `u64` of four big-endian 16-bit
/// lanes, each the delta biased from `i16` into order-preserving `u16`
/// space (`^ 0x8000`); missing tail lanes hold the bias of zero.
///
/// The packing is injective, `pack(a) == pack(b)` iff the zero-padded
/// arrays are equal, and `pack(a) < pack(b)` iff the arrays compare
/// lexicographically as integer sequences — so packed keys preserve both
/// the lookup and the LRU tie-break semantics of the wide-integer history
/// representation exactly.
#[allow(dead_code)] // the executable spec [`History`] is tested against
#[inline]
fn pack_suffix(suffix: &[i8]) -> u64 {
    debug_assert!(suffix.len() <= MAX_LEVELS);
    let mut key = 0u64;
    for lane in 0..MAX_LEVELS {
        let d = suffix.get(lane).copied().unwrap_or(0);
        key = (key << 16) | u64::from((d as i16 as u16) ^ 0x8000);
    }
    key
}

/// The packed key of a suffix one element shorter: dropping the oldest
/// delta shifts every lane up one slot and feeds a zero-pad lane in at the
/// bottom, i.e. `pack(s[1..]) == shorten(pack(s))`. Lets one
/// [`pack_suffix`] serve every history length in a longest-first walk.
#[inline]
fn shorten(key: u64) -> u64 {
    (key << 16) | 0x8000
}

/// A bounded LRU map from delta histories to the next delta: dense SoA
/// columns — packed keys for [`find_u64`] probes, `i8` next-deltas, `u32`
/// LRU stamps — plus a pure acceleration layer that leaves lookup results
/// and eviction choices untouched:
///
/// * a 256-bit presence filter over a hash of the key, with per-bucket
///   occupancy counts so eviction can clear bits exactly — a clear bit
///   answers the (dominant) definite-miss probes of the longest-first
///   cascade in O(1) instead of a 64-key sweep;
/// * a per-bucket row hint so repeat hits touch one row directly; a stale
///   or colliding hint fails its key compare and falls back to the sweep;
/// * an intrusive recency list (two `u16` link columns) kept sorted by
///   `(lru, key)` ascending, so the eviction victim is its head in O(1) —
///   no column sweep, which matters doubly here because the sweep's cache
///   lines are evicted by the surrounding simulator between calls.
///
/// The eviction victim is the unique minimum of `(lru, key)` over all rows
/// (keys are unique, so the choice is deterministic under LRU-stamp ties
/// and independent of row order). The list reproduces that order exactly:
/// rows are appended at the tail on every touch, and a touch that shares
/// its stamp with tail rows (several touches in one table during one
/// trigger) walks backward to its key-sorted slot within that tied group.
#[derive(Debug, Clone)]
struct DeltaTable {
    capacity: usize,
    /// Packed history keys ([`pack_suffix`]); unique within the table.
    keys: Vec<u64>,
    next: Vec<i8>,
    lru: Vec<u32>,
    /// Presence bit per hash bucket (set ⇔ `bucket_rows[b] > 0`).
    filter: [u64; 4],
    /// Resident keys hashing to each bucket, for exact bit clearing.
    bucket_rows: [u8; 256],
    /// Last row seen for each bucket, +1 (0 = no hint). Only maintained for
    /// rows < 255; always verified against the key column before use.
    hint: [u8; 256],
    /// Recency-list links (`NO_ROW` = none): `link_prev` points toward the
    /// head (older), `link_next` toward the tail (newer).
    link_prev: Vec<u16>,
    link_next: Vec<u16>,
    /// Oldest row — the eviction victim — and newest row (`NO_ROW` = empty).
    head: u16,
    tail: u16,
}

/// Null link of the recency list; also bounds table capacity.
const NO_ROW: u16 = u16::MAX;

/// Hash bucket (0..256) of a packed key — Fibonacci multiply, top byte.
#[inline]
fn bucket_of(key: u64) -> usize {
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 56) as usize
}

impl DeltaTable {
    fn new(capacity: usize) -> Self {
        assert!(
            capacity < NO_ROW as usize,
            "table capacity must fit u16 recency links"
        );
        DeltaTable {
            capacity,
            keys: Vec::with_capacity(capacity),
            next: Vec::with_capacity(capacity),
            lru: Vec::with_capacity(capacity),
            filter: [0; 4],
            bucket_rows: [0; 256],
            hint: [0; 256],
            link_prev: Vec::with_capacity(capacity),
            link_next: Vec::with_capacity(capacity),
            head: NO_ROW,
            tail: NO_ROW,
        }
    }

    /// Row of `key`, via the filter / hint fast paths; `None` means the key
    /// is definitely absent. Exactly equivalent to `find_u64(&keys, key)`.
    #[inline]
    fn row_of(&self, key: u64) -> Option<usize> {
        let b = bucket_of(key);
        if self.filter[b >> 6] & (1u64 << (b & 63)) == 0 {
            return None;
        }
        let h = self.hint[b] as usize;
        if h > 0 && self.keys[h - 1] == key {
            return Some(h - 1);
        }
        find_u64(&self.keys, key)
    }

    /// Marks `key` resident at `row` in the filter/hint layer.
    #[inline]
    fn index_insert(&mut self, key: u64, row: usize) {
        let b = bucket_of(key);
        self.filter[b >> 6] |= 1u64 << (b & 63);
        self.bucket_rows[b] += 1;
        if row < 255 {
            self.hint[b] = row as u8 + 1;
        }
    }

    /// Removes `key` from the filter layer (its hint may go stale; hints
    /// are verified on use).
    #[inline]
    fn index_remove(&mut self, key: u64) {
        let b = bucket_of(key);
        self.bucket_rows[b] -= 1;
        if self.bucket_rows[b] == 0 {
            self.filter[b >> 6] &= !(1u64 << (b & 63));
        }
    }

    /// Detaches `row` from the recency list.
    fn unlink(&mut self, row: usize) {
        let (p, n) = (self.link_prev[row], self.link_next[row]);
        if p == NO_ROW {
            self.head = n;
        } else {
            self.link_next[p as usize] = n;
        }
        if n == NO_ROW {
            self.tail = p;
        } else {
            self.link_prev[n as usize] = p;
        }
    }

    /// Re-links `row` (already stamped `clock`) at its `(lru, key)`-sorted
    /// slot: the tail, unless tail rows share this stamp — touches within
    /// one trigger — in which case it walks back to key order within that
    /// tied group. The walk is bounded by the touches per trigger (≤ 3).
    fn link_at_tail(&mut self, row: usize, clock: u32) {
        let key = self.keys[row];
        let mut after = self.tail;
        while after != NO_ROW
            && self.lru[after as usize] == clock
            && self.keys[after as usize] > key
        {
            after = self.link_prev[after as usize];
        }
        let before = if after == NO_ROW {
            self.head
        } else {
            self.link_next[after as usize]
        };
        self.link_prev[row] = after;
        self.link_next[row] = before;
        if after == NO_ROW {
            self.head = row as u16;
        } else {
            self.link_next[after as usize] = row as u16;
        }
        if before == NO_ROW {
            self.tail = row as u16;
        } else {
            self.link_prev[before as usize] = row as u16;
        }
    }

    /// Moves a touched row to its recency slot.
    #[inline]
    fn touch(&mut self, row: usize, clock: u32) {
        self.lru[row] = clock;
        if self.tail == row as u16 {
            return; // already newest, and a tied tail group keeps key order
        }
        self.unlink(row);
        self.link_at_tail(row, clock);
    }

    /// The eviction victim: the recency-list head, i.e. the unique
    /// `(lru, key)` minimum over all rows, in O(1).
    fn victim(&self) -> usize {
        debug_assert_ne!(self.head, NO_ROW);
        self.head as usize
    }

    fn update(&mut self, key: u64, next: i8, clock: u32) {
        if let Some(i) = self.row_of(key) {
            self.next[i] = next;
            self.touch(i, clock);
            if i < 255 {
                self.hint[bucket_of(key)] = i as u8 + 1;
            }
            return;
        }
        if self.keys.len() == self.capacity {
            let v = self.victim();
            self.index_remove(self.keys[v]);
            self.unlink(v);
            self.keys[v] = key;
            self.next[v] = next;
            self.lru[v] = clock;
            self.link_at_tail(v, clock);
            self.index_insert(key, v);
        } else {
            let row = self.keys.len();
            self.keys.push(key);
            self.next.push(next);
            self.lru.push(clock);
            self.link_prev.push(NO_ROW);
            self.link_next.push(NO_ROW);
            self.link_at_tail(row, clock);
            self.index_insert(key, row);
        }
    }

    fn predict(&mut self, key: u64, clock: u32) -> Option<i8> {
        let i = self.row_of(key)?;
        self.touch(i, clock);
        if i < 255 {
            self.hint[bucket_of(key)] = i as u8 + 1;
        }
        Some(self.next[i])
    }
}

/// Per-page training state in the DRB, 8 bytes per page (everything but
/// the page tag and the LRU stamp, which live in dense scan columns of
/// [`Drb`]). Offsets are line indices within a page, so `i8` is exact.
#[derive(Debug, Clone, Copy)]
struct DrbData {
    last_offset: i8,
    first_offset: i8,
    /// Most recent deltas, oldest first (≤ `levels` entries).
    history: History,
    /// Access count, saturated at 3 — only the `== 2` transition (second
    /// access to the page) is ever consulted, for OPT training.
    accesses: u8,
}

/// The delta-history buffer: page tags in a dense `u64` column (for
/// [`find_u64`] lookup), the compact per-page state alongside, and an
/// intrusive recency list for O(1) LRU eviction — ~1 KiB at the paper's
/// 64 pages.
#[derive(Debug, Clone)]
struct Drb {
    pages: Vec<u64>,
    data: Vec<DrbData>,
    /// Recency-list links, as in [`DeltaTable`].
    link_prev: Vec<u16>,
    link_next: Vec<u16>,
    head: u16,
    tail: u16,
    /// Row of the most recent hit — miss streams revisit the same page for
    /// several lines in a row, so this answers most probes without the
    /// column sweep. Verified against `pages` before use.
    last_hit: usize,
    /// Last row seen for each page-hash bucket, +1 (0 = no hint; rows ≥ 255
    /// are never hinted). Covers the interleaved case `last_hit` cannot —
    /// alternating pages land in distinct buckets, so each probe still
    /// finds its row without the column sweep. Stale or colliding hints
    /// fail the key compare below and fall back to the sweep.
    hint: [u8; 256],
}

impl Drb {
    /// Row of `page`; equivalent to `find_u64(&pages, page)` (tags unique).
    #[inline]
    fn row_of(&self, page: u64) -> Option<usize> {
        if self.pages.get(self.last_hit) == Some(&page) {
            return Some(self.last_hit);
        }
        let h = self.hint[bucket_of(page)] as usize;
        if h > 0 && self.pages.get(h - 1) == Some(&page) {
            return Some(h - 1);
        }
        find_u64(&self.pages, page)
    }

    /// Records `row` as the freshest home of `page` for both fast probes.
    #[inline]
    fn remember(&mut self, page: u64, row: usize) {
        self.last_hit = row;
        if row < 255 {
            self.hint[bucket_of(page)] = row as u8 + 1;
        }
    }

    /// Detaches `row` from the recency list.
    fn unlink(&mut self, row: usize) {
        let (p, n) = (self.link_prev[row], self.link_next[row]);
        if p == NO_ROW {
            self.head = n;
        } else {
            self.link_next[p as usize] = n;
        }
        if n == NO_ROW {
            self.tail = p;
        } else {
            self.link_prev[n as usize] = p;
        }
    }

    /// Appends `row` at the tail (the newest slot). Exactly one page is
    /// touched per trigger, so stamps are unique and no tie walk exists:
    /// list order is stamp order, and the head is the oldest-stamp row
    /// (first occurrence on ties, vacuously).
    fn link_at_tail(&mut self, row: usize) {
        self.link_prev[row] = self.tail;
        self.link_next[row] = NO_ROW;
        if self.tail == NO_ROW {
            self.head = row as u16;
        } else {
            self.link_next[self.tail as usize] = row as u16;
        }
        self.tail = row as u16;
    }

    /// Moves a touched row to the newest slot.
    #[inline]
    fn touch(&mut self, row: usize) {
        if self.tail == row as u16 {
            return;
        }
        self.unlink(row);
        self.link_at_tail(row);
    }

    /// The eviction victim: the recency-list head, in O(1).
    fn victim(&self) -> usize {
        debug_assert_ne!(self.head, NO_ROW);
        self.head as usize
    }
}

/// The VLDP engine.
///
/// # Example
///
/// ```
/// use droplet_prefetch::{AccessEvent, EventKind, Prefetcher, VldpConfig, VldpPrefetcher};
/// use droplet_trace::{DataType, VirtAddr};
/// let mut pf = VldpPrefetcher::new(VldpConfig::paper());
/// let mut out = Vec::new();
/// for i in 0..6u64 {
///     pf.on_access(&AccessEvent {
///         vaddr: VirtAddr::new(0x40_0000 + i * 2 * 64), // +2-line stride
///         kind: EventKind::L1Miss,
///         is_structure: false,
///         dtype: DataType::Property,
///     }, &mut out);
/// }
/// assert!(!out.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct VldpPrefetcher {
    cfg: VldpConfig,
    drb: Drb,
    /// OPT: first line-offset in page → predicted first delta.
    opt: Vec<Option<i8>>,
    /// DPTs indexed by history length − 1.
    dpt: Vec<DeltaTable>,
    /// Miss counter driving the LRU stamps. `u32` keeps the stamp columns
    /// half the width of the key columns; overflow (> 2³²−1 L1 misses in
    /// one run) panics rather than corrupting recency order.
    clock: u32,
    issued: u64,
}

impl VldpPrefetcher {
    /// Creates an idle VLDP.
    ///
    /// # Panics
    ///
    /// Panics if any table capacity or the level count is zero, or if
    /// `levels` exceeds [`MAX_LEVELS`].
    pub fn new(cfg: VldpConfig) -> Self {
        assert!(
            cfg.drb_pages > 0 && cfg.opt_entries > 0 && cfg.dpt_entries > 0 && cfg.levels > 0,
            "degenerate VLDP config"
        );
        assert!(
            cfg.levels <= MAX_LEVELS,
            "VLDP levels {} exceeds MAX_LEVELS {MAX_LEVELS}",
            cfg.levels
        );
        assert!(
            cfg.drb_pages < NO_ROW as usize,
            "DRB capacity must fit u16 recency links"
        );
        VldpPrefetcher {
            drb: Drb {
                pages: Vec::with_capacity(cfg.drb_pages),
                data: Vec::with_capacity(cfg.drb_pages),
                link_prev: Vec::with_capacity(cfg.drb_pages),
                link_next: Vec::with_capacity(cfg.drb_pages),
                head: NO_ROW,
                tail: NO_ROW,
                last_hit: usize::MAX,
                hint: [0; 256],
            },
            opt: vec![None; cfg.opt_entries],
            dpt: (0..cfg.levels)
                .map(|_| DeltaTable::new(cfg.dpt_entries))
                .collect(),
            cfg,
            clock: 0,
            issued: 0,
        }
    }

    fn lines_per_page() -> i64 {
        (PAGE_BYTES / LINE_BYTES) as i64
    }

    /// OPT slot of a first line-offset — a mask at the usual power-of-two
    /// table size, so the hot path carries no integer division.
    #[inline]
    fn opt_index(&self, offset: usize) -> usize {
        let n = self.cfg.opt_entries;
        if n.is_power_of_two() {
            offset & (n - 1)
        } else {
            offset % n
        }
    }

    /// Longest-history-first DPT lookup. `history.len` never exceeds
    /// `cfg.levels` (pushes are capped there), so the history's own packed
    /// key is the longest probe key.
    fn predict(&mut self, history: &History) -> Option<i8> {
        let clock = self.clock;
        let longest = (history.len as usize).min(self.cfg.levels);
        if longest == 0 {
            return None;
        }
        let mut key = history.key();
        for len in (1..=longest).rev() {
            if let Some(d) = self.dpt[len - 1].predict(key, clock) {
                return Some(d);
            }
            key = shorten(key);
        }
        None
    }

    fn emit(
        &mut self,
        page: u64,
        offset: i64,
        ev: &AccessEvent,
        out: &mut Vec<PrefetchRequest>,
    ) -> bool {
        if offset < 0 || offset >= Self::lines_per_page() {
            return false;
        }
        let lines_per_page = Self::lines_per_page() as u64;
        out.push(PrefetchRequest {
            vline: page * lines_per_page + offset as u64,
            dtype: ev.dtype,
            into_l3_queue: false,
        });
        self.issued += 1;
        true
    }
}

impl Prefetcher for VldpPrefetcher {
    fn on_access(&mut self, ev: &AccessEvent, out: &mut Vec<PrefetchRequest>) {
        if ev.kind != EventKind::L1Miss {
            return;
        }
        self.clock = self
            .clock
            .checked_add(1)
            .expect("VLDP LRU clock overflow: > u32::MAX L1 misses in one run");
        let clock = self.clock;
        let page = ev.page();
        let offset = ev.line_in_page() as i64;

        match self.drb.row_of(page) {
            None => {
                // First access to the page: consult the OPT.
                let opt_idx = self.opt_index(offset as usize);
                if let Some(d) = self.opt[opt_idx] {
                    self.emit(page, offset + d as i64, ev, out);
                }
                let data = DrbData {
                    last_offset: offset as i8,
                    first_offset: offset as i8,
                    history: History::default(),
                    accesses: 1,
                };
                if self.drb.pages.len() < self.cfg.drb_pages {
                    let row = self.drb.pages.len();
                    self.drb.remember(page, row);
                    self.drb.pages.push(page);
                    self.drb.data.push(data);
                    self.drb.link_prev.push(NO_ROW);
                    self.drb.link_next.push(NO_ROW);
                    self.drb.link_at_tail(row);
                } else {
                    let victim = self.drb.victim();
                    self.drb.unlink(victim);
                    self.drb.pages[victim] = page;
                    self.drb.data[victim] = data;
                    self.drb.link_at_tail(victim);
                    self.drb.remember(page, victim);
                }
            }
            Some(i) => {
                self.drb.remember(page, i);
                self.drb.touch(i);
                let (first_offset, second_access, delta, mut history) = {
                    let e = &mut self.drb.data[i];
                    let delta = offset as i8 - e.last_offset;
                    if delta == 0 {
                        return; // same line again; nothing to learn
                    }
                    e.last_offset = offset as i8;
                    if e.accesses < 3 {
                        e.accesses += 1;
                    }
                    (e.first_offset, e.accesses == 2, delta, e.history)
                };

                // Second access trains the OPT for this first-offset class.
                if second_access {
                    let opt_idx = self.opt_index(first_offset as usize);
                    self.opt[opt_idx] = Some(delta);
                }

                // Train every DPT with the observed history → delta pair.
                let longest = (history.len as usize).min(self.cfg.levels);
                if longest > 0 {
                    let mut key = history.key();
                    for len in (1..=longest).rev() {
                        self.dpt[len - 1].update(key, delta, clock);
                        key = shorten(key);
                    }
                }

                // Append the new delta to the page's history.
                history.push_capped(delta, self.cfg.levels);
                self.drb.data[i].history = history;

                // Cascaded prediction: walk forward up to `degree` steps.
                let mut cur = offset;
                let mut h = history;
                for _ in 0..self.cfg.degree {
                    let Some(d) = self.predict(&h) else { break };
                    cur += d as i64;
                    if !self.emit(page, cur, ev, out) {
                        break;
                    }
                    h.push_capped(d, self.cfg.levels);
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "vldp"
    }

    fn issued(&self) -> u64 {
        self.issued
    }

    fn box_clone(&self) -> Box<dyn Prefetcher> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use droplet_trace::{DataType, VirtAddr};

    fn miss(page: u64, offset: u64) -> AccessEvent {
        AccessEvent {
            vaddr: VirtAddr::new(page * PAGE_BYTES + offset * LINE_BYTES),
            kind: EventKind::L1Miss,
            is_structure: false,
            dtype: DataType::Property,
        }
    }

    fn drive(pf: &mut VldpPrefetcher, accesses: &[(u64, u64)]) -> Vec<u64> {
        let mut out = Vec::new();
        for &(p, o) in accesses {
            pf.on_access(&miss(p, o), &mut out);
        }
        out.iter().map(|r| r.vline).collect()
    }

    #[test]
    fn constant_stride_is_learned_within_a_page() {
        let mut pf = VldpPrefetcher::new(VldpConfig::paper());
        let got = drive(&mut pf, &[(9, 0), (9, 2), (9, 4), (9, 6)]);
        // After training the +2 delta, predictions run ahead: 8, 10, …
        assert!(got.contains(&(9 * 64 + 8)), "{got:?}");
    }

    #[test]
    fn longer_histories_win_over_shorter() {
        let mut pf = VldpPrefetcher::new(VldpConfig::paper());
        // Pattern per page: +1, +3 alternating. History [1,3] → 1, [3,1] → 3.
        drive(&mut pf, &[(1, 0), (1, 1), (1, 4), (1, 5), (1, 8), (1, 9)]);
        // New page replays the same pattern; after (2,0),(2,1),(2,4) the
        // history [1,3] should predict +1 → offset 5 (not the DPT-1 answer).
        let got = drive(&mut pf, &[(2, 0), (2, 1), (2, 4)]);
        assert!(got.contains(&(2 * 64 + 5)), "{got:?}");
    }

    #[test]
    fn opt_predicts_on_first_access_of_a_new_page() {
        let mut pf = VldpPrefetcher::new(VldpConfig::paper());
        // Page 5: first offset 0, then +4 → trains OPT[0] = +4.
        drive(&mut pf, &[(5, 0), (5, 4)]);
        // Fresh page first-touched at offset 0 predicts offset 4 immediately.
        let got = drive(&mut pf, &[(6, 0)]);
        assert_eq!(got, vec![6 * 64 + 4]);
    }

    #[test]
    fn predictions_never_cross_page_bounds() {
        let mut pf = VldpPrefetcher::new(VldpConfig::paper());
        let got = drive(&mut pf, &[(3, 59), (3, 61), (3, 63)]);
        assert!(got.iter().all(|&l| l / 64 == 3), "{got:?}");
        assert!(got.iter().all(|&l| l % 64 < 64));
    }

    #[test]
    fn drb_capacity_bounded_by_lru() {
        let mut pf = VldpPrefetcher::new(VldpConfig {
            drb_pages: 2,
            ..VldpConfig::paper()
        });
        drive(&mut pf, &[(1, 0), (2, 0), (3, 0)]);
        assert_eq!(pf.drb.pages.len(), 2);
        assert!(pf.drb.pages.iter().all(|&p| p != 1));
    }

    #[test]
    fn irregular_deltas_yield_poor_predictions() {
        let mut pf = VldpPrefetcher::new(VldpConfig::paper());
        let got = drive(
            &mut pf,
            &[(7, 0), (7, 13), (7, 5), (7, 40), (7, 22), (7, 61)],
        );
        // Nothing repeats, so at most stale-history noise comes out.
        assert!(got.len() <= 2, "{got:?}");
    }

    #[test]
    fn same_line_repeat_is_ignored() {
        let mut pf = VldpPrefetcher::new(VldpConfig::paper());
        let got = drive(&mut pf, &[(8, 3), (8, 3), (8, 3)]);
        assert!(got.is_empty());
        assert_eq!(pf.issued(), 0);
        assert_eq!(pf.name(), "vldp");
    }

    #[test]
    fn opt_trains_only_on_the_second_access() {
        let mut pf = VldpPrefetcher::new(VldpConfig::paper());
        // Page 4: offsets 0, 4, 5, 9 — OPT[0] must hold +4 (second access),
        // not be retrained by the later +1/+4 deltas.
        drive(&mut pf, &[(4, 0), (4, 4), (4, 5), (4, 9)]);
        let got = drive(&mut pf, &[(11, 0)]);
        assert_eq!(got, vec![11 * 64 + 4]);
    }

    #[test]
    fn packed_keys_preserve_equality_and_order() {
        // Check around the delta boundaries: packing preserves zero-padded
        // array equality and lexicographic order.
        let cases: Vec<Vec<i8>> = vec![
            vec![],
            vec![0],
            vec![1],
            vec![-1],
            vec![63],
            vec![-63],
            vec![1, -1],
            vec![-1, 1],
            vec![1, 0],
            vec![0, 1],
            vec![63, -63, 63],
            vec![-63, 63, -63],
            vec![2, 2, 2],
            vec![2, 2, 2, -5],
        ];
        let pad = |s: &[i8]| {
            let mut k = [0i64; MAX_LEVELS];
            for (slot, &d) in k.iter_mut().zip(s) {
                *slot = d as i64;
            }
            k
        };
        for a in &cases {
            for b in &cases {
                let (pa, pb) = (pack_suffix(a), pack_suffix(b));
                assert_eq!(pa == pb, pad(a) == pad(b), "{a:?} vs {b:?}");
                assert_eq!(pa.cmp(&pb), pad(a).cmp(&pad(b)), "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn shorten_matches_packing_the_shorter_suffix() {
        let h = [3i8, -7, 22, 63];
        for len in 1..=MAX_LEVELS {
            let key = pack_suffix(&h[MAX_LEVELS - len..]);
            for shorter in (1..len).rev() {
                let derived = (0..len - shorter).fold(key, |k, _| shorten(k));
                assert_eq!(derived, pack_suffix(&h[MAX_LEVELS - shorter..]));
            }
        }
    }

    #[test]
    fn incremental_history_key_matches_repacking_from_scratch() {
        // The lane math of `History::push_capped` must agree with the
        // reference bounded-Vec semantics (push, drop-oldest at cap) fed
        // through `pack_suffix`, for every cap and for delta sequences
        // crossing the sign and magnitude extremes.
        let deltas: [i8; 9] = [1, -1, 63, -63, 7, 0, -128, 127, 5];
        for cap in 1..=MAX_LEVELS {
            let mut h = History::default();
            let mut reference: Vec<i8> = Vec::new();
            assert_eq!(h.key(), pack_suffix(&reference));
            for &d in &deltas {
                h.push_capped(d, cap);
                reference.push(d);
                if reference.len() > cap {
                    reference.remove(0);
                }
                assert_eq!(
                    h.key(),
                    pack_suffix(&reference),
                    "cap {cap} after {reference:?}"
                );
                assert_eq!(h.len as usize, reference.len());
            }
        }
    }

    #[test]
    fn delta_table_eviction_prefers_oldest_then_smallest_key() {
        let mut t = DeltaTable::new(2);
        t.update(pack_suffix(&[5]), 1, 1);
        t.update(pack_suffix(&[3]), 2, 1); // tied LRU stamp with [5]
        t.update(pack_suffix(&[7]), 3, 2); // evicts the smaller key, [3]
        assert!(t.predict(pack_suffix(&[5]), 3).is_some());
        assert!(t.predict(pack_suffix(&[3]), 3).is_none());
        assert_eq!(t.predict(pack_suffix(&[7]), 3), Some(3));
    }
}
