//! The Variable Length Delta Prefetcher (Shevgoor et al. [38]) — the
//! paper's `VLDP` comparison point. Per Table V: a DRB tracking the last 64
//! pages, a 64-entry OPT (offset prediction table), and 3 cascaded 64-entry
//! DPTs (delta prediction tables keyed by delta histories of length 1–3,
//! longest match wins).

use crate::event::{AccessEvent, EventKind, PrefetchRequest, Prefetcher};
use droplet_trace::{LINE_BYTES, PAGE_BYTES};

/// Upper bound on cascaded DPT levels, so delta histories and table keys
/// live in fixed-size arrays instead of heap vectors. The paper uses 3
/// levels; [`VldpPrefetcher::new`] rejects configurations beyond this.
const MAX_LEVELS: usize = 4;

/// VLDP parameters (paper Table V).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VldpConfig {
    /// Pages tracked by the delta-history buffer.
    pub drb_pages: usize,
    /// Offset-prediction-table entries (one per possible first offset).
    pub opt_entries: usize,
    /// Entries per delta prediction table.
    pub dpt_entries: usize,
    /// Number of cascaded DPTs (history lengths 1..=levels).
    pub levels: usize,
    /// Predictions issued per trigger (cascaded).
    pub degree: usize,
}

impl VldpConfig {
    /// The Table V configuration.
    pub fn paper() -> Self {
        VldpConfig {
            drb_pages: 64,
            opt_entries: 64,
            dpt_entries: 64,
            levels: 3,
            degree: 2,
        }
    }
}

/// A short delta sequence stored inline (≤ [`MAX_LEVELS`] entries). Unused
/// tail slots are always zero, so whole-array equality and lexicographic
/// comparison between histories of equal length match `Vec<i64>` semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct History {
    d: [i64; MAX_LEVELS],
    len: usize,
}

impl History {
    /// Appends `delta`, dropping the oldest entry once `cap` is reached —
    /// the `push` + `remove(0)` idiom of a bounded Vec, without the Vec.
    fn push_capped(&mut self, delta: i64, cap: usize) {
        if self.len == cap {
            self.d.copy_within(1..self.len, 0);
            self.d[self.len - 1] = delta;
        } else {
            self.d[self.len] = delta;
            self.len += 1;
        }
    }

    fn suffix(&self, len: usize) -> &[i64] {
        &self.d[self.len - len..self.len]
    }
}

/// One learned (history → next delta) association.
#[derive(Debug, Clone, Copy)]
struct DeltaEntry {
    /// Key deltas, zero-padded past the table's fixed key length.
    key: [i64; MAX_LEVELS],
    next: i64,
    lru: u64,
}

/// A bounded LRU map from delta histories to the next delta.
///
/// Every key in a table has the same length (the DPT cascade keys level
/// `L` by histories of exactly `L` deltas), so the table is a flat array
/// scanned linearly — the hardware-faithful shape, and much faster than
/// hashing heap-allocated keys: no per-lookup allocation, no SipHash, and
/// eviction is the same single pass that a lookup is.
#[derive(Debug, Clone)]
struct DeltaTable {
    capacity: usize,
    entries: Vec<DeltaEntry>,
}

impl DeltaTable {
    fn new(capacity: usize) -> Self {
        DeltaTable {
            capacity,
            entries: Vec::with_capacity(capacity),
        }
    }

    fn pad(key: &[i64]) -> [i64; MAX_LEVELS] {
        let mut k = [0i64; MAX_LEVELS];
        k[..key.len()].copy_from_slice(key);
        k
    }

    fn update(&mut self, key: &[i64], next: i64, clock: u64) {
        let k = Self::pad(key);
        if let Some(e) = self.entries.iter_mut().find(|e| e.key == k) {
            e.next = next;
            e.lru = clock;
            return;
        }
        if self.entries.len() == self.capacity {
            // Tie-break equal LRU clocks on the key itself (deterministic
            // victim regardless of insertion order).
            let victim = self
                .entries
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| a.lru.cmp(&b.lru).then_with(|| a.key.cmp(&b.key)))
                .map(|(i, _)| i)
                .expect("table is non-empty");
            self.entries.swap_remove(victim);
        }
        self.entries.push(DeltaEntry {
            key: k,
            next,
            lru: clock,
        });
    }

    fn predict(&mut self, key: &[i64], clock: u64) -> Option<i64> {
        let k = Self::pad(key);
        let e = self.entries.iter_mut().find(|e| e.key == k)?;
        e.lru = clock;
        Some(e.next)
    }
}

/// Per-page delta history in the DRB.
#[derive(Debug, Clone)]
struct DrbEntry {
    page: u64,
    last_offset: i64,
    first_offset: i64,
    /// Most recent deltas, oldest first (≤ `levels`).
    history: History,
    accesses: u64,
    lru: u64,
}

/// The VLDP engine.
///
/// # Example
///
/// ```
/// use droplet_prefetch::{AccessEvent, EventKind, Prefetcher, VldpConfig, VldpPrefetcher};
/// use droplet_trace::{DataType, VirtAddr};
/// let mut pf = VldpPrefetcher::new(VldpConfig::paper());
/// let mut out = Vec::new();
/// for i in 0..6u64 {
///     pf.on_access(&AccessEvent {
///         vaddr: VirtAddr::new(0x40_0000 + i * 2 * 64), // +2-line stride
///         kind: EventKind::L1Miss,
///         is_structure: false,
///         dtype: DataType::Property,
///     }, &mut out);
/// }
/// assert!(!out.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct VldpPrefetcher {
    cfg: VldpConfig,
    drb: Vec<DrbEntry>,
    /// OPT: first line-offset in page → predicted first delta.
    opt: Vec<Option<i64>>,
    /// DPTs indexed by history length − 1.
    dpt: Vec<DeltaTable>,
    clock: u64,
    issued: u64,
}

impl VldpPrefetcher {
    /// Creates an idle VLDP.
    ///
    /// # Panics
    ///
    /// Panics if any table capacity or the level count is zero, or if
    /// `levels` exceeds [`MAX_LEVELS`].
    pub fn new(cfg: VldpConfig) -> Self {
        assert!(
            cfg.drb_pages > 0 && cfg.opt_entries > 0 && cfg.dpt_entries > 0 && cfg.levels > 0,
            "degenerate VLDP config"
        );
        assert!(
            cfg.levels <= MAX_LEVELS,
            "VLDP levels {} exceeds MAX_LEVELS {MAX_LEVELS}",
            cfg.levels
        );
        VldpPrefetcher {
            drb: Vec::with_capacity(cfg.drb_pages),
            opt: vec![None; cfg.opt_entries],
            dpt: (0..cfg.levels)
                .map(|_| DeltaTable::new(cfg.dpt_entries))
                .collect(),
            cfg,
            clock: 0,
            issued: 0,
        }
    }

    fn lines_per_page() -> i64 {
        (PAGE_BYTES / LINE_BYTES) as i64
    }

    /// Longest-history-first DPT lookup.
    fn predict(&mut self, history: &History) -> Option<i64> {
        let clock = self.clock;
        for len in (1..=history.len.min(self.cfg.levels)).rev() {
            if let Some(d) = self.dpt[len - 1].predict(history.suffix(len), clock) {
                return Some(d);
            }
        }
        None
    }

    fn emit(
        &mut self,
        page: u64,
        offset: i64,
        ev: &AccessEvent,
        out: &mut Vec<PrefetchRequest>,
    ) -> bool {
        if offset < 0 || offset >= Self::lines_per_page() {
            return false;
        }
        let lines_per_page = Self::lines_per_page() as u64;
        out.push(PrefetchRequest {
            vline: page * lines_per_page + offset as u64,
            dtype: ev.dtype,
            into_l3_queue: false,
        });
        self.issued += 1;
        true
    }
}

impl Prefetcher for VldpPrefetcher {
    fn on_access(&mut self, ev: &AccessEvent, out: &mut Vec<PrefetchRequest>) {
        if ev.kind != EventKind::L1Miss {
            return;
        }
        self.clock += 1;
        let clock = self.clock;
        let page = ev.page();
        let offset = ev.line_in_page() as i64;

        let idx = self.drb.iter().position(|e| e.page == page);
        match idx {
            None => {
                // First access to the page: consult the OPT.
                let opt_idx = (offset as usize) % self.cfg.opt_entries;
                if let Some(d) = self.opt[opt_idx] {
                    self.emit(page, offset + d, ev, out);
                }
                let entry = DrbEntry {
                    page,
                    last_offset: offset,
                    first_offset: offset,
                    history: History::default(),
                    accesses: 1,
                    lru: clock,
                };
                if self.drb.len() < self.cfg.drb_pages {
                    self.drb.push(entry);
                } else {
                    let victim = self
                        .drb
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, e)| e.lru)
                        .map(|(i, _)| i)
                        .expect("DRB is non-empty");
                    self.drb[victim] = entry;
                }
            }
            Some(i) => {
                let (first_offset, accesses, delta, mut history) = {
                    let e = &mut self.drb[i];
                    e.lru = clock;
                    let delta = offset - e.last_offset;
                    if delta == 0 {
                        return; // same line again; nothing to learn
                    }
                    e.last_offset = offset;
                    e.accesses += 1;
                    (e.first_offset, e.accesses, delta, e.history)
                };

                // Second access trains the OPT for this first-offset class.
                if accesses == 2 {
                    let opt_idx = (first_offset as usize) % self.cfg.opt_entries;
                    self.opt[opt_idx] = Some(delta);
                }

                // Train every DPT with the observed history → delta pair.
                for len in 1..=history.len.min(self.cfg.levels) {
                    self.dpt[len - 1].update(history.suffix(len), delta, clock);
                }

                // Append the new delta to the page's history.
                history.push_capped(delta, self.cfg.levels);
                self.drb[i].history = history;

                // Cascaded prediction: walk forward up to `degree` steps.
                let mut cur = offset;
                let mut h = history;
                for _ in 0..self.cfg.degree {
                    let Some(d) = self.predict(&h) else { break };
                    cur += d;
                    if !self.emit(page, cur, ev, out) {
                        break;
                    }
                    h.push_capped(d, self.cfg.levels);
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "vldp"
    }

    fn issued(&self) -> u64 {
        self.issued
    }

    fn box_clone(&self) -> Box<dyn Prefetcher> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use droplet_trace::{DataType, VirtAddr};

    fn miss(page: u64, offset: u64) -> AccessEvent {
        AccessEvent {
            vaddr: VirtAddr::new(page * PAGE_BYTES + offset * LINE_BYTES),
            kind: EventKind::L1Miss,
            is_structure: false,
            dtype: DataType::Property,
        }
    }

    fn drive(pf: &mut VldpPrefetcher, accesses: &[(u64, u64)]) -> Vec<u64> {
        let mut out = Vec::new();
        for &(p, o) in accesses {
            pf.on_access(&miss(p, o), &mut out);
        }
        out.iter().map(|r| r.vline).collect()
    }

    #[test]
    fn constant_stride_is_learned_within_a_page() {
        let mut pf = VldpPrefetcher::new(VldpConfig::paper());
        let got = drive(&mut pf, &[(9, 0), (9, 2), (9, 4), (9, 6)]);
        // After training the +2 delta, predictions run ahead: 8, 10, …
        assert!(got.contains(&(9 * 64 + 8)), "{got:?}");
    }

    #[test]
    fn longer_histories_win_over_shorter() {
        let mut pf = VldpPrefetcher::new(VldpConfig::paper());
        // Pattern per page: +1, +3 alternating. History [1,3] → 1, [3,1] → 3.
        drive(&mut pf, &[(1, 0), (1, 1), (1, 4), (1, 5), (1, 8), (1, 9)]);
        // New page replays the same pattern; after (2,0),(2,1),(2,4) the
        // history [1,3] should predict +1 → offset 5 (not the DPT-1 answer).
        let got = drive(&mut pf, &[(2, 0), (2, 1), (2, 4)]);
        assert!(got.contains(&(2 * 64 + 5)), "{got:?}");
    }

    #[test]
    fn opt_predicts_on_first_access_of_a_new_page() {
        let mut pf = VldpPrefetcher::new(VldpConfig::paper());
        // Page 5: first offset 0, then +4 → trains OPT[0] = +4.
        drive(&mut pf, &[(5, 0), (5, 4)]);
        // Fresh page first-touched at offset 0 predicts offset 4 immediately.
        let got = drive(&mut pf, &[(6, 0)]);
        assert_eq!(got, vec![6 * 64 + 4]);
    }

    #[test]
    fn predictions_never_cross_page_bounds() {
        let mut pf = VldpPrefetcher::new(VldpConfig::paper());
        let got = drive(&mut pf, &[(3, 59), (3, 61), (3, 63)]);
        assert!(got.iter().all(|&l| l / 64 == 3), "{got:?}");
        assert!(got.iter().all(|&l| l % 64 < 64));
    }

    #[test]
    fn drb_capacity_bounded_by_lru() {
        let mut pf = VldpPrefetcher::new(VldpConfig {
            drb_pages: 2,
            ..VldpConfig::paper()
        });
        drive(&mut pf, &[(1, 0), (2, 0), (3, 0)]);
        assert_eq!(pf.drb.len(), 2);
        assert!(pf.drb.iter().all(|e| e.page != 1));
    }

    #[test]
    fn irregular_deltas_yield_poor_predictions() {
        let mut pf = VldpPrefetcher::new(VldpConfig::paper());
        let got = drive(
            &mut pf,
            &[(7, 0), (7, 13), (7, 5), (7, 40), (7, 22), (7, 61)],
        );
        // Nothing repeats, so at most stale-history noise comes out.
        assert!(got.len() <= 2, "{got:?}");
    }

    #[test]
    fn same_line_repeat_is_ignored() {
        let mut pf = VldpPrefetcher::new(VldpConfig::paper());
        let got = drive(&mut pf, &[(8, 3), (8, 3), (8, 3)]);
        assert!(got.is_empty());
        assert_eq!(pf.issued(), 0);
        assert_eq!(pf.name(), "vldp");
    }
}
