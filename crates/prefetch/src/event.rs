//! The event/request vocabulary shared by all core-side prefetch engines.

use droplet_trace::{DataType, VirtAddr, LINE_BYTES, PAGE_BYTES};

/// What kind of cache event the prefetcher is observing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// An L1 miss arriving at the L2 request queue (the conventional
    /// streamer's training input).
    L1Miss,
    /// A hit in the L2 cache (the data-aware streamer additionally trains on
    /// L2 *structure* hits, Fig. 9(b)).
    L2Hit,
}

/// One observed access, in virtual address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessEvent {
    /// The accessed virtual address.
    pub vaddr: VirtAddr,
    /// Whether this was an L1 miss or an L2 hit.
    pub kind: EventKind,
    /// The extra bit from the TLB entry: the page holds structure data.
    pub is_structure: bool,
    /// Data type of the access (for request labeling; engines other than
    /// the data-aware streamer must not make decisions from it).
    pub dtype: DataType,
}

impl AccessEvent {
    /// The virtual line index of the access.
    pub fn line(&self) -> u64 {
        self.vaddr.line_index()
    }

    /// The virtual page number of the access.
    pub fn page(&self) -> u64 {
        self.vaddr.page_number()
    }

    /// Line offset within the page (0..64 at 4 KiB pages / 64 B lines).
    pub fn line_in_page(&self) -> u64 {
        (self.vaddr.raw() % PAGE_BYTES) / LINE_BYTES
    }
}

/// A prefetch produced by a core-side engine, in virtual line space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchRequest {
    /// Virtual line index to prefetch.
    pub vline: u64,
    /// Data type the engine believes it is fetching (used for accuracy
    /// accounting; resolved against the allocator by the system).
    pub dtype: DataType,
    /// `true` for requests from a data-aware streamer, which are enqueued
    /// in the L3 request queue instead of the L2 queue (Fig. 9(b) ❸) and
    /// carry the C-bit through the memory controller.
    pub into_l3_queue: bool,
}

/// A reactive core-side prefetch engine.
///
/// `Send + Sync` is required so snapshots holding a boxed engine can be
/// shared across the sweep worker pool; engines are plain lookup tables, so
/// every implementation satisfies both automatically.
pub trait Prefetcher: Send + Sync {
    /// Observes one access and appends any prefetch requests to `out`.
    fn on_access(&mut self, ev: &AccessEvent, out: &mut Vec<PrefetchRequest>);

    /// Short engine name for reports.
    fn name(&self) -> &'static str;

    /// Requests issued so far.
    fn issued(&self) -> u64;

    /// An owned duplicate carrying all learned state — the snapshot path
    /// forked sweeps use to restore predictors at the warm-up boundary.
    fn box_clone(&self) -> Box<dyn Prefetcher>;

    /// Runtime mode switch for engines with a data-aware filter (the
    /// adaptive-DROPLET extension of Section VII-B). Default: no-op.
    fn set_data_aware(&mut self, on: bool) {
        let _ = on;
    }

    /// Whether the engine is currently in data-aware mode.
    fn is_data_aware(&self) -> bool {
        false
    }
}

impl Clone for Box<dyn Prefetcher> {
    fn clone(&self) -> Self {
        self.box_clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_geometry_helpers() {
        let ev = AccessEvent {
            vaddr: VirtAddr::new(PAGE_BYTES * 3 + 130),
            kind: EventKind::L1Miss,
            is_structure: true,
            dtype: DataType::Structure,
        };
        assert_eq!(ev.page(), 3);
        assert_eq!(ev.line_in_page(), 2);
        assert_eq!(ev.line(), (PAGE_BYTES * 3 + 130) / LINE_BYTES);
    }
}
