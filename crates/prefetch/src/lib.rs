//! Prefetch engines for the DROPLET reproduction — every configuration the
//! paper evaluates (Section VII-A, Table V):
//!
//! - [`StreamPrefetcher`] — the conventional L2 streamer (snoops all L1 miss
//!   addresses) and, in data-aware mode, DROPLET's structure-only streamer
//!   that also trains on L2 structure hits and inserts its requests into the
//!   L3 request queue (Fig. 9).
//! - [`GhbPrefetcher`] — the G/DC (global / delta-correlation) global
//!   history buffer prefetcher.
//! - [`VldpPrefetcher`] — the Variable Length Delta Prefetcher.
//! - [`Mpp`] — DROPLET's memory-controller-based property prefetcher with
//!   its PAG / VAB / MTLB / PAB pipeline (Fig. 10). `MPP1` (the variant that
//!   recognizes structure lines without the C-bit) and the monolithic-L1
//!   arrangement are wiring choices made by the system crate.
//!
//! All engines observe [`AccessEvent`]s and append [`PrefetchRequest`]s to a
//! caller-provided buffer; they are purely reactive and hold no references
//! to the memory system.

pub mod event;
pub mod ghb;
pub mod mpp;
pub mod nextline;
pub mod stream;
pub mod vldp;

pub use event::{AccessEvent, EventKind, PrefetchRequest, Prefetcher};
pub use ghb::{GhbConfig, GhbPrefetcher};
pub use mpp::{Mpp, MppCandidate, MppConfig, MppStats, PropertyTarget};
pub use nextline::NextLinePrefetcher;
pub use stream::{StreamConfig, StreamPrefetcher};
pub use vldp::{VldpConfig, VldpPrefetcher};
