//! The memory-controller-based property prefetcher (MPP) — Fig. 10 and
//! Section V-C2/V-C3.
//!
//! When a structure prefetch arrives from DRAM (recognized via the MRB's
//! C-bit, or by address range in the `MPP1` variant), a copy of the line is
//! handed to the MPP. The property address generator (PAG) scans it for
//! neighbor IDs, computes target virtual addresses as
//! `property_address = base + elem_bytes × neighbor_id` (the paper's
//! Eq. (1)), buffers them in the VAB, translates them through the
//! near-memory MTLB (page-walking on a miss; *dropping* the prefetch on a
//! page fault), buffers the physical addresses in the PAB, and finally
//! checks the coherence engine so on-chip lines are copied from the LLC into
//! the requesting core's L2 instead of re-fetched from DRAM.

use droplet_trace::{Cycle, FunctionalMemory, PageTable, Tlb, VirtAddr, LINE_BYTES};

/// MPP parameters (paper Table V).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MppConfig {
    /// FIFO virtual-address-buffer capacity.
    pub vab_entries: usize,
    /// FIFO physical-address-buffer capacity.
    pub pab_entries: usize,
    /// Near-memory TLB entries.
    pub mtlb_entries: usize,
    /// PAG address-generation latency (cycles).
    pub pag_latency: Cycle,
    /// Coherence-engine checking overhead (cycles).
    pub coherence_latency: Cycle,
    /// Page-walk latency charged on an MTLB miss (cycles).
    pub mtlb_walk_latency: Cycle,
}

impl MppConfig {
    /// The Table V configuration: 2-cycle PAG, 512-entry VAB and PAB,
    /// 128-entry MTLB, 10-cycle coherence check.
    pub fn paper() -> Self {
        MppConfig {
            vab_entries: 512,
            pab_entries: 512,
            mtlb_entries: 128,
            pag_latency: 2,
            coherence_latency: 10,
            mtlb_walk_latency: 40,
        }
    }

    /// Storage footprint of the MPP's buffers, mirroring Section V-D's
    /// claim that the VAB, PAB and MTLB total ≈7.7 KB.
    pub fn storage_bytes(&self) -> u64 {
        // VAB: 48-bit virtual line address + 2-bit core ID ≈ 7 B/entry.
        // PAB: 48-bit physical line address + 2-bit core ID ≈ 7 B/entry.
        // MTLB: tag + frame + bits ≈ 13 B/entry.
        (self.vab_entries as u64 * 7)
            + (self.pab_entries as u64 * 7)
            + (self.mtlb_entries as u64 * 13)
    }
}

/// A property prefetch produced by the MPP, ready for the coherence check
/// and (if off-chip) the DRAM queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MppCandidate {
    /// Virtual line of the property data.
    pub vline: u64,
    /// Physical line after MTLB translation.
    pub pline: u64,
    /// Destination core whose private L2 receives the line.
    pub core: u8,
    /// Earliest cycle the request can leave the MC (PAG + MTLB + coherence
    /// pipeline latencies).
    pub ready_at: Cycle,
}

/// MPP occupancy and drop statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MppStats {
    /// Structure cachelines scanned by the PAG.
    pub lines_scanned: u64,
    /// Neighbor IDs seen across scans.
    pub ids_scanned: u64,
    /// Candidates produced (post dedup, bounds, translation).
    pub candidates: u64,
    /// Drops because the VAB/PAB occupancy model was full.
    pub buffer_drops: u64,
    /// Drops because the property page was unmapped (page fault policy).
    pub page_fault_drops: u64,
    /// Neighbor IDs outside the property array bounds.
    pub out_of_bounds: u64,
    /// MTLB misses that required a page walk.
    pub mtlb_walks: u64,
}

/// One property array the MPP prefetches from (Section VI: multi-property
/// graphs map one scanned neighbor ID to several property arrays).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PropertyTarget {
    /// Base virtual address of the array (the software-written register).
    pub base: VirtAddr,
    /// Element size in bytes (4 or 8).
    pub elem_bytes: u64,
    /// Number of elements (bounds for valid neighbor IDs).
    pub len: u64,
}

/// The MC-side property prefetcher.
///
/// The software-written registers (Section VI) are the property array base
/// addresses — one per [`PropertyTarget`] — and the structure scan
/// granularity, which lives in the [`FunctionalMemory`] implementation the
/// workload provides.
#[derive(Debug, Clone)]
pub struct Mpp {
    cfg: MppConfig,
    /// Registers: the property arrays to prefetch per scanned neighbor ID.
    targets: Vec<PropertyTarget>,
    mtlb: Tlb,
    /// Outstanding candidates occupying VAB+PAB slots.
    outstanding: usize,
    /// Reusable buffer for the IDs scanned out of one structure line.
    scan_buf: Vec<u32>,
    /// Reusable per-scan dedup set of candidate property lines.
    seen_buf: Vec<u64>,
    stats: MppStats,
}

impl Mpp {
    /// Creates an MPP with its software-visible registers programmed for a
    /// property array of `prop_len` elements of `prop_elem_bytes` at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `prop_elem_bytes` is not 4 or 8.
    pub fn new(cfg: MppConfig, base: VirtAddr, prop_elem_bytes: u64, prop_len: u64) -> Self {
        Self::new_multi(
            cfg,
            vec![PropertyTarget {
                base,
                elem_bytes: prop_elem_bytes,
                len: prop_len,
            }],
        )
    }

    /// Creates an MPP prefetching several property arrays per scanned
    /// neighbor ID (Section VI: multi-property graphs).
    ///
    /// # Panics
    ///
    /// Panics if `targets` is empty or any element size is not 4 or 8.
    pub fn new_multi(cfg: MppConfig, targets: Vec<PropertyTarget>) -> Self {
        assert!(
            !targets.is_empty(),
            "the MPP needs at least one property array"
        );
        for t in &targets {
            assert!(
                t.elem_bytes == 4 || t.elem_bytes == 8,
                "property elements are 4 or 8 bytes"
            );
        }
        Mpp {
            mtlb: Tlb::new(cfg.mtlb_entries),
            cfg,
            targets,
            outstanding: 0,
            scan_buf: Vec::new(),
            seen_buf: Vec::new(),
            stats: MppStats::default(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &MppConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &MppStats {
        &self.stats
    }

    /// Resets statistics (end of cache warm-up); MTLB contents persist.
    pub fn reset_stats(&mut self) {
        self.stats = MppStats::default();
    }

    /// Reacts to a structure prefetch line arriving at the MC at `now`:
    /// scans it, generates translated property prefetch candidates, and
    /// appends them to `out`.
    ///
    /// `fm` supplies the line's functional contents; `pt` is consulted
    /// (without populating) for MTLB walks — an unmapped page is a fault
    /// and the candidate is dropped.
    pub fn on_structure_fill(
        &mut self,
        vline: u64,
        core: u8,
        fm: &dyn FunctionalMemory,
        pt: &PageTable,
        now: Cycle,
        out: &mut Vec<MppCandidate>,
    ) {
        self.stats.lines_scanned += 1;
        let line_addr = VirtAddr::new(vline * LINE_BYTES);
        // Scan into a reusable buffer: this runs once per structure
        // prefetch arrival, so a fresh Vec here is steady-state churn.
        let ids = {
            let mut buf = std::mem::take(&mut self.scan_buf);
            fm.neighbor_ids_in_line_into(line_addr, &mut buf);
            buf
        };
        self.stats.ids_scanned += ids.len() as u64;

        // One structure line can reference the same property line several
        // times; dedupe per scan like real hardware coalescing would.
        self.seen_buf.clear();
        for &id in &ids {
            // Targets are copied out by index so the loop body can borrow
            // `self` mutably (`PropertyTarget` is `Copy`; almost always one).
            for ti in 0..self.targets.len() {
                let target = self.targets[ti];
                if u64::from(id) >= target.len {
                    self.stats.out_of_bounds += 1;
                    continue;
                }
                let vaddr = target.base.add_bytes(u64::from(id) * target.elem_bytes);
                let cand_vline = vaddr.line_index();
                if self.seen_buf.contains(&cand_vline) {
                    continue;
                }
                self.seen_buf.push(cand_vline);

                if self.outstanding >= self.cfg.vab_entries + self.cfg.pab_entries {
                    self.stats.buffer_drops += 1;
                    continue;
                }

                // MTLB translation in one scan; page-walk on miss, drop on
                // fault (which leaves the MTLB untouched).
                let vpn = vaddr.page_number();
                let mut latency = self.cfg.pag_latency + self.cfg.coherence_latency;
                let entry = match self.mtlb.access_or_walk(vpn, || pt.lookup(vaddr)) {
                    Some((e, true)) => e,
                    Some((e, false)) => {
                        self.stats.mtlb_walks += 1;
                        latency += self.cfg.mtlb_walk_latency;
                        e
                    }
                    None => {
                        self.stats.page_fault_drops += 1;
                        continue;
                    }
                };
                let pline =
                    (entry.frame * droplet_trace::PAGE_BYTES + vaddr.page_offset()) / LINE_BYTES;

                self.outstanding += 1;
                self.stats.candidates += 1;
                out.push(MppCandidate {
                    vline: cand_vline,
                    pline,
                    core,
                    ready_at: now + latency,
                });
            }
        }
        self.scan_buf = ids;
    }

    /// Releases the VAB/PAB slot of a completed (or cancelled) candidate.
    pub fn on_candidate_complete(&mut self) {
        self.outstanding = self.outstanding.saturating_sub(1);
    }

    /// TLB-shootdown hook (Section V-C3): invalidates MTLB entries using
    /// only the core-side invalidations whose extra bit is 0 — the MTLB
    /// holds property mappings exclusively, so structure-page shootdowns
    /// can be skipped entirely. Returns the number of entries dropped.
    pub fn shootdown_page(&mut self, vpn: u64, page_is_structure: bool) -> bool {
        if page_is_structure {
            return false; // optimization: never relevant to the MTLB
        }
        self.mtlb.invalidate(vpn)
    }

    /// Outstanding VAB/PAB occupancy (for tests and debugging).
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use droplet_trace::{AddressSpace, DataType};

    /// A little world: a structure array of n neighbor IDs and a property
    /// array, with a page table populated for the property range.
    struct World {
        space: AddressSpace,
        neighbors: droplet_trace::ArrayRegion,
        prop_base: VirtAddr,
        ids: Vec<u32>,
        pt: PageTable,
    }

    struct Image<'a> {
        w: &'a World,
    }

    impl FunctionalMemory for Image<'_> {
        fn neighbor_id_at(&self, addr: VirtAddr) -> Option<u32> {
            let i = self.w.neighbors.index_of(addr)?;
            if !addr.raw().is_multiple_of(4) {
                return None;
            }
            self.w.ids.get(i as usize).copied()
        }

        fn scan_granularity(&self) -> u64 {
            4
        }
    }

    fn world(ids: Vec<u32>, prop_len: u64, map_property: bool) -> World {
        let mut space = AddressSpace::new();
        let neighbors =
            space.alloc_array("neighbors", DataType::Structure, 4, ids.len().max(1) as u64);
        let prop = space.alloc_array("prop", DataType::Property, 4, prop_len);
        let mut pt = PageTable::new();
        if map_property {
            let mut a = prop.base();
            while a < prop.region().end() {
                pt.translate(a, &space);
                a = a.add_bytes(droplet_trace::PAGE_BYTES);
            }
        }
        World {
            prop_base: prop.base(),
            space,
            neighbors,
            ids,
            pt,
        }
    }

    fn mpp_for(w: &World, prop_len: u64) -> Mpp {
        Mpp::new(MppConfig::paper(), w.prop_base, 4, prop_len)
    }

    #[test]
    fn scans_line_and_generates_translated_candidates() {
        let w = world(vec![1, 100, 300, 100], 1024, true);
        let mut mpp = mpp_for(&w, 1024);
        let mut out = Vec::new();
        let vline = w.neighbors.base().line_index();
        mpp.on_structure_fill(vline, 2, &Image { w: &w }, &w.pt, 1000, &mut out);
        // IDs 1,100,300 → distinct property lines; duplicate 100 coalesced.
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|c| c.core == 2));
        // First candidate walked the MTLB: latency includes the walk.
        assert!(out[0].ready_at >= 1000 + 2 + 10);
        assert_eq!(mpp.stats().ids_scanned, 4);
        assert_eq!(mpp.stats().candidates, 3);
        assert_eq!(mpp.outstanding(), 3);
        // Physical translation is consistent with the page table.
        let expect_vaddr = w.prop_base.add_bytes(4);
        assert_eq!(out[0].vline, expect_vaddr.line_index());
    }

    #[test]
    fn page_fault_drops_the_prefetch() {
        let w = world(vec![5], 1024, false); // property pages unmapped
        let mut mpp = mpp_for(&w, 1024);
        let mut out = Vec::new();
        mpp.on_structure_fill(
            w.neighbors.base().line_index(),
            0,
            &Image { w: &w },
            &w.pt,
            0,
            &mut out,
        );
        assert!(out.is_empty());
        assert_eq!(mpp.stats().page_fault_drops, 1);
    }

    #[test]
    fn out_of_bounds_ids_are_skipped() {
        let w = world(vec![9999], 16, true);
        let mut mpp = mpp_for(&w, 16);
        let mut out = Vec::new();
        mpp.on_structure_fill(
            w.neighbors.base().line_index(),
            0,
            &Image { w: &w },
            &w.pt,
            0,
            &mut out,
        );
        assert!(out.is_empty());
        assert_eq!(mpp.stats().out_of_bounds, 1);
    }

    #[test]
    fn buffer_occupancy_bounds_outstanding_prefetches() {
        let ids: Vec<u32> = (0..16).map(|i| i * 16).collect(); // 16 distinct lines
        let w = world(ids, 4096, true);
        let mut mpp = Mpp::new(
            MppConfig {
                vab_entries: 2,
                pab_entries: 2,
                ..MppConfig::paper()
            },
            w.prop_base,
            4,
            4096,
        );
        let mut out = Vec::new();
        mpp.on_structure_fill(
            w.neighbors.base().line_index(),
            0,
            &Image { w: &w },
            &w.pt,
            0,
            &mut out,
        );
        assert_eq!(out.len(), 4);
        assert_eq!(mpp.stats().buffer_drops, 12);
        // Draining slots allows new candidates again.
        for _ in 0..4 {
            mpp.on_candidate_complete();
        }
        assert_eq!(mpp.outstanding(), 0);
    }

    #[test]
    fn mtlb_hit_avoids_walk_latency() {
        let w = world(vec![0, 1], 1024, true);
        let mut mpp = mpp_for(&w, 1024);
        let mut out = Vec::new();
        let vline = w.neighbors.base().line_index();
        mpp.on_structure_fill(vline, 0, &Image { w: &w }, &w.pt, 0, &mut out);
        // ids 0 and 1 share a property line → one candidate with a walk.
        assert_eq!(out.len(), 1);
        assert_eq!(mpp.stats().mtlb_walks, 1);
        let walked = out[0].ready_at;
        // Scan again: the mapping is now cached.
        out.clear();
        mpp.on_structure_fill(vline, 0, &Image { w: &w }, &w.pt, 0, &mut out);
        assert_eq!(mpp.stats().mtlb_walks, 1);
        assert!(out[0].ready_at < walked);
    }

    #[test]
    fn shootdown_skips_structure_pages() {
        let w = world(vec![3], 1024, true);
        let mut mpp = mpp_for(&w, 1024);
        let mut out = Vec::new();
        mpp.on_structure_fill(
            w.neighbors.base().line_index(),
            0,
            &Image { w: &w },
            &w.pt,
            0,
            &mut out,
        );
        let prop_vpn = w.prop_base.page_number();
        assert!(
            !mpp.shootdown_page(prop_vpn, true),
            "structure shootdowns skipped"
        );
        assert!(mpp.shootdown_page(prop_vpn, false));
        assert!(!mpp.shootdown_page(prop_vpn, false), "already gone");
        let _ = &w.space;
    }

    #[test]
    fn storage_matches_paper_ballpark() {
        let bytes = MppConfig::paper().storage_bytes();
        // Section V-D: ≈7.7 KB.
        assert!((7_000..9_000).contains(&bytes), "{bytes}");
    }

    #[test]
    #[should_panic(expected = "4 or 8")]
    fn rejects_weird_property_granularity() {
        let _ = Mpp::new(MppConfig::paper(), VirtAddr::new(0), 16, 10);
    }
}
