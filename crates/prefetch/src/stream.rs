//! The L2 stream prefetcher (paper Section V-B, following the streamer of
//! Srinath et al. [53]): 64 trackers, prefetch distance 16, stops at page
//! boundaries, and needs two additional miss addresses to confirm a stream
//! direction before prefetching.
//!
//! Two operating modes:
//!
//! - **conventional** — snoops *all* L1-miss addresses. As Section V-B1
//!   explains, property/intermediate accesses waste trackers and produce
//!   random streams, which the evaluation quantifies.
//! - **data-aware** (DROPLET) — triggered only by structure addresses
//!   (recognized via the TLB extra bit), additionally trained by L2
//!   structure *hits*, and its requests are buffered in the L3 request
//!   queue because new structure lines are serviced by DRAM anyway.

use crate::event::{AccessEvent, EventKind, PrefetchRequest, Prefetcher};
use droplet_trace::{find_u64, min_index_u64, DataType, LINE_BYTES, PAGE_BYTES};

/// Stream prefetcher parameters (paper Table V).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamConfig {
    /// Number of simultaneous stream trackers.
    pub trackers: usize,
    /// Prefetch distance in lines ahead of the trigger.
    pub distance: u64,
    /// Maximum lines issued per trigger event.
    pub degree: u64,
    /// DROPLET mode: structure-only training, L2-hit feedback, L3-queue
    /// insertion.
    pub data_aware: bool,
}

impl StreamConfig {
    /// The conventional streamer of Table V.
    pub fn conventional() -> Self {
        StreamConfig {
            trackers: 64,
            distance: 16,
            degree: 4,
            data_aware: false,
        }
    }

    /// DROPLET's data-aware structure streamer.
    pub fn data_aware() -> Self {
        StreamConfig {
            data_aware: true,
            ..Self::conventional()
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TrackerState {
    /// Allocated; watching for two consistent direction confirmations.
    Training,
    /// Stream confirmed; issuing prefetches.
    Monitoring,
}

#[derive(Debug, Clone, Copy)]
struct Tracker {
    state: TrackerState,
    /// Last observed line (global virtual line index).
    last_line: u64,
    /// +1 or −1 once a tentative direction exists.
    dir: i64,
    /// Direction confirmations so far (2 required).
    confirmations: u8,
    /// Next line to prefetch.
    next_prefetch: u64,
    /// Data type observed at allocation (labels this stream's requests).
    dtype: DataType,
}

/// The stream prefetch engine.
///
/// # Example
///
/// ```
/// use droplet_prefetch::{AccessEvent, EventKind, Prefetcher, StreamConfig, StreamPrefetcher};
/// use droplet_trace::{DataType, VirtAddr};
///
/// let mut pf = StreamPrefetcher::new(StreamConfig::conventional());
/// let mut out = Vec::new();
/// for i in 0..4u64 {
///     let ev = AccessEvent {
///         vaddr: VirtAddr::new(0x10_0000 + i * 64),
///         kind: EventKind::L1Miss,
///         is_structure: false,
///         dtype: DataType::Property,
///     };
///     pf.on_access(&ev, &mut out);
/// }
/// assert!(!out.is_empty(), "a confirmed ascending stream prefetches ahead");
/// ```
#[derive(Debug, Clone)]
pub struct StreamPrefetcher {
    cfg: StreamConfig,
    /// Monitored virtual page per tracker. Kept as a dense column (one
    /// cache line per 8 trackers) so the per-event lookup is a chunked
    /// [`find_u64`] instead of a pointer-striding struct scan: trackers are
    /// page-bounded, so this is the only field every event must search.
    pages: Vec<u64>,
    /// LRU stamp per tracker — its own column for the same reason; the
    /// allocation path picks victims with [`min_index_u64`].
    lru: Vec<u64>,
    /// The cold per-tracker state, parallel to `pages`/`lru`.
    trackers: Vec<Tracker>,
    /// Index of the last tracker touched: graph traversals are bursty
    /// within a page, so most events re-hit it and skip the scan.
    last_idx: usize,
    clock: u64,
    issued: u64,
    triggers: u64,
}

impl StreamPrefetcher {
    /// Creates an idle streamer.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero trackers or zero distance.
    pub fn new(cfg: StreamConfig) -> Self {
        assert!(
            cfg.trackers > 0 && cfg.distance > 0,
            "degenerate stream config"
        );
        StreamPrefetcher {
            pages: Vec::with_capacity(cfg.trackers),
            lru: Vec::with_capacity(cfg.trackers),
            trackers: Vec::with_capacity(cfg.trackers),
            last_idx: usize::MAX,
            cfg,
            clock: 0,
            issued: 0,
            triggers: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.cfg
    }

    /// Trigger events that produced at least one request.
    pub fn triggers(&self) -> u64 {
        self.triggers
    }

    fn accepts(&self, ev: &AccessEvent) -> bool {
        if self.cfg.data_aware {
            // Structure-only; trains on L1 misses and on L2 structure hits.
            ev.is_structure
        } else {
            // Conventional: snoops the L2 request queue (L1 misses) only.
            ev.kind == EventKind::L1Miss
        }
    }

    fn page_bounds(page: u64) -> (u64, u64) {
        let lines_per_page = PAGE_BYTES / LINE_BYTES;
        (page * lines_per_page, (page + 1) * lines_per_page - 1)
    }

    fn emit(
        &mut self,
        t: &mut Tracker,
        page: u64,
        trigger_line: u64,
        out: &mut Vec<PrefetchRequest>,
    ) {
        let (lo, hi) = Self::page_bounds(page);
        let mut emitted = 0;
        while emitted < self.cfg.degree {
            let next = t.next_prefetch;
            // Keep the prefetch window within `distance` of the trigger.
            let ahead = next.abs_diff(trigger_line);
            if ahead > self.cfg.distance || next < lo || next > hi {
                break;
            }
            out.push(PrefetchRequest {
                vline: next,
                dtype: t.dtype,
                into_l3_queue: self.cfg.data_aware,
            });
            self.issued += 1;
            emitted += 1;
            let stepped = t.next_prefetch as i64 + t.dir;
            if stepped < lo as i64 || stepped > hi as i64 {
                t.next_prefetch = if t.dir > 0 { hi } else { lo };
                break;
            }
            t.next_prefetch = stepped as u64;
        }
        if emitted > 0 {
            self.triggers += 1;
        }
    }
}

impl Prefetcher for StreamPrefetcher {
    fn on_access(&mut self, ev: &AccessEvent, out: &mut Vec<PrefetchRequest>) {
        if !self.accepts(ev) {
            return;
        }
        self.clock += 1;
        let clock = self.clock;
        let line = ev.line();
        let page = ev.page();

        let found = match self.last_idx {
            memo if memo < self.pages.len() && self.pages[memo] == page => Some(memo),
            _ => find_u64(&self.pages, page),
        };
        if let Some(idx) = found {
            self.last_idx = idx;
            self.lru[idx] = clock;
            let mut t = self.trackers[idx];
            match t.state {
                TrackerState::Training => {
                    let step = line as i64 - t.last_line as i64;
                    if step != 0 {
                        let dir = step.signum();
                        if t.confirmations == 0 || dir == t.dir {
                            t.dir = dir;
                            t.confirmations += 1;
                        } else {
                            // Direction flip: restart training from here.
                            t.dir = dir;
                            t.confirmations = 1;
                        }
                        t.last_line = line;
                        if t.confirmations >= 2 {
                            t.state = TrackerState::Monitoring;
                            t.next_prefetch = (line as i64 + t.dir).max(0) as u64;
                            self.emit(&mut t, page, line, out);
                        }
                    }
                }
                TrackerState::Monitoring => {
                    // Advance the stream head monotonically with the access.
                    let ahead = (line as i64 - t.last_line as i64) * t.dir;
                    if ahead > 0 && ahead <= 2 * self.cfg.distance as i64 {
                        t.last_line = line;
                        if (t.next_prefetch as i64 - line as i64) * t.dir <= 0 {
                            t.next_prefetch = (line as i64 + t.dir).max(0) as u64;
                        }
                        self.emit(&mut t, page, line, out);
                    } else if ahead != 0 {
                        // The access fell outside the monitored window — a
                        // restarted or different stream over this page.
                        // A real streamer would allocate a fresh tracker;
                        // re-arm this one from the new position.
                        t.state = TrackerState::Training;
                        t.dir = 0;
                        t.confirmations = 0;
                        t.last_line = line;
                        t.next_prefetch = line;
                    }
                }
            }
            self.trackers[idx] = t;
            return;
        }

        // Allocate a tracker for this page (L1 misses allocate; in
        // data-aware mode structure L2 hits may also allocate, which lets
        // streams resume after the streamer itself made the page resident).
        let t = Tracker {
            state: TrackerState::Training,
            last_line: line,
            dir: 0,
            confirmations: 0,
            next_prefetch: line,
            dtype: ev.dtype,
        };
        if self.trackers.len() < self.cfg.trackers {
            self.last_idx = self.trackers.len();
            self.pages.push(page);
            self.lru.push(clock);
            self.trackers.push(t);
        } else {
            // Unique stamps (one bump per accepted event) mean no ties, and
            // `min_index_u64` keeps min_by_key's first-minimum rule anyway.
            let victim = min_index_u64(&self.lru);
            self.pages[victim] = page;
            self.lru[victim] = clock;
            self.trackers[victim] = t;
            self.last_idx = victim;
        }
    }

    fn name(&self) -> &'static str {
        if self.cfg.data_aware {
            "data-aware-stream"
        } else {
            "stream"
        }
    }

    fn issued(&self) -> u64 {
        self.issued
    }

    fn box_clone(&self) -> Box<dyn Prefetcher> {
        Box::new(self.clone())
    }

    fn set_data_aware(&mut self, on: bool) {
        if self.cfg.data_aware != on {
            self.cfg.data_aware = on;
            // Mode changes invalidate trained streams: property pages may
            // now be legal (or not) to track.
            self.pages.clear();
            self.lru.clear();
            self.trackers.clear();
            self.last_idx = usize::MAX;
        }
    }

    fn is_data_aware(&self) -> bool {
        self.cfg.data_aware
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use droplet_trace::VirtAddr;

    fn miss(line: u64, structure: bool) -> AccessEvent {
        AccessEvent {
            vaddr: VirtAddr::new(line * LINE_BYTES),
            kind: EventKind::L1Miss,
            is_structure: structure,
            dtype: if structure {
                DataType::Structure
            } else {
                DataType::Property
            },
        }
    }

    fn l2_hit(line: u64, structure: bool) -> AccessEvent {
        AccessEvent {
            kind: EventKind::L2Hit,
            ..miss(line, structure)
        }
    }

    fn drive(pf: &mut StreamPrefetcher, events: &[AccessEvent]) -> Vec<PrefetchRequest> {
        let mut out = Vec::new();
        for ev in events {
            pf.on_access(ev, &mut out);
        }
        out
    }

    #[test]
    fn needs_two_confirmations_before_prefetching() {
        let mut pf = StreamPrefetcher::new(StreamConfig::conventional());
        let base = 64; // line 64 = page 1 start
        let out = drive(&mut pf, &[miss(base, false), miss(base + 1, false)]);
        assert!(out.is_empty(), "one extra miss is not enough");
        let out = drive(&mut pf, &[miss(base + 2, false)]);
        assert!(!out.is_empty());
        assert_eq!(out[0].vline, base + 3);
        assert!(!out[0].into_l3_queue);
    }

    #[test]
    fn descending_streams_work() {
        let mut pf = StreamPrefetcher::new(StreamConfig::conventional());
        let base = 64 * 3 + 40;
        let out = drive(
            &mut pf,
            &[
                miss(base, false),
                miss(base - 1, false),
                miss(base - 2, false),
            ],
        );
        assert!(!out.is_empty());
        assert_eq!(out[0].vline, base - 3);
    }

    #[test]
    fn direction_flips_restart_training() {
        let mut pf = StreamPrefetcher::new(StreamConfig::conventional());
        let base = 64 * 5 + 10;
        let out = drive(
            &mut pf,
            &[
                miss(base, false),
                miss(base + 1, false),
                miss(base - 1, false), // flip
                miss(base + 3, false), // flip again: 1 confirmation
            ],
        );
        assert!(out.is_empty());
    }

    #[test]
    fn prefetches_stop_at_page_boundary() {
        let mut pf = StreamPrefetcher::new(StreamConfig {
            degree: 16,
            ..StreamConfig::conventional()
        });
        // Page 1 spans lines 64..=127; start near its end.
        let out = drive(
            &mut pf,
            &[miss(124, false), miss(125, false), miss(126, false)],
        );
        assert!(!out.is_empty());
        assert!(out.iter().all(|r| r.vline <= 127), "{out:?}");
    }

    #[test]
    fn monitoring_keeps_the_window_ahead() {
        let mut pf = StreamPrefetcher::new(StreamConfig {
            degree: 2,
            ..StreamConfig::conventional()
        });
        let base = 64 * 8;
        let mut all = drive(
            &mut pf,
            &[
                miss(base, false),
                miss(base + 1, false),
                miss(base + 2, false),
            ],
        );
        all.extend(drive(&mut pf, &[miss(base + 3, false)]));
        // No duplicates, all ahead of the trigger, within distance 16.
        let mut lines: Vec<u64> = all.iter().map(|r| r.vline).collect();
        let unique = {
            let mut l = lines.clone();
            l.sort_unstable();
            l.dedup();
            l.len()
        };
        assert_eq!(unique, lines.len(), "duplicate prefetches: {lines:?}");
        lines.sort_unstable();
        assert!(*lines.last().unwrap() <= base + 3 + 16);
    }

    #[test]
    fn data_aware_ignores_non_structure() {
        let mut pf = StreamPrefetcher::new(StreamConfig::data_aware());
        let out = drive(
            &mut pf,
            &[miss(64, false), miss(65, false), miss(66, false)],
        );
        assert!(out.is_empty());
        assert_eq!(pf.issued(), 0);
    }

    #[test]
    fn data_aware_trains_on_structure_and_targets_l3_queue() {
        let mut pf = StreamPrefetcher::new(StreamConfig::data_aware());
        let out = drive(&mut pf, &[miss(64, true), miss(65, true), l2_hit(66, true)]);
        assert!(!out.is_empty());
        assert!(out.iter().all(|r| r.into_l3_queue));
        assert!(out.iter().all(|r| r.dtype == DataType::Structure));
        assert_eq!(pf.name(), "data-aware-stream");
    }

    #[test]
    fn conventional_ignores_l2_hits() {
        let mut pf = StreamPrefetcher::new(StreamConfig::conventional());
        let out = drive(
            &mut pf,
            &[l2_hit(64, true), l2_hit(65, true), l2_hit(66, true)],
        );
        assert!(out.is_empty());
    }

    #[test]
    fn tracker_capacity_is_bounded_with_lru_replacement() {
        let mut pf = StreamPrefetcher::new(StreamConfig {
            trackers: 2,
            ..StreamConfig::conventional()
        });
        // Touch three different pages; the first tracker is evicted.
        drive(&mut pf, &[miss(64, false)]);
        drive(&mut pf, &[miss(128, false)]);
        drive(&mut pf, &[miss(192, false)]);
        assert_eq!(pf.trackers.len(), 2);
        assert!(pf.pages.iter().all(|&p| p != 1));
    }

    #[test]
    fn wasted_trackers_reduce_structure_coverage() {
        // Section V-B1's argument: random property misses steal trackers
        // from structure streams. With 1 tracker, interleaved random
        // property pages evict the structure stream before confirmation.
        let mut aware = StreamPrefetcher::new(StreamConfig {
            trackers: 1,
            ..StreamConfig::data_aware()
        });
        let mut conv = StreamPrefetcher::new(StreamConfig {
            trackers: 1,
            ..StreamConfig::conventional()
        });
        let mut aware_out = Vec::new();
        let mut conv_out = Vec::new();
        for i in 0..16u64 {
            let s = miss(64 + i, true);
            let noise = miss(64 * (100 + i * 7), false); // scattered pages
            for (pf, out) in [(&mut aware, &mut aware_out), (&mut conv, &mut conv_out)] {
                pf.on_access(&s, out);
                pf.on_access(&noise, out);
            }
        }
        let aware_structure = aware_out.len();
        let conv_structure = conv_out
            .iter()
            .filter(|r| r.dtype == DataType::Structure)
            .count();
        assert!(aware_structure > conv_structure);
        assert_eq!(conv_structure, 0, "noise evicts the lone tracker");
    }
}
