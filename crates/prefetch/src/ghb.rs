//! G/DC (Global / Delta Correlation) prefetching with a Global History
//! Buffer (Nesbit & Smith [39]) — the paper's `GHB` comparison point:
//! a 512-entry index table and a 512-entry history buffer (Table V).
//!
//! On each L1 miss the global miss-address history is extended; the index
//! table maps the last *delta pair* to the previous history position where
//! that pair occurred, and the deltas that followed it then predict the next
//! addresses.

use crate::event::{AccessEvent, EventKind, PrefetchRequest, Prefetcher};
use droplet_trace::FxHashMap;

/// GHB parameters (paper Table V).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GhbConfig {
    /// Index-table capacity (delta-pair keys).
    pub index_entries: usize,
    /// History-buffer capacity (global miss addresses).
    pub ghb_entries: usize,
    /// Predictions issued per trigger.
    pub degree: usize,
}

impl GhbConfig {
    /// The Table V configuration: 512-entry index table and buffer.
    pub fn paper() -> Self {
        GhbConfig {
            index_entries: 512,
            ghb_entries: 512,
            degree: 4,
        }
    }
}

/// The G/DC GHB prefetcher.
///
/// # Example
///
/// ```
/// use droplet_prefetch::{AccessEvent, EventKind, GhbConfig, GhbPrefetcher, Prefetcher};
/// use droplet_trace::{DataType, VirtAddr};
/// let mut pf = GhbPrefetcher::new(GhbConfig::paper());
/// let mut out = Vec::new();
/// // A repeating +1,+1 delta pattern becomes predictable.
/// for i in 0..8u64 {
///     pf.on_access(&AccessEvent {
///         vaddr: VirtAddr::new(i * 64),
///         kind: EventKind::L1Miss,
///         is_structure: false,
///         dtype: DataType::Structure,
///     }, &mut out);
/// }
/// assert!(!out.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct GhbPrefetcher {
    cfg: GhbConfig,
    /// Ring of global miss lines; absolute position → `ring[pos % len]`.
    ring: Vec<u64>,
    /// Next absolute position to write.
    head: u64,
    /// Delta-pair → most recent absolute position *after* which the pair was
    /// completed (i.e. position of the miss that completed the pair). Keyed
    /// with the fast deterministic hasher: the map is only ever probed by
    /// key (eviction order comes from `index_fifo`), so the hasher choice
    /// cannot change decisions, only hashing cost.
    index: FxHashMap<(i64, i64), u64>,
    /// FIFO order of keys for index-capacity eviction.
    index_fifo: std::collections::VecDeque<(i64, i64)>,
    last_line: Option<u64>,
    last_delta: Option<i64>,
    issued: u64,
}

impl GhbPrefetcher {
    /// Creates an empty GHB.
    ///
    /// # Panics
    ///
    /// Panics if any capacity is zero.
    pub fn new(cfg: GhbConfig) -> Self {
        assert!(
            cfg.index_entries > 0 && cfg.ghb_entries > 1 && cfg.degree > 0,
            "degenerate GHB config"
        );
        GhbPrefetcher {
            ring: vec![0; cfg.ghb_entries],
            head: 0,
            index: FxHashMap::with_capacity_and_hasher(cfg.index_entries, Default::default()),
            index_fifo: std::collections::VecDeque::with_capacity(cfg.index_entries),
            cfg,
            last_line: None,
            last_delta: None,
            issued: 0,
        }
    }

    fn ring_get(&self, pos: u64) -> Option<u64> {
        // Valid if still within the ring window.
        if pos < self.head && self.head - pos <= self.ring.len() as u64 {
            Some(self.ring[(pos % self.ring.len() as u64) as usize])
        } else {
            None
        }
    }

    fn push_line(&mut self, line: u64) -> u64 {
        let pos = self.head;
        let len = self.ring.len() as u64;
        self.ring[(pos % len) as usize] = line;
        self.head += 1;
        pos
    }

    fn index_insert(&mut self, key: (i64, i64), pos: u64) {
        if !self.index.contains_key(&key) {
            if self.index.len() == self.cfg.index_entries {
                if let Some(old) = self.index_fifo.pop_front() {
                    self.index.remove(&old);
                }
            }
            self.index_fifo.push_back(key);
        }
        self.index.insert(key, pos);
    }
}

impl Prefetcher for GhbPrefetcher {
    fn on_access(&mut self, ev: &AccessEvent, out: &mut Vec<PrefetchRequest>) {
        if ev.kind != EventKind::L1Miss {
            return;
        }
        let line = ev.line();
        let delta = self.last_line.map(|l| line as i64 - l as i64);

        // Look up the previous occurrence of the current delta pair, then
        // push the current miss (so the walk below can see it), predict by
        // replaying the deltas that followed the previous occurrence, and
        // finally point the index at the current occurrence.
        let key_and_prev = match (self.last_delta, delta) {
            (Some(d2), Some(d1)) => {
                let key = (d2, d1);
                (Some(key), self.index.get(&key).copied())
            }
            _ => (None, None),
        };

        let pos_cur = self.push_line(line);

        if let Some(prev_pos) = key_and_prev.1 {
            let mut addr = line as i64;
            for pos in prev_pos..prev_pos + self.cfg.degree as u64 {
                let (Some(cur), Some(next)) = (self.ring_get(pos), self.ring_get(pos + 1)) else {
                    break;
                };
                let d = next as i64 - cur as i64;
                addr += d;
                if addr < 0 {
                    break;
                }
                out.push(PrefetchRequest {
                    vline: addr as u64,
                    dtype: ev.dtype,
                    into_l3_queue: false,
                });
                self.issued += 1;
            }
        }

        if let Some(key) = key_and_prev.0 {
            self.index_insert(key, pos_cur);
        }
        self.last_delta = delta;
        self.last_line = Some(line);
    }

    fn name(&self) -> &'static str {
        "ghb-gdc"
    }

    fn issued(&self) -> u64 {
        self.issued
    }

    fn box_clone(&self) -> Box<dyn Prefetcher> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use droplet_trace::{DataType, VirtAddr, LINE_BYTES};

    fn miss(line: u64) -> AccessEvent {
        AccessEvent {
            vaddr: VirtAddr::new(line * LINE_BYTES),
            kind: EventKind::L1Miss,
            is_structure: false,
            dtype: DataType::Structure,
        }
    }

    fn drive(pf: &mut GhbPrefetcher, lines: &[u64]) -> Vec<u64> {
        let mut out = Vec::new();
        for &l in lines {
            pf.on_access(&miss(l), &mut out);
        }
        out.iter().map(|r| r.vline).collect()
    }

    #[test]
    fn repeating_delta_pattern_predicts_ahead() {
        let mut pf = GhbPrefetcher::new(GhbConfig {
            degree: 2,
            ..GhbConfig::paper()
        });
        // Pattern +3,+1 repeating: 0,3,4,7,8,11,12…
        let got = drive(&mut pf, &[0, 3, 4, 7, 8, 11, 12]);
        // After seeing (…,+3,+1) again at line 8, predicts 8+3=11, 11+1=12.
        assert!(got.contains(&11), "{got:?}");
        assert!(got.contains(&12), "{got:?}");
    }

    #[test]
    fn random_stream_rarely_predicts() {
        let mut pf = GhbPrefetcher::new(GhbConfig::paper());
        // Deltas never repeat as pairs.
        let got = drive(&mut pf, &[0, 100, 7, 350, 22, 901, 41, 1300]);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn l2_hits_are_ignored() {
        let mut pf = GhbPrefetcher::new(GhbConfig::paper());
        let mut out = Vec::new();
        for i in 0..8 {
            let mut ev = miss(i);
            ev.kind = EventKind::L2Hit;
            pf.on_access(&ev, &mut out);
        }
        assert!(out.is_empty());
        assert_eq!(pf.issued(), 0);
    }

    #[test]
    fn history_window_expires_old_positions() {
        let mut pf = GhbPrefetcher::new(GhbConfig {
            index_entries: 8,
            ghb_entries: 4,
            degree: 2,
        });
        // Establish a pattern, then flood the ring so its positions expire.
        drive(&mut pf, &[0, 3, 4]);
        drive(&mut pf, &[1000, 2000, 3000, 4000, 5000]);
        // The old (3,1) pair's position is stale; prediction walks nothing.
        let got = drive(&mut pf, &[10, 13, 14]);
        // Predictions (if any) must come from live ring data, i.e. deltas of
        // the flood, not the expired prefix.
        assert!(got.iter().all(|&l| l > 14), "{got:?}");
    }

    #[test]
    fn index_capacity_is_bounded() {
        let mut pf = GhbPrefetcher::new(GhbConfig {
            index_entries: 4,
            ghb_entries: 64,
            degree: 1,
        });
        // Many distinct delta pairs.
        let lines: Vec<u64> = (0..40u64).map(|i| i * i * 3 % 997).collect();
        drive(&mut pf, &lines);
        assert!(pf.index.len() <= 4);
        assert_eq!(pf.index.len(), pf.index_fifo.len());
    }

    #[test]
    fn name_and_counters() {
        let pf = GhbPrefetcher::new(GhbConfig::paper());
        assert_eq!(pf.name(), "ghb-gdc");
        assert_eq!(pf.issued(), 0);
    }
}
