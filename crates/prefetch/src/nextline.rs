//! A next-N-line prefetcher — the simplest hardware prefetcher, included as
//! a sanity baseline below the paper's evaluated set: on every L1 miss it
//! fetches the next `degree` sequential lines, page-bounded.
//!
//! Graph property accesses are address-random, so next-line prefetching
//! mostly converts one miss into one miss plus wasted bandwidth — which is
//! exactly why the paper starts from a *stream* prefetcher (confirmation
//! before volume) rather than this design.

use crate::event::{AccessEvent, EventKind, PrefetchRequest, Prefetcher};
use droplet_trace::{LINE_BYTES, PAGE_BYTES};

/// The next-line engine.
///
/// # Example
///
/// ```
/// use droplet_prefetch::{AccessEvent, EventKind, NextLinePrefetcher, Prefetcher};
/// use droplet_trace::{DataType, VirtAddr};
/// let mut pf = NextLinePrefetcher::new(2);
/// let mut out = Vec::new();
/// pf.on_access(&AccessEvent {
///     vaddr: VirtAddr::new(0x1000),
///     kind: EventKind::L1Miss,
///     is_structure: false,
///     dtype: DataType::Property,
/// }, &mut out);
/// assert_eq!(out.len(), 2);
/// assert_eq!(out[0].vline, 0x1000 / 64 + 1);
/// ```
#[derive(Debug, Clone)]
pub struct NextLinePrefetcher {
    degree: u64,
    issued: u64,
}

impl NextLinePrefetcher {
    /// Creates a next-`degree`-line prefetcher.
    ///
    /// # Panics
    ///
    /// Panics if `degree` is zero.
    pub fn new(degree: u64) -> Self {
        assert!(degree > 0, "degree must be positive");
        NextLinePrefetcher { degree, issued: 0 }
    }
}

impl Prefetcher for NextLinePrefetcher {
    fn on_access(&mut self, ev: &AccessEvent, out: &mut Vec<PrefetchRequest>) {
        if ev.kind != EventKind::L1Miss {
            return;
        }
        let line = ev.line();
        let lines_per_page = PAGE_BYTES / LINE_BYTES;
        let page_last = (ev.page() + 1) * lines_per_page - 1;
        for step in 1..=self.degree {
            let next = line + step;
            if next > page_last {
                break;
            }
            out.push(PrefetchRequest {
                vline: next,
                dtype: ev.dtype,
                into_l3_queue: false,
            });
            self.issued += 1;
        }
    }

    fn name(&self) -> &'static str {
        "next-line"
    }

    fn issued(&self) -> u64 {
        self.issued
    }

    fn box_clone(&self) -> Box<dyn Prefetcher> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use droplet_trace::{DataType, VirtAddr};

    fn miss(line: u64) -> AccessEvent {
        AccessEvent {
            vaddr: VirtAddr::new(line * LINE_BYTES),
            kind: EventKind::L1Miss,
            is_structure: false,
            dtype: DataType::Structure,
        }
    }

    #[test]
    fn fetches_next_lines() {
        let mut pf = NextLinePrefetcher::new(3);
        let mut out = Vec::new();
        pf.on_access(&miss(100), &mut out);
        assert_eq!(
            out.iter().map(|r| r.vline).collect::<Vec<_>>(),
            vec![101, 102, 103]
        );
        assert_eq!(pf.issued(), 3);
        assert_eq!(pf.name(), "next-line");
    }

    #[test]
    fn stops_at_page_boundary() {
        let mut pf = NextLinePrefetcher::new(4);
        let mut out = Vec::new();
        // Line 63 is the last of page 0.
        pf.on_access(&miss(62), &mut out);
        assert_eq!(out.iter().map(|r| r.vline).collect::<Vec<_>>(), vec![63]);
    }

    #[test]
    fn ignores_hits() {
        let mut pf = NextLinePrefetcher::new(2);
        let mut out = Vec::new();
        let mut ev = miss(10);
        ev.kind = EventKind::L2Hit;
        pf.on_access(&ev, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_degree_rejected() {
        let _ = NextLinePrefetcher::new(0);
    }
}
