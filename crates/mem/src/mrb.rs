//! The memory request buffer (MRB) of Section V-C1.
//!
//! Modern memory controllers track in-flight requests in an MRB whose
//! entries carry a criticality bit (C-bit) distinguishing prefetches from
//! demand requests. DROPLET *reinterprets* the C-bit: because only the L2
//! streamer issues prefetch requests tagged this way, a set C-bit on a fill
//! specifically identifies a **structure prefetch**, and an added core-ID
//! field tells the MPP which core's private L2 should receive the property
//! prefetches it derives.

use droplet_trace::Cycle;
use std::collections::VecDeque;

/// One in-flight request tracked by the memory controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MrbEntry {
    /// Physical line index of the request.
    pub pline: u64,
    /// Virtual line index (kept so the MPP can scan functionally).
    pub vline: u64,
    /// The reinterpreted C-bit: set ⇔ this is a structure prefetch from the
    /// data-aware L2 streamer.
    pub c_bit: bool,
    /// The requesting core (DROPLET's added field).
    pub core: u8,
    /// When the DRAM will deliver the line.
    pub complete_at: Cycle,
}

/// A bounded FIFO memory request buffer.
///
/// # Example
///
/// ```
/// use droplet_mem::{Mrb, MrbEntry};
/// let mut mrb = Mrb::new(4);
/// mrb.insert(MrbEntry { pline: 1, vline: 9, c_bit: true, core: 0, complete_at: 50 });
/// let done = mrb.drain_completed(60);
/// assert_eq!(done.len(), 1);
/// assert!(done[0].c_bit);
/// ```
#[derive(Debug, Clone)]
pub struct Mrb {
    capacity: usize,
    entries: VecDeque<MrbEntry>,
    /// Cached minimum `complete_at` over `entries` (`u64::MAX` when empty):
    /// lets [`Mrb::drain_completed`] — called once per demand DRAM access —
    /// answer "nothing ready yet" in O(1) instead of a full retain pass.
    min_complete: Cycle,
    inserted: u64,
    overflowed: u64,
}

impl Mrb {
    /// Creates an MRB with room for `capacity` in-flight requests.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MRB capacity must be positive");
        Mrb {
            capacity,
            entries: VecDeque::with_capacity(capacity),
            min_complete: Cycle::MAX,
            inserted: 0,
            overflowed: 0,
        }
    }

    /// Tracks a request. Returns `false` (and counts an overflow) when the
    /// buffer is full — callers treat that as "issue without MPP tracking",
    /// which only costs prefetch opportunities, never correctness.
    pub fn insert(&mut self, entry: MrbEntry) -> bool {
        if self.entries.len() == self.capacity {
            self.overflowed += 1;
            return false;
        }
        self.inserted += 1;
        self.min_complete = self.min_complete.min(entry.complete_at);
        self.entries.push_back(entry);
        true
    }

    /// Removes and returns every entry whose DRAM access has completed by
    /// cycle `now`, in completion order. When nothing has completed yet the
    /// cached minimum completion time short-circuits the scan and the call
    /// returns an empty (allocation-free) vector.
    pub fn drain_completed(&mut self, now: Cycle) -> Vec<MrbEntry> {
        if now < self.min_complete {
            return Vec::new();
        }
        let mut done: Vec<MrbEntry> = Vec::new();
        let mut remaining_min = Cycle::MAX;
        self.entries.retain(|e| {
            if e.complete_at <= now {
                done.push(*e);
                false
            } else {
                remaining_min = remaining_min.min(e.complete_at);
                true
            }
        });
        self.min_complete = remaining_min;
        done.sort_by_key(|e| e.complete_at);
        done
    }

    /// Drops every entry completed by cycle `now` without materializing
    /// them: the allocation- and sort-free variant of
    /// [`Mrb::drain_completed`] for systems with no MPP attached, where
    /// completions only need to vacate buffer capacity.
    pub fn discard_completed(&mut self, now: Cycle) {
        if now < self.min_complete {
            return;
        }
        let mut remaining_min = Cycle::MAX;
        self.entries.retain(|e| {
            if e.complete_at <= now {
                false
            } else {
                remaining_min = remaining_min.min(e.complete_at);
                true
            }
        });
        self.min_complete = remaining_min;
    }

    /// In-flight entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// (inserted, overflowed) counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.inserted, self.overflowed)
    }

    /// Extra storage DROPLET adds to the MRB: a core-ID field per entry.
    /// For a quad-core system that is 2 bits per entry, i.e. 64 B for the
    /// 256-entry MRB assumed in Section V-D.
    pub fn core_id_storage_bytes(capacity: usize, cores: u32) -> u64 {
        let bits_per_entry = 32 - (cores.max(2) - 1).leading_zeros() as u64;
        (capacity as u64 * bits_per_entry).div_ceil(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(pline: u64, t: Cycle) -> MrbEntry {
        MrbEntry {
            pline,
            vline: pline,
            c_bit: pline.is_multiple_of(2),
            core: 0,
            complete_at: t,
        }
    }

    #[test]
    fn drain_returns_only_completed_in_order() {
        let mut m = Mrb::new(8);
        m.insert(e(1, 100));
        m.insert(e(2, 50));
        m.insert(e(3, 200));
        let done = m.drain_completed(120);
        assert_eq!(done.iter().map(|x| x.pline).collect::<Vec<_>>(), vec![2, 1]);
        assert_eq!(m.len(), 1);
        assert!(!m.is_empty());
    }

    #[test]
    fn early_out_keeps_later_batches_drainable() {
        let mut m = Mrb::new(8);
        m.insert(e(1, 100));
        m.insert(e(2, 300));
        assert!(m.drain_completed(50).is_empty()); // before min: early-out
        assert_eq!(m.drain_completed(100).len(), 1);
        assert!(m.drain_completed(200).is_empty()); // min recomputed to 300
        assert_eq!(m.drain_completed(300).len(), 1);
        m.insert(e(3, 80)); // min drops again after the buffer emptied
        assert_eq!(m.drain_completed(90).len(), 1);
        assert!(m.is_empty());
    }

    #[test]
    fn overflow_counts_and_rejects() {
        let mut m = Mrb::new(1);
        assert!(m.insert(e(1, 10)));
        assert!(!m.insert(e(2, 10)));
        assert_eq!(m.stats(), (1, 1));
    }

    #[test]
    fn core_id_storage_matches_paper() {
        // 256-entry MRB, 4 cores → 2 bits × 256 = 64 B (Section V-D).
        assert_eq!(Mrb::core_id_storage_bytes(256, 4), 64);
        assert_eq!(Mrb::core_id_storage_bytes(256, 16), 128);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = Mrb::new(0);
    }
}
