//! DRAM and memory-controller models for the DROPLET reproduction.
//!
//! The paper's baseline (Table I) models a DDR3 part with a 45 ns device
//! access latency and queue delay. [`Dram`] is a bank-and-bus queueing model
//! producing completion times, queue delays, bandwidth-utilization and BPKI
//! statistics (Fig. 3a, Fig. 15). [`Mrb`] is the memory-request buffer with
//! the reinterpreted C-bit and the added core-ID field (Section V-C1) that
//! lets the MC recognize structure prefetch fills and route copies to the
//! MPP.
//!
//! # Example
//!
//! ```
//! use droplet_mem::{Dram, DramConfig};
//! let mut dram = Dram::new(DramConfig::ddr3());
//! let r = dram.request(0x40, 100, false);
//! assert!(r.complete_at >= 100 + 120);
//! ```

pub mod dram;
pub mod mrb;

pub use dram::{Dram, DramConfig, DramResponse, DramStats};
pub use mrb::{Mrb, MrbEntry};
