//! A bank-and-bus DRAM queueing model.
//!
//! Each access picks a bank from its physical line address, waits for the
//! bank to be free (the paper's "queue delay modeled"), takes the device
//! latency, then occupies the shared data bus for one 64 B burst. Bandwidth
//! utilization is bus-busy time over elapsed time; BPKI counts every burst.

use droplet_trace::Cycle;

/// DRAM timing and geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DramConfig {
    /// Device access latency in core cycles (row activate + CAS + transfer
    /// start). 45 ns at the paper's 2.66 GHz core is ~120 cycles.
    pub device_latency: Cycle,
    /// Number of independent banks.
    pub banks: usize,
    /// Cycles a bank stays busy per access (precharge/activate occupancy).
    pub bank_occupancy: Cycle,
    /// Core cycles of data-bus occupancy per 64 B burst.
    pub bus_occupancy: Cycle,
}

impl DramConfig {
    /// The baseline DDR3 model of Table I.
    pub fn ddr3() -> Self {
        DramConfig {
            device_latency: 120,
            banks: 16,
            bank_occupancy: 36,
            bus_occupancy: 8,
        }
    }
}

/// Result of a DRAM request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramResponse {
    /// Cycle at which the line is available at the memory controller.
    pub complete_at: Cycle,
    /// Cycles the request waited before its bank started service.
    pub queue_delay: Cycle,
}

/// Aggregate DRAM statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Demand read/write-back bursts.
    pub demand_accesses: u64,
    /// Prefetch bursts.
    pub prefetch_accesses: u64,
    /// Total bus-busy cycles.
    pub bus_busy_cycles: u64,
    /// Total queue-delay cycles across requests.
    pub queue_delay_cycles: u64,
    /// First request's start cycle — [`DramStats::window_utilization`]
    /// starts its window here when the bus sat idle at the window open.
    pub first_request_at: Option<Cycle>,
    /// Latest completion cycle seen.
    pub last_complete_at: Cycle,
}

impl DramStats {
    /// All bursts (the numerator of BPKI).
    pub fn total_accesses(&self) -> u64 {
        self.demand_accesses + self.prefetch_accesses
    }

    /// Bus accesses per kilo instruction (Fig. 15's metric).
    pub fn bpki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.total_accesses() as f64 * 1000.0 / instructions as f64
        }
    }

    /// Bandwidth utilization over `elapsed` core cycles.
    pub fn utilization(&self, elapsed: Cycle) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            (self.bus_busy_cycles as f64 / elapsed as f64).min(1.0)
        }
    }

    /// Bandwidth utilization over the window `[window_start, window_end)`,
    /// clipped to when DRAM was actually active:
    ///
    /// - the window *starts* at `first_request_at` when that is later than
    ///   `window_start` (a post-warm-up hit run before the first burst is
    ///   cache behavior, not idle DRAM bandwidth), and
    /// - the window *ends* at `last_complete_at` when bursts drained past
    ///   `window_end` (the retire clock can stop before the bus does).
    ///
    /// With no requests in the window the utilization is 0.
    pub fn window_utilization(&self, window_start: Cycle, window_end: Cycle) -> f64 {
        let Some(first) = self.first_request_at else {
            return 0.0;
        };
        let start = first.max(window_start);
        let end = window_end.max(self.last_complete_at).max(start + 1);
        (self.bus_busy_cycles as f64 / (end - start) as f64).min(1.0)
    }

    /// Mean queue delay per access.
    pub fn avg_queue_delay(&self) -> f64 {
        let n = self.total_accesses();
        if n == 0 {
            0.0
        } else {
            self.queue_delay_cycles as f64 / n as f64
        }
    }
}

/// The DRAM device model.
///
/// Demand requests have priority over prefetches, as in the prefetch-aware
/// controllers the paper builds on (the MRB C-bit exists for exactly this):
/// a demand request never waits behind queued prefetch occupancy, while
/// prefetches wait behind everything.
#[derive(Debug, Clone)]
pub struct Dram {
    cfg: DramConfig,
    /// Bank occupancy as seen by demand requests (demand-only traffic).
    bank_free_demand: Vec<Cycle>,
    /// Bank occupancy as seen by prefetches (all traffic).
    bank_free_any: Vec<Cycle>,
    /// Data-bus occupancy as seen by demand requests.
    bus_free_demand: Cycle,
    /// Data-bus occupancy as seen by prefetches.
    bus_free_any: Cycle,
    stats: DramStats,
}

impl Dram {
    /// Creates an idle DRAM with the given timing.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero banks.
    pub fn new(cfg: DramConfig) -> Self {
        assert!(cfg.banks > 0, "need at least one bank");
        Dram {
            bank_free_demand: vec![0; cfg.banks],
            bank_free_any: vec![0; cfg.banks],
            bus_free_demand: 0,
            bus_free_any: 0,
            cfg,
            stats: DramStats::default(),
        }
    }

    /// The configured timing.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Issues a burst for physical line `pline` at cycle `now`.
    /// `is_prefetch` only affects accounting.
    pub fn request(&mut self, pline: u64, now: Cycle, is_prefetch: bool) -> DramResponse {
        let bank = (pline as usize) % self.cfg.banks;
        let bank_gate = if is_prefetch {
            self.bank_free_any[bank]
        } else {
            self.bank_free_demand[bank]
        };
        let start = now.max(bank_gate);
        let bank_busy_until = start + self.cfg.bank_occupancy;
        self.bank_free_any[bank] = self.bank_free_any[bank].max(bank_busy_until);
        if !is_prefetch {
            self.bank_free_demand[bank] = bank_busy_until;
        }
        let data_ready = start + self.cfg.device_latency;
        let bus_gate = if is_prefetch {
            self.bus_free_any
        } else {
            self.bus_free_demand
        };
        let bus_start = data_ready.max(bus_gate);
        let bus_busy_until = bus_start + self.cfg.bus_occupancy;
        self.bus_free_any = self.bus_free_any.max(bus_busy_until);
        if !is_prefetch {
            self.bus_free_demand = bus_busy_until;
        }
        let complete_at = bus_busy_until;
        let queue_delay = (start - now) + (bus_start - data_ready);

        let s = &mut self.stats;
        if is_prefetch {
            s.prefetch_accesses += 1;
        } else {
            s.demand_accesses += 1;
        }
        s.bus_busy_cycles += self.cfg.bus_occupancy;
        s.queue_delay_cycles += queue_delay;
        s.first_request_at.get_or_insert(now);
        s.last_complete_at = s.last_complete_at.max(complete_at);

        DramResponse {
            complete_at,
            queue_delay,
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Resets statistics (used when warm-up ends). Bank/bus state persists.
    pub fn reset_stats(&mut self) {
        self.stats = DramStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Dram {
        Dram::new(DramConfig {
            device_latency: 100,
            banks: 2,
            bank_occupancy: 50,
            bus_occupancy: 10,
        })
    }

    #[test]
    fn idle_request_takes_device_plus_bus() {
        let mut d = small();
        let r = d.request(0, 1000, false);
        assert_eq!(r.complete_at, 1000 + 100 + 10);
        assert_eq!(r.queue_delay, 0);
    }

    #[test]
    fn same_bank_requests_queue() {
        let mut d = small();
        let a = d.request(0, 0, false); // bank 0
        let b = d.request(2, 0, false); // bank 0 again
        assert_eq!(a.complete_at, 110);
        // Second waits 50 cycles for the bank, then bus is free by then.
        assert_eq!(b.queue_delay, 50);
        assert_eq!(b.complete_at, 50 + 100 + 10);
    }

    #[test]
    fn different_banks_overlap_but_share_bus() {
        let mut d = small();
        let a = d.request(0, 0, false); // bank 0
        let b = d.request(1, 0, false); // bank 1
        assert_eq!(a.complete_at, 110);
        // Device accesses overlap fully; bus serializes the bursts.
        assert_eq!(b.complete_at, 120);
        assert_eq!(b.queue_delay, 10);
    }

    #[test]
    fn stats_accumulate() {
        let mut d = small();
        d.request(0, 0, false);
        d.request(1, 0, true);
        let s = d.stats();
        assert_eq!(s.demand_accesses, 1);
        assert_eq!(s.prefetch_accesses, 1);
        assert_eq!(s.total_accesses(), 2);
        assert_eq!(s.bus_busy_cycles, 20);
        assert!((s.bpki(1000) - 2.0).abs() < 1e-12);
        assert!(s.utilization(100) > 0.19);
        assert_eq!(s.first_request_at, Some(0));
    }

    #[test]
    fn reset_stats_keeps_queue_state() {
        let mut d = small();
        d.request(0, 0, false);
        d.reset_stats();
        assert_eq!(d.stats().total_accesses(), 0);
        // Bank 0 is still busy until cycle 50.
        let r = d.request(0, 0, false);
        assert_eq!(r.queue_delay, 50);
    }

    #[test]
    fn demand_has_priority_over_prefetch() {
        let mut d = small();
        // A burst of prefetches to bank 0 and the bus.
        for _ in 0..4 {
            d.request(0, 0, true);
        }
        // A demand request to the same bank is not delayed by them.
        let r = d.request(0, 0, false);
        assert_eq!(r.queue_delay, 0, "demand must preempt prefetch occupancy");
        // But a new prefetch waits behind everything.
        let p = d.request(0, 0, true);
        assert!(
            p.queue_delay > 100,
            "prefetch queue delay {}",
            p.queue_delay
        );
    }

    #[test]
    fn window_utilization_clips_to_active_span() {
        let mut d = small();
        // One burst starting at cycle 1000: busy 10 bus cycles, done at 1110.
        d.request(0, 1000, false);
        let s = *d.stats();
        // Idle lead-in removed: window opened at 0 but DRAM woke at 1000.
        assert!((s.window_utilization(0, 1110) - 10.0 / 110.0).abs() < 1e-12);
        // Window fully inside the active span: plain elapsed-time division.
        assert!((s.window_utilization(1000, 1110) - 10.0 / 110.0).abs() < 1e-12);
        // Retire clock stopped early: extend to last completion.
        assert!((s.window_utilization(1000, 1050) - 10.0 / 110.0).abs() < 1e-12);
        // No requests at all → 0, never NaN.
        assert_eq!(DramStats::default().window_utilization(0, 0), 0.0);
    }

    #[test]
    fn utilization_saturates_at_one() {
        let mut d = small();
        for i in 0..100 {
            d.request(i, 0, false);
        }
        assert_eq!(d.stats().utilization(10), 1.0);
        assert_eq!(d.stats().utilization(0), 0.0);
    }
}
