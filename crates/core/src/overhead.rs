//! Hardware-overhead accounting (paper Section V-D).
//!
//! The paper's McPAT area numbers are out of scope for a simulator
//! reproduction; the *storage* arithmetic — which is what the overhead
//! argument rests on — is reproduced exactly: the extra page-table bit
//! (64 B per 4 KB paging structure, 1.56 %), the extra L2-request-queue bit
//! (4 B on a 32-entry queue, 1.54 %), the MPP's ≈7.7 KB of buffers, and the
//! MRB's 64 B core-ID field.

use crate::config::SystemConfig;
use droplet_mem::Mrb;
use droplet_trace::PageTable;

/// Storage-overhead summary for a DROPLET configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadReport {
    /// Extra bytes per 4 KB x86-64 paging structure.
    pub page_table_bytes: u64,
    /// Relative overhead on the paging structure.
    pub page_table_ratio: f64,
    /// Extra bytes on the L2 request queue (one bit per entry).
    pub l2_queue_bytes: u64,
    /// Relative overhead on the queue (assuming 8 B entries as in [57]).
    pub l2_queue_ratio: f64,
    /// MPP buffer storage in bytes (VAB + PAB + MTLB + registers).
    pub mpp_bytes: u64,
    /// MRB core-ID field bytes for a quad-core system.
    pub mrb_core_id_bytes: u64,
}

/// L2 request-queue entries assumed by the paper ([56]).
const L2_QUEUE_ENTRIES: u64 = 32;

/// Computes the Section V-D storage overheads for `cfg`.
pub fn overheads(cfg: &SystemConfig) -> OverheadReport {
    let page_table_ratio = PageTable::extra_bit_overhead_ratio();
    let page_table_bytes = 64; // 512 entries × 1 bit
    let l2_queue_bytes = L2_QUEUE_ENTRIES / 8; // one bit per entry
                                               // Each queue entry holds a miss address + status ≈ 8 B ⇒ 1/65 ≈ 1.54 %.
    let l2_queue_ratio = 1.0 / 65.0;
    let mpp_bytes = cfg.mpp.storage_bytes() + 2 * 8; // + two 64-bit registers
    let mrb_core_id_bytes = Mrb::core_id_storage_bytes(cfg.mrb_entries, 4);
    OverheadReport {
        page_table_bytes,
        page_table_ratio,
        l2_queue_bytes,
        l2_queue_ratio,
        mpp_bytes,
        mrb_core_id_bytes,
    }
}

impl std::fmt::Display for OverheadReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "page table: +{} B per 4 KB structure ({:.2}%)",
            self.page_table_bytes,
            100.0 * self.page_table_ratio
        )?;
        writeln!(
            f,
            "L2 request queue: +{} B ({:.2}%)",
            self.l2_queue_bytes,
            100.0 * self.l2_queue_ratio
        )?;
        writeln!(f, "MPP buffers + registers: {} B", self.mpp_bytes)?;
        write!(f, "MRB core-ID field: {} B", self.mrb_core_id_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_numbers() {
        let r = overheads(&SystemConfig::baseline());
        assert_eq!(r.page_table_bytes, 64);
        assert!((r.page_table_ratio * 100.0 - 1.5625).abs() < 1e-9);
        assert_eq!(r.l2_queue_bytes, 4);
        assert!((r.l2_queue_ratio * 100.0 - 1.54).abs() < 0.01);
        // VAB + PAB + MTLB ≈ 7.7 KB.
        assert!((7_000..9_100).contains(&r.mpp_bytes), "{}", r.mpp_bytes);
        assert_eq!(r.mrb_core_id_bytes, 64);
    }

    #[test]
    fn display_mentions_all_components() {
        let text = overheads(&SystemConfig::baseline()).to_string();
        for needle in ["page table", "L2 request queue", "MPP", "MRB"] {
            assert!(text.contains(needle), "missing {needle}");
        }
    }
}
