//! Forked simulation: simulate the shared warm-up prefix once per
//! (trace, warmup-relevant-configuration) group, snapshot the warmed
//! machine, then fan the measurement region out across sweep
//! configurations.
//!
//! Warm-up is demand-only ([`System`] keeps its prefetch machinery inert
//! until `warmup_done`), so every configuration sharing a
//! [`SystemConfig::warmup_key`] reaches a bit-identical state at the
//! boundary; simulating that prefix once and forking is exact, not an
//! approximation — see DESIGN.md §14.

use crate::config::SystemConfig;
use crate::pool::JobPool;
use crate::system::{
    assemble_result, feed_measure, feed_warmup, ForkMutation, RunResult, RunShape, System,
};
use droplet_cpu::CoreEngine;
use droplet_gap::TraceBundle;
use droplet_trace::{SliceSource, TraceSource};
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// A warmed machine at the warm-up boundary: the memory system snapshot
/// plus the core engine that produced it, ready to fan measurement runs
/// out from. Owned and `Sync`, so one snapshot serves forks on many
/// worker threads.
pub struct WarmupSnapshot {
    system: crate::system::SystemSnapshot,
    core: CoreEngine,
    /// Warm-up ops the caller requested.
    requested: u64,
    /// Warm-up ops actually applied after the half-trace clamp.
    applied: u64,
}

impl WarmupSnapshot {
    /// Warm-up ops actually simulated into this snapshot.
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// Warm-up ops the caller requested (pre-clamp).
    pub fn requested(&self) -> u64 {
        self.requested
    }

    /// The parent's simulated-machine hash (recorded as `forked_from` in
    /// forked manifests).
    pub fn parent_config_hash(&self) -> u64 {
        self.system.parent_config_hash()
    }

    /// Restores a live (system, core) pair under `cfg`, positioned at the
    /// warm-up boundary with the measurement window still unopened. The
    /// step-by-step entry point for harnesses (the conformance lockstep
    /// differ); sweep drivers use [`run_forked`].
    pub fn resume<'a>(
        &self,
        cfg: &SystemConfig,
        bundle: &'a TraceBundle,
    ) -> (System<'a>, CoreEngine) {
        self.resume_mutated(cfg, bundle, ForkMutation::None)
    }

    /// [`WarmupSnapshot::resume`] with an injected restore fault.
    #[doc(hidden)]
    pub fn resume_mutated<'a>(
        &self,
        cfg: &SystemConfig,
        bundle: &'a TraceBundle,
        mutation: ForkMutation,
    ) -> (System<'a>, CoreEngine) {
        let system = System::fork_mutated(&self.system, cfg, bundle, mutation);
        (system, self.core.clone())
    }
}

/// Simulates the warm-up prefix of `bundle` under `cfg` and captures the
/// machine at the boundary. The warm-up request is clamped exactly as
/// [`crate::run_workload`] clamps it, so forked and full runs agree on the
/// boundary op.
pub fn warm_snapshot(
    bundle: &TraceBundle,
    cfg: &SystemConfig,
    warmup_ops: usize,
) -> WarmupSnapshot {
    warm_snapshot_from(&mut SliceSource::new(&bundle.ops), bundle, cfg, warmup_ops)
}

/// [`warm_snapshot`] over an arbitrary [`TraceSource`]; see
/// [`crate::run_workload_from`] for the source/bundle contract.
pub fn warm_snapshot_from(
    source: &mut dyn TraceSource,
    bundle: &TraceBundle,
    cfg: &SystemConfig,
    warmup_ops: usize,
) -> WarmupSnapshot {
    let applied = (warmup_ops as u64).min(source.op_count() / 2);
    let mut engine = CoreEngine::new(cfg.core);
    let mut system = System::new(cfg.clone(), bundle);
    feed_warmup(&mut engine, source, &mut system, applied);
    WarmupSnapshot {
        system: system.snapshot(),
        core: engine,
        requested: warmup_ops as u64,
        applied,
    }
}

/// Runs the measurement region of `bundle` under `cfg`, forked from
/// `snap`. Bit-identical to `run_workload(bundle, cfg, warmup)` whenever
/// `cfg` shares the snapshot's warmup-relevant configuration.
///
/// # Panics
///
/// Panics if `cfg` differs from the snapshot's parent on a warmup-relevant
/// field (see [`SystemConfig::warmup_key`]).
pub fn run_forked(bundle: &TraceBundle, snap: &WarmupSnapshot, cfg: &SystemConfig) -> RunResult {
    run_forked_from(&mut SliceSource::new(&bundle.ops), bundle, snap, cfg)
}

/// [`run_forked`] over an arbitrary [`TraceSource`]; see
/// [`crate::run_workload_from`] for the source/bundle contract.
pub fn run_forked_from(
    source: &mut dyn TraceSource,
    bundle: &TraceBundle,
    snap: &WarmupSnapshot,
    cfg: &SystemConfig,
) -> RunResult {
    let wall = std::time::Instant::now();
    let total = source.op_count();
    let (mut system, mut engine) = snap.resume(cfg, bundle);
    let core_result = feed_measure(&mut engine, source, &mut system, snap.applied, total);
    assemble_result(
        system,
        core_result,
        RunShape {
            warmup_requested: snap.requested,
            warmup_applied: snap.applied,
            trace_ops: total,
            forked_from: Some(snap.parent_config_hash()),
            warmup_shared: Some(snap.applied),
        },
        wall,
    )
}

/// One sweep point: a trace bundle and the configuration to run it under.
#[derive(Clone)]
pub struct SweepCell {
    /// The workload trace (shared; grouping is by `Arc` identity).
    pub bundle: Arc<TraceBundle>,
    /// The configuration of this point.
    pub cfg: SystemConfig,
}

/// A write-once snapshot slot a group's cell jobs block on. A plain
/// Mutex + Condvar pair rather than `OnceLock::wait`, so the error path
/// (a panicking warm-up job) can poison the slot explicitly and wake the
/// waiters into a clean panic instead of a deadlock.
#[derive(Default)]
struct SnapSlot {
    /// `None` until the warm-up job lands; `Err` if it panicked.
    ready: Mutex<Option<Result<Arc<WarmupSnapshot>, ()>>>,
    cv: Condvar,
}

impl SnapSlot {
    fn fill(&self, snap: Result<Arc<WarmupSnapshot>, ()>) {
        *self.ready.lock().expect("snapshot slot poisoned") = Some(snap);
        self.cv.notify_all();
    }

    fn wait(&self) -> Arc<WarmupSnapshot> {
        let mut guard = self.ready.lock().expect("snapshot slot poisoned");
        loop {
            match guard.as_ref() {
                Some(Ok(snap)) => return Arc::clone(snap),
                Some(Err(())) => panic!("warm-up job for this sweep group panicked"),
                None => guard = self.cv.wait(guard).expect("snapshot slot poisoned"),
            }
        }
    }
}

/// Runs every cell, sharing warm-up across cells that agree on the trace
/// and the warmup-relevant configuration.
///
/// Cells are grouped by `(Arc::as_ptr(bundle), cfg.warmup_key())`. Groups
/// of two or more get one [`warm_snapshot`] job and then a [`run_forked`]
/// job per cell; singleton cells — including every cell of a sweep whose
/// points differ in warmup-relevant fields, which thereby falls back to
/// full replay automatically — run `run_workload` unchanged. With `fork`
/// false everything replays in full (the `--no-fork` escape hatch, and the
/// before-side of the `study_wall_ms` bench).
///
/// The fan-out is pipelined, not phased: all jobs go into one
/// [`JobPool::run`] batch with the warm-up jobs queued first, and each
/// cell job blocks only on *its own group's* [`SnapSlot`] — so group A's
/// cells start measuring while group B's warm-up is still simulating,
/// instead of every cell waiting behind a global warm-up barrier. This is
/// what makes `run_sweep` scale near-linearly with `DROPLET_THREADS`.
/// Deadlock-free because workers claim job indices in submission order:
/// any cell job a worker runs has every warm-up job already claimed, and
/// warm-up jobs never wait.
///
/// Results come back in cell order; forked and replayed runs are
/// bit-identical, so the output is independent of grouping, threading, and
/// the `fork` flag (up to manifest lineage/wall-time fields).
pub fn run_sweep(
    pool: &JobPool,
    cells: &[SweepCell],
    warmup_ops: usize,
    fork: bool,
) -> Vec<RunResult> {
    if !fork {
        return pool.run(
            cells
                .iter()
                .map(|cell| move || crate::run_workload(&cell.bundle, &cell.cfg, warmup_ops))
                .collect(),
        );
    }

    // Group in first-seen order (determinism of job submission order, and
    // hence of progress output — results are order-independent anyway).
    let mut group_of: HashMap<(usize, u64), usize> = HashMap::new();
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for (i, cell) in cells.iter().enumerate() {
        let key = (Arc::as_ptr(&cell.bundle) as usize, cell.cfg.warmup_key());
        let g = *group_of.entry(key).or_insert_with(|| {
            groups.push(Vec::new());
            groups.len() - 1
        });
        groups[g].push(i);
    }

    let shared: Vec<&Vec<usize>> = groups.iter().filter(|g| g.len() >= 2).collect();
    let slots: Vec<SnapSlot> = (0..shared.len()).map(|_| SnapSlot::default()).collect();
    let mut snapshot_of_cell: Vec<Option<usize>> = vec![None; cells.len()];
    for (s, members) in shared.iter().enumerate() {
        for &i in members.iter() {
            snapshot_of_cell[i] = Some(s);
        }
    }

    // One batch: warm-up jobs first (returning None), then cell jobs
    // (returning Some), each waiting only on its own group's slot.
    type Job<'j> = Box<dyn FnOnce() -> Option<RunResult> + Send + 'j>;
    let mut jobs: Vec<Job<'_>> = Vec::with_capacity(shared.len() + cells.len());
    for (s, members) in shared.iter().enumerate() {
        let first = &cells[members[0]];
        let slot = &slots[s];
        jobs.push(Box::new(move || {
            let snap = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                warm_snapshot(&first.bundle, &first.cfg, warmup_ops)
            }));
            match snap {
                Ok(snap) => {
                    slot.fill(Ok(Arc::new(snap)));
                    None
                }
                Err(payload) => {
                    // Wake the group's waiters into a panic of their own,
                    // then re-raise so the pool reports the original.
                    slot.fill(Err(()));
                    std::panic::resume_unwind(payload);
                }
            }
        }));
    }
    for (i, cell) in cells.iter().enumerate() {
        let slot = snapshot_of_cell[i].map(|s| &slots[s]);
        jobs.push(Box::new(move || {
            Some(match slot {
                Some(slot) => run_forked(&cell.bundle, &slot.wait(), &cell.cfg),
                None => crate::run_workload(&cell.bundle, &cell.cfg, warmup_ops),
            })
        }));
    }
    let mut out = pool.run(jobs);
    out.drain(..shared.len());
    out.into_iter()
        .map(|r| r.expect("cell job returned a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PrefetcherKind;
    use droplet_gap::Algorithm;
    use droplet_graph::{Dataset, DatasetScale};

    fn bundle() -> Arc<TraceBundle> {
        let g = Arc::new(Dataset::Kron.build(DatasetScale::Tiny));
        Arc::new(Algorithm::Pr.trace(&g, 120_000))
    }

    /// Digest of everything deterministic in a result (manifest lineage and
    /// wall time excluded) — [`RunResult::digest`], the same identity
    /// `droplet-serve` dedupes responses on.
    fn digest(r: &RunResult) -> u64 {
        r.digest()
    }

    #[test]
    fn fork_matches_from_scratch() {
        let b = bundle();
        let base = SystemConfig::test_scale();
        let warmup = 20_000;
        let snap = warm_snapshot(&b, &base, warmup);
        for kind in [
            PrefetcherKind::None,
            PrefetcherKind::Vldp,
            PrefetcherKind::Droplet,
        ] {
            let cfg = base.with_prefetcher(kind);
            let forked = run_forked(&b, &snap, &cfg);
            let scratch = crate::run_workload(&b, &cfg, warmup);
            assert_eq!(
                digest(&forked),
                digest(&scratch),
                "fork != scratch for {kind}"
            );
            assert_eq!(forked.manifest.forked_from, Some(snap.parent_config_hash()));
            assert_eq!(forked.manifest.warmup_shared, Some(snap.applied()));
            assert_eq!(scratch.manifest.forked_from, None);
        }
    }

    #[test]
    fn sweep_groups_share_warmup_and_match_full_replay() {
        let b = bundle();
        let base = SystemConfig::test_scale();
        let cells: Vec<SweepCell> = [
            PrefetcherKind::None,
            PrefetcherKind::Stream,
            PrefetcherKind::Droplet,
        ]
        .iter()
        .map(|&k| SweepCell {
            bundle: Arc::clone(&b),
            cfg: base.with_prefetcher(k),
        })
        .collect();
        let pool = JobPool::with_threads(1);
        let forked = run_sweep(&pool, &cells, 20_000, true);
        let full = run_sweep(&pool, &cells, 20_000, false);
        for (f, r) in forked.iter().zip(&full) {
            assert_eq!(digest(f), digest(r));
            assert!(f.manifest.forked_from.is_some());
            assert!(r.manifest.forked_from.is_none());
        }
    }

    #[test]
    fn warmup_relevant_variation_falls_back_to_full_replay() {
        let b = bundle();
        let base = SystemConfig::test_scale();
        let mut big_rob = base.clone();
        big_rob.core.rob *= 2;
        assert_ne!(base.warmup_key(), big_rob.warmup_key());
        let cells = vec![
            SweepCell {
                bundle: Arc::clone(&b),
                cfg: base.clone(),
            },
            SweepCell {
                bundle: Arc::clone(&b),
                cfg: big_rob,
            },
        ];
        let pool = JobPool::with_threads(1);
        let out = run_sweep(&pool, &cells, 10_000, true);
        // Both singletons: full replay, no fork lineage.
        assert!(out.iter().all(|r| r.manifest.forked_from.is_none()));
    }

    #[test]
    fn clamped_warmup_agrees_between_fork_and_full() {
        let b = bundle();
        let cfg = SystemConfig::test_scale();
        let over = b.ops.len() * 2; // force the half-trace clamp
        let snap = warm_snapshot(&b, &cfg, over);
        assert_eq!(snap.applied(), (b.ops.len() / 2) as u64);
        let forked = run_forked(&b, &snap, &cfg);
        let scratch = crate::run_workload(&b, &cfg, over);
        assert_eq!(digest(&forked), digest(&scratch));
        assert!(forked.warmup_clamped);
    }

    #[test]
    #[should_panic(expected = "warmup-relevant")]
    fn fork_rejects_warmup_relevant_mismatch() {
        let b = bundle();
        let base = SystemConfig::test_scale();
        let snap = warm_snapshot(&b, &base, 1_000);
        let mut other = base.clone();
        other.dtlb_entries *= 2;
        let _ = run_forked(&b, &snap, &other);
    }
}
