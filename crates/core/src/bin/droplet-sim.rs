//! `droplet-sim` — command-line driver for the DROPLET simulator.
//!
//! ```text
//! droplet-sim run   --algo pr --dataset kron --prefetcher droplet [--scale small]
//! droplet-sim sweep --algo cc --dataset orkut [--scale small]
//! droplet-sim info
//! ```
//!
//! `run` simulates one workload under one configuration and prints the full
//! report; `sweep` compares every evaluated prefetcher on one workload;
//! `trace save`/`trace load` write and replay columnar trace artifacts
//! (DESIGN.md §15); `info` lists algorithms, datasets and configurations.

use droplet::experiments::ExperimentCtx;
use droplet::obs::ObsConfig;
use droplet::report::Table;
use droplet::specparse;
use droplet::trace::{columnar, open_columnar, TraceSource};
use droplet::{
    run_sweep, run_workload, run_workload_from, PrefetcherKind, RunResult, SweepCell, WorkloadSpec,
};
use droplet_cache::ReplacementPolicy;
use droplet_gap::Algorithm;
use droplet_graph::{Dataset, DatasetScale, DegreeStats};
use droplet_trace::DataType;

fn usage() -> ! {
    eprintln!(
        "usage:\n  droplet-sim run   --algo <bc|bfs|pr|sssp|cc> --dataset <kron|urand|orkut|livejournal|road>\n\
         \x20                   [--prefetcher <none|ghb|vldp|stream|streammpp1|droplet|mono|adaptive>]\n\
         \x20                   [--scale <tiny|small|sim>] [--budget <ops>] [--threads <n>]\n\
         \x20                   [--obs <journal.jsonl>] [--epoch-ops <n>] [--fork-sweep|--no-fork]\n\
         \x20                   [--l1-policy|--l2-policy|--l3-policy <lru|srrip|brrip|drrip|ship>]\n\
         \x20 droplet-sim sweep --algo <...> --dataset <...> [--scale <...>] [--budget <ops>] [--threads <n>]\n\
         \x20                   [--fork-sweep|--no-fork] [--l3-policy <...>]\n\
         \x20 droplet-sim trace save --algo <...> --dataset <...> [--scale <...>] [--budget <ops>]\n\
         \x20                   --trace-file <artifact.dcol>\n\
         \x20 droplet-sim trace load --algo <...> --dataset <...> [--scale <...>] [--budget <ops>]\n\
         \x20                   --trace-file <artifact.dcol> [--prefetcher <...>]\n\
         \x20 droplet-sim info\n\
         \x20 --threads overrides DROPLET_THREADS (default: all cores; 1 = fully serial)\n\
         \x20 --obs enables epoch sampling and writes the JSONL run journal there\n\
         \x20 --epoch-ops sets retired ops per epoch (default 10000; implies sampling was wanted)\n\
         \x20 --fork-sweep/--no-fork: share one warm-up simulation across same-hierarchy configs\n\
         \x20   (default: on for multi-config invocations; results are bit-identical either way)\n\
         \x20 --l1-policy/--l2-policy/--l3-policy: replacement policy per level (default lru)"
    );
    std::process::exit(2);
}

/// Unwraps a shared-spec-parse result, printing the offending flag and
/// value to stderr (the same field-level message `droplet-serve` returns
/// as an HTTP 400) before the usage text.
fn flag_value<T>(parsed: Result<T, droplet::SpecError>) -> T {
    parsed.unwrap_or_else(|e| {
        eprintln!("error: --{e}");
        usage()
    })
}

#[derive(Default)]
struct Args {
    algo: Option<Algorithm>,
    dataset: Option<Dataset>,
    prefetcher: Option<PrefetcherKind>,
    scale: Option<DatasetScale>,
    budget: Option<u64>,
    threads: Option<usize>,
    obs_path: Option<String>,
    epoch_ops: Option<u64>,
    fork: Option<bool>,
    trace_file: Option<String>,
    l1_policy: Option<ReplacementPolicy>,
    l2_policy: Option<ReplacementPolicy>,
    l3_policy: Option<ReplacementPolicy>,
}

impl Args {
    /// Applies the per-level replacement-policy overrides to `base`.
    fn apply_policies(&self, mut base: droplet::SystemConfig) -> droplet::SystemConfig {
        if let Some(p) = self.l1_policy {
            base = base.with_l1_policy(p);
        }
        if let Some(p) = self.l2_policy {
            base = base.with_l2_policy(p);
        }
        if let Some(p) = self.l3_policy {
            base = base.with_l3_policy(p);
        }
        base
    }
}

fn parse_flags(rest: &[String]) -> Args {
    let mut args = Args::default();
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        // Boolean flags take no value.
        match flag.as_str() {
            "--fork-sweep" => {
                args.fork = Some(true);
                continue;
            }
            "--no-fork" => {
                args.fork = Some(false);
                continue;
            }
            _ => {}
        }
        let Some(value) = it.next() else {
            eprintln!("error: {flag}: missing value");
            usage()
        };
        // Field names match the droplet-serve spec fields, so the CLI and
        // the HTTP 400 responses report identical diagnostics.
        match flag.as_str() {
            "--algo" => args.algo = Some(flag_value(specparse::parse_algo("algo", value))),
            "--dataset" => {
                args.dataset = Some(flag_value(specparse::parse_dataset("dataset", value)))
            }
            "--prefetcher" => {
                args.prefetcher = Some(flag_value(specparse::parse_prefetcher("prefetcher", value)))
            }
            "--scale" => args.scale = Some(flag_value(specparse::parse_scale("scale", value))),
            "--budget" => args.budget = Some(flag_value(specparse::parse_u64("budget", value))),
            "--threads" => {
                args.threads = Some(flag_value(specparse::parse_positive_usize(
                    "threads", value,
                )))
            }
            "--obs" => args.obs_path = Some(value.clone()),
            "--epoch-ops" => {
                args.epoch_ops = Some(flag_value(specparse::parse_u64("epoch-ops", value)))
            }
            "--trace-file" => args.trace_file = Some(value.clone()),
            "--l1-policy" => {
                args.l1_policy = Some(flag_value(specparse::parse_policy("l1-policy", value)))
            }
            "--l2-policy" => {
                args.l2_policy = Some(flag_value(specparse::parse_policy("l2-policy", value)))
            }
            "--l3-policy" => {
                args.l3_policy = Some(flag_value(specparse::parse_policy("l3-policy", value)))
            }
            _ => {
                eprintln!("error: {flag}: unknown flag");
                usage()
            }
        }
    }
    args
}

/// Prints the shared-warm-up NOTE when any of the runs was forked from a
/// common warmed snapshot (alongside the warm-up-clamp NOTE in `report`).
fn report_fork_note(results: &[&RunResult]) {
    let forked: Vec<_> = results
        .iter()
        .filter(|r| r.manifest.forked_from.is_some())
        .collect();
    if let Some(first) = forked.first() {
        println!(
            "NOTE: forked: shared_warmup_ops={} configs={}",
            first.manifest.warmup_shared.unwrap_or(0),
            forked.len()
        );
    }
}

fn report(label: &str, r: &RunResult) {
    println!("--- {label} ---");
    println!("cycles               {}", r.core.cycles);
    println!("instructions         {}", r.core.instructions);
    println!("IPC                  {:.3}", r.core.ipc());
    println!("cycle stack          {}", r.core.cycle_stack);
    println!("DRAM MLP             {:.2}", r.core.mlp.avg_outstanding);
    println!("LLC MPKI             {:.1}", r.llc_mpki());
    println!("L2 hit rate          {:.1}%", 100.0 * r.l2_hit_rate());
    println!("BPKI                 {:.1}", r.bpki());
    println!(
        "BW utilization       {:.1}%",
        100.0 * r.bandwidth_utilization()
    );
    for dt in DataType::ALL {
        let b = r.service_breakdown(dt);
        println!(
            "{dt:>12} serviced  L1 {:>5.1}%  L2 {:>5.1}%  L3 {:>5.1}%  DRAM {:>5.1}%",
            100.0 * b[0],
            100.0 * b[1],
            100.0 * b[2],
            100.0 * b[3]
        );
    }
    if let Some(mpp) = &r.mpp {
        println!(
            "MPP                  scanned {} lines, {} candidates, {} walks, drops {}/{}",
            mpp.lines_scanned,
            mpp.candidates,
            mpp.mtlb_walks,
            mpp.buffer_drops,
            mpp.page_fault_drops
        );
        println!(
            "prefetch accuracy    structure {:.0}%, property {:.0}%",
            100.0 * r.prefetch_accuracy(DataType::Structure),
            100.0 * r.prefetch_accuracy(DataType::Property)
        );
    }
    if let Some(locked) = r.sys.adaptive_locked_data_aware {
        println!(
            "adaptive mode        locked {}",
            if locked {
                "data-aware"
            } else {
                "conventional (streamMPP1)"
            }
        );
    }
    if r.warmup_clamped {
        println!(
            "NOTE: warm-up clamped {} -> {} ops (half-warm run)",
            r.warmup_ops_requested, r.warmup_ops_applied
        );
    }
    println!("digest               {:016x}", r.digest());
    println!("manifest             {}", r.manifest.render_json());
}

/// Writes the run journal as JSONL: a `{"manifest": …}` line (enriched
/// with the workload label, thread count, and trace-cache occupancy the
/// library can't know), then one line per epoch.
fn write_journal(path: &str, r: &RunResult, workload: &str, ctx: &ExperimentCtx) {
    let Some(journal) = &r.journal else {
        eprintln!("no journal recorded (sampling was not enabled)");
        return;
    };
    let mut manifest = r.manifest.clone();
    manifest.workload = Some(workload.to_string());
    manifest.threads = Some(ctx.pool.threads());
    manifest.trace_cache_len = Some(ctx.traces.len() as u64);
    manifest.trace_cache_bytes = Some(ctx.traces.resident_bytes());
    let text = format!(
        "{{\"manifest\": {}}}\n{}",
        manifest.render_json(),
        journal.to_jsonl()
    );
    match std::fs::write(path, text) {
        Ok(()) => eprintln!("journal: {} epochs -> {path}", journal.epoch_count()),
        Err(e) => eprintln!("cannot write journal {path}: {e}"),
    }
}

fn cmd_info() {
    println!("algorithms:   bc bfs pr sssp cc          (paper Table II)");
    println!("datasets:     kron urand orkut livejournal road  (paper Table III)");
    println!("prefetchers:  none ghb vldp stream streammpp1 droplet mono adaptive");
    println!("policies:     lru srrip brrip drrip ship     (per level: --l1/--l2/--l3-policy)");
    println!("scales:       tiny (~8K vertices) small (~32K) sim (~1-2M, Table I hierarchy)");
    println!();
    for d in Dataset::ALL {
        let g = d.build(DatasetScale::Tiny);
        println!(
            "{:>12} (tiny): {} vertices, {} edges, {}",
            d.name(),
            g.num_vertices(),
            g.num_edges(),
            DegreeStats::of(&g)
        );
    }
}

/// `trace save` / `trace load`: write a workload's op stream as a columnar
/// artifact, or replay one zero-copy from its mapped bytes. Both rebuild
/// the bundle (load needs the address space and functional memory, which
/// the artifact deliberately does not carry); load verifies the artifact's
/// content digest against the rebuilt ops before replaying.
fn cmd_trace(sub: &str, args: &Args) {
    let (Some(algo), Some(dataset)) = (args.algo, args.dataset) else {
        usage()
    };
    let Some(file) = &args.trace_file else {
        usage()
    };
    let scale = args.scale.unwrap_or(DatasetScale::Small);
    let mut ctx = ExperimentCtx::at(scale);
    if let Some(b) = args.budget {
        ctx.budget = b;
        ctx.warmup = (b / 4) as usize;
    }
    let spec = WorkloadSpec {
        algorithm: algo,
        dataset,
        scale,
    };
    eprintln!("building {} at {scale:?} scale...", spec.label());
    let bundle = ctx.trace(&spec);
    match sub {
        "save" => {
            let encoded = columnar::encode(&bundle.ops);
            let raw = bundle.ops.len() * std::mem::size_of::<droplet::trace::MemOp>();
            if let Err(e) = std::fs::write(file, &encoded) {
                eprintln!("cannot write {file}: {e}");
                std::process::exit(1);
            }
            println!(
                "saved {} ops -> {file}: {} bytes ({:.2}x vs resident), digest {:016x}",
                bundle.ops.len(),
                encoded.len(),
                raw as f64 / encoded.len().max(1) as f64,
                columnar::content_digest(&bundle.ops)
            );
        }
        "load" => {
            let mut source = open_columnar(file.as_ref()).unwrap_or_else(|e| {
                eprintln!("cannot open {file}: {e}");
                std::process::exit(1);
            });
            let expect = columnar::content_digest(&bundle.ops);
            if source.digest() != expect {
                eprintln!(
                    "artifact digest {:016x} does not match this workload's ops ({expect:016x}); \
                     was it saved with the same --algo/--dataset/--scale/--budget?",
                    source.digest()
                );
                std::process::exit(1);
            }
            eprintln!(
                "replaying {} ops from {} ({})",
                source.op_count(),
                file,
                if source.backing().is_mapped() {
                    "mmap, zero-copy"
                } else {
                    "owned buffer fallback"
                }
            );
            let kind = args.prefetcher.unwrap_or(PrefetcherKind::Droplet);
            let cfg = args.apply_policies(if kind == PrefetcherKind::None {
                ctx.base.clone()
            } else {
                ctx.base.with_prefetcher(kind)
            });
            let r = run_workload_from(&mut source, &bundle, &cfg, ctx.warmup);
            report(&format!("{} (columnar replay)", kind.name()), &r);
        }
        _ => usage(),
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let Some(cmd) = argv.get(1) else { usage() };
    match cmd.as_str() {
        "info" => cmd_info(),
        "trace" => {
            let Some(sub) = argv.get(2) else { usage() };
            let args = parse_flags(&argv[3..]);
            cmd_trace(sub, &args);
        }
        "run" | "sweep" => {
            let args = parse_flags(&argv[2..]);
            let (Some(algo), Some(dataset)) = (args.algo, args.dataset) else {
                usage()
            };
            let scale = args.scale.unwrap_or(DatasetScale::Small);
            let mut ctx = ExperimentCtx::at(scale);
            if let Some(b) = args.budget {
                ctx.budget = b;
                ctx.warmup = (b / 4) as usize;
            }
            if let Some(n) = args.threads {
                ctx = ctx.with_threads(n);
            }
            if let Some(fork) = args.fork {
                ctx = ctx.with_fork_sweeps(fork);
            }
            if args.obs_path.is_some() || args.epoch_ops.is_some() {
                ctx.base.obs = Some(ObsConfig::every(args.epoch_ops.unwrap_or(10_000)));
            }
            ctx.base = args.apply_policies(ctx.base.clone());
            let spec = WorkloadSpec {
                algorithm: algo,
                dataset,
                scale,
            };
            eprintln!("building {} at {scale:?} scale...", spec.label());
            let bundle = ctx.trace(&spec);
            eprintln!(
                "trace: {} ops ({} instructions), completed: {}",
                bundle.ops.len(),
                bundle.instructions,
                bundle.completed
            );
            if cmd == "run" {
                let kind = args.prefetcher.unwrap_or(PrefetcherKind::Droplet);
                let (base, main_run) = if kind != PrefetcherKind::None {
                    // Two configs sharing one hierarchy: share the warm-up.
                    let cells = vec![
                        SweepCell {
                            bundle: std::sync::Arc::clone(&bundle),
                            cfg: ctx.base.clone(),
                        },
                        SweepCell {
                            bundle: std::sync::Arc::clone(&bundle),
                            cfg: ctx.base.with_prefetcher(kind),
                        },
                    ];
                    let mut out = run_sweep(&ctx.pool, &cells, ctx.warmup, ctx.fork_sweeps);
                    let r = out.pop().expect("two sweep results");
                    let base = out.pop().expect("two sweep results");
                    (base, Some(r))
                } else {
                    (run_workload(&bundle, &ctx.base, ctx.warmup), None)
                };
                report("baseline (no prefetch)", &base);
                if let Some(r) = &main_run {
                    report(kind.name(), r);
                    println!(
                        "\nspeedup over baseline: {:.2}x",
                        base.core.cycles as f64 / r.core.cycles.max(1) as f64
                    );
                }
                let mut all: Vec<&RunResult> = vec![&base];
                all.extend(main_run.as_ref());
                report_fork_note(&all);
                if let Some(path) = &args.obs_path {
                    // Journal the configuration under test (the baseline
                    // when `--prefetcher none` made it the only run).
                    let r = main_run.as_ref().unwrap_or(&base);
                    write_journal(path, r, &spec.label(), &ctx);
                }
            } else {
                let mut t = Table::new(vec![
                    "config".into(),
                    "speedup".into(),
                    "L2 hit".into(),
                    "LLC MPKI".into(),
                    "BPKI".into(),
                ]);
                let mut kinds = PrefetcherKind::EVALUATED.to_vec();
                kinds.push(PrefetcherKind::AdaptiveDroplet);
                // Baseline plus every prefetcher over one shared warm-up.
                let mut cells = vec![SweepCell {
                    bundle: std::sync::Arc::clone(&bundle),
                    cfg: ctx.base.clone(),
                }];
                cells.extend(kinds.iter().map(|&k| SweepCell {
                    bundle: std::sync::Arc::clone(&bundle),
                    cfg: ctx.base.with_prefetcher(k),
                }));
                let all = run_sweep(&ctx.pool, &cells, ctx.warmup, ctx.fork_sweeps);
                let (base, results) = (&all[0], &all[1..]);
                for (kind, r) in kinds.iter().zip(results) {
                    t.row(vec![
                        kind.name().into(),
                        format!(
                            "{:.2}x",
                            base.core.cycles as f64 / r.core.cycles.max(1) as f64
                        ),
                        format!("{:.1}%", 100.0 * r.l2_hit_rate()),
                        format!("{:.1}", r.llc_mpki()),
                        format!("{:.1}", r.bpki()),
                    ]);
                }
                println!("{}", t.render());
                report_fork_note(&all.iter().collect::<Vec<_>>());
            }
        }
        _ => usage(),
    }
}
