//! The workload matrix: 5 algorithms × 5 datasets (paper Tables II & III),
//! with trace construction and per-scale op budgets.

use droplet_gap::{Algorithm, TraceBundle};
use droplet_graph::{Csr, Dataset, DatasetScale};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

type GraphKey = (Dataset, DatasetScale, bool);

fn graph_cache() -> &'static Mutex<HashMap<GraphKey, Arc<Csr>>> {
    static CACHE: OnceLock<Mutex<HashMap<GraphKey, Arc<Csr>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Drops all cached graphs (frees memory between experiment suites).
pub fn clear_graph_cache() {
    graph_cache().lock().expect("graph cache poisoned").clear();
}

/// One (algorithm, dataset) cell of the evaluation matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WorkloadSpec {
    /// The algorithm.
    pub algorithm: Algorithm,
    /// The dataset.
    pub dataset: Dataset,
    /// The dataset scale.
    pub scale: DatasetScale,
}

impl WorkloadSpec {
    /// The full 25-cell matrix at `scale`.
    pub fn matrix(scale: DatasetScale) -> Vec<WorkloadSpec> {
        let mut out = Vec::with_capacity(25);
        for algorithm in Algorithm::ALL {
            for dataset in Dataset::ALL {
                out.push(WorkloadSpec {
                    algorithm,
                    dataset,
                    scale,
                });
            }
        }
        out
    }

    /// Default trace-op budget for the scale: the simulation analogue of
    /// the paper's 600 M-instruction ROI.
    pub fn default_budget(scale: DatasetScale) -> u64 {
        match scale {
            DatasetScale::Tiny => 400_000,
            DatasetScale::Small => 1_500_000,
            DatasetScale::Sim => 8_000_000,
        }
    }

    /// Default warm-up prefix in ops (statistics start after it).
    pub fn default_warmup(scale: DatasetScale) -> usize {
        (Self::default_budget(scale) / 4) as usize
    }

    /// Builds the graph for this cell (weighted iff the algorithm needs
    /// it). Graphs are cached process-wide — five algorithms share each
    /// dataset — and persisted to an on-disk cache (`target/dataset-cache`,
    /// overridable via `DROPLET_DATASET_CACHE`) so separate bench processes
    /// do not regenerate multi-minute Sim-scale graphs.
    pub fn build_graph(&self) -> Arc<Csr> {
        let weighted = self.algorithm.needs_weights();
        let key = (self.dataset, self.scale, weighted);
        let mut cache = graph_cache().lock().expect("graph cache poisoned");
        cache
            .entry(key)
            .or_insert_with(|| {
                Arc::new(disk_cache::load_or_build(
                    self.dataset,
                    self.scale,
                    weighted,
                ))
            })
            .clone()
    }

    /// Builds the trace bundle with the default budget.
    pub fn build_trace(&self) -> TraceBundle {
        self.build_trace_with_budget(Self::default_budget(self.scale))
    }

    /// Builds the trace bundle with an explicit op budget.
    pub fn build_trace_with_budget(&self, budget: u64) -> TraceBundle {
        let g = self.build_graph();
        self.algorithm.trace(&g, budget)
    }

    /// The "PR-orkut" style label used in figure rows.
    pub fn label(&self) -> String {
        format!("{}-{}", self.algorithm.name(), self.dataset.name())
    }
}

mod disk_cache {
    //! A trivial flat-binary on-disk cache for generated datasets.
    //! Format: magic, vertex count, edge count, weighted flag, then the
    //! raw offsets / targets / weights arrays in native endianness. The
    //! cache is machine-local scratch, not an interchange format.

    use droplet_graph::{Csr, CsrBuilder, Dataset, DatasetScale};
    use std::io::{Read, Write};
    use std::path::PathBuf;

    const MAGIC: u64 = 0xD20B_1E7C_AC4E_u64;

    fn cache_path(dataset: Dataset, scale: DatasetScale, weighted: bool) -> Option<PathBuf> {
        // Only Sim-scale graphs are worth disk space and I/O.
        if scale != DatasetScale::Sim {
            return None;
        }
        let dir = std::env::var("DROPLET_DATASET_CACHE")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("target/dataset-cache"));
        std::fs::create_dir_all(&dir).ok()?;
        let w = if weighted { "w" } else { "u" };
        Some(dir.join(format!("{}-sim-{w}.bin", dataset.name())))
    }

    fn generate(dataset: Dataset, scale: DatasetScale, weighted: bool) -> Csr {
        if weighted {
            dataset.build_weighted(scale)
        } else {
            dataset.build(scale)
        }
    }

    pub(super) fn load_or_build(dataset: Dataset, scale: DatasetScale, weighted: bool) -> Csr {
        let Some(path) = cache_path(dataset, scale, weighted) else {
            return generate(dataset, scale, weighted);
        };
        if let Some(g) = try_load(&path, weighted) {
            return g;
        }
        let g = generate(dataset, scale, weighted);
        // Best effort: a failed save only costs regeneration time later.
        let _ = save(&path, &g);
        g
    }

    fn read_u64(r: &mut impl Read) -> Option<u64> {
        let mut b = [0u8; 8];
        r.read_exact(&mut b).ok()?;
        Some(u64::from_le_bytes(b))
    }

    fn read_vec_u32(r: &mut impl Read, len: usize) -> Option<Vec<u32>> {
        let mut bytes = vec![0u8; len * 4];
        r.read_exact(&mut bytes).ok()?;
        Some(
            bytes
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect(),
        )
    }

    fn try_load(path: &std::path::Path, weighted: bool) -> Option<Csr> {
        let file = std::fs::File::open(path).ok()?;
        let mut r = std::io::BufReader::with_capacity(1 << 20, file);
        if read_u64(&mut r)? != MAGIC {
            return None;
        }
        let n = read_u64(&mut r)? as u32;
        let m = read_u64(&mut r)? as usize;
        let has_weights = read_u64(&mut r)? == 1;
        if has_weights != weighted {
            return None;
        }
        let sources = read_vec_u32(&mut r, m)?;
        let targets = read_vec_u32(&mut r, m)?;
        let weights = if has_weights {
            Some(read_vec_u32(&mut r, m)?)
        } else {
            None
        };
        let mut b = CsrBuilder::with_capacity(n, m);
        for i in 0..m {
            match &weights {
                Some(w) => b.push_weighted_edge(sources[i], targets[i], w[i]),
                None => b.push_edge(sources[i], targets[i]),
            }
        }
        Some(b.build())
    }

    #[cfg(test)]
    pub(super) fn save_for_test(path: &std::path::Path, g: &Csr) -> std::io::Result<()> {
        save(path, g)
    }

    #[cfg(test)]
    pub(super) fn load_for_test(path: &std::path::Path, weighted: bool) -> Option<Csr> {
        try_load(path, weighted)
    }

    fn save(path: &std::path::Path, g: &Csr) -> std::io::Result<()> {
        let tmp = path.with_extension("tmp");
        {
            let file = std::fs::File::create(&tmp)?;
            let mut w = std::io::BufWriter::with_capacity(1 << 20, file);
            w.write_all(&MAGIC.to_le_bytes())?;
            w.write_all(&u64::from(g.num_vertices()).to_le_bytes())?;
            w.write_all(&g.num_edges().to_le_bytes())?;
            w.write_all(&u64::from(g.is_weighted()).to_le_bytes())?;
            // Sources are reconstructed from the offsets array.
            for u in 0..g.num_vertices() {
                let d = g.out_degree(u);
                for _ in 0..d {
                    w.write_all(&u.to_le_bytes())?;
                }
            }
            for &t in g.targets() {
                w.write_all(&t.to_le_bytes())?;
            }
            if let Some(ws) = g.weights() {
                for &x in ws {
                    w.write_all(&x.to_le_bytes())?;
                }
            }
            w.flush()?;
        }
        std::fs::rename(&tmp, path)
    }
}

impl std::fmt::Display for WorkloadSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_is_complete() {
        let m = WorkloadSpec::matrix(DatasetScale::Tiny);
        assert_eq!(m.len(), 25);
        let labels: std::collections::HashSet<String> = m.iter().map(|w| w.label()).collect();
        assert_eq!(labels.len(), 25);
        assert!(labels.contains("PR-orkut"));
    }

    #[test]
    fn sssp_cells_get_weighted_graphs() {
        let w = WorkloadSpec {
            algorithm: Algorithm::Sssp,
            dataset: Dataset::Road,
            scale: DatasetScale::Tiny,
        };
        assert!(w.build_graph().is_weighted());
        let b = w.build_trace_with_budget(50_000);
        assert!(!b.ops.is_empty());
    }

    #[test]
    fn disk_cache_roundtrips_weighted_and_unweighted() {
        let dir = std::env::temp_dir().join(format!("droplet-cache-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let unweighted = Dataset::Kron.build(DatasetScale::Tiny);
        let path = dir.join("u.bin");
        disk_cache::save_for_test(&path, &unweighted).unwrap();
        assert_eq!(disk_cache::load_for_test(&path, false).unwrap(), unweighted);
        // Asking for the wrong weightedness misses the cache.
        assert!(disk_cache::load_for_test(&path, true).is_none());

        let weighted = Dataset::Road.build_weighted(DatasetScale::Tiny);
        let wpath = dir.join("w.bin");
        disk_cache::save_for_test(&wpath, &weighted).unwrap();
        assert_eq!(disk_cache::load_for_test(&wpath, true).unwrap(), weighted);

        // Corrupt magic is rejected.
        std::fs::write(&path, b"garbage").unwrap();
        assert!(disk_cache::load_for_test(&path, false).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn budgets_scale_up() {
        assert!(
            WorkloadSpec::default_budget(DatasetScale::Tiny)
                < WorkloadSpec::default_budget(DatasetScale::Sim)
        );
        assert_eq!(WorkloadSpec::default_warmup(DatasetScale::Tiny), 100_000);
    }
}
