//! A scoped worker pool for fanning independent simulation jobs across
//! cores.
//!
//! The experiment drivers run hundreds of mutually independent
//! `run_workload` cells (workload × prefetcher × cache-size points); each
//! cell builds its own [`crate::System`] from shared read-only inputs, so
//! the only coordination needed is handing out job indices and collecting
//! results in order. [`JobPool`] does exactly that on `std::thread::scope`
//! — no dependencies, no long-lived threads, no channels.
//!
//! # Determinism
//!
//! Results are returned in the order the jobs were submitted, regardless of
//! which worker ran which job or in what order they finished. Combined with
//! each job being a pure function of its inputs, a parallel run is
//! bit-identical to a serial one; `DROPLET_THREADS=1` additionally forces
//! the exact serial code path (a plain `for` loop on the caller's thread)
//! for debugging.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

/// Environment variable overriding the worker count for every pool created
/// via [`JobPool::from_env`]. `1` forces the serial path.
pub const THREADS_ENV: &str = "DROPLET_THREADS";

/// A fan-out executor over scoped OS threads.
///
/// # Example
///
/// ```
/// use droplet::pool::JobPool;
/// let inputs = vec![1u64, 2, 3, 4];
/// let squares = JobPool::with_threads(2)
///     .run(inputs.iter().map(|&x| move || x * x).collect());
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct JobPool {
    threads: usize,
}

impl JobPool {
    /// A pool using up to `threads` workers (at least one).
    pub fn with_threads(threads: usize) -> Self {
        JobPool {
            threads: threads.max(1),
        }
    }

    /// A pool sized from [`THREADS_ENV`] if set (and a positive integer),
    /// otherwise from `std::thread::available_parallelism`.
    pub fn from_env() -> Self {
        let threads = std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
            });
        JobPool::with_threads(threads)
    }

    /// The number of workers this pool will use for a large-enough batch.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every job, returning results in submission order.
    ///
    /// With one worker (or one job) the jobs run in a plain loop on the
    /// calling thread — the exact serial path. Otherwise
    /// `min(jobs.len(), threads)` scoped workers pull job indices from a
    /// shared atomic counter. A panicking job propagates the panic to the
    /// caller after the remaining workers drain.
    pub fn run<F, R>(&self, jobs: Vec<F>) -> Vec<R>
    where
        F: FnOnce() -> R + Send,
        R: Send,
    {
        let workers = self.threads.min(jobs.len());
        if workers <= 1 {
            return jobs.into_iter().map(|job| job()).collect();
        }

        // Job slots are taken (not cloned) by whichever worker claims the
        // index; result slots are filled at the same index, so output order
        // matches input order independent of scheduling.
        let job_slots: Vec<Mutex<Option<F>>> =
            jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
        let result_slots: Vec<Mutex<Option<R>>> =
            (0..job_slots.len()).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);

        thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= job_slots.len() {
                            break;
                        }
                        let job = job_slots[i]
                            .lock()
                            .expect("job slot poisoned")
                            .take()
                            .expect("job claimed twice");
                        let result = job();
                        *result_slots[i].lock().expect("result slot poisoned") = Some(result);
                    })
                })
                .collect();
            // Join explicitly so a worker panic re-raises with its original
            // payload (the bare scope exit would replace it with a generic
            // "a scoped thread panicked" message). All workers are joined
            // before re-raising, so no job is left mid-flight.
            let mut first_panic = None;
            for handle in handles {
                if let Err(payload) = handle.join() {
                    first_panic.get_or_insert(payload);
                }
            }
            if let Some(payload) = first_panic {
                std::panic::resume_unwind(payload);
            }
        });
        // A worker panic propagated above, so every slot is filled here.
        result_slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("worker exited without storing a result")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_submission_order() {
        let pool = JobPool::with_threads(4);
        let results = pool.run(
            (0..64)
                .map(|i| {
                    move || {
                        // Stagger finish times so late-submitted jobs finish
                        // first if ordering were by completion.
                        if i % 2 == 0 {
                            std::thread::sleep(std::time::Duration::from_micros(200));
                        }
                        i * 10
                    }
                })
                .collect(),
        );
        assert_eq!(results, (0..64).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_runs_on_calling_thread() {
        let caller = std::thread::current().id();
        let ids = JobPool::with_threads(1)
            .run(vec![move || std::thread::current().id(), move || {
                std::thread::current().id()
            }]);
        assert!(ids.iter().all(|&id| id == caller));
    }

    #[test]
    fn parallel_matches_serial() {
        let jobs = || {
            (0..100u64)
                .map(|i| move || i.wrapping_mul(i) ^ 0xabcd)
                .collect()
        };
        let serial = JobPool::with_threads(1).run(jobs());
        let parallel = JobPool::with_threads(8).run(jobs());
        assert_eq!(serial, parallel);
    }

    #[test]
    fn runs_every_job_exactly_once() {
        let counter = AtomicUsize::new(0);
        let results = JobPool::with_threads(3).run(
            (0..57)
                .map(|_| {
                    let counter = &counter;
                    move || counter.fetch_add(1, Ordering::Relaxed)
                })
                .collect::<Vec<_>>(),
        );
        assert_eq!(counter.load(Ordering::Relaxed), 57);
        let mut seen = results;
        seen.sort_unstable();
        assert_eq!(seen, (0..57).collect::<Vec<_>>());
    }

    #[test]
    fn empty_batch_is_fine() {
        let out: Vec<u32> = JobPool::with_threads(4).run(Vec::<fn() -> u32>::new());
        assert!(out.is_empty());
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(JobPool::with_threads(0).threads(), 1);
    }

    #[test]
    #[should_panic(expected = "job 3 exploded")]
    fn propagates_worker_panics() {
        JobPool::with_threads(4).run(
            (0..8)
                .map(|i| {
                    move || {
                        if i == 3 {
                            panic!("job 3 exploded");
                        }
                        i
                    }
                })
                .collect::<Vec<_>>(),
        );
    }

    #[test]
    #[should_panic(expected = "serial job exploded")]
    fn propagates_serial_panics() {
        JobPool::with_threads(1).run(vec![|| panic!("serial job exploded")]);
    }
}
