//! Field-level parsing and validation of experiment-spec values, shared
//! between the `droplet-sim` CLI flags and the `droplet-serve` HTTP/JSON
//! spec endpoints.
//!
//! Every parser returns [`SpecError`] naming the offending field, the
//! rejected value, and the accepted domain — so the CLI can print
//! `error: --budget: invalid value "abc" (expected a non-negative
//! integer)` and the server can reject the same spec with an HTTP 400
//! carrying the same field-level message, without the two front ends
//! drifting on what a valid spec is.

use crate::config::PrefetcherKind;
use droplet_cache::ReplacementPolicy;
use droplet_gap::Algorithm;
use droplet_graph::{Dataset, DatasetScale};
use std::fmt;

/// A rejected spec field: which field, what value, what was expected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// Spec field name, without flag dashes (`"budget"`, `"algo"`).
    pub field: String,
    /// The value as submitted.
    pub value: String,
    /// Human-readable domain description.
    pub expected: &'static str,
}

impl SpecError {
    fn new(field: &str, value: &str, expected: &'static str) -> Self {
        SpecError {
            field: field.to_string(),
            value: value.to_string(),
            expected,
        }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: invalid value {:?} (expected {})",
            self.field, self.value, self.expected
        )
    }
}

impl std::error::Error for SpecError {}

/// Parses an algorithm name (`bc|bfs|pr|sssp|cc`), naming `field` on error.
pub fn parse_algo(field: &str, value: &str) -> Result<Algorithm, SpecError> {
    match value.to_ascii_lowercase().as_str() {
        "bc" => Ok(Algorithm::Bc),
        "bfs" => Ok(Algorithm::Bfs),
        "pr" => Ok(Algorithm::Pr),
        "sssp" => Ok(Algorithm::Sssp),
        "cc" => Ok(Algorithm::Cc),
        _ => Err(SpecError::new(field, value, "one of bc|bfs|pr|sssp|cc")),
    }
}

/// Parses a dataset name (`kron|urand|orkut|livejournal|road`).
pub fn parse_dataset(field: &str, value: &str) -> Result<Dataset, SpecError> {
    match value.to_ascii_lowercase().as_str() {
        "kron" => Ok(Dataset::Kron),
        "urand" => Ok(Dataset::Urand),
        "orkut" => Ok(Dataset::Orkut),
        "livejournal" | "lj" => Ok(Dataset::LiveJournal),
        "road" => Ok(Dataset::Road),
        _ => Err(SpecError::new(
            field,
            value,
            "one of kron|urand|orkut|livejournal|road",
        )),
    }
}

/// Parses a prefetcher configuration name.
pub fn parse_prefetcher(field: &str, value: &str) -> Result<PrefetcherKind, SpecError> {
    match value.to_ascii_lowercase().as_str() {
        "none" | "baseline" => Ok(PrefetcherKind::None),
        "nextline" | "next-line" => Ok(PrefetcherKind::NextLine),
        "ghb" => Ok(PrefetcherKind::Ghb),
        "vldp" => Ok(PrefetcherKind::Vldp),
        "stream" => Ok(PrefetcherKind::Stream),
        "streammpp1" | "stream-mpp1" => Ok(PrefetcherKind::StreamMpp1),
        "droplet" => Ok(PrefetcherKind::Droplet),
        "mono" | "monodropletl1" => Ok(PrefetcherKind::MonoDropletL1),
        "adaptive" | "droplet-adaptive" => Ok(PrefetcherKind::AdaptiveDroplet),
        _ => Err(SpecError::new(
            field,
            value,
            "one of none|nextline|ghb|vldp|stream|streammpp1|droplet|mono|adaptive",
        )),
    }
}

/// Parses a dataset scale (`tiny|small|sim`).
pub fn parse_scale(field: &str, value: &str) -> Result<DatasetScale, SpecError> {
    match value.to_ascii_lowercase().as_str() {
        "tiny" => Ok(DatasetScale::Tiny),
        "small" => Ok(DatasetScale::Small),
        "sim" => Ok(DatasetScale::Sim),
        _ => Err(SpecError::new(field, value, "one of tiny|small|sim")),
    }
}

/// Parses a replacement-policy name (`lru|srrip|brrip|drrip|ship`).
pub fn parse_policy(field: &str, value: &str) -> Result<ReplacementPolicy, SpecError> {
    ReplacementPolicy::parse(value)
        .ok_or_else(|| SpecError::new(field, value, "one of lru|srrip|brrip|drrip|ship"))
}

/// Parses a non-negative integer field (`budget`, `epoch_ops`).
pub fn parse_u64(field: &str, value: &str) -> Result<u64, SpecError> {
    value
        .parse()
        .map_err(|_| SpecError::new(field, value, "a non-negative integer"))
}

/// Parses a positive integer field (`threads`).
pub fn parse_positive_usize(field: &str, value: &str) -> Result<usize, SpecError> {
    match value.parse::<usize>() {
        Ok(n) if n > 0 => Ok(n),
        _ => Err(SpecError::new(field, value, "a positive integer")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_values_parse() {
        assert_eq!(parse_algo("algo", "PR").unwrap(), Algorithm::Pr);
        assert_eq!(
            parse_dataset("dataset", "lj").unwrap(),
            Dataset::LiveJournal
        );
        assert_eq!(
            parse_prefetcher("prefetcher", "droplet").unwrap(),
            PrefetcherKind::Droplet
        );
        assert_eq!(parse_scale("scale", "tiny").unwrap(), DatasetScale::Tiny);
        assert_eq!(
            parse_policy("l3_policy", "srrip").unwrap(),
            ReplacementPolicy::Srrip
        );
        assert_eq!(parse_u64("budget", "30000").unwrap(), 30_000);
        assert_eq!(parse_positive_usize("threads", "4").unwrap(), 4);
    }

    #[test]
    fn errors_name_field_value_and_domain() {
        let e = parse_u64("budget", "abc").unwrap_err();
        assert_eq!(e.field, "budget");
        assert_eq!(e.value, "abc");
        assert_eq!(
            e.to_string(),
            "budget: invalid value \"abc\" (expected a non-negative integer)"
        );
        let e = parse_algo("algo", "dijkstra").unwrap_err();
        assert!(e.to_string().contains("bc|bfs|pr|sssp|cc"));
        let e = parse_positive_usize("threads", "0").unwrap_err();
        assert_eq!(e.expected, "a positive integer");
        let e = parse_policy("l2_policy", "mru").unwrap_err();
        assert_eq!(e.field, "l2_policy");
        assert!(parse_prefetcher("prefetcher", "magic").is_err());
        assert!(parse_scale("scale", "huge").is_err());
        assert!(parse_dataset("dataset", "twitter").is_err());
    }
}
